"""Multi-kernel edge-detection pipeline on a noisy angiography frame.

The clinical pre-processing chain composed from DSL operators:

1. 3x3 median (min/max network) removes impulse noise,
2. Sobel-x and Sobel-y derivative convolutions (the y-derivative uses
   the ``convolve()`` lambda syntax from the paper's Section VIII),
3. gradient magnitude (a two-input point operator).

The chain is expressed twice: once as manual per-kernel
``compile_kernel(...).execute()`` calls, and once declaratively as a
:class:`repro.PipelineGraph`, which compiles every node through one
shared compilation cache and runs the independent Sobel branches in
parallel.  The example asserts both spellings produce *identical*
pixels.

Run:  python examples/edge_pipeline.py
"""

import numpy as np

from repro import (
    Accessor,
    Boundary,
    BoundaryCondition,
    CompilationCache,
    Image,
    IterationSpace,
    Kernel,
    Mask,
    PipelineGraph,
    Reduce,
    compile_kernel,
)
from repro.data import impulse_noise_image
from repro.filters.median import Median3x3
from repro.filters.sobel import SOBEL_X, SOBEL_Y, GradientMagnitude, SobelX


class SobelConvolve(Kernel):
    """Sobel via the Section-VIII convolve() syntax."""

    def __init__(self, iteration_space, inp, smask):
        super().__init__(iteration_space)
        self.inp = inp
        self.smask = smask
        self.add_accessor(inp)

    def kernel(self):
        self.output(self.convolve(self.smask, Reduce.SUM,
                                  lambda: self.smask() * self.inp(self.smask)))


def build_chain(frame, size):
    """The four pipeline kernels over freshly allocated images."""
    img0 = Image(size, size, float, name="frame").set_data(frame)
    img1 = Image(size, size, float, name="denoised")
    img_gx = Image(size, size, float, name="grad_x")
    img_gy = Image(size, size, float, name="grad_y")
    img_mag = Image(size, size, float, name="edges")
    median = Median3x3(IterationSpace(img1),
                       Accessor(BoundaryCondition(img0, 3, 3,
                                                  Boundary.MIRROR)))
    sx = SobelX(IterationSpace(img_gx),
                Accessor(BoundaryCondition(img1, 3, 3, Boundary.CLAMP)),
                Mask(3, 3).set(SOBEL_X))
    sy = SobelConvolve(IterationSpace(img_gy),
                       Accessor(BoundaryCondition(img1, 3, 3,
                                                  Boundary.CLAMP)),
                       Mask(3, 3).set(SOBEL_Y))
    mag = GradientMagnitude(IterationSpace(img_mag), Accessor(img_gx),
                            Accessor(img_gy))
    return [median, sx, sy, mag], img_mag


def run_manual(frame, size, device="Tesla C2050"):
    """Baseline: compile + execute each kernel by hand, in order."""
    kernels, img_mag = build_chain(frame, size)
    times = [compile_kernel(k, backend="cuda", device=device)
             .execute().time_ms for k in kernels]
    return img_mag.get_data().copy(), times


def run_graph(frame, size, device="Tesla C2050"):
    """The same chain as a declarative pipeline graph."""
    kernels, img_mag = build_chain(frame, size)
    graph = PipelineGraph("edge-detection")
    for k, name in zip(kernels, ["median", "sobel_x", "sobel_y",
                                 "magnitude"]):
        graph.add_kernel(k, name=name, backend="cuda", device=device)
    graph.mark_output(img_mag)
    report = graph.run(cache=CompilationCache(), workers=2)
    return img_mag.get_data().copy(), report


def main():
    size = 256
    frame = impulse_noise_image(size, size, seed=11, density=0.03)

    edges_manual, times = run_manual(frame, size)
    edges_graph, report = run_graph(frame, size)

    t1, t2, t3, t4 = times
    print(f"pipeline on {size}x{size} frame (simulated Tesla C2050):")
    print(f"  median 3x3      {t1:8.3f} ms")
    print(f"  sobel-x (loops) {t2:8.3f} ms")
    print(f"  sobel-y (convolve syntax) {t3:5.3f} ms")
    print(f"  magnitude       {t4:8.3f} ms")
    print(f"  edge response: mean {edges_manual.mean():.4f}, "
          f"p99 {np.percentile(edges_manual, 99):.4f}")
    print()
    print("as a pipeline graph (sobel-x and sobel-y run in parallel):")
    print(report.summary())

    # the graph execution is *identical* to the manual chain, bit for bit
    assert np.array_equal(edges_manual, edges_graph), \
        "graph execution diverged from manual chaining"
    print("\ngraph output identical to manual chaining: OK")

    # sanity: convolve() syntax produces the same numbers as the loops
    img1 = Image(size, size, float)
    med_in = Image(size, size, float).set_data(frame)
    compile_kernel(Median3x3(
        IterationSpace(img1),
        Accessor(BoundaryCondition(med_in, 3, 3,
                                   Boundary.MIRROR)))).execute()
    img_gy = Image(size, size, float)
    img_gy2 = Image(size, size, float)
    sy_conv = SobelConvolve(IterationSpace(img_gy),
                            Accessor(BoundaryCondition(img1, 3, 3,
                                                       Boundary.CLAMP)),
                            Mask(3, 3).set(SOBEL_Y))
    sy_loops = SobelX(IterationSpace(img_gy2),
                      Accessor(BoundaryCondition(img1, 3, 3,
                                                 Boundary.CLAMP)),
                      Mask(3, 3).set(SOBEL_Y))
    compile_kernel(sy_conv).execute()
    compile_kernel(sy_loops).execute()
    err = np.abs(img_gy.get_data() - img_gy2.get_data()).max()
    print(f"convolve() vs explicit loops: max abs diff {err:.2e}")
    assert err < 1e-5


if __name__ == "__main__":
    main()
