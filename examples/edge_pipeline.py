"""Multi-kernel edge-detection pipeline on a noisy angiography frame.

Chains four compiled kernels on the simulated GPU — exactly how a clinical
pre-processing chain composes DSL operators:

1. 3x3 median (min/max network) removes impulse noise,
2. Sobel-x and Sobel-y derivative convolutions,
3. gradient magnitude (a two-input point operator).

Also demonstrates the ``convolve()`` lambda syntax from the paper's
outlook (Section VIII) as an alternative spelling of step 2.

Run:  python examples/edge_pipeline.py
"""

import numpy as np

from repro import (
    Accessor,
    Boundary,
    BoundaryCondition,
    Image,
    IterationSpace,
    Kernel,
    Mask,
    Reduce,
    compile_kernel,
)
from repro.data import impulse_noise_image
from repro.filters.median import Median3x3
from repro.filters.sobel import SOBEL_X, SOBEL_Y, GradientMagnitude, SobelX


class SobelConvolve(Kernel):
    """Sobel via the Section-VIII convolve() syntax."""

    def __init__(self, iteration_space, inp, smask):
        super().__init__(iteration_space)
        self.inp = inp
        self.smask = smask
        self.add_accessor(inp)

    def kernel(self):
        self.output(self.convolve(self.smask, Reduce.SUM,
                                  lambda: self.smask() * self.inp(self.smask)))


def run(kernel, device="Tesla C2050"):
    compiled = compile_kernel(kernel, backend="cuda", device=device)
    report = compiled.execute()
    return report.time_ms


def main():
    size = 256
    frame = impulse_noise_image(size, size, seed=11, density=0.03)

    # 1. median prefilter
    img0 = Image(size, size, float).set_data(frame)
    img1 = Image(size, size, float)
    median = Median3x3(IterationSpace(img1),
                       Accessor(BoundaryCondition(img0, 3, 3,
                                                  Boundary.MIRROR)))
    t1 = run(median)

    # 2. derivatives (classic loop syntax and convolve() syntax)
    img_gx = Image(size, size, float)
    img_gy = Image(size, size, float)
    acc1x = Accessor(BoundaryCondition(img1, 3, 3, Boundary.CLAMP))
    acc1y = Accessor(BoundaryCondition(img1, 3, 3, Boundary.CLAMP))
    sx = SobelX(IterationSpace(img_gx), acc1x, Mask(3, 3).set(SOBEL_X))
    sy = SobelConvolve(IterationSpace(img_gy), acc1y,
                       Mask(3, 3).set(SOBEL_Y))
    t2 = run(sx)
    t3 = run(sy)

    # 3. gradient magnitude (two-input point operator)
    img_mag = Image(size, size, float)
    mag = GradientMagnitude(IterationSpace(img_mag), Accessor(img_gx),
                            Accessor(img_gy))
    t4 = run(mag)

    edges = img_mag.get_data()
    print(f"pipeline on {size}x{size} frame (simulated Tesla C2050):")
    print(f"  median 3x3      {t1:8.3f} ms")
    print(f"  sobel-x (loops) {t2:8.3f} ms")
    print(f"  sobel-y (convolve syntax) {t3:5.3f} ms")
    print(f"  magnitude       {t4:8.3f} ms")
    print(f"  edge response: mean {edges.mean():.4f}, "
          f"p99 {np.percentile(edges, 99):.4f}")

    # sanity: convolve() syntax produces the same numbers as the loops
    img_gy2 = Image(size, size, float)
    sy_loops = SobelX(IterationSpace(img_gy2),
                      Accessor(BoundaryCondition(img1, 3, 3,
                                                 Boundary.CLAMP)),
                      Mask(3, 3).set(SOBEL_Y))
    run(sy_loops)
    err = np.abs(img_gy.get_data() - img_gy2.get_data()).max()
    print(f"  convolve() vs explicit loops: max abs diff {err:.2e}")
    assert err < 1e-5


if __name__ == "__main__":
    main()
