"""Multiresolution detail enhancement with mirror vs clamp boundaries.

The paper motivates mirror boundary handling with exactly this pipeline
(Section III-A, citing Kunz et al. [7]): repeated up/down-sampling and
re-smoothing replicates border pixels under clamping and produces "large
unnatural-looking artifacts", while mirroring keeps borders natural.

This example quantifies that.  The artifact-free ground truth is obtained
by enhancing a *larger* frame and cropping its centre — there the border
of the test region was processed with full real context.  Enhancing the
cropped frame directly must invent the missing context via the boundary
mode; the border-band deviation from the ground truth is the artifact.

Run:  python examples/multiresolution_enhance.py
"""

import numpy as np

from repro import Boundary
from repro.data import angiography_image
from repro.filters.multiresolution import multiresolution_filter

PAD = 32


def border_band_error(result: np.ndarray, truth: np.ndarray,
                      band: int = 8) -> float:
    """Mean absolute deviation from the ground truth in the border band."""
    diff = np.abs(result - truth)
    bands = [diff[:band], diff[-band:], diff[:, :band], diff[:, -band:]]
    return float(np.mean([b.mean() for b in bands]))


def main():
    size = 128
    gains = [1.8, 1.4, 1.0]   # boost fine detail
    big = angiography_image(size + 2 * PAD, size + 2 * PAD, seed=3,
                            noise_sigma=0.01)
    frame = big[PAD:PAD + size, PAD:PAD + size]

    # artifact-free reference: full context available at the crop border
    truth = multiresolution_filter(big, levels=3, gains=gains,
                                   boundary=Boundary.MIRROR,
                                   device="Tesla C2050",
                                   backend="cuda")[PAD:PAD + size,
                                                   PAD:PAD + size]

    errors = {}
    for mode in (Boundary.REPEAT, Boundary.CLAMP, Boundary.MIRROR):
        enhanced = multiresolution_filter(
            frame, levels=3, gains=gains, boundary=mode,
            device="Tesla C2050", backend="cuda")
        errors[mode] = border_band_error(enhanced, truth)
        interior_err = np.abs(enhanced[16:-16, 16:-16]
                              - truth[16:-16, 16:-16]).mean()
        print(f"{mode.value:>7}: border-band artifact "
              f"{errors[mode]:.5f}, interior deviation "
              f"{interior_err:.5f}")

    # Repeat wraps content from the opposite edge into the border — the
    # "large unnatural-looking artifacts" of Section III-A.  Clamp and
    # mirror both extend the local neighbourhood and land close together
    # on an L1 metric; the paper prefers mirror for *visual* naturalness
    # (reflected anatomy instead of streaked replication), which pixel
    # error alone does not capture.
    assert errors[Boundary.MIRROR] < errors[Boundary.REPEAT]
    assert errors[Boundary.CLAMP] < errors[Boundary.REPEAT]
    worst = errors[Boundary.REPEAT]
    print(f"\nrepeat is {worst / errors[Boundary.MIRROR]:.2f}x worse than "
          f"mirror at the border (opposite-edge content wraps in);")
    print("clamp and mirror tie on L1 — the paper's preference for mirror "
          "is about visual naturalness of the reflected content.")


if __name__ == "__main__":
    main()
