"""Vessel enhancement via morphological top-hat.

A classic angiography pre-processing chain built entirely from DSL
operators on the simulated GPU:

1. invert the frame (vessels become bright) — point operator,
2. white top-hat (image minus its opening) with a structuring element
   wider than any vessel — isolates the vessel tree from the smoothly
   varying background,
3. min/max global reductions for automatic contrast stretch.

Run:  python examples/vessel_enhancement.py
"""

import numpy as np

from repro import (
    Accessor,
    Image,
    IterationSpace,
    MaxReduction,
    MinReduction,
    compile_kernel,
    compile_reduction,
)
from repro.data import angiography_image, vessel_tree
from repro.filters.morphology import top_hat
from repro.filters.point_ops import Scale


def main():
    size = 256
    frame = angiography_image(size, size, seed=5, noise_sigma=0.02)
    truth = vessel_tree(size, size, seed=5) > 0.4

    # 1. invert: vessels (dark, contrast-filled) become the bright signal
    inverted = 1.0 - frame

    # 2. white top-hat with a 9x9 structuring element
    vessels = top_hat(inverted, size=9, device="Tesla C2050")

    # 3. contrast stretch from global reductions
    img = Image(size, size).set_data(vessels)
    space, acc = IterationSpace(img), Accessor(img)
    lo = compile_reduction(MinReduction(space, acc)).execute().value
    hi = compile_reduction(MaxReduction(space, acc)).execute().value
    out_img = Image(size, size)
    stretch = Scale(IterationSpace(out_img), Accessor(img),
                    factor=1.0 / max(hi - lo, 1e-6),
                    offset=-lo / max(hi - lo, 1e-6))
    compile_kernel(stretch).execute()
    enhanced = out_img.get_data()

    inside = enhanced[truth].mean() if truth.any() else 0.0
    outside = enhanced[~truth].mean()
    print(f"vessel enhancement on {size}x{size} frame")
    print(f"  top-hat range before stretch: [{lo:.4f}, {hi:.4f}]")
    print(f"  mean response on vessels:     {inside:.3f}")
    print(f"  mean response on background:  {outside:.3f}")
    print(f"  separation: {inside - outside:.3f}")
    assert inside > outside + 0.1, "vessels must light up"


if __name__ == "__main__":
    main()
