"""Quickstart: write a kernel in the DSL, compile it, inspect the CUDA and
OpenCL code, and run it on the simulated GPU.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import (
    Accessor,
    Boundary,
    BoundaryCondition,
    Image,
    IterationSpace,
    Kernel,
    Mask,
    compile_kernel,
)


class BoxBlur(Kernel):
    """Average of the 3x3 neighbourhood, weights from a constant mask."""

    def __init__(self, iteration_space, inp, mask):
        super().__init__(iteration_space)
        self.inp = inp
        self.mask = mask
        self.add_accessor(inp)

    def kernel(self):
        s = 0.0
        for dy in range(-1, 2):
            for dx in range(-1, 2):
                s += self.mask(dx, dy) * self.inp(dx, dy)
        self.output(s)


def main():
    rng = np.random.default_rng(42)
    data = rng.random((256, 256)).astype(np.float32)

    # the four framework objects of the paper (Listing 2)
    src = Image(256, 256, float, name="IN").set_data(data)
    dst = Image(256, 256, float, name="OUT")
    bc = BoundaryCondition(src, 3, 3, Boundary.CLAMP)
    blur = BoxBlur(IterationSpace(dst), Accessor(bc),
                   Mask(3, 3).set(np.full((3, 3), 1.0 / 9.0, np.float32)))

    # compile for both backends; Algorithm 2 picks the block configuration
    for backend, device in (("cuda", "Tesla C2050"),
                            ("opencl", "Radeon HD 6970")):
        compiled = compile_kernel(blur, backend=backend, device=device)
        print(f"--- {backend} on {device} ---")
        print(f"  selected block: {compiled.options.block}, "
              f"occupancy {compiled.selected_occupancy:.0%}, "
              f"{compiled.resources.registers_per_thread} regs/thread")
        print(f"  device code: {compiled.source.device_lines} lines, "
              f"{compiled.source.num_variants} border variants")
        report = compiled.execute()
        print(f"  simulated run: {report.time_ms:.3f} ms "
              f"({report.launch.grid[0]}x{report.launch.grid[1]} blocks)")

    # correctness versus scipy
    from scipy.ndimage import correlate
    ref = correlate(data, np.full((3, 3), 1.0 / 9.0, np.float32),
                    mode="nearest")
    err = np.abs(dst.get_data() - ref).max()
    print(f"max abs error vs scipy.ndimage: {err:.2e}")
    assert err < 1e-5

    # peek at the generated CUDA
    compiled = compile_kernel(blur, backend="cuda")
    head = "\n".join(compiled.device_code.splitlines()[:14])
    print("--- generated CUDA (first lines) ---")
    print(head)


if __name__ == "__main__":
    main()
