"""Angiography denoising with the bilateral filter — the paper's running
example (Listings 1-5) on a synthetic fluoroscopy frame.

Shows the paper's two headline effects:

* constant-memory masks: the +Mask kernel computes one ``exp`` per tap
  instead of three and is ~1.5x faster;
* nine-region boundary specialisation: generated-code timing is flat
  across boundary modes, while the manual (inline-conditional) variant
  varies strongly.

Run:  python examples/bilateral_denoise.py
"""

import numpy as np

from repro import Boundary, compile_kernel
from repro.data import angiography_image
from repro.filters.bilateral import bilateral_reference, make_bilateral


def main():
    size = 384
    sigma_d, sigma_r = 2, 0.08
    frame = angiography_image(size, size, seed=7, noise_sigma=0.04)

    # --- denoise and check against the NumPy golden reference ----------
    kernel, img_in, img_out = make_bilateral(
        size, size, sigma_d=sigma_d, sigma_r=sigma_r,
        boundary=Boundary.MIRROR, data=frame)
    compiled = compile_kernel(kernel, backend="cuda", device="Tesla C2050")
    report = compiled.execute()
    denoised = img_out.get_data()
    ref = bilateral_reference(frame, sigma_d, sigma_r, Boundary.MIRROR)
    err = np.abs(denoised - ref).max()

    noise_before = np.std(frame - angiography_image(size, size, seed=7,
                                                    noise_sigma=0.0))
    noise_after = np.std(denoised - angiography_image(size, size, seed=7,
                                                      noise_sigma=0.0))
    print(f"bilateral {4*sigma_d+1}x{4*sigma_d+1} on {size}x{size} frame")
    print(f"  selected config: {compiled.options.block}, "
          f"simulated {report.time_ms:.2f} ms on {compiled.device.name}")
    print(f"  residual noise: {noise_before:.4f} -> {noise_after:.4f}")
    print(f"  max abs error vs golden reference: {err:.2e}")
    assert err < 1e-4

    # --- mask vs no-mask (the Listing 1 vs Listing 5 comparison) --------
    for use_mask in (False, True):
        k, _, _ = make_bilateral(size, size, sigma_d=sigma_d,
                                 sigma_r=sigma_r, use_mask=use_mask)
        c = compile_kernel(k, backend="cuda", device="Tesla C2050")
        label = "+Mask (Listing 5)" if use_mask else "no mask (Listing 1)"
        print(f"  {label:<22} modelled "
              f"{c.estimate_time().total_ms:8.3f} ms")

    # --- boundary-mode sensitivity: generated vs manual -----------------
    print("\nboundary-mode sensitivity (modelled ms, 4096x4096, 13x13):")
    from repro.evaluation.variants import (
        BILATERAL_MODES,
        VariantSpec,
        evaluate_bilateral_cell,
    )
    rows = [
        VariantSpec("manual (inline conditionals)", "manual",
                    use_mask=True),
        VariantSpec("generated (9-region dispatch)", "generated",
                    use_mask=True),
    ]
    header = "".join(f"{m.value:>12}" for m in BILATERAL_MODES)
    print(f"{'variant':<32}{header}")
    for variant in rows:
        cells = []
        for mode in BILATERAL_MODES:
            v = evaluate_bilateral_cell("Tesla C2050", "cuda", variant,
                                        mode)
            cells.append(f"{v:>12.1f}" if isinstance(v, float)
                         else f"{v:>12}")
        print(f"{variant.name:<32}" + "".join(cells))


if __name__ == "__main__":
    main()
