"""Digital Subtraction Angiography (DSA) pipeline.

The clinical workflow HIPAcc targets at Siemens: subtract a contrast frame
from a mask frame to isolate vessels, denoise, and normalise for display.
Exercises the full operator taxonomy of the paper's Section I:

* point operators  — AbsDiff (subtraction), Scale (window/level),
* local operators  — median prefilter, bilateral denoising,
* global operators — Min/Max reductions for automatic display windowing,

plus the Section-VIII vectorization path on the AMD device.

Run:  python examples/dsa_pipeline.py
"""

import numpy as np

from repro import (
    Accessor,
    Boundary,
    BoundaryCondition,
    Image,
    IterationSpace,
    MaxReduction,
    MinReduction,
    compile_kernel,
    compile_reduction,
)
from repro.data import angiography_image
from repro.filters.bilateral import BilateralFilter, closeness_mask
from repro.filters.median import Median3x3
from repro.filters.point_ops import AbsDiff, Scale


def main():
    size = 512
    # mask frame (no contrast agent) vs fill frame (vessels opacified)
    mask_frame = angiography_image(size, size, seed=21, contrast=0.0,
                                   noise_sigma=0.03)
    fill_frame = angiography_image(size, size, seed=21, contrast=0.55,
                                   noise_sigma=0.03)

    img_mask = Image(size, size).set_data(mask_frame)
    img_fill = Image(size, size).set_data(fill_frame)

    # 1. subtraction (two-input point operator)
    img_sub = Image(size, size)
    sub = AbsDiff(IterationSpace(img_sub), Accessor(img_mask),
                  Accessor(img_fill))
    t_sub = compile_kernel(sub, device="Tesla C2050").execute().time_ms

    # 2. median prefilter (impulse noise)
    img_med = Image(size, size)
    med = Median3x3(IterationSpace(img_med),
                    Accessor(BoundaryCondition(img_sub, 3, 3,
                                               Boundary.MIRROR)))
    t_med = compile_kernel(med, device="Tesla C2050").execute().time_ms

    # 3. bilateral denoise — vectorized float4 on the AMD device
    img_den = Image(size, size)
    bc = BoundaryCondition(img_med, 9, 9, Boundary.MIRROR)
    bil = BilateralFilter(IterationSpace(img_den), Accessor(bc),
                          closeness_mask(2), 2, 0.08)
    # explicit 32x4 work-group: with the x4 vector width each block
    # covers 128 pixels, leaving a real interior for the vload4 fast path
    compiled = compile_kernel(bil, backend="opencl",
                              device="Radeon HD 5870", vectorize=4,
                              block=(32, 4))
    t_den = compiled.execute().time_ms
    assert "vload4" in compiled.device_code

    # 4. automatic window/level via global reductions
    acc_den = Accessor(img_den)
    space = IterationSpace(img_den)
    lo = compile_reduction(MinReduction(space, acc_den)).execute().value
    hi = compile_reduction(MaxReduction(space, acc_den)).execute().value

    # 5. normalise to [0, 1] for display (point operator with the
    #    reduction results baked in)
    img_disp = Image(size, size)
    scale = Scale(IterationSpace(img_disp), Accessor(img_den),
                  factor=1.0 / max(hi - lo, 1e-6),
                  offset=-lo / max(hi - lo, 1e-6))
    t_disp = compile_kernel(scale, device="Tesla C2050").execute().time_ms

    display = img_disp.get_data()
    vessel_signal = np.percentile(display, 99)
    background = np.percentile(display, 50)
    print(f"DSA pipeline on {size}x{size} frames:")
    print(f"  subtraction           {t_sub:8.3f} ms")
    print(f"  median prefilter      {t_med:8.3f} ms")
    print(f"  bilateral (float4, HD 5870) {t_den:.3f} ms")
    print(f"  display window: [{lo:.4f}, {hi:.4f}] -> [0, 1] "
          f"({t_disp:.3f} ms)")
    print(f"  vessel/background separation: {vessel_signal:.3f} vs "
          f"{background:.3f}")
    assert 0.0 <= display.min() and display.max() <= 1.0 + 1e-5
    assert vessel_signal > background + 0.2


if __name__ == "__main__":
    main()
