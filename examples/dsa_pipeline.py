"""Digital Subtraction Angiography (DSA) pipeline.

The clinical workflow HIPAcc targets at Siemens: subtract a contrast frame
from a mask frame to isolate vessels, denoise, and normalise for display.
Exercises the full operator taxonomy of the paper's Section I:

* point operators  — AbsDiff (subtraction), Scale (window/level),
* local operators  — median prefilter, bilateral denoising,
* global operators — Min/Max reductions for automatic display windowing,

plus the Section-VIII vectorization path on the AMD device.

The kernel chain runs twice: manually (one ``compile_kernel`` per stage)
and as a heterogeneous :class:`repro.PipelineGraph` — the bilateral node
targets the vectorized OpenCL Radeon path while the rest stay on the
CUDA Tesla — with the global reductions evaluated host-side between the
graph phase and the final windowing stage.  Both spellings must produce
identical display pixels.

Run:  python examples/dsa_pipeline.py
"""

import numpy as np

from repro import (
    Accessor,
    Boundary,
    BoundaryCondition,
    CompilationCache,
    Image,
    IterationSpace,
    MaxReduction,
    MinReduction,
    PipelineGraph,
    compile_kernel,
    compile_reduction,
)
from repro.data import angiography_image
from repro.filters.bilateral import BilateralFilter, closeness_mask
from repro.filters.median import Median3x3
from repro.filters.point_ops import AbsDiff, Scale


def build_frontend(size, mask_frame, fill_frame):
    """Subtract -> median -> bilateral over fresh images; returns the
    kernels (with per-stage compile options) and the denoised image."""
    img_mask = Image(size, size, name="mask").set_data(mask_frame)
    img_fill = Image(size, size, name="fill").set_data(fill_frame)
    img_sub = Image(size, size, name="subtracted")
    img_med = Image(size, size, name="median")
    img_den = Image(size, size, name="denoised")

    sub = AbsDiff(IterationSpace(img_sub), Accessor(img_mask),
                  Accessor(img_fill))
    med = Median3x3(IterationSpace(img_med),
                    Accessor(BoundaryCondition(img_sub, 3, 3,
                                               Boundary.MIRROR)))
    # explicit 32x4 work-group: with the x4 vector width each block
    # covers 128 pixels, leaving a real interior for the vload4 fast path
    bil = BilateralFilter(IterationSpace(img_den),
                          Accessor(BoundaryCondition(img_med, 9, 9,
                                                     Boundary.MIRROR)),
                          closeness_mask(2), 2, 0.08)
    stages = [
        (sub, "subtract", dict(backend="cuda", device="Tesla C2050")),
        (med, "median", dict(backend="cuda", device="Tesla C2050")),
        (bil, "bilateral", dict(backend="opencl", device="Radeon HD 5870",
                                vectorize=4, block=(32, 4))),
    ]
    return stages, img_den


def window_level(img_den, size, device="Tesla C2050"):
    """Min/Max reductions + the display windowing Scale kernel."""
    acc_den = Accessor(img_den)
    space = IterationSpace(img_den)
    lo = compile_reduction(MinReduction(space, acc_den)).execute().value
    hi = compile_reduction(MaxReduction(space, acc_den)).execute().value
    img_disp = Image(size, size, name="display")
    scale = Scale(IterationSpace(img_disp), Accessor(img_den),
                  factor=1.0 / max(hi - lo, 1e-6),
                  offset=-lo / max(hi - lo, 1e-6))
    return scale, img_disp, lo, hi


def run_manual(size, mask_frame, fill_frame):
    stages, img_den = build_frontend(size, mask_frame, fill_frame)
    times = {}
    for kernel, name, opts in stages:
        compiled = compile_kernel(kernel, **opts)
        times[name] = compiled.execute().time_ms
        if name == "bilateral":
            assert "vload4" in compiled.device_code
    scale, img_disp, lo, hi = window_level(img_den, size)
    times["window"] = compile_kernel(
        scale, device="Tesla C2050").execute().time_ms
    return img_disp.get_data().copy(), times, lo, hi


def run_graph(size, mask_frame, fill_frame):
    """The same pipeline as a heterogeneous graph + a windowing phase."""
    stages, img_den = build_frontend(size, mask_frame, fill_frame)
    cache = CompilationCache()
    graph = PipelineGraph("dsa-frontend")
    for kernel, name, opts in stages:
        graph.add_kernel(kernel, name=name, **opts)
    graph.mark_output(img_den)
    report = graph.run(cache=cache, workers=2)

    # global reductions happen host-side between the two graph phases
    scale, img_disp, lo, hi = window_level(img_den, size)
    window = PipelineGraph("dsa-window")
    window.add_kernel(scale, name="window", device="Tesla C2050")
    window.mark_output(img_disp)
    window.run(cache=cache)
    return img_disp.get_data().copy(), report, lo, hi


def main():
    size = 512
    # mask frame (no contrast agent) vs fill frame (vessels opacified)
    mask_frame = angiography_image(size, size, seed=21, contrast=0.0,
                                   noise_sigma=0.03)
    fill_frame = angiography_image(size, size, seed=21, contrast=0.55,
                                   noise_sigma=0.03)

    display, times, lo, hi = run_manual(size, mask_frame, fill_frame)
    display_graph, report, lo_g, hi_g = run_graph(size, mask_frame,
                                                  fill_frame)

    vessel_signal = np.percentile(display, 99)
    background = np.percentile(display, 50)
    print(f"DSA pipeline on {size}x{size} frames:")
    print(f"  subtraction           {times['subtract']:8.3f} ms")
    print(f"  median prefilter      {times['median']:8.3f} ms")
    print(f"  bilateral (float4, HD 5870) {times['bilateral']:.3f} ms")
    print(f"  display window: [{lo:.4f}, {hi:.4f}] -> [0, 1] "
          f"({times['window']:.3f} ms)")
    print(f"  vessel/background separation: {vessel_signal:.3f} vs "
          f"{background:.3f}")
    print()
    print("as a heterogeneous pipeline graph:")
    print(report.summary())

    assert (lo, hi) == (lo_g, hi_g), "reduction results diverged"
    assert np.array_equal(display, display_graph), \
        "graph execution diverged from manual chaining"
    print("\ngraph output identical to manual chaining: OK")
    assert 0.0 <= display.min() and display.max() <= 1.0 + 1e-5
    assert vessel_signal > background + 0.2


if __name__ == "__main__":
    main()
