"""Configuration exploration and Algorithm 2 across the device database.

Reproduces the Figure 4 experiment (all legal block configurations for the
bilateral filter on the Tesla C2050) and then runs the Algorithm-2
heuristic on every modelled GPU, showing how the selected configuration and
tiling change with the hardware — the paper's core "device-specific
mapping" point.

Run:  python examples/device_exploration.py
"""

from repro import EVALUATION_DEVICES, get_device
from repro.evaluation.figure4 import figure4_exploration
from repro.mapping.heuristic import select_configuration


def ascii_plot(points, width=64, height=14):
    """Tiny ASCII rendering of the Figure 4 scatter."""
    times = [p.time_ms for p in points]
    threads = [p.threads for p in points]
    t_lo, t_hi = min(times), max(times)
    n_lo, n_hi = min(threads), max(threads)
    grid = [[" "] * width for _ in range(height)]
    for p in points:
        x = int((p.threads - n_lo) / max(n_hi - n_lo, 1) * (width - 1))
        y = int((p.time_ms - t_lo) / max(t_hi - t_lo, 1e-9) * (height - 1))
        grid[height - 1 - y][x] = "o"
    print(f"{t_hi:7.1f} ms ┐")
    for row in grid:
        print("           │" + "".join(row))
    print(f"{t_lo:7.1f} ms ┴" + "─" * width)
    print(f"            {n_lo} … {n_hi} threads per block")


def main():
    print("=== Figure 4: exploration on the Tesla C2050 (13x13 "
          "bilateral, 4096^2) ===")
    result = figure4_exploration()
    ascii_plot(result.points)
    print(f"explored {len(result.points)} configurations")
    print(f"optimum: {result.best.block[0]}x{result.best.block[1]} at "
          f"{result.best.time_ms:.2f} ms")
    print(f"heuristic picked {result.heuristic_block[0]}x"
          f"{result.heuristic_block[1]} at {result.heuristic_ms:.2f} ms "
          f"({result.heuristic_within:.3f}x of optimum)")
    worst = max(p.time_ms for p in result.points)
    print(f"configuration spread: {worst / result.best.time_ms:.2f}x "
          f"between best and worst\n")

    print("=== Algorithm 2 on every device (border handling on) ===")
    print(f"{'device':<18}{'arch':<8}{'block':>9}{'occupancy':>11}"
          f"{'bh threads':>12}")
    for name in EVALUATION_DEVICES + ["GeForce GTX 480",
                                      "GeForce 8800 GTX"]:
        dev = get_device(name)
        sel = select_configuration(dev, regs_per_thread=24,
                                   border_handling=True,
                                   image_size=(4096, 4096),
                                   window=(13, 13))
        print(f"{name:<18}{dev.architecture:<8}"
              f"{sel.block[0]}x{sel.block[1]:<6}"
              f"{sel.occupancy:>9.0%}{sel.boundary_threads:>12,}")


if __name__ == "__main__":
    main()
