#!/usr/bin/env python3
"""Compare freshly generated BENCH_*.json against committed baselines.

The perf-regression sentinel CLI (``repro perf`` is the same logic via
the installed entry point).  Typical CI usage::

    PYTHONPATH=src python benchmarks/bench_native_graph.py --json out/
    PYTHONPATH=src python benchmarks/bench_pipeline_graph.py --json out/
    PYTHONPATH=src python benchmarks/bench_serve.py --json out/
    PYTHONPATH=src python scripts/bench_compare.py \\
        --baseline-dir . --current-dir out --threshold 1.0

Exit status: 0 = no regressions, 1 = regression or schema problem.
All comparison logic lives in :mod:`repro.obs.compare`.
"""

import argparse
import os
import sys

sys.path.insert(0, os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src"))

from repro.obs.compare import (  # noqa: E402
    DEFAULT_BENCHMARKS,
    run_compare,
)


def main(argv=None):
    parser = argparse.ArgumentParser(
        description="perf-regression sentinel over BENCH_*.json")
    parser.add_argument(
        "--baseline-dir", default=".",
        help="directory with committed BENCH_*.json (default: repo root)")
    parser.add_argument(
        "--current-dir", required=True,
        help="directory with freshly generated BENCH_*.json")
    parser.add_argument(
        "--bench", action="append", dest="benches", metavar="NAME",
        help="benchmark name (repeatable; default: "
             f"{', '.join(DEFAULT_BENCHMARKS)})")
    parser.add_argument(
        "--threshold", type=float, default=0.25,
        help="relative regression gate, 0.25 = 25%% worse "
             "(default: %(default)s)")
    parser.add_argument(
        "--stage-threshold", type=float, default=None,
        help="per-stage gate (default: same as --threshold)")
    parser.add_argument(
        "--noise-floor-ms", type=float, default=5.0,
        help="absolute delta below which *_ms changes are noise "
             "(default: %(default)s)")
    parser.add_argument(
        "--json-out", default=None,
        help="also write the machine-readable report here")
    parser.add_argument(
        "--allow-missing", action="store_true",
        help="skip benchmarks whose documents are absent instead of "
             "failing")
    args = parser.parse_args(argv)
    return run_compare(
        baseline_dir=args.baseline_dir,
        current_dir=args.current_dir,
        names=tuple(args.benches) if args.benches else DEFAULT_BENCHMARKS,
        threshold=args.threshold,
        noise_floor_ms=args.noise_floor_ms,
        stage_threshold=args.stage_threshold,
        json_out=args.json_out,
        allow_missing=args.allow_missing,
    )


if __name__ == "__main__":
    raise SystemExit(main())
