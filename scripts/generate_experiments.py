"""Regenerate EXPERIMENTS.md: paper-vs-model for every table and figure.

Run:  python scripts/generate_experiments.py
"""

from __future__ import annotations

import sys

import numpy as np

from repro.evaluation import paper_data
from repro.evaluation.figure4 import figure4_exploration
from repro.evaluation.opencv_cmp import gaussian_table
from repro.evaluation.variants import bilateral_table
from repro.reporting.tables import (
    format_comparison_table,
    marker_agreement,
    relative_errors,
)

TABLE_META = [
    ("II", "Tesla C2050", "cuda"),
    ("III", "Tesla C2050", "opencl"),
    ("IV", "Quadro FX 5800", "cuda"),
    ("V", "Quadro FX 5800", "opencl"),
    ("VI", "Radeon HD 5870", "opencl"),
    ("VII", "Radeon HD 6970", "opencl"),
]


def bilateral_sections():
    out = []
    summary = []
    for num, device, backend in TABLE_META:
        model = bilateral_table(device, backend)
        paper = paper_data.ALL_BILATERAL_TABLES[(device, backend)]
        errs = relative_errors(model, paper, paper_data.MODE_ORDER)
        markers = list(marker_agreement(model, paper,
                                        paper_data.MODE_ORDER))
        out.append(f"### Table {num} — bilateral 13x13, {device}, "
                   f"{backend.upper()}\n")
        out.append("```")
        out.append(format_comparison_table(model, paper,
                                           paper_data.MODE_ORDER))
        out.append("```")
        out.append(f"- mean relative error: **{np.mean(errs):.1%}** "
                   f"(max {np.max(errs):.1%}, {len(errs)} numeric cells)")
        if markers:
            out.append(f"- marker mismatches: {markers}")
        else:
            out.append("- all crash / n-a markers match the paper")
        out.append("")
        summary.append((f"Table {num}", device, backend,
                        float(np.mean(errs)), len(markers)))
    return out, summary


def gaussian_sections():
    out = []
    summary = []
    for num, device in (("VIII", "Tesla C2050"),
                        ("IX", "Quadro FX 5800")):
        for size in (3, 5):
            model = gaussian_table(device, size)
            paper = paper_data.ALL_GAUSSIAN_TABLES[device][size]
            aligned = dict(model)
            if "OpenCL(+Tex)" in paper:
                aligned["OpenCL(+Tex)"] = aligned["OpenCL(+Img)"]
            errs = relative_errors(aligned, paper,
                                   paper_data.GAUSSIAN_MODE_ORDER)
            out.append(f"### Table {num} — Gaussian {size}x{size}, "
                       f"{device}\n")
            out.append("```")
            out.append(format_comparison_table(
                aligned, paper, paper_data.GAUSSIAN_MODE_ORDER))
            out.append("```")
            out.append(f"- mean relative error: **{np.mean(errs):.1%}** "
                       f"({len(errs)} cells)")
            out.append("")
            summary.append((f"Table {num} ({size}x{size})", device,
                            "cuda/opencl", float(np.mean(errs)), 0))
    return out, summary


def figure4_section():
    r = figure4_exploration()
    worst = max(p.time_ms for p in r.points)
    lines = [
        "### Figure 4 — configuration exploration, Tesla C2050\n",
        "| quantity | paper | model |",
        "|---|---|---|",
        f"| explored configurations | \"all valid\" | {len(r.points)} |",
        f"| optimal configuration | 32x6 | "
        f"{r.best.block[0]}x{r.best.block[1]} |",
        f"| optimal time | {paper_data.FIGURE4_OPTIMUM_MS} ms | "
        f"{r.best.time_ms:.2f} ms |",
        f"| worst configuration | ~{paper_data.FIGURE4_WORST_MS:.0f} ms "
        f"(32 threads) | {worst:.2f} ms |",
        f"| heuristic pick | 32x6 (optimal) | "
        f"{r.heuristic_block[0]}x{r.heuristic_block[1]} "
        f"({r.heuristic_within:.3f}x of optimum) |",
        f"| best-to-worst spread | ~2.5x | "
        f"{worst / r.best.time_ms:.2f}x |",
        "",
    ]
    return lines


HEADER = """# EXPERIMENTS — paper vs. model, every table and figure

All numbers regenerate with ``pytest benchmarks/ --benchmark-only`` (per
table) or this file with ``python scripts/generate_experiments.py``.

**Substrate.** The paper measured four real GPUs; this reproduction runs a
mechanisms-based analytical timing model on an abstract hardware model of
the same devices (see DESIGN.md section 2), plus a functional simulator
for outputs.  Absolute milliseconds are therefore model estimates
calibrated per device; the claims the paper makes are *relative*, and all
of them are asserted by the benchmark suite:

1. generated code is near-constant across boundary modes (< 12% spread)
   while manual implementations vary up to ~2x with Constant worst;
2. constant-memory filter masks give ~1.4-1.7x on NVIDIA, muted on AMD
   VLIW;
3. the CUDA texture path helps (esp. uncached GT200); OpenCL image objects
   never beat buffers; hardware boundary handling covers only
   Clamp/Repeat (+Constant 0/1 on OpenCL) — the published "n/a" cells;
4. generated >= best manual; >= 2x over RapidMind; RapidMind's Repeat
   crashes on the Tesla and is ~3x slower on the Quadro; Mirror is n/a
   for RapidMind — all markers reproduced from mechanisms, not lookup;
5. OpenCV's PPT=8 beats PPT=1; OpenCV varies per mode while generated
   stays flat and lands in PPT=1's ballpark;
6. scratchpad staging *slows down* small-window filters (Tables VIII/IX
   +Smem/+Lmem rows);
7. exploration shows a >= 1.8x configuration spread on Fermi with the
   Algorithm 2 heuristic within 10% of optimal (picking the paper's
   32x6);
8. on AMD VLIW, per-mode boundary costs flatten (predication) and the
   mask benefit shrinks — and Section VIII's vectorization gives ~2x
   (bench_ablation_vectorization).

**Known deviations** (documented, not hidden):

* Table III's "+Mask" OpenCL rows run anomalously fast in the paper
  (nearly CUDA speed while the no-mask rows show the full OpenCL gap);
  our SFU-centred model of the OpenCL gap over-prices them by ~40%.
  This is the dominant contribution to Table III's mean error.
* The paper's AMD tables contain erratic outliers it itself calls "not
  predictable" (e.g. *Generated* Repeat at 470 ms on the HD 5870 while
  *Manual* Repeat is 405 ms); a deterministic mechanism model cannot and
  does not reproduce those inversions.
* RapidMind's Constant mode is modelled slightly slower than measured
  (its managed-array bounds path is priced flat at 10 ops/read).

"""


def main(path="EXPERIMENTS.md"):
    bil, bil_summary = bilateral_sections()
    gau, gau_summary = gaussian_sections()
    fig = figure4_section()

    summary_lines = [
        "## Summary\n",
        "| experiment | device | backend | mean rel. error | "
        "marker mismatches |",
        "|---|---|---|---|---|",
    ]
    for name, device, backend, err, mism in bil_summary + gau_summary:
        summary_lines.append(
            f"| {name} | {device} | {backend} | {err:.1%} | {mism} |")
    summary_lines.append("")

    body = [HEADER] + summary_lines + \
        ["## Bilateral-filter tables (II-VII)\n"] + bil + \
        ["## Gaussian / OpenCV tables (VIII-IX)\n"] + gau + \
        ["## Figure 4\n"] + fig + [
        "## Section VI-C — generated-code size\n",
        "The paper: 317 CUDA lines from a 16-line DSL kernel.  Our "
        "generated bilateral (9 border variants, texture path) is "
        "asserted in `tests/test_backends_codegen.py::"
        "TestGeneratedCodeSize` to land in the same regime "
        "(150-700 lines from a <= 20-line kernel body).\n",
    ]
    text = "\n".join(body)
    with open(path, "w") as fh:
        fh.write(text)
    print(f"wrote {path} ({len(text.splitlines())} lines)")


if __name__ == "__main__":
    main(*sys.argv[1:])
