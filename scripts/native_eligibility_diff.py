#!/usr/bin/env python
"""Native-tier eligibility diff: prove-based gate vs syntactic whitelist.

The native graph tier admits a node when ``prove_ineligibility`` (the
abstract interpreter, :mod:`repro.lint.absint`) can show its C lowering
is byte-identical to the simulator.  The older purely syntactic
``whitelist_ineligibility`` survives as the fallback and as the CI
baseline: the prover may only ever *widen* eligibility, never shrink
it.  CI runs::

    PYTHONPATH=src python scripts/native_eligibility_diff.py

which compiles every builtin pipeline (the CLI edge chain plus the
serve planner's named pipelines), counts eligible nodes under both
gates, prints the per-node diff, and exits non-zero if

* any node is whitelist-eligible but prove-ineligible (a regression:
  the prover must subsume the whitelist), or
* no node is prove-eligible beyond the whitelist (the gap the abstract
  interpreter exists to close must stay demonstrated).
"""

from __future__ import annotations

import sys

import numpy as np

from repro.cli import build_edge_pipeline
from repro.graph.scheduler import compile_graph
from repro.runtime.native_graph import (
    native_ineligibility,
    whitelist_ineligibility,
)
from repro.serve.planner import PIPELINES, plan_request


def builtin_graphs():
    """(label, compiled PipelineGraph) for every builtin pipeline."""
    out = []
    g, _ = build_edge_pipeline(48, "Tesla C2050", "cuda")
    out.append(("cli:edge", g))
    frame = np.linspace(0.0, 1.0, 48 * 48, dtype=np.float32).reshape(48, 48)
    for name in sorted(PIPELINES):
        plan = plan_request({"pipeline": name}, frame)
        out.append((f"serve:{name}", plan.graph))
    for _, g in out:
        compile_graph(g, cache=False, workers=1)
    return out


def main() -> int:
    rows = []
    for label, graph in builtin_graphs():
        for node in graph.nodes:
            wl = whitelist_ineligibility(node)
            pr = native_ineligibility(node)
            rows.append((label, node.name, wl, pr))

    wl_count = sum(1 for *_x, wl, _pr in rows if wl is None)
    pr_count = sum(1 for *_x, _wl, pr in rows if pr is None)
    regressions = [r for r in rows if r[2] is None and r[3] is not None]
    widened = [r for r in rows if r[2] is not None and r[3] is None]

    print(f"{'pipeline':<14} {'node':<28} whitelist  prove")
    for label, name, wl, pr in rows:
        print(f"{label:<14} {name:<28} "
              f"{'ok' if wl is None else 'NO':<9}  "
              f"{'ok' if pr is None else 'NO'}")
        if wl is not None:
            print(f"{'':<14}   whitelist: {wl}")
        if pr is not None:
            print(f"{'':<14}   prove:     {pr}")
    print(f"\neligible nodes: whitelist {wl_count}/{len(rows)}, "
          f"prove {pr_count}/{len(rows)} "
          f"(+{len(widened)} widened, -{len(regressions)} regressed)")

    status = 0
    if regressions:
        for label, name, _wl, pr in regressions:
            print(f"REGRESSION: {label}/{name} whitelist-eligible but "
                  f"prove-rejected: {pr}", file=sys.stderr)
        status = 1
    if not widened:
        print("REGRESSION: no node is prove-eligible beyond the whitelist "
              "(expected e.g. serve:enhance gamma=2.0)", file=sys.stderr)
        status = 1
    return status


if __name__ == "__main__":
    sys.exit(main())
