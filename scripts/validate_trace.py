#!/usr/bin/env python
"""Validate exported Chrome-trace documents against the repro schema.

CI runs ``repro trace`` over one builtin filter and one graph example,
then feeds the exported JSON through this script::

    PYTHONPATH=src python scripts/validate_trace.py trace1.json trace2.json

Exit status is non-zero if any document fails
:func:`repro.obs.validate_chrome_trace` (structure, span-id uniqueness,
parent references and interval containment, per-thread stack
discipline), the embedded metrics snapshot carries keys outside the
documented namespaces (:func:`repro.obs.validate_metric_keys`), or the
extra minimum-coverage checks below.
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.obs import validate_chrome_trace, validate_metric_keys


def check_file(path: str, require: list) -> list:
    """Return the list of problems found in the trace at *path*."""
    try:
        with open(path, "r", encoding="utf-8") as fh:
            doc = json.load(fh)
    except (OSError, ValueError) as exc:
        return [f"unreadable: {exc}"]
    problems = validate_chrome_trace(doc)
    names = {ev.get("name") for ev in doc.get("traceEvents", ())
             if isinstance(ev, dict) and ev.get("ph") == "X"}
    for name in require:
        if name not in names:
            problems.append(f"required span {name!r} absent")
    metrics = doc.get("otherData", {}).get("metrics")
    if metrics is None:
        problems.append("otherData.metrics missing")
    elif isinstance(metrics, dict):
        # {source: {key: value}}: every key of every source must live
        # in a documented namespace — an undocumented metric in an
        # export is a schema break, not an enrichment
        for source, keys in metrics.items():
            if not isinstance(keys, dict):
                problems.append(
                    f"metrics source {source!r} is not an object")
                continue
            problems.extend(f"metrics[{source!r}]: {p}"
                            for p in validate_metric_keys(keys))
    else:
        problems.append("otherData.metrics is not an object")
    return problems


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("files", nargs="+",
                        help="Chrome-trace JSON documents to validate")
    parser.add_argument("--require", action="append", default=[],
                        help="span name that must appear (repeatable)")
    args = parser.parse_args(argv)

    failed = False
    for path in args.files:
        problems = check_file(path, args.require)
        if problems:
            failed = True
            print(f"{path}: INVALID")
            for p in problems:
                print(f"  - {p}")
        else:
            print(f"{path}: ok")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
