"""Multi-pixel mapping (PPT) code generation — the OpenCV optimization
("OpenCV maps multiple output pixels to the same thread ... to minimize
scheduling overheads", Section VI-A.3) as a generated-code option."""

import numpy as np
import pytest

from repro import Boundary, CodegenOptions, compile_kernel
from repro.backends import generate
from repro.errors import CodegenError
from repro.filters.gaussian import gaussian_reference, make_gaussian
from repro.frontend import parse_kernel
from repro.ir import typecheck_kernel

from .helpers import (
    IterationSpace,
    MaskConvolution,
    accessor_for,
    box_mask,
    build_image_pair,
    random_image,
)


def _gen(ppt=4, backend="cuda", geometry=(4096, 4096), **opts):
    src, dst = build_image_pair(32, 32)
    k = MaskConvolution(IterationSpace(dst),
                        accessor_for(src, 3, Boundary.CLAMP),
                        box_mask(3), 1, 1)
    ir = typecheck_kernel(parse_kernel(k))
    return generate(ir, CodegenOptions(backend=backend,
                                       pixels_per_thread=ppt,
                                       block=(32, 2), **opts),
                    launch_geometry=geometry)


class TestCodegen:
    @pytest.mark.parametrize("backend", ["cuda", "opencl"])
    def test_ppt_loop_emitted(self, backend):
        code = _gen(backend=backend).device_code
        assert "for (int _ppt = 0; _ppt < 4; ++_ppt)" in code
        assert "gid_y_base" in code
        assert code.count("{") == code.count("}")

    def test_ppt1_unchanged(self):
        code = _gen(ppt=1).device_code
        assert "_ppt" not in code
        assert "const int gid_y =" in code

    def test_guard_uses_continue_inside_loop(self):
        code = _gen().device_code
        # hi-side regions guard per pixel, not per thread
        assert "continue;" in code

    def test_region_layout_uses_effective_rows(self):
        # block (32,2) x ppt 4 = 8 pixel rows per block
        src = _gen()
        # 3x3 window (half 1): one block row guards the top
        assert "#define BH_Y_LO 1" in src.device_code

    def test_smem_combination_rejected(self):
        with pytest.raises(CodegenError, match="1:1"):
            CodegenOptions(backend="cuda", pixels_per_thread=4,
                           use_smem=True).validate()

    def test_invalid_ppt(self):
        with pytest.raises(CodegenError):
            CodegenOptions(backend="cuda", pixels_per_thread=0).validate()


class TestFunctional:
    @pytest.mark.parametrize("mode", [Boundary.CLAMP, Boundary.MIRROR,
                                      Boundary.CONSTANT])
    def test_matches_reference(self, mode):
        data = random_image(48, 40, seed=1)
        k, _, out = make_gaussian(48, 40, size=3, boundary=mode,
                                  data=data)
        compile_kernel(k, backend="cuda", pixels_per_thread=8,
                       block=(16, 2), use_texture=False).execute()
        ref = gaussian_reference(data, 3, boundary=mode)
        np.testing.assert_allclose(out.get_data(), ref, atol=1e-6)

    def test_timing_amortisation(self):
        """PPT must reduce modelled time for small filters (the whole
        point of the OpenCV mapping)."""
        data = random_image(64, 64, seed=2)
        times = {}
        for ppt in (1, 8):
            k, _, _ = make_gaussian(4096, 4096, size=3)
            c = compile_kernel(k, backend="cuda", pixels_per_thread=ppt,
                               block=(32, 4), use_texture=False)
            times[ppt] = c.estimate_time().total_ms
        assert times[8] < times[1]
