"""Measurement-driven auto-tuning: search, database, compile consult.

Covers the tuner subsystem (docs/TUNING.md) end to end:

* the :class:`~repro.mapping.optdb.TunedDatabase` store — round-trip
  persistence, atomic rewrite, corrupt/stale-store healing, lookup
  fallback semantics;
* :func:`~repro.mapping.tuner.tune_kernel` — the heuristic seed
  guarantee (tuned never worse on the measured signal), budget
  enforcement, pruning, signal selection;
* the compile-driver consult — a second compile adopts the persisted
  winner with **zero** new exploration trials, asserted through the
  ``tuner.*`` metrics counters, and the cache key distinguishes tuned
  from explicit and heuristic compiles;
* the Figure-4 reporting regression — a heuristic choice missing from
  the explored points must be scored directly, never silently replaced
  by the optimum's time.
"""

import json
import threading

import pytest

from repro import compile_kernel, get_device
from repro.cache.key import pristine_ir_digest
from repro.errors import LaunchError
from repro.mapping.optdb import (
    TUNED_FORMAT_VERSION,
    OptimizationDatabase,
    OptimizationEntry,
    TunedDatabase,
    TunedEntry,
    default_database,
    default_tuned_database,
    fresh_entry,
    set_default_tuned_database,
)
from repro.mapping.tuner import TUNER_STATS, exhaustive_best, tune_kernel
from repro.obs import get_registry

from .helpers import build_convolution


@pytest.fixture(autouse=True)
def _isolate_default_tuned_store():
    """Tests must never leak winners into the process-wide store (the
    compile driver consults it for every block-less compile)."""
    set_default_tuned_database(TunedDatabase())
    yield
    set_default_tuned_database(None)


def _entry(fp="fp0", device="Tesla C2050", backend="cuda", engine="sim",
           block=(16, 8), score=1.5, signal="model", trials=7):
    return fresh_entry(fp, device, backend, engine, block, score,
                       signal, trials)


# --------------------------------------------------------------------------
# TunedDatabase store semantics
# --------------------------------------------------------------------------

class TestTunedDatabase:
    def test_memory_record_and_lookup(self):
        db = TunedDatabase()
        db.record(_entry())
        hit = db.lookup("fp0", "Tesla C2050", "cuda", "sim")
        assert hit is not None and hit.block == (16, 8)
        assert db.lookup("other", "Tesla C2050", "cuda", "sim") is None
        assert db.lookup("fp0", "GeForce GTX 680", "cuda", "sim") is None

    def test_record_replaces_previous_winner(self):
        db = TunedDatabase()
        db.record(_entry(block=(16, 8)))
        db.record(_entry(block=(8, 12), score=1.2))
        assert len(db) == 1
        assert db.lookup("fp0", "Tesla C2050", "cuda").block == (8, 12)

    def test_exact_engine_wins_over_fallback(self):
        db = TunedDatabase()
        db.record(_entry(engine="sim", block=(32, 4)))
        db.record(_entry(engine="native", block=(8, 12)))
        assert db.lookup("fp0", "Tesla C2050", "cuda",
                         "sim").block == (32, 4)
        assert db.lookup("fp0", "Tesla C2050", "cuda",
                         "native").block == (8, 12)

    def test_cross_engine_fallback_deterministic(self):
        # an engine with no entry of its own borrows the other engine's
        # winner, independent of insertion order (sorted fallback)
        forward, backward = TunedDatabase(), TunedDatabase()
        forward.record(_entry(engine="native", block=(8, 12)))
        backward.record(_entry(engine="native", block=(8, 12)))
        for store in (forward, backward):
            hit = store.lookup("fp0", "Tesla C2050", "cuda", "sim")
            assert hit is not None and hit.engine == "native"
            assert hit.block == (8, 12)

    def test_round_trip_persistence(self, tmp_path):
        path = str(tmp_path / "optdb.json")
        db = TunedDatabase(path)
        db.record(_entry())
        db.record(_entry(fp="fp1", engine="native", block=(8, 12)))

        reloaded = TunedDatabase(path)
        assert len(reloaded) == 2
        assert reloaded.healed == 0
        hit = reloaded.lookup("fp1", "Tesla C2050", "cuda", "native")
        assert hit is not None and hit.block == (8, 12)
        assert hit.trials == 7 and hit.signal == "model"
        # entries() is canonically ordered regardless of insert order
        assert [e.key for e in reloaded.entries()] == \
            sorted(e.key for e in db.entries())

    def test_store_document_shape(self, tmp_path):
        path = str(tmp_path / "optdb.json")
        TunedDatabase(path).record(_entry())
        with open(path, encoding="utf-8") as fh:
            doc = json.load(fh)
        assert doc["format"] == TUNED_FORMAT_VERSION
        assert isinstance(doc["entries"], list) and len(doc["entries"]) == 1
        assert doc["entries"][0]["block"] == [16, 8]

    def test_corrupt_store_heals_as_miss(self, tmp_path):
        path = str(tmp_path / "optdb.json")
        path_obj = tmp_path / "optdb.json"
        path_obj.write_text("{not json", encoding="utf-8")
        db = TunedDatabase(path)
        assert len(db) == 0 and db.healed == 1
        assert db.lookup("fp0", "Tesla C2050", "cuda") is None
        # the next record rewrites a clean, loadable store
        db.record(_entry())
        assert len(TunedDatabase(path)) == 1

    def test_stale_format_version_heals_as_miss(self, tmp_path):
        path = str(tmp_path / "optdb.json")
        doc = {"format": TUNED_FORMAT_VERSION + 1,
               "entries": [_entry().to_dict()]}
        (tmp_path / "optdb.json").write_text(json.dumps(doc),
                                             encoding="utf-8")
        db = TunedDatabase(path)
        assert len(db) == 0 and db.healed == 1

    def test_malformed_entries_skipped_individually(self, tmp_path):
        path = str(tmp_path / "optdb.json")
        doc = {"format": TUNED_FORMAT_VERSION, "entries": [
            _entry().to_dict(),
            {"fingerprint": "fp1"},                    # missing fields
            dict(_entry(fp="fp2").to_dict(), block=[0, 8]),   # bad block
            _entry(fp="fp3").to_dict(),
        ]}
        (tmp_path / "optdb.json").write_text(json.dumps(doc),
                                             encoding="utf-8")
        db = TunedDatabase(path)
        assert len(db) == 2            # the two well-formed entries
        assert db.healed == 2          # exactly the bad ones dropped
        assert db.lookup("fp3", "Tesla C2050", "cuda") is not None

    def test_from_dict_rejects_malformed(self):
        good = _entry().to_dict()
        for mutate in (
            lambda d: d.pop("fingerprint"),
            lambda d: d.update(block=[32]),
            lambda d: d.update(block=["x", 4]),
            lambda d: d.update(score_ms=-1.0),
            lambda d: d.update(fingerprint=""),
        ):
            raw = dict(good)
            mutate(raw)
            with pytest.raises(ValueError):
                TunedEntry.from_dict(raw)
        with pytest.raises(ValueError):
            TunedEntry.from_dict("not a dict")

    def test_default_tuned_database_honors_env(self, tmp_path,
                                               monkeypatch):
        path = str(tmp_path / "store.json")
        TunedDatabase(path).record(_entry())
        monkeypatch.setenv("REPRO_OPTDB_PATH", path)
        db = default_tuned_database(rebuild=True)
        try:
            assert db.path == path and len(db) == 1
        finally:
            set_default_tuned_database(None)


# --------------------------------------------------------------------------
# Paper optimization database (Section V-B) regression coverage
# --------------------------------------------------------------------------

class TestOptimizationDatabaseFallback:
    def test_same_architecture_fallback_is_sorted(self):
        """Two same-architecture entries: the fallback must be the
        sorted-first device regardless of insertion order."""
        import dataclasses

        from repro.hwmodel.database import DEVICES

        arch = get_device("Tesla C2050").architecture
        fermi = sorted(n for n, d in DEVICES.items()
                       if d.architecture == arch)
        assert len(fermi) >= 2, "need two same-architecture devices"
        a, b = fermi[:2]

        def entry(name):
            return OptimizationEntry(device=name, backend="cuda",
                                     padding_bytes=128,
                                     texture_beneficial=(name == a),
                                     smem_beneficial=True,
                                     constant_mask_static=True)

        phantom = dataclasses.replace(get_device("Tesla C2050"),
                                      name="Phantom Fermi")

        forward, backward = OptimizationDatabase(), OptimizationDatabase()
        forward.add(entry(a)), forward.add(entry(b))
        backward.add(entry(b)), backward.add(entry(a))
        hit_f = forward.lookup(phantom, "cuda")
        hit_b = backward.lookup(phantom, "cuda")
        assert hit_f == hit_b
        assert hit_f.device == a

    def test_default_database_single_instance_under_race(self):
        """Racing first callers observe one complete database."""
        default_database(rebuild=True)        # drop any cached instance
        seen = []
        barrier = threading.Barrier(4)

        def grab():
            barrier.wait()
            seen.append(default_database())

        threads = [threading.Thread(target=grab) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len({id(db) for db in seen}) == 1
        assert len(seen[0]) > 0


# --------------------------------------------------------------------------
# tune_kernel: the search itself
# --------------------------------------------------------------------------

class TestTuneKernel:
    def test_tuned_never_worse_than_heuristic(self):
        k = build_convolution(size=48)
        result = tune_kernel(k, device="Tesla C2050", signal="model",
                             budget=10, db=False)
        assert result.best_ms <= result.heuristic_ms + 1e-9
        assert result.speedup_over_heuristic >= 1.0
        assert result.heuristic_block in result.measurements

    def test_budget_caps_trials_and_prunes(self):
        k = build_convolution(size=48)
        result = tune_kernel(k, device="Tesla C2050", signal="model",
                             budget=6, db=False)
        assert result.trials <= 6
        assert result.pruned >= result.candidates - 6
        assert len(result.measurements) == result.trials

    def test_close_to_exhaustive_on_model_signal(self):
        k = build_convolution(size=48)
        result = tune_kernel(k, device="Tesla C2050", signal="model",
                             budget=16, db=False)
        _, ex_ms = exhaustive_best(result)
        # may legitimately beat the grid optimum (off-grid hill-climb),
        # must not drift far above it
        assert result.best_ms <= ex_ms * 1.05

    def test_records_winner_into_database(self):
        db = TunedDatabase()
        k = build_convolution(size=48)
        result = tune_kernel(k, device="Tesla C2050", signal="model",
                             budget=8, db=db)
        hit = db.lookup(result.fingerprint, result.device,
                        result.backend, result.engine)
        assert hit is not None
        assert hit.block == result.best_block
        assert hit.trials == result.trials
        assert hit.signal == "model"

    def test_db_false_and_persist_false_skip_recording(self):
        k = build_convolution(size=48)
        before = TUNER_STATS.snapshot()
        r1 = tune_kernel(k, device="Tesla C2050", signal="model",
                         budget=6, db=False)
        r2 = tune_kernel(k, device="Tesla C2050", signal="model",
                         budget=6, persist=False)
        after = TUNER_STATS.snapshot()
        assert after["records"] == before["records"]    # nothing written
        assert after["sessions"] == before["sessions"] + 2
        assert r1.entry is not None and r2.entry is not None
        assert len(default_tuned_database()) == 0

    def test_sim_signal_smoke(self):
        k = build_convolution(size=16)
        result = tune_kernel(k, device="Tesla C2050", engine="sim",
                             budget=3, seed_top=1, repeats=1, db=False)
        assert result.signal == "sim"
        assert result.trials <= 3
        assert result.best_ms > 0

    def test_unknown_engine_and_signal_rejected(self):
        k = build_convolution(size=16)
        with pytest.raises(ValueError):
            tune_kernel(k, engine="turbo", db=False)
        with pytest.raises(ValueError):
            tune_kernel(k, signal="vibes", db=False)

    def test_metrics_exported_through_registry(self):
        k = build_convolution(size=48)
        tune_kernel(k, device="Tesla C2050", signal="model", budget=4,
                    db=False)
        snap = get_registry().snapshot()
        tuner = snap.get("tuner", {})
        assert tuner.get("tuner.sessions", 0) >= 1
        assert tuner.get("tuner.trials", 0) >= 1


# --------------------------------------------------------------------------
# The compile-driver consult
# --------------------------------------------------------------------------

class TestCompileConsultsTunedDatabase:
    def test_second_compile_adopts_winner_with_zero_trials(self):
        db = TunedDatabase()
        k = build_convolution(size=48)
        result = tune_kernel(k, device="Tesla C2050", signal="model",
                             budget=10, db=db)

        before = TUNER_STATS.snapshot()
        compiled = compile_kernel(build_convolution(size=48),
                                  device="Tesla C2050", tuned=db)
        after = TUNER_STATS.snapshot()

        assert tuple(compiled.options.block) == result.best_block
        assert after["trials"] - before["trials"] == 0
        assert after["sessions"] - before["sessions"] == 0
        assert after["lookups"] - before["lookups"] == 1
        assert after["hits"] - before["hits"] == 1

    def test_default_store_consulted_without_explicit_db(self):
        k = build_convolution(size=48)
        result = tune_kernel(k, device="Tesla C2050", signal="model",
                             budget=10)        # records into the default
        compiled = compile_kernel(build_convolution(size=48),
                                  device="Tesla C2050")
        assert tuple(compiled.options.block) == result.best_block

    def test_tuned_false_disables_consult(self):
        k = build_convolution(size=48)
        tune_kernel(k, device="Tesla C2050", signal="model", budget=10)
        before = TUNER_STATS.snapshot()
        compiled = compile_kernel(build_convolution(size=48),
                                  device="Tesla C2050", tuned=False)
        after = TUNER_STATS.snapshot()
        assert after["lookups"] == before["lookups"]
        # Algorithm 2's untainted choice
        baseline = compile_kernel(build_convolution(size=48),
                                  device="Tesla C2050", tuned=False)
        assert compiled.options.block == baseline.options.block

    def test_explicit_block_bypasses_consult(self):
        db = TunedDatabase()
        k = build_convolution(size=48)
        tune_kernel(k, device="Tesla C2050", signal="model", budget=10,
                    db=db)
        before = TUNER_STATS.snapshot()
        compiled = compile_kernel(build_convolution(size=48),
                                  device="Tesla C2050", block=(32, 2),
                                  tuned=db)
        after = TUNER_STATS.snapshot()
        assert after["lookups"] == before["lookups"]
        assert tuple(compiled.options.block) == (32, 2)

    def test_other_device_misses(self):
        db = TunedDatabase()
        k = build_convolution(size=48)
        tune_kernel(k, device="Tesla C2050", signal="model", budget=10,
                    db=db)
        before = TUNER_STATS.snapshot()
        compile_kernel(build_convolution(size=48), device="quadro",
                       tuned=db)
        after = TUNER_STATS.snapshot()
        assert after["lookups"] - before["lookups"] == 1
        assert after["misses"] - before["misses"] == 1

    def test_tuned_compile_caches_under_distinct_key(self):
        """A tuned compile and an explicit-block compile resolving the
        same block must not share a cache entry — their select paths
        differ (the tuned path re-validates and can fall back)."""
        from repro import CompilationCache

        db = TunedDatabase()
        k = build_convolution(size=48)
        result = tune_kernel(k, device="Tesla C2050", signal="model",
                             budget=10, db=db)
        cache = CompilationCache()
        compile_kernel(build_convolution(size=48), device="Tesla C2050",
                       tuned=db, cache=cache)
        compile_kernel(build_convolution(size=48), device="Tesla C2050",
                       block=result.best_block, tuned=False, cache=cache)
        compile_kernel(build_convolution(size=48), device="Tesla C2050",
                       tuned=False, cache=cache)
        assert cache.stats.misses == 3      # three distinct keys

    def test_fingerprint_stable_across_compiles(self):
        c1 = compile_kernel(build_convolution(size=48), tuned=False)
        c2 = compile_kernel(build_convolution(size=48), tuned=False)
        assert pristine_ir_digest(c1.ir) == pristine_ir_digest(c2.ir)


# --------------------------------------------------------------------------
# Figure-4 reporting regression (the silent-substitution bug)
# --------------------------------------------------------------------------

class TestFigure4HeuristicGap:
    def test_missing_chosen_block_is_scored_not_substituted(self,
                                                            monkeypatch):
        """When the heuristic's chosen block is absent from the explored
        points, figure4_exploration used to report best.time_ms as the
        heuristic's time — heuristic_within == 1.0 exactly when the
        result was least trustworthy.  The chosen block must be scored
        directly, yielding an honest ratio > 1.0 for a suboptimal
        choice."""
        from repro.evaluation import figure4 as fig4

        probe = fig4.figure4_exploration(width=256, height=256)
        # pick a genuinely suboptimal explored block, then hide it from
        # the walk so the old code path would have substituted
        worst = max(probe.points, key=lambda p: p.time_ms)
        assert worst.time_ms > probe.best.time_ms

        real_explore = fig4.explore_configurations

        def filtered_explore(*args, **kwargs):
            pts = real_explore(*args, **kwargs)
            return [p for p in pts if p.block != worst.block]

        class FakeSelection:
            block = worst.block

        monkeypatch.setattr(fig4, "explore_configurations",
                            filtered_explore)
        monkeypatch.setattr(fig4, "select_configuration",
                            lambda *a, **k: FakeSelection())

        result = fig4.figure4_exploration(width=256, height=256)
        assert result.heuristic_block == worst.block
        assert all(p.block != worst.block for p in result.points)
        assert result.heuristic_ms == pytest.approx(worst.time_ms)
        assert result.heuristic_within > 1.0      # the honest report

    def test_unlaunchable_chosen_block_raises(self, monkeypatch):
        """A chosen block that cannot launch at all must surface as
        LaunchError, not masquerade as the optimum."""
        from repro.evaluation import figure4 as fig4

        class FakeSelection:
            block = (1024, 1024)       # beyond any device's limits

        monkeypatch.setattr(fig4, "select_configuration",
                            lambda *a, **k: FakeSelection())
        with pytest.raises(LaunchError):
            fig4.figure4_exploration(width=256, height=256)
