"""Vectorized OpenCL code generation (paper Section VIII).

"we are looking into vectorization for graphics cards from AMD ... First
manual vectorization shows that the performance improves significantly."
The vectorize option emits floatN kernels: vloadN in interior regions,
per-lane scalarised boundary-adjusted reads at the borders.
"""

import numpy as np
import pytest

from repro import Boundary, CodegenOptions, compile_kernel
from repro.backends import generate
from repro.errors import CodegenError
from repro.evaluation.variants import _bilateral_ir
from repro.filters.gaussian import gaussian_reference, make_gaussian
from repro.frontend import parse_kernel
from repro.hwmodel import get_device
from repro.ir import typecheck_kernel
from repro.sim.timing import LaunchSpec, estimate_time

from .helpers import (
    IterationSpace,
    PositionKernel,
    accessor_for,
    build_image_pair,
    random_image,
)


def _gen_vec(vec=4, mode="clamp", geometry=(4096, 4096), **opts):
    ir = _bilateral_ir(True, mode, 3, 5.0)
    options = CodegenOptions(backend="opencl", vectorize=vec,
                             block=(64, 1), **opts)
    return generate(ir, options, launch_geometry=geometry)


class TestVectorCodegen:
    def test_interior_uses_vloadN(self):
        code = _gen_vec().device_code
        interior = code.split("else {  // NO_BH")[1]
        assert "vload4(0, input +" in interior
        assert "(float4)(" not in interior.split("vstore4")[0]

    def test_borders_scalarise_with_adjustment(self):
        code = _gen_vec().device_code
        tl = code.split("// TL_BH")[1].split("// T_BH")[0]
        assert "(float4)(" in tl
        assert "bh_clamp_lo" in tl

    def test_output_uses_vstoreN(self):
        code = _gen_vec().device_code
        assert "vstore4(" in code

    def test_locals_become_vector_types(self):
        code = _gen_vec().device_code
        assert "float4 d = " in code
        assert "float4 s = " in code
        # uniform scalars (mask coefficient) stay scalar
        assert "float c = _constcmask" in code

    def test_gid_scaled_by_width(self):
        code = _gen_vec().device_code
        assert "* 4 + IS_offset_x" in code

    def test_width_2_and_8(self):
        for vec in (2, 8):
            code = _gen_vec(vec=vec).device_code
            assert f"vload{vec}(" in code
            assert f"vstore{vec}(" in code

    def test_constant_mode_per_lane_predicates(self):
        code = _gen_vec(mode="constant").device_code
        tl = code.split("// TL_BH")[1].split("// T_BH")[0]
        assert "? 0.0f :" in tl

    def test_region_layout_uses_effective_block(self):
        # 64 threads x vec 4 = 256 pixels per block in x
        src = _gen_vec()
        assert "#define BH_X_LO 1" in src.device_code


class TestVectorValidation:
    def test_cuda_rejected(self):
        with pytest.raises(CodegenError, match="OpenCL"):
            CodegenOptions(backend="cuda", vectorize=4).validate()

    def test_bad_width_rejected(self):
        with pytest.raises(CodegenError, match="vector width"):
            CodegenOptions(backend="opencl", vectorize=3).validate()

    def test_smem_combination_rejected(self):
        with pytest.raises(CodegenError, match="scratchpad"):
            CodegenOptions(backend="opencl", vectorize=4,
                           use_smem=True).validate()

    def test_image_objects_rejected(self):
        with pytest.raises(CodegenError, match="buffers"):
            CodegenOptions(backend="opencl", vectorize=4,
                           use_texture=True).validate()

    def test_indivisible_width_rejected(self):
        with pytest.raises(CodegenError, match="divisible"):
            _gen_vec(geometry=(4094, 4096))

    def test_position_queries_rejected(self):
        src, dst = build_image_pair()
        k = PositionKernel(IterationSpace(dst), accessor_for(src))
        ir = typecheck_kernel(parse_kernel(k))
        with pytest.raises(CodegenError, match="x\\(\\)/y\\(\\)"):
            generate(ir, CodegenOptions(backend="opencl", vectorize=4),
                     launch_geometry=(16, 16))


class TestVectorExecution:
    @pytest.mark.parametrize("mode", [Boundary.CLAMP, Boundary.MIRROR,
                                      Boundary.REPEAT])
    def test_functional_identical_to_scalar(self, mode):
        data = random_image(64, 48, seed=1)
        k, _, out = make_gaussian(64, 48, size=5, boundary=mode,
                                  data=data)
        compiled = compile_kernel(k, backend="opencl", device="hd5870",
                                  vectorize=4)
        compiled.execute()
        ref = gaussian_reference(data, 5, boundary=mode)
        np.testing.assert_allclose(out.get_data(), ref, atol=1e-5)

    def test_compile_defaults_avoid_images(self):
        data = random_image(64, 64, seed=2)
        k, _, _ = make_gaussian(64, 64, size=3, data=data)
        compiled = compile_kernel(k, backend="opencl", device="hd5870",
                                  vectorize=4)
        assert not compiled.options.use_texture
        assert not compiled.options.use_smem


class TestVectorTiming:
    def _ms(self, device, vec):
        from repro.backends.base import BorderMode, MaskMemory
        from repro.ir.analysis import InstructionMix

        mix = InstructionMix(alu=3200, sfu=2100, global_reads=170,
                             mask_reads=169, branches=28,
                             reads_by_accessor={"input": 170})
        spec = LaunchSpec(
            device=get_device(device), backend="opencl",
            width=4096, height=4096, block=(64, 2), window=(13, 13),
            mix=mix, boundary_mode=Boundary.CLAMP,
            border=BorderMode.SPECIALIZED,
            mask_memory=MaskMemory.CONSTANT,
            vector_width=vec, regs_per_thread=24)
        return estimate_time(spec).total_ms

    def test_significant_speedup_on_vliw(self):
        """The Section VIII observation."""
        for device in ("hd5870", "hd6970"):
            speedup = self._ms(device, 1) / self._ms(device, 4)
            assert speedup > 1.6, (device, speedup)

    def test_no_speedup_on_scalar_simt(self):
        speedup = self._ms("tesla", 1) / self._ms("tesla", 4)
        assert 0.9 < speedup < 1.15

    def test_wider_vectors_saturate(self):
        v4 = self._ms("hd5870", 4)
        v8 = self._ms("hd5870", 8)
        assert v8 <= v4 * 1.02         # lanes already full at width 4-5
