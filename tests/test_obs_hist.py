"""Tests for the telemetry layer: histograms (:mod:`repro.obs.hist`),
structured logging (:mod:`repro.obs.log`) and Prometheus exposition
(:mod:`repro.obs.prom`).

The two contracts that matter most:

* **merge exactness** — per-thread histograms merged together must be
  *bit-identical* to one histogram that saw every value, because the
  bucket index is a pure function of the value (this is what makes
  concurrent recording trustworthy);
* **golden Prometheus output** — the exposition rendering is consumed
  by external scrapers, so its exact text for a fixed snapshot is
  pinned.
"""

from __future__ import annotations

import io
import json
import math
import threading

import numpy as np
import pytest

from repro.obs.hist import (
    GROWTH,
    Histogram,
    HistogramSet,
    bucket_bounds,
    bucket_index,
    percentiles,
)
from repro.obs.log import EVENTS, EventLog, log_event, logging_to
from repro.obs.prom import prom_name, render_prometheus
from repro.obs.schema import validate_metric_keys


class TestBuckets:
    def test_index_is_monotone_and_covering(self):
        for value in (1e-6, 0.5, 1.0, 1.5, 10.0, 123.456, 9e8):
            idx = bucket_index(value)
            lower, upper = bucket_bounds(idx)
            assert lower <= value < upper or math.isclose(value, lower)

    def test_bucket_width_is_growth(self):
        lower, upper = bucket_bounds(7)
        assert upper / lower == pytest.approx(GROWTH)

    def test_boundary_values_land_deterministically(self):
        # the same value always maps to the same bucket — the property
        # merge exactness rests on
        for value in (0.25, 1.0, 2.0, 77.7):
            assert bucket_index(value) == bucket_index(value)


class TestHistogram:
    def test_count_sum_min_max(self):
        hist = Histogram("t")
        hist.record_many([5.0, 1.0, 3.0])
        snap = hist.snapshot()
        assert snap["count"] == 3
        assert snap["sum"] == pytest.approx(9.0)
        assert snap["min"] == 1.0
        assert snap["max"] == 5.0

    def test_quantile_error_is_bounded_by_bucket_width(self):
        rng = np.random.default_rng(7)
        values = rng.lognormal(mean=2.0, sigma=1.0, size=5000)
        hist = Histogram()
        hist.record_many(values)
        ordered = np.sort(values)
        for q in (0.5, 0.9, 0.99):
            exact = ordered[max(0, math.ceil(q * len(ordered)) - 1)]
            estimate = hist.quantile(q)
            assert abs(estimate - exact) / exact < GROWTH - 1.0 + 0.02

    def test_single_value_reports_exactly(self):
        hist = Histogram()
        hist.record(42.0)
        for q in (0.0, 0.5, 0.99, 1.0):
            assert hist.quantile(q) == 42.0

    def test_empty_quantile_is_zero(self):
        assert Histogram().quantile(0.5) == 0.0

    def test_quantile_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            Histogram().quantile(1.5)

    def test_non_positive_values_underflow(self):
        hist = Histogram()
        hist.record_many([0.0, -3.0, 1.0])
        snap = hist.snapshot()
        assert snap["zero"] == 2
        assert snap["count"] == 3
        assert hist.quantile(0.5) <= 0.0

    def test_metrics_rendering_shape(self):
        hist = Histogram("serve.hist.request_ms")
        hist.record_many([10.0, 20.0, 30.0])
        out = hist.metrics()
        assert out["serve.hist.request_ms.count"] == 3
        assert out["serve.hist.request_ms.min"] == 10.0
        assert out["serve.hist.request_ms.max"] == 30.0
        assert (out["serve.hist.request_ms.p50"]
                <= out["serve.hist.request_ms.p99"])
        assert validate_metric_keys(out) == []

    def test_percentiles_helper_matches_histogram(self):
        values = [3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0, 6.0]
        hist = Histogram()
        hist.record_many(values)
        pct = percentiles(values)
        assert pct["p50"] == hist.quantile(0.5)
        assert pct["p99"] == hist.quantile(0.99)


class TestMergeExactness:
    def test_merge_equals_single_histogram(self):
        rng = np.random.default_rng(11)
        values = rng.lognormal(mean=1.0, sigma=1.5, size=4000)
        reference = Histogram()
        reference.record_many(values)
        parts = [Histogram() for _ in range(8)]
        for i, chunk in enumerate(np.array_split(values, 8)):
            parts[i].record_many(chunk)
        merged = Histogram()
        for part in parts:
            merged.merge(part)
        ref_snap, merged_snap = reference.snapshot(), merged.snapshot()
        assert merged_snap["counts"] == ref_snap["counts"]
        assert merged_snap["count"] == ref_snap["count"]
        assert merged_snap["min"] == ref_snap["min"]
        assert merged_snap["max"] == ref_snap["max"]
        assert merged_snap["sum"] == pytest.approx(ref_snap["sum"])
        for q in (0.5, 0.9, 0.99):
            assert merged.quantile(q) == reference.quantile(q)

    def test_concurrent_recording_loses_nothing(self):
        """8 threads hammer one histogram AND their own private
        histograms; the shared one must agree with the merge of the
        private ones bucket-for-bucket."""
        rng = np.random.default_rng(13)
        chunks = [rng.lognormal(size=2000) for _ in range(8)]
        shared = Histogram("shared")
        locals_ = [Histogram() for _ in range(8)]

        def work(i):
            for value in chunks[i]:
                shared.record(value)
                locals_[i].record(value)

        threads = [threading.Thread(target=work, args=(i,))
                   for i in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()

        merged = Histogram()
        for part in locals_:
            merged.merge(part)
        assert shared.snapshot()["counts"] == merged.snapshot()["counts"]
        assert shared.count == 8 * 2000

    def test_cumulative_buckets_are_monotone(self):
        hist = Histogram()
        hist.record_many([0.0, 0.5, 1.0, 2.0, 4.0, 100.0])
        series = hist.cumulative_buckets()
        bounds = [b for b, _ in series]
        counts = [c for _, c in series]
        assert bounds == sorted(bounds)
        assert counts == sorted(counts)
        assert counts[-1] == 6


class TestHistogramSet:
    def test_observe_creates_and_records(self):
        hists = HistogramSet()
        hists.observe("graph.hist.execute_ms", 5.0)
        hists.observe("graph.hist.execute_ms", 7.0)
        assert hists.get("graph.hist.execute_ms").count == 2
        out = hists.metrics()
        assert out["graph.hist.execute_ms.count"] == 2
        assert validate_metric_keys(out) == []

    def test_get_missing_is_none(self):
        assert HistogramSet().get("nope") is None


class TestPrometheus:
    def test_name_mangling(self):
        assert prom_name("cache.ir.hit_rate") == "repro_cache_ir_hit_rate"
        assert prom_name("serve.hist.request_ms") == \
            "repro_serve_hist_request_ms"

    def test_golden_output(self):
        """The full exposition text for a fixed snapshot is pinned —
        scrapers parse this format, so any change must be deliberate."""
        hists = HistogramSet()
        hist = hists.get_or_create("serve.hist.request_ms")
        hist.record(10.0)
        hist.record(10.0)
        hist.record(100.0)
        snapshot = {
            "serve": {"serve.requests": 3, "serve.queue_depth": 0},
            "cache": {"cache.ir.hit_rate": 0.75},
            "hist": hists.metrics(),     # must be skipped as gauges
        }
        text = render_prometheus(snapshot, hists)
        assert text == (
            "# TYPE repro_cache_ir_hit_rate gauge\n"
            "repro_cache_ir_hit_rate 0.75\n"
            "# TYPE repro_serve_queue_depth gauge\n"
            "repro_serve_queue_depth 0\n"
            "# TYPE repro_serve_requests gauge\n"
            "repro_serve_requests 3\n"
            "# TYPE repro_serve_hist_request_ms histogram\n"
            'repro_serve_hist_request_ms_bucket{le="11.313708499"} 2\n'
            'repro_serve_hist_request_ms_bucket{le="107.634741152"} 3\n'
            'repro_serve_hist_request_ms_bucket{le="+Inf"} 3\n'
            "repro_serve_hist_request_ms_sum 120\n"
            "repro_serve_hist_request_ms_count 3\n"
        )

    def test_non_numeric_values_skipped(self):
        text = render_prometheus({"serve": {"serve.engine": "sim",
                                            "serve.requests": 1}},
                                 HistogramSet())
        assert "engine" not in text
        assert "repro_serve_requests 1" in text


class TestEventLog:
    def test_emit_is_one_json_line(self):
        buf = io.StringIO()
        log = EventLog(buf)
        log.emit("request.received", {"request_id": "abc", "n": 2,
                                      "weird": object()})
        doc = json.loads(buf.getvalue())
        assert doc["event"] == "request.received"
        assert doc["request_id"] == "abc"
        assert doc["n"] == 2
        assert isinstance(doc["weird"], str)
        assert doc["ts"] > 0
        assert doc["thread"]

    def test_log_event_noop_without_sink(self):
        # must not raise, must not emit anywhere
        log_event("request.received", request_id="x")

    def test_logging_to_restores_previous_sink(self):
        outer, inner = io.StringIO(), io.StringIO()
        with logging_to(outer):
            with logging_to(inner):
                log_event("request.received", request_id="rid-inner")
            log_event("request.completed", request_id="rid-outer")
        assert "rid-inner" in inner.getvalue()
        assert "rid-outer" in outer.getvalue()
        assert "rid-inner" not in outer.getvalue()
        log_event("request.received", request_id="rid-dropped")
        assert "rid-dropped" not in outer.getvalue()

    def test_broken_sink_never_raises(self):
        class Broken(io.StringIO):
            def write(self, *a):
                raise OSError("gone")

        EventLog(Broken()).emit("request.received", {})

    def test_catalogue_is_dot_scoped(self):
        assert all("." in name for name in EVENTS)
        assert "request.received" in EVENTS
        assert "request.completed" in EVENTS


class TestMetricNamespaces:
    def test_documented_namespaces_pass(self):
        assert validate_metric_keys({
            "cache.ir.hits": 1, "pool.allocs": 2,
            "graph.launches": 3, "serve.requests": 4,
            "native.compiles": 5, "lint.absint.runs": 6,
            "serve.hist.request_ms.p99": 7.0,
        }) == []

    def test_unknown_namespace_fails(self):
        problems = validate_metric_keys({"rogue.counter": 1})
        assert len(problems) == 1
        assert "rogue.counter" in problems[0]

    def test_unknown_hist_statistic_fails(self):
        problems = validate_metric_keys(
            {"serve.hist.request_ms.p42": 1.0})
        assert len(problems) == 1
