"""Performance diagnostics (HIP2xx): positive and negative tests per
shipped code, plus the compile-time verify wiring (always-on attach,
``strict=`` rejection, collector delivery)."""

from __future__ import annotations

import pytest

from repro import (
    Accessor,
    Boundary,
    BoundaryCondition,
    Image,
    IterationSpace,
    Kernel,
)
from repro.errors import LintError
from repro.lint import Severity, collecting, lint_kernel
from repro.lint.performance import check_bank_conflicts
from repro.runtime.compile import compile_kernel

W, H = 16, 12


def _space():
    return IterationSpace(Image(W, H, float))


def _acc(wx=1, wy=1, boundary=None):
    img = Image(W, H, float)
    if boundary is None:
        return Accessor(img)
    return Accessor(BoundaryCondition(img, wx, wy, boundary))


def codes(diags):
    return sorted(d.code for d in diags)


# -- kernels ----------------------------------------------------------------


class GidBranch(Kernel):
    """Branches on a value derived from the thread index."""

    def __init__(self):
        super().__init__(_space())
        self.inp = _acc()
        self.add_accessor(self.inp)

    def kernel(self):
        parity = self.x() - self.x() // 2 * 2
        if parity > 0:
            self.output(self.inp(0, 0) * 2.0)
        else:
            self.output(self.inp(0, 0))


class GidBranchWindowed(Kernel):
    """Windowed reads under a thread-index-dependent branch."""

    def __init__(self):
        super().__init__(_space())
        self.inp = _acc(3, 3, Boundary.CLAMP)
        self.add_accessor(self.inp)

    def kernel(self):
        if self.x() > 4:
            self.output(self.inp(1, 0) + self.inp(-1, 0))
        else:
            self.output(self.inp(0, 0))


class UniformBranch(Kernel):
    """Branches on data, not the thread index: no divergence finding."""

    def __init__(self):
        super().__init__(_space())
        self.inp = _acc()
        self.add_accessor(self.inp)

    def kernel(self):
        v = self.inp(0, 0)
        if v > 0.5:
            self.output(1.0)
        else:
            self.output(0.0)


class Stencil3(Kernel):
    """Plain 3x3-windowed kernel for the bank-conflict geometry test."""

    def __init__(self):
        super().__init__(_space())
        self.inp = _acc(3, 3, Boundary.CLAMP)
        self.add_accessor(self.inp)

    def kernel(self):
        self.output(self.inp(-1, 0) + self.inp(1, 0) + self.inp(0, 0))


class DataDependentOffset(Kernel):
    def __init__(self):
        super().__init__(_space())
        self.inp = _acc(5, 5, Boundary.CLAMP)
        self.add_accessor(self.inp)

    def kernel(self):
        d = int(self.inp(0, 0))
        self.output(self.inp(d, 0))


class CleanPoint(Kernel):
    def __init__(self):
        super().__init__(_space())
        self.inp = _acc()
        self.add_accessor(self.inp)

    def kernel(self):
        self.output(self.inp(0, 0) * 0.5)


# -- pass tests -------------------------------------------------------------


class TestHip201:
    def test_gid_dependent_branch(self):
        diags = [d for d in lint_kernel(GidBranch())
                 if d.code == "HIP201"]
        assert len(diags) == 1
        assert diags[0].severity == Severity.WARNING

    def test_taint_propagates_through_locals(self):
        # the branch is on `parity`, not on self.x() directly
        assert "HIP201" in codes(lint_kernel(GidBranch()))

    def test_data_dependent_branch_is_clean(self):
        assert "HIP201" not in codes(lint_kernel(UniformBranch()))


class TestHip202:
    def test_windowed_read_under_divergence(self):
        diags = [d for d in lint_kernel(GidBranchWindowed())
                 if d.code == "HIP202"]
        assert len(diags) == 1
        assert "'inp'" in diags[0].message

    def test_centre_reads_only_are_clean(self):
        assert "HIP202" not in codes(lint_kernel(GidBranch()))


class TestHip203:
    def _ir(self):
        from repro.frontend.parser import parse_kernel
        from repro.ir.typecheck import typecheck_kernel

        return typecheck_kernel(parse_kernel(Stencil3()))

    def test_conflicting_stride(self):
        # float32 tile row: block 29 + halo 2 + pad 1 = 32 words, a
        # multiple of the 32 banks
        diags = check_bank_conflicts(self._ir(), block=(29, 4))
        assert codes(diags) == ["HIP203"]
        assert "32" in diags[0].message

    def test_padded_stride_is_clean(self):
        # block 32 + 2 + 1 = 35 words: no common factor with 32
        assert check_bank_conflicts(self._ir(), block=(32, 4)) == []

    def test_needs_block(self):
        assert check_bank_conflicts(self._ir(), block=None) == []

    def test_point_accessors_skipped(self):
        from repro.frontend.parser import parse_kernel
        from repro.ir.typecheck import typecheck_kernel

        ir = typecheck_kernel(parse_kernel(CleanPoint()))
        assert check_bank_conflicts(ir, block=(29, 4)) == []


class TestHip204:
    def test_data_dependent_offset(self):
        diags = [d for d in lint_kernel(DataDependentOffset())
                 if d.code == "HIP204"]
        assert len(diags) == 1
        assert "'inp'" in diags[0].message

    def test_constant_offsets_are_clean(self):
        assert "HIP204" not in codes(lint_kernel(Stencil3()))


# -- compile-time verify wiring --------------------------------------------


class DirtyButCompilable(Kernel):
    """Dead store: a warning the typechecker does not reject."""

    def __init__(self):
        super().__init__(_space())
        self.inp = _acc()
        self.add_accessor(self.inp)

    def kernel(self):
        a = 1.0
        a = 2.0
        self.output(self.inp(0, 0) * a)


class TestCompileVerify:
    def test_diagnostics_attached_without_raising(self):
        compiled = compile_kernel(DirtyButCompilable())
        assert codes(compiled.diagnostics) == ["HIP102"]
        assert "lint_ms" in compiled.stage_timings

    def test_clean_kernel_attaches_nothing(self):
        assert compile_kernel(CleanPoint()).diagnostics == []

    def test_strict_rejects_warnings(self):
        with pytest.raises(LintError) as exc_info:
            compile_kernel(DirtyButCompilable(), strict=True)
        assert codes(exc_info.value.diagnostics) == ["HIP102"]
        assert "HIP102" in str(exc_info.value)

    def test_strict_accepts_clean_kernel(self):
        compiled = compile_kernel(CleanPoint(), strict=True)
        assert compiled.diagnostics == []

    def test_collector_receives_compile_findings(self):
        with collecting() as sink:
            compile_kernel(DirtyButCompilable())
        assert codes(sink) == ["HIP102"]

    def test_cache_hit_still_verifies(self):
        from repro.cache import CompilationCache

        cache = CompilationCache()
        first = compile_kernel(DirtyButCompilable(), cache=cache)
        second = compile_kernel(DirtyButCompilable(), cache=cache)
        assert not first.from_cache
        assert second.from_cache
        assert codes(second.diagnostics) == ["HIP102"]

    def test_oob_under_undefined_still_compiles(self):
        # DeviceFault-style kernels (deliberate out-of-bounds reads)
        # must keep compiling: the verify reports, never blocks
        class_diags = compile_kernel(OobProbe()).diagnostics
        assert codes(class_diags) == ["HIP107"]


class OobProbe(Kernel):
    def __init__(self):
        super().__init__(_space())
        self.inp = _acc()
        self.add_accessor(self.inp)

    def kernel(self):
        self.output(self.inp(1, 0))
