"""Integration tests: multi-kernel pipelines, pyramids, cross-cutting
behaviour that spans the whole stack."""

import numpy as np
import pytest

from repro import (
    Accessor,
    Boundary,
    BoundaryCondition,
    Image,
    IterationSpace,
    Mask,
    compile_kernel,
)
from repro.data import angiography_image, impulse_noise_image
from repro.filters.median import Median3x3
from repro.filters.multiresolution import multiresolution_filter
from repro.filters.sobel import (
    SOBEL_X,
    SOBEL_Y,
    GradientMagnitude,
    SobelX,
    SobelY,
)

from .helpers import random_image


class TestEdgePipeline:
    def test_median_sobel_magnitude_chain(self):
        size = 48
        frame = impulse_noise_image(size, size, seed=1, density=0.02)

        img0 = Image(size, size).set_data(frame)
        img1 = Image(size, size)
        median = Median3x3(
            IterationSpace(img1),
            Accessor(BoundaryCondition(img0, 3, 3, Boundary.MIRROR)))
        compile_kernel(median).execute()

        gx_img, gy_img = Image(size, size), Image(size, size)
        sx = SobelX(IterationSpace(gx_img),
                    Accessor(BoundaryCondition(img1, 3, 3,
                                               Boundary.CLAMP)),
                    Mask(3, 3).set(SOBEL_X))
        sy = SobelY(IterationSpace(gy_img),
                    Accessor(BoundaryCondition(img1, 3, 3,
                                               Boundary.CLAMP)),
                    Mask(3, 3).set(SOBEL_Y))
        compile_kernel(sx).execute()
        compile_kernel(sy).execute()

        mag_img = Image(size, size)
        mag = GradientMagnitude(IterationSpace(mag_img),
                                Accessor(gx_img), Accessor(gy_img))
        compile_kernel(mag).execute()

        out = mag_img.get_data()
        expected = np.sqrt(gx_img.get_data() ** 2
                           + gy_img.get_data() ** 2)
        np.testing.assert_allclose(out, expected, rtol=1e-5, atol=1e-6)
        assert out.max() > 0.1    # edges exist

    def test_intermediate_image_reused_with_two_modes(self):
        """One image feeding two kernels through different boundary
        modes — the Accessor-decoupling benefit of Section III-A."""
        size = 24
        data = random_image(size, size, seed=2)
        shared = Image(size, size).set_data(data)

        # note: CLAMP and MIRROR agree at offset +-1 (symmetric mirror
        # maps -1 -> 0 too), so REPEAT is the contrasting mode here
        out_clamp, out_repeat = Image(size, size), Image(size, size)
        k1 = SobelX(IterationSpace(out_clamp),
                    Accessor(BoundaryCondition(shared, 3, 3,
                                               Boundary.CLAMP)),
                    Mask(3, 3).set(SOBEL_X))
        k2 = SobelX(IterationSpace(out_repeat),
                    Accessor(BoundaryCondition(shared, 3, 3,
                                               Boundary.REPEAT)),
                    Mask(3, 3).set(SOBEL_X))
        compile_kernel(k1).execute()
        compile_kernel(k2).execute()
        a, b = out_clamp.get_data(), out_repeat.get_data()
        # interiors agree, borders differ
        np.testing.assert_array_equal(a[2:-2, 2:-2], b[2:-2, 2:-2])
        assert not np.array_equal(a, b)


class TestMultiresolution:
    def test_identity_gains_roundtrip(self):
        """gains=1 must reconstruct the frame up to resampling loss."""
        frame = angiography_image(64, 64, seed=4, noise_sigma=0.0)
        out = multiresolution_filter(frame, levels=2, gains=[1.0, 1.0],
                                     boundary=Boundary.MIRROR)
        # identity gains: details added back exactly; the residual comes
        # only from the base band's down/up-sampling and re-smoothing
        assert np.abs(out - frame).mean() < 0.08

    def test_zero_gains_smooth(self):
        frame = angiography_image(64, 64, seed=4, noise_sigma=0.05)
        out = multiresolution_filter(frame, levels=2, gains=[0.0, 0.0],
                                     boundary=Boundary.MIRROR)
        # removing all detail bands must smooth the image
        assert np.abs(np.diff(out, axis=1)).mean() < \
            np.abs(np.diff(frame, axis=1)).mean()

    def test_gain_boosts_detail(self):
        frame = angiography_image(64, 64, seed=5, noise_sigma=0.0)
        boosted = multiresolution_filter(frame, levels=1, gains=[2.0],
                                         boundary=Boundary.MIRROR)
        plain = multiresolution_filter(frame, levels=1, gains=[1.0],
                                       boundary=Boundary.MIRROR)
        assert np.abs(np.diff(boosted, axis=0)).mean() > \
            np.abs(np.diff(plain, axis=0)).mean()

    def test_parameter_validation(self):
        frame = np.zeros((16, 16), np.float32)
        with pytest.raises(ValueError):
            multiresolution_filter(frame, levels=0)
        with pytest.raises(ValueError):
            multiresolution_filter(frame, levels=2, gains=[1.0])


class TestCrossDeviceConsistency:
    def test_same_pixels_every_device(self):
        """Functional output is device-independent; only timing differs."""
        from repro import EVALUATION_DEVICES, get_device
        from repro.filters.gaussian import make_gaussian

        data = random_image(20, 20, seed=6)
        outputs = []
        for name in EVALUATION_DEVICES:
            dev = get_device(name)
            backend = "cuda" if dev.vendor == "NVIDIA" else "opencl"
            k, _, out = make_gaussian(20, 20, size=3, data=data)
            compile_kernel(k, backend=backend, device=dev).execute()
            outputs.append(out.get_data())
        for other in outputs[1:]:
            np.testing.assert_array_equal(outputs[0], other)

    def test_timing_differs_across_devices(self):
        from repro.evaluation.variants import (
            VariantSpec,
            evaluate_bilateral_cell,
        )
        spec = VariantSpec("Generated+Mask", "generated", use_mask=True)
        t_tesla = evaluate_bilateral_cell("tesla", "cuda", spec,
                                          Boundary.CLAMP)
        t_quadro = evaluate_bilateral_cell("quadro", "cuda", spec,
                                           Boundary.CLAMP)
        assert t_tesla != t_quadro
