"""Shared kernel classes and builders for the test suite.

Kernel bodies must live in a real source file for the frontend to parse
them (``inspect.getsource``), so every kernel class used by more than one
test module is defined here.
"""

from __future__ import annotations

import random

import numpy as np
import pytest

from repro import (
    Accessor,
    Boundary,
    BoundaryCondition,
    Image,
    IterationSpace,
    Kernel,
    Mask,
    Reduce,
    Uniform,
)


class CopyKernel(Kernel):
    """Identity point operator."""

    def __init__(self, iteration_space, inp):
        super().__init__(iteration_space)
        self.inp = inp
        self.add_accessor(inp)

    def kernel(self):
        self.output(self.inp(0, 0))


class AddScalar(Kernel):
    """Point operator with a baked scalar parameter."""

    def __init__(self, iteration_space, inp, value):
        super().__init__(iteration_space)
        self.inp = inp
        self.value = float(value)
        self.add_accessor(inp)

    def kernel(self):
        self.output(self.inp(0, 0) + self.value)


class AddUniform(Kernel):
    """Point operator with a runtime (non-baked) scalar parameter."""

    def __init__(self, iteration_space, inp, value):
        super().__init__(iteration_space)
        self.inp = inp
        self.value = Uniform(float(value), float)
        self.add_accessor(inp)

    def kernel(self):
        self.output(self.inp(0, 0) + self.value)


class ShiftRead(Kernel):
    """Reads a fixed offset — minimal local operator."""

    def __init__(self, iteration_space, inp, dx, dy):
        super().__init__(iteration_space)
        self.inp = inp
        self.dx = int(dx)
        self.dy = int(dy)
        self.add_accessor(inp)

    def kernel(self):
        self.output(self.inp(self.dx, self.dy))


class MaskConvolution(Kernel):
    """Generic odd-window convolution with explicit loops."""

    def __init__(self, iteration_space, inp, mask, rx, ry):
        super().__init__(iteration_space)
        self.inp = inp
        self.cmask = mask
        self.rx = int(rx)
        self.ry = int(ry)
        self.add_accessor(inp)

    def kernel(self):
        s = 0.0
        for dy in range(-self.ry, self.ry + 1):
            for dx in range(-self.rx, self.rx + 1):
                s += self.cmask(dx, dy) * self.inp(dx, dy)
        self.output(s)


class ConvolveSyntax(Kernel):
    """Same convolution via the Section-VIII convolve() lambda syntax."""

    def __init__(self, iteration_space, inp, mask):
        super().__init__(iteration_space)
        self.inp = inp
        self.cmask = mask
        self.add_accessor(inp)

    def kernel(self):
        self.output(self.convolve(self.cmask, Reduce.SUM,
                                  lambda: self.cmask()
                                  * self.inp(self.cmask)))


class MinReduce(Kernel):
    """Neighbourhood minimum via convolve(..., Reduce.MIN, ...)."""

    def __init__(self, iteration_space, inp, mask):
        super().__init__(iteration_space)
        self.inp = inp
        self.dmask = mask
        self.add_accessor(inp)

    def kernel(self):
        self.output(self.convolve(self.dmask, Reduce.MIN,
                                  lambda: self.inp(self.dmask)))


class BranchKernel(Kernel):
    """Divergent if/else over pixel values."""

    def __init__(self, iteration_space, inp, threshold):
        super().__init__(iteration_space)
        self.inp = inp
        self.threshold = float(threshold)
        self.add_accessor(inp)

    def kernel(self):
        v = self.inp(0, 0)
        # declarations are block-scoped (C semantics): declare before
        # branching when the value is needed after the join
        r = 0.0
        if v > self.threshold:
            r = v * 2.0
        else:
            r = v * 0.5
        self.output(r)


class GeneratorKernel(Kernel):
    """Kernel with no accessors: writes a ramp from x()/y() alone."""

    def __init__(self, iteration_space):
        super().__init__(iteration_space)

    def kernel(self):
        self.output(float(self.x()) * 0.01 + float(self.y()) * 0.1)


class PositionKernel(Kernel):
    """Uses self.x()/self.y() coordinates."""

    def __init__(self, iteration_space, inp):
        super().__init__(iteration_space)
        self.inp = inp
        self.add_accessor(inp)

    def kernel(self):
        self.output(self.inp(0, 0) + float(self.x()) * 0.001
                    + float(self.y()) * 0.002)


class TwoInputKernel(Kernel):
    """Point operator over two accessors."""

    def __init__(self, iteration_space, a, b):
        super().__init__(iteration_space)
        self.a = a
        self.b = b
        self.add_accessor(a)
        self.add_accessor(b)

    def kernel(self):
        self.output(self.a(0, 0) - self.b(0, 0))


class IntArithmetic(Kernel):
    """Integer division/modulo semantics (C truncation)."""

    def __init__(self, iteration_space, inp):
        super().__init__(iteration_space)
        self.inp = inp
        self.add_accessor(inp)

    def kernel(self):
        ix = self.x() - 5
        q = ix / 3
        r = ix % 3
        self.output(self.inp(0, 0) + float(q) + 0.125 * float(r))


def build_image_pair(width=16, height=16, data=None, pixel_type=float):
    src = Image(width, height, pixel_type)
    dst = Image(width, height, pixel_type)
    if data is not None:
        src.set_data(data)
    return src, dst


def accessor_for(image, window=1, mode=Boundary.CLAMP, constant=0.0):
    """Accessor with boundary handling (or without, mode=UNDEFINED)."""
    if mode == Boundary.UNDEFINED or window == 1:
        return Accessor(image)
    bc = BoundaryCondition(image, window, window, mode, constant=constant)
    return Accessor(bc)


def box_mask(size, dtype=np.float32):
    return Mask(size, size).set(
        np.full((size, size), 1.0 / (size * size), dtype))


def random_image(width=16, height=16, seed=0):
    rng = np.random.default_rng(seed)
    return rng.random((height, width)).astype(np.float32)


@pytest.fixture
def repro_seed(request):
    """Seed the global RNGs from ``--repro-seed`` (registered in the
    repo-level ``conftest.py``) so any randomised test replays exactly;
    returns the seed for tests that want their own generators."""
    seed = int(request.config.getoption("--repro-seed"))
    random.seed(seed)
    np.random.seed(seed % (2 ** 32))
    return seed


def assert_native_matches_sim(build, engine="native", **run_kwargs):
    """Differential oracle: run the graph built by *build* through both
    the Python simulator and the native engine and assert every output
    byte-identical.

    *build* is a zero-argument callable returning ``(graph, outputs)``
    where *outputs* is an output :class:`Image` or a sequence of them.
    It must produce deterministic input data on every call — the graph
    is rebuilt fresh per engine so one run cannot leak buffer state into
    the other.  Returns the native run's
    :class:`~repro.graph.report.GraphReport` so callers can assert on
    engine-specific facts (per-node engines, fallback reason, metrics).
    """
    from repro.graph.scheduler import execute_graph

    def run(engine_name):
        graph, outputs = build()
        if isinstance(outputs, Image):
            outputs = [outputs]
        report = execute_graph(graph, engine=engine_name, **run_kwargs)
        return [np.array(o.pixels, copy=True) for o in outputs], report

    sim_outs, _ = run("sim")
    nat_outs, nat_report = run(engine)
    assert len(sim_outs) == len(nat_outs)
    for i, (ref, got) in enumerate(zip(sim_outs, nat_outs)):
        np.testing.assert_array_equal(
            ref, got,
            err_msg=f"output {i} differs between sim and {engine}")
    return nat_report


def build_convolution(size=16, mask_size=3, boundary=Boundary.CLAMP,
                      coefficient_scale=1.0):
    """Deterministic MaskConvolution instance — same bytes in every
    process, so cache keys computed from it must agree across runs."""
    data = np.linspace(0.0, 1.0, size * size,
                       dtype=np.float32).reshape(size, size)
    src, dst = build_image_pair(size, size, data)
    acc = accessor_for(src, mask_size, boundary)
    coeffs = np.linspace(-1.0, float(coefficient_scale),
                         mask_size * mask_size,
                         dtype=np.float32).reshape(mask_size, mask_size)
    mask = Mask(mask_size, mask_size).set(coeffs)
    half = mask_size // 2
    return MaskConvolution(IterationSpace(dst), acc, mask, half, half)
