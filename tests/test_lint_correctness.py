"""Correctness diagnostics (HIP1xx): every shipped code has a positive
test with a minimal triggering kernel and a negative test on a clean
kernel.  See docs/DIAGNOSTICS.md for the catalogue."""

from __future__ import annotations

import numpy as np
import pytest

from repro import (
    Accessor,
    Boundary,
    BoundaryCondition,
    Image,
    IterationSpace,
    Kernel,
    Mask,
)
from repro.lint import CODES, Diagnostic, LintReport, Severity, lint_kernel

W, H = 16, 12


def _space(pixel_type=float):
    return IterationSpace(Image(W, H, pixel_type))


def _acc(wx=1, wy=1, boundary=None, pixel_type=float):
    img = Image(W, H, pixel_type)
    if boundary is None:
        return Accessor(img)
    return Accessor(BoundaryCondition(img, wx, wy, boundary))


def codes(diags):
    return sorted(d.code for d in diags)


# -- kernels under test (bodies must live in a real file) -------------------


class Clean(Kernel):
    """3x3 stencil with an honest boundary window: lints clean."""

    def __init__(self):
        super().__init__(_space())
        self.inp = _acc(3, 3, Boundary.CLAMP)
        self.add_accessor(self.inp)

    def kernel(self):
        s = 0.0
        for dy in range(-1, 2):
            for dx in range(-1, 2):
                s = s + self.inp(dx, dy)
        self.output(s / 9.0)


class FrontendReject(Kernel):
    def __init__(self):
        super().__init__(_space())
        self.inp = _acc()
        self.add_accessor(self.inp)

    def kernel(self):
        while True:
            self.output(self.inp(0, 0))


def _use_before_def_ir():
    """The frontend's lexical scoping rejects use-before-def at parse
    time, so HIP101 guards *synthesized* IR (graph fusion, compile_ir
    callers) — build such a body directly."""
    from repro.ir.nodes import (
        FloatConst,
        KernelIR,
        OutputWrite,
        VarDecl,
        VarRef,
    )
    from repro.types import FLOAT

    body = [
        VarDecl("a", VarRef("missing")),
        OutputWrite(FloatConst(0.0)),
    ]
    return KernelIR(name="synth", pixel_type=FLOAT, body=body)


class DeadStore(Kernel):
    def __init__(self):
        super().__init__(_space())
        self.inp = _acc()
        self.add_accessor(self.inp)

    def kernel(self):
        a = 1.0
        a = 2.0
        self.output(self.inp(0, 0) * a)


class UnusedAccessor(Kernel):
    def __init__(self):
        super().__init__(_space())
        self.inp = _acc()
        self.extra = _acc()
        self.add_accessor(self.inp)
        self.add_accessor(self.extra)

    def kernel(self):
        self.output(self.inp(0, 0))


class UnusedMask(Kernel):
    def __init__(self):
        super().__init__(_space())
        self.inp = _acc()
        self.unused = Mask(3, 3).set(np.ones((3, 3), dtype=np.float32))
        self.add_accessor(self.inp)

    def kernel(self):
        self.output(self.inp(0, 0))


class MissingWrite(Kernel):
    def __init__(self):
        super().__init__(_space())
        self.inp = _acc()
        self.add_accessor(self.inp)

    def kernel(self):
        if self.x() > 4:
            self.output(self.inp(0, 0))


class WriteInLoop(Kernel):
    def __init__(self):
        super().__init__(_space())
        self.inp = _acc()
        self.add_accessor(self.inp)

    def kernel(self):
        self.output(self.inp(0, 0))
        for i in range(0, 2):
            self.output(self.inp(0, 0) * 2.0)


class DoubleWrite(Kernel):
    def __init__(self):
        super().__init__(_space())
        self.inp = _acc()
        self.add_accessor(self.inp)

    def kernel(self):
        self.output(self.inp(0, 0))
        self.output(self.inp(0, 0) * 2.0)


class OobUndefined(Kernel):
    """Reads a neighbour without any BoundaryCondition."""

    def __init__(self):
        super().__init__(_space())
        self.inp = _acc()
        self.add_accessor(self.inp)

    def kernel(self):
        self.output(self.inp(1, 0))


class OobClamp(Kernel):
    """Window declares radius 1, kernel reads radius 2 — defined
    behaviour under CLAMP, but the staging tile is undersized."""

    def __init__(self):
        super().__init__(_space())
        self.inp = _acc(3, 3, Boundary.CLAMP)
        self.add_accessor(self.inp)

    def kernel(self):
        self.output(self.inp(2, 0))


class NarrowLocal(Kernel):
    def __init__(self):
        super().__init__(_space())
        self.inp = _acc()
        self.add_accessor(self.inp)

    def kernel(self):
        v = 1
        v = self.inp(0, 0) * 2.0
        self.output(v)


class NarrowOutput(Kernel):
    def __init__(self):
        super().__init__(_space(int))
        self.inp = _acc()
        self.add_accessor(self.inp)

    def kernel(self):
        self.output(self.inp(0, 0) * 255.0)


class ExplicitIntCast(Kernel):
    def __init__(self):
        super().__init__(_space(int))
        self.inp = _acc()
        self.add_accessor(self.inp)

    def kernel(self):
        self.output(int(self.inp(0, 0) * 255.0))


# -- tests ------------------------------------------------------------------


class TestCleanKernel:
    def test_no_findings(self):
        assert lint_kernel(Clean()) == []

    def test_builtin_filters_lint_clean(self):
        from repro.lint.builtin import builtin_kernels

        report = LintReport()
        for kernel in builtin_kernels():
            report.extend(lint_kernel(kernel))
        assert report.errors == 0
        assert report.warnings == 0


class TestHip100:
    def test_frontend_rejection_is_a_finding(self):
        diags = lint_kernel(FrontendReject())
        assert codes(diags) == ["HIP100"]
        assert diags[0].severity == Severity.ERROR
        assert "while" in diags[0].message

    def test_not_duplicated_over_hip105(self):
        # the typechecker also rejects a kernel that doesn't always
        # write output; HIP105 already explains that
        diags = lint_kernel(MissingWrite())
        assert "HIP100" not in codes(diags)


class TestHip101:
    def test_use_before_def_in_synthesized_ir(self):
        from repro.lint import lint_ir

        diags = [d for d in lint_ir(_use_before_def_ir())
                 if d.code == "HIP101"]
        assert len(diags) == 1
        assert "'missing'" in diags[0].message
        assert diags[0].severity == Severity.ERROR

    def test_typecheck_rejection_not_restated(self):
        # the typechecker also rejects this IR; HIP101 already explains
        # the root cause, so no HIP100 on top
        from repro.lint import lint_ir

        assert "HIP100" not in codes(lint_ir(_use_before_def_ir()))

    def test_negative(self):
        assert "HIP101" not in codes(lint_kernel(DeadStore()))


class TestHip102:
    def test_overwritten_store(self):
        diags = [d for d in lint_kernel(DeadStore())
                 if d.code == "HIP102"]
        assert len(diags) == 1
        assert "'a'" in diags[0].message
        # location points at the dead initialisation, with source text
        assert diags[0].lineno is not None
        assert "a = 1.0" in diags[0].source_line

    def test_negative(self):
        assert "HIP102" not in codes(lint_kernel(Clean()))


class TestHip103Hip104:
    def test_unused_accessor(self):
        diags = [d for d in lint_kernel(UnusedAccessor())
                 if d.code == "HIP103"]
        assert len(diags) == 1
        assert "'extra'" in diags[0].message

    def test_unused_mask(self):
        diags = [d for d in lint_kernel(UnusedMask())
                 if d.code == "HIP104"]
        assert len(diags) == 1
        assert "'unused'" in diags[0].message

    def test_negative(self):
        diags = lint_kernel(Clean())
        assert "HIP103" not in codes(diags)
        assert "HIP104" not in codes(diags)


class TestHip105:
    def test_partial_path(self):
        diags = [d for d in lint_kernel(MissingWrite())
                 if d.code == "HIP105"]
        assert len(diags) == 1
        assert diags[0].severity == Severity.ERROR

    def test_negative(self):
        assert "HIP105" not in codes(lint_kernel(Clean()))


class TestHip106:
    def test_write_in_loop(self):
        diags = [d for d in lint_kernel(WriteInLoop())
                 if d.code == "HIP106"]
        assert len(diags) == 1
        assert "loop" in diags[0].message

    def test_double_write(self):
        diags = [d for d in lint_kernel(DoubleWrite())
                 if d.code == "HIP106"]
        assert len(diags) == 1
        assert "more than once" in diags[0].message

    def test_negative(self):
        assert "HIP106" not in codes(lint_kernel(Clean()))


class TestHip107:
    def test_error_under_undefined_boundary(self):
        diags = [d for d in lint_kernel(OobUndefined())
                 if d.code == "HIP107"]
        assert len(diags) == 1
        assert diags[0].severity == Severity.ERROR
        assert "out of bounds" in diags[0].message
        # the hint names the window that would make the read safe
        assert "3x1" in diags[0].hint

    def test_warning_under_defined_boundary(self):
        diags = [d for d in lint_kernel(OobClamp())
                 if d.code == "HIP107"]
        assert len(diags) == 1
        assert diags[0].severity == Severity.WARNING
        assert "5x3" in diags[0].hint

    def test_negative(self):
        assert "HIP107" not in codes(lint_kernel(Clean()))


class TestHip108:
    def test_local_narrowing_warns(self):
        diags = [d for d in lint_kernel(NarrowLocal())
                 if d.code == "HIP108"]
        assert len(diags) == 1
        assert diags[0].severity == Severity.WARNING
        assert "'v'" in diags[0].message

    def test_output_narrowing_is_info(self):
        diags = [d for d in lint_kernel(NarrowOutput())
                 if d.code == "HIP108"]
        assert len(diags) == 1
        assert diags[0].severity == Severity.INFO

    def test_explicit_cast_is_clean(self):
        assert "HIP108" not in codes(lint_kernel(ExplicitIntCast()))


class TestDiagnosticModel:
    def test_unknown_code_rejected(self):
        with pytest.raises(ValueError):
            Diagnostic(code="HIP999", message="nope")

    def test_default_severity_from_registry(self):
        d = Diagnostic(code="HIP102", message="x")
        assert d.severity == CODES["HIP102"][1]

    def test_format_contains_location_and_hint(self):
        d = Diagnostic(code="HIP102", message="dead", kernel="K",
                       lineno=3, source_line="a = 1.0", hint="drop it")
        text = d.format()
        assert "K:3" in text
        assert "warning" in text
        assert "a = 1.0" in text
        assert "hint: drop it" in text

    def test_report_policies(self):
        report = LintReport([
            Diagnostic(code="HIP102", message="w"),
            Diagnostic(code="HIP302", message="i"),
        ])
        assert report.worst() == Severity.WARNING
        assert report.exceeds("warning")
        assert not report.exceeds("error")
        assert not report.exceeds("never")

    def test_renderers(self):
        import json

        report = LintReport([Diagnostic(code="HIP107", message="oob",
                                        kernel="K", lineno=2)])
        assert "HIP107" in report.to_text()
        payload = json.loads(report.to_json())
        assert payload["summary"]["errors"] == 1
        sarif = json.loads(report.to_sarif())
        run = sarif["runs"][0]
        assert run["results"][0]["ruleId"] == "HIP107"
        assert run["results"][0]["level"] == "error"
        assert run["tool"]["driver"]["rules"][0]["id"] == "HIP107"
