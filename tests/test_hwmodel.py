"""Hardware model: device database, occupancy calculator, resources."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import MappingError
from repro.hwmodel import (
    DEVICES,
    EVALUATION_DEVICES,
    compute_occupancy,
    estimate_resources,
    get_device,
    list_devices,
)
from repro.hwmodel.resources import smem_tile_bytes


class TestDatabase:
    def test_evaluation_devices_present(self):
        for name in EVALUATION_DEVICES:
            assert get_device(name).name == name

    def test_aliases(self):
        assert get_device("tesla").name == "Tesla C2050"
        assert get_device("c2050").name == "Tesla C2050"
        assert get_device("hd5870").vendor == "AMD"

    def test_case_insensitive(self):
        assert get_device("tesla c2050").name == "Tesla C2050"

    def test_unknown_device(self):
        with pytest.raises(MappingError):
            get_device("GeForce RTX 4090")

    def test_list_devices_covers_database(self):
        assert set(list_devices()) == set(DEVICES)

    def test_paper_specs_tesla(self):
        d = get_device("tesla")
        assert d.compute_capability == (2, 0)
        assert d.max_threads_per_block == 1024
        assert d.simd_width == 32
        assert d.num_simd_units == 14
        assert d.faults_on_oob           # the Table II "crash" rows

    def test_paper_specs_quadro(self):
        d = get_device("quadro")
        # "this limit is either 512, 768, or 1024 on graphics cards from
        # NVIDIA" — GT200: 512 threads/block
        assert d.max_threads_per_block == 512
        assert d.register_alloc_scope == "block"
        assert not d.memory.has_l1_cache

    def test_paper_specs_amd(self):
        for name in ("hd5870", "hd6970"):
            d = get_device(name)
            # "on graphics cards from AMD, the maximal number of threads
            # that can be mapped to one SIMD unit is 256"
            assert d.max_threads_per_block == 256
            assert d.simd_width == 64
            assert d.vliw_width in (4, 5)
            assert d.vliw_scalar_utilization < 1.0

    def test_backend_support(self):
        assert get_device("tesla").supports_backend("cuda")
        assert get_device("tesla").supports_backend("opencl")
        assert not get_device("hd5870").supports_backend("cuda")


class TestOccupancy:
    def test_full_occupancy_fermi(self):
        occ = compute_occupancy(get_device("tesla"), 32, 6,
                                regs_per_thread=20, smem_per_block=0)
        assert occ.occupancy == 1.0
        assert occ.limited_by in ("blocks", "warps")

    def test_128x1_fermi_block_limited(self):
        # 4 warps/block, 8 blocks max -> 32 of 48 warps
        occ = compute_occupancy(get_device("tesla"), 128, 1, 20, 0)
        assert occ.blocks_per_simd == 8
        assert occ.active_warps == 32
        assert occ.occupancy == pytest.approx(32 / 48)

    def test_register_limited(self):
        occ = compute_occupancy(get_device("tesla"), 32, 16, 60, 0)
        assert occ.limited_by == "registers"
        assert occ.occupancy < 1.0

    def test_smem_limited(self):
        occ = compute_occupancy(get_device("tesla"), 32, 8, 20,
                                smem_per_block=24 * 1024)
        assert occ.limited_by == "smem"
        assert occ.blocks_per_simd == 2

    def test_block_too_large_raises(self):
        with pytest.raises(MappingError):
            compute_occupancy(get_device("quadro"), 1024, 1, 20, 0)
        with pytest.raises(MappingError):
            compute_occupancy(get_device("hd5870"), 512, 1, 20, 0)

    def test_too_many_registers_raises(self):
        with pytest.raises(MappingError):
            compute_occupancy(get_device("tesla"), 128, 1, 100, 0)

    def test_too_much_smem_raises(self):
        with pytest.raises(MappingError):
            compute_occupancy(get_device("quadro"), 128, 1, 20,
                              smem_per_block=20 * 1024)

    def test_gt200_warp_pair_allocation(self):
        # 48 threads = 2 warps raw; GT200 allocates warp pairs, so a
        # 33-thread block also consumes 2 warps
        occ33 = compute_occupancy(get_device("quadro"), 33, 1, 16, 0)
        occ64 = compute_occupancy(get_device("quadro"), 64, 1, 16, 0)
        assert occ33.warps_per_block == occ64.warps_per_block == 2

    def test_gt200_block_granular_registers(self):
        d = get_device("quadro")
        # 256 threads x 30 regs = 7680 -> ceil to 512-unit = 7680;
        # 16384 // 7680 = 2 blocks
        occ = compute_occupancy(d, 256, 1, 30, 0)
        assert occ.blocks_per_simd == 2

    @settings(max_examples=60)
    @given(regs=st.integers(10, 63), smem=st.integers(0, 40000),
           bx=st.sampled_from([32, 64, 128, 256]),
           by=st.sampled_from([1, 2, 4]))
    def test_occupancy_bounded_and_consistent(self, regs, smem, bx, by):
        d = get_device("tesla")
        try:
            occ = compute_occupancy(d, bx, by, regs, smem)
        except MappingError:
            return
        assert 0 < occ.occupancy <= 1.0
        assert occ.blocks_per_simd >= 1
        assert occ.active_warps <= d.max_warps_per_simd
        assert occ.blocks_per_simd * bx * by <= d.max_threads_per_simd

    @settings(max_examples=40)
    @given(regs=st.integers(10, 40))
    def test_monotone_in_registers(self, regs):
        d = get_device("tesla")
        lo = compute_occupancy(d, 256, 1, regs, 0)
        hi = compute_occupancy(d, 256, 1, regs + 20, 0)
        assert hi.occupancy <= lo.occupancy

    @settings(max_examples=40)
    @given(smem=st.integers(0, 20000))
    def test_monotone_in_smem(self, smem):
        d = get_device("tesla")
        lo = compute_occupancy(d, 256, 1, 20, smem)
        hi = compute_occupancy(d, 256, 1, 20, smem + 8192)
        assert hi.occupancy <= lo.occupancy


class TestResources:
    def _ir(self):
        from repro.evaluation.variants import _bilateral_ir
        return _bilateral_ir(True, "clamp", 3, 5.0)

    def test_basic_estimate(self):
        r = estimate_resources(self._ir(), get_device("tesla"))
        assert 10 <= r.registers_per_thread <= 63
        assert r.instruction_mix.global_reads > 0
        assert r.fits(get_device("tesla"))

    def test_texture_and_smem_add_registers(self):
        base = estimate_resources(self._ir(), get_device("tesla"))
        tex = estimate_resources(self._ir(), get_device("tesla"),
                                 use_texture=True)
        smem = estimate_resources(self._ir(), get_device("tesla"),
                                  use_smem=True)
        assert tex.registers_per_thread > base.registers_per_thread
        assert smem.registers_per_thread > base.registers_per_thread

    def test_border_variants_add_registers(self):
        base = estimate_resources(self._ir(), get_device("tesla"),
                                  border_variants=1)
        spec = estimate_resources(self._ir(), get_device("tesla"),
                                  border_variants=9)
        assert spec.registers_per_thread > base.registers_per_thread

    def test_capped_at_device_max(self):
        r = estimate_resources(self._ir(), get_device("tesla"),
                               use_texture=True, use_smem=True,
                               border_variants=9, unrolled=True)
        assert r.registers_per_thread <= 63

    def test_smem_tile_bytes_matches_listing7(self):
        # __shared__ float smem[SY + BSY][SX + BSX + 1]
        assert smem_tile_bytes((32, 4), (13, 13), 4) == \
            (4 + 12) * (32 + 12 + 1) * 4

    def test_smem_tile_point_window(self):
        assert smem_tile_bytes((32, 4), (1, 1), 4) == 4 * (33) * 4
