"""Calibration freeze: the timing model's table outputs are pinned to a
committed snapshot (``tests/data_timing_snapshot.json``).

The model is deterministic, so any drift means someone changed a
calibration constant or a mechanism.  That can be intentional — then
regenerate the snapshot (see the module-level docstring of
``scripts/generate_experiments.py``) *and* re-check EXPERIMENTS.md — but
it must never happen silently.
"""

import json
import os

import pytest

from repro.evaluation.figure4 import figure4_exploration
from repro.evaluation.opencv_cmp import gaussian_table
from repro.evaluation.variants import bilateral_table

SNAPSHOT_PATH = os.path.join(os.path.dirname(__file__),
                             "data_timing_snapshot.json")

#: generous drift bound — catches constant changes, tolerates float noise
RTOL = 1e-3


@pytest.fixture(scope="module")
def snapshot():
    with open(SNAPSHOT_PATH) as fh:
        return json.load(fh)


def _assert_row_close(got, want, context):
    for mode, expected in want.items():
        actual = got[mode]
        if isinstance(expected, str):
            assert actual == expected, (context, mode)
        else:
            assert actual == pytest.approx(expected, rel=RTOL), \
                (context, mode, actual, expected)


@pytest.mark.parametrize("key", [
    "Tesla C2050|cuda", "Tesla C2050|opencl",
    "Quadro FX 5800|cuda", "Quadro FX 5800|opencl",
    "Radeon HD 5870|opencl", "Radeon HD 6970|opencl",
])
def test_bilateral_tables_frozen(snapshot, key):
    device, backend = key.split("|")
    table = bilateral_table(device, backend)
    frozen = snapshot["bilateral"][key]
    assert set(table) == set(frozen)
    for name, row in frozen.items():
        _assert_row_close(table[name], row, f"{key}/{name}")


@pytest.mark.parametrize("key", [
    "Tesla C2050|3", "Tesla C2050|5",
    "Quadro FX 5800|3", "Quadro FX 5800|5",
])
def test_gaussian_tables_frozen(snapshot, key):
    device, size = key.rsplit("|", 1)
    table = gaussian_table(device, int(size))
    frozen = snapshot["gaussian"][key]
    for name, row in frozen.items():
        _assert_row_close(table[name], row, f"{key}/{name}")


def test_figure4_frozen(snapshot):
    frozen = snapshot["figure4"]
    result = figure4_exploration()
    assert list(result.heuristic_block) == frozen["heuristic_block"]
    assert result.heuristic_ms == pytest.approx(frozen["heuristic_ms"],
                                                rel=RTOL)
    assert result.best.time_ms == pytest.approx(frozen["best_ms"],
                                                rel=RTOL)
    assert len(result.points) == frozen["n_points"]
