"""Synthetic data generators and table reporting utilities."""

import numpy as np
import pytest

from repro.data import (
    angiography_image,
    gradient_image,
    impulse_noise_image,
    vessel_tree,
)
from repro.reporting.tables import (
    format_cell,
    format_comparison_table,
    format_table,
    marker_agreement,
    relative_errors,
    shape_check,
)


class TestSyntheticData:
    def test_angiography_range_and_dtype(self):
        img = angiography_image(64, 48, seed=0)
        assert img.shape == (48, 64)
        assert img.dtype == np.float32
        assert 0.0 <= img.min() and img.max() <= 1.0

    def test_deterministic_per_seed(self):
        a = angiography_image(32, 32, seed=5)
        b = angiography_image(32, 32, seed=5)
        np.testing.assert_array_equal(a, b)
        c = angiography_image(32, 32, seed=6)
        assert not np.array_equal(a, c)

    def test_noise_parameter(self):
        clean = angiography_image(64, 64, seed=1, noise_sigma=0.0)
        noisy = angiography_image(64, 64, seed=1, noise_sigma=0.05)
        assert np.abs(noisy - clean).std() > 0.01

    def test_vessels_darker_than_background(self):
        img = angiography_image(96, 96, seed=2, noise_sigma=0.0)
        vessels = vessel_tree(96, 96, seed=2) > 0.5
        if vessels.sum() > 50:
            assert img[vessels].mean() < img[~vessels].mean()

    def test_vessel_tree_nonempty(self):
        tree = vessel_tree(64, 64, seed=0)
        assert tree.max() > 0.5
        assert 0 < (tree > 0.25).mean() < 0.6

    def test_impulse_noise_density(self):
        base = np.full((64, 64), 0.5, np.float32)
        img = impulse_noise_image(64, 64, seed=0, density=0.10, base=base)
        extremes = ((img == 0.0) | (img == 1.0)).mean()
        assert 0.05 < extremes < 0.15

    def test_gradient_image(self):
        img = gradient_image(32, 16)
        assert img.shape == (16, 32)
        assert img[0, 0] == 0.0
        assert img.max() == pytest.approx(1.0)
        assert np.all(np.diff(img, axis=1) >= 0)


class TestReporting:
    MODEL = {
        "A": {"clamp": 100.0, "repeat": 150.0},
        "B": {"clamp": "crash", "repeat": 75.0},
    }
    PAPER = {
        "A": [110.0, 140.0],
        "B": ["crash", 80.0],
    }
    MODES = ["clamp", "repeat"]

    def test_format_cell(self):
        assert format_cell(1.2345) == "1.23"
        assert format_cell("n/a") == "n/a"

    def test_format_table_layout(self):
        text = format_table(self.MODEL, self.MODES, title="T")
        assert text.startswith("T")
        assert "crash" in text
        assert "100.00" in text

    def test_comparison_table(self):
        text = format_comparison_table(self.MODEL, self.PAPER, self.MODES)
        assert "100/110" in text
        assert "crash/crash" in text

    def test_relative_errors(self):
        errs = relative_errors(self.MODEL, self.PAPER, self.MODES)
        assert len(errs) == 3          # crash cells skipped
        assert errs[0] == pytest.approx(10 / 110)

    def test_marker_agreement_clean(self):
        assert not list(marker_agreement(self.MODEL, self.PAPER,
                                         self.MODES))

    def test_marker_agreement_mismatch(self):
        model = {"A": {"clamp": "crash"}}
        paper = {"A": [100.0]}
        issues = list(marker_agreement(model, paper, ["clamp"]))
        assert len(issues) == 1

    def test_shape_check(self):
        assert shape_check("x", True).startswith("[PASS]")
        assert shape_check("x", False, "why").startswith("[FAIL]")
