"""Differential property testing over randomly generated kernel IR.

A hypothesis strategy builds arbitrary (type-correct) kernel programs from
the IR grammar — nested loops, branches, accessor/mask reads, intrinsic
calls, integer and float arithmetic.  Invariants checked:

* the vectorised executor equals the scalar reference interpreter;
* every IR transform (constant propagation, unrolling, CSE, LICM, the
  full device-optimization pipeline) preserves outputs bit-exactly;
* region-specialised launch equals inline whole-image execution;
* both code generators accept every generated kernel and emit
  structurally balanced source.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Boundary, BorderMode, CodegenOptions
from repro.backends import generate
from repro.backends.border import Side
from repro.dsl import Accessor, BoundaryCondition, Image, Mask
from repro.frontend.parser import accessor_objects
from repro.ir import nodes as N
from repro.ir import propagate_constants, typecheck_kernel, unroll_loops
from repro.ir.optimize import (
    eliminate_common_subexpressions,
    hoist_loop_invariants,
    optimize_for_device,
)
from repro.sim.executor import evaluate_body
from repro.types import FLOAT

# --repro-seed (conftest.py) pins the global RNGs; together with the
# derandomized hypothesis profile every failure here replays exactly
pytestmark = pytest.mark.usefixtures("repro_seed")

WIDTH, HEIGHT = 14, 11
MASK_SIZE = 3
HALF = MASK_SIZE // 2

#: intrinsics safe on arbitrary float inputs in [-2, 2]
_SAFE_CALLS = ["fabs", "cos", "sin", "tanh", "floor", "fmin", "fmax"]


@st.composite
def float_expr(draw, depth, loop_vars):
    """A float-typed expression."""
    if depth <= 0:
        choice = draw(st.integers(0, 2))
        if choice == 0:
            return N.FloatConst(
                draw(st.floats(-2.0, 2.0, allow_nan=False,
                               width=32)))
        if choice == 1 and loop_vars:
            v = draw(st.sampled_from(loop_vars))
            return N.Cast(FLOAT, N.VarRef(v))
        return N.AccessorRead("inp",
                              N.IntConst(draw(st.integers(-HALF, HALF))),
                              N.IntConst(draw(st.integers(-HALF, HALF))))
    choice = draw(st.integers(0, 4))
    if choice == 0:
        op = draw(st.sampled_from(["+", "-", "*"]))
        return N.BinOp(op, draw(float_expr(depth - 1, loop_vars)),
                       draw(float_expr(depth - 1, loop_vars)))
    if choice == 1:
        fn = draw(st.sampled_from(_SAFE_CALLS))
        if fn in ("fmin", "fmax"):
            return N.Call(fn, (draw(float_expr(depth - 1, loop_vars)),
                               draw(float_expr(depth - 1, loop_vars))))
        return N.Call(fn, (draw(float_expr(depth - 1, loop_vars)),))
    if choice == 2:
        cond = N.BinOp(draw(st.sampled_from(["<", ">", "<=", ">="])),
                       draw(float_expr(depth - 1, loop_vars)),
                       draw(float_expr(depth - 1, loop_vars)))
        return N.Select(cond, draw(float_expr(depth - 1, loop_vars)),
                        draw(float_expr(depth - 1, loop_vars)))
    if choice == 3 and loop_vars:
        v = draw(st.sampled_from(loop_vars))
        return N.MaskRead("m", N.VarRef(v), N.IntConst(0))
    return N.UnOp("-", draw(float_expr(depth - 1, loop_vars)))


@st.composite
def stmt_block(draw, depth, loop_vars, declared, loop_budget):
    """A statement list declaring/updating float locals."""
    stmts = []
    n = draw(st.integers(1, 3))
    for _ in range(n):
        kind = draw(st.integers(0, 3))
        if kind == 0 or not declared:
            name = f"v{len(declared)}_{draw(st.integers(0, 999))}"
            if any(name == d for d in declared):
                continue
            stmts.append(N.VarDecl(
                name, draw(float_expr(2, loop_vars)), FLOAT))
            declared = declared + [name]
        elif kind == 1:
            target = draw(st.sampled_from(declared))
            stmts.append(N.Assign(
                target, draw(float_expr(2, loop_vars))))
        elif kind == 2 and depth > 0:
            cond = N.BinOp("<", draw(float_expr(1, loop_vars)),
                           draw(float_expr(1, loop_vars)))
            then_b, _ = draw(stmt_block(depth - 1, loop_vars, declared,
                                        0))
            else_b, _ = draw(stmt_block(depth - 1, loop_vars, declared,
                                        0))
            stmts.append(N.If(cond, then_b, else_b))
        elif kind == 3 and depth > 0 and loop_budget > 0:
            var = f"i{len(loop_vars)}_{draw(st.integers(0, 999))}"
            lo = draw(st.integers(-HALF, 0))
            hi = draw(st.integers(0, HALF)) + 1
            body, _ = draw(stmt_block(depth - 1, loop_vars + [var],
                                      declared, loop_budget - 1))
            stmts.append(N.ForRange(var, N.IntConst(lo), N.IntConst(hi),
                                    N.IntConst(1), body))
    return stmts, declared


@st.composite
def random_kernel(draw):
    body, declared = draw(stmt_block(2, [], [], 2))
    result = draw(float_expr(2, []))
    if declared:
        result = N.BinOp("+", result, N.VarRef(draw(
            st.sampled_from(declared))))
    body = body + [N.OutputWrite(result)]
    mode = draw(st.sampled_from([Boundary.CLAMP, Boundary.MIRROR,
                                 Boundary.REPEAT, Boundary.CONSTANT]))
    kernel = N.KernelIR(
        name="RandomKernel",
        pixel_type=FLOAT,
        body=body,
        accessors=[N.AccessorInfo("inp", FLOAT, mode.value,
                                  boundary_constant=0.25,
                                  window=(MASK_SIZE, MASK_SIZE),
                                  is_read=True)],
        masks=[N.MaskInfo("m", FLOAT, (MASK_SIZE, MASK_SIZE),
                          coefficients=np.linspace(
                              -1, 1, MASK_SIZE * MASK_SIZE,
                              dtype=np.float32).reshape(MASK_SIZE,
                                                        MASK_SIZE))],
    )
    return typecheck_kernel(kernel), mode


def _accessors(mode):
    rng = np.random.default_rng(7)
    img = Image(WIDTH, HEIGHT).set_data(
        (rng.random((HEIGHT, WIDTH)) * 4 - 2).astype(np.float32))
    if mode == Boundary.CONSTANT:
        bc = BoundaryCondition(img, MASK_SIZE, MASK_SIZE, mode,
                               constant=0.25)
    else:
        bc = BoundaryCondition(img, MASK_SIZE, MASK_SIZE, mode)
    return {"inp": Accessor(bc)}


def _run(kernel, accessors):
    gx, gy = np.meshgrid(np.arange(WIDTH), np.arange(HEIGHT))
    return evaluate_body(kernel, accessors, gx, gy, Side.BOTH, Side.BOTH)


class TestRandomKernels:
    @settings(max_examples=60, deadline=None)
    @given(random_kernel())
    def test_transforms_preserve_semantics(self, case):
        kernel, mode = case
        accessors = _accessors(mode)
        baseline = _run(kernel, accessors)
        for transform in (propagate_constants,
                          lambda k: unroll_loops(propagate_constants(k)),
                          eliminate_common_subexpressions,
                          hoist_loop_invariants,
                          optimize_for_device):
            result = _run(transform(kernel), accessors)
            np.testing.assert_array_equal(baseline, result,
                                          err_msg=transform.__name__
                                          if hasattr(transform,
                                                     "__name__") else "")

    @settings(max_examples=40, deadline=None)
    @given(random_kernel())
    def test_vectorised_equals_reference(self, case):
        from repro.sim.reference import execute_reference
        kernel, mode = case
        accessors = _accessors(mode)
        fast = _run(kernel, accessors)
        slow = execute_reference(kernel, accessors, WIDTH, HEIGHT)
        np.testing.assert_array_equal(fast, slow)

    @settings(max_examples=30, deadline=None)
    @given(random_kernel())
    def test_specialized_launch_equals_inline(self, case):
        from repro.hwmodel import get_device
        from repro.sim.launch import simulate_launch
        kernel, mode = case
        accessors = _accessors(mode)
        img = next(iter(accessors.values())).image
        from repro.dsl import IterationSpace
        out_spec = Image(WIDTH, HEIGHT)
        out_inline = Image(WIDTH, HEIGHT)
        dev = get_device("quadro")
        simulate_launch(kernel, accessors, IterationSpace(out_spec),
                        CodegenOptions(backend="cuda", block=(8, 2),
                                       border=BorderMode.SPECIALIZED),
                        dev)
        simulate_launch(kernel, accessors, IterationSpace(out_inline),
                        CodegenOptions(backend="cuda", block=(8, 2),
                                       border=BorderMode.INLINE), dev)
        np.testing.assert_array_equal(out_spec.get_data(),
                                      out_inline.get_data())

    @settings(max_examples=30, deadline=None)
    @given(random_kernel())
    def test_codegen_accepts_all(self, case):
        kernel, mode = case
        for backend in ("cuda", "opencl", "cpu"):
            src = generate(kernel, CodegenOptions(backend=backend),
                           launch_geometry=(WIDTH, HEIGHT))
            code = src.device_code
            assert code.count("{") == code.count("}")
            assert code.count("(") == code.count(")")
            assert src.entry in code

    @settings(max_examples=12, deadline=None)
    @given(random_kernel())
    def test_native_compiled_c_equals_simulator(self, case):
        """The ultimate differential check: generate C for the random
        kernel, compile it with the system compiler, run it on real
        hardware, and demand near-bit-exact agreement with the Python
        simulator (FMA contraction and libm rounding allow 1-2 ULP)."""
        import ctypes
        import hashlib
        import os
        import subprocess
        import tempfile

        from repro.runtime.native import find_c_compiler

        cc = find_c_compiler()
        if cc is None:
            pytest.skip("no C compiler on PATH")
        kernel, mode = case
        accessors = _accessors(mode)
        sim = _run(kernel, accessors)

        src = generate(kernel, CodegenOptions(backend="cpu"),
                       launch_geometry=(WIDTH, HEIGHT))
        tag = hashlib.sha1(src.device_code.encode()).hexdigest()[:12]
        workdir = os.path.join(tempfile.gettempdir(),
                               "hipacc_py_native_fuzz")
        os.makedirs(workdir, exist_ok=True)
        c_path = os.path.join(workdir, f"k_{tag}.c")
        so_path = os.path.join(workdir, f"k_{tag}.so")
        if not os.path.exists(so_path):
            with open(c_path, "w") as fh:
                fh.write(src.device_code)
            # -ffp-contract=off: the simulator does not fuse a*b+c
            result = subprocess.run(
                [cc, "-O2", "-ffp-contract=off", "-shared", "-fPIC",
                 "-std=c99", "-lm", c_path, "-o", so_path],
                capture_output=True, text=True, timeout=120)
            assert result.returncode == 0, result.stderr
        lib = ctypes.CDLL(so_path)
        fn = getattr(lib, src.entry)
        fn.restype = None
        out = np.zeros((HEIGHT, WIDTH), dtype=np.float32)
        img = np.ascontiguousarray(
            accessors["inp"].image.pixels.astype(np.float32))
        fn(out.ctypes.data_as(ctypes.c_void_p), ctypes.c_int(WIDTH),
           img.ctypes.data_as(ctypes.c_void_p), ctypes.c_int(WIDTH),
           ctypes.c_int(HEIGHT), ctypes.c_int(img.shape[1]),
           ctypes.c_int(WIDTH), ctypes.c_int(HEIGHT),
           ctypes.c_int(0), ctypes.c_int(0))
        np.testing.assert_allclose(out, sim, rtol=1e-5, atol=1e-5)
