"""IR transformations: constant propagation, unrolling, CSE, LICM.

The master invariant for every transform: the functional executor must
produce bit-identical results before and after.
"""

import numpy as np
import pytest

from repro import Boundary
from repro.backends.border import Side
from repro.frontend import parse_kernel
from repro.frontend.parser import accessor_objects
from repro.ir import nodes as N
from repro.ir import (
    propagate_constants,
    typecheck_kernel,
    unroll_loops,
)
from repro.ir.optimize import (
    eliminate_common_subexpressions,
    hoist_loop_invariants,
    optimize_for_device,
)
from repro.ir.visitors import iter_all_exprs, walk_stmts
from repro.sim.executor import evaluate_body

from .helpers import (
    BranchKernel,
    ConvolveSyntax,
    IntArithmetic,
    IterationSpace,
    MaskConvolution,
    PositionKernel,
    accessor_for,
    box_mask,
    build_image_pair,
    random_image,
)


def _compiled(kernel_cls, *args, window=3, mode=Boundary.CLAMP, **kwargs):
    src, dst = build_image_pair(12, 10, data=random_image(12, 10, seed=5))
    k = kernel_cls(IterationSpace(dst), accessor_for(src, window, mode),
                   *args, **kwargs)
    return typecheck_kernel(parse_kernel(k)), accessor_objects(k)


def _run(ir, accessors):
    gx, gy = np.meshgrid(np.arange(12), np.arange(10))
    return evaluate_body(ir, accessors, gx, gy, Side.BOTH, Side.BOTH)


TRANSFORMS = [
    ("propagate_constants", lambda k: propagate_constants(k)),
    ("propagate_with_masks",
     lambda k: propagate_constants(k, fold_masks=True)),
    ("unroll", lambda k: unroll_loops(propagate_constants(k))),
    ("cse", eliminate_common_subexpressions),
    ("licm", hoist_loop_invariants),
    ("optimize_for_device", optimize_for_device),
]

KERNELS = [
    ("conv", MaskConvolution, (box_mask(3), 1, 1), {}),
    ("convolve_syntax", ConvolveSyntax, (box_mask(3),), {}),
    ("branch", BranchKernel, (0.5,), {}),
    ("position", PositionKernel, (), {}),
    ("int_arith", IntArithmetic, (), {}),
]


class TestSemanticsPreserved:
    @pytest.mark.parametrize("tname,transform",
                             TRANSFORMS, ids=[t[0] for t in TRANSFORMS])
    @pytest.mark.parametrize("kname,cls,args,kwargs",
                             KERNELS, ids=[k[0] for k in KERNELS])
    def test_transform_preserves_output(self, tname, transform, kname,
                                        cls, args, kwargs):
        ir, accessors = _compiled(cls, *args, **kwargs)
        before = _run(ir, accessors)
        after = _run(transform(ir), accessors)
        np.testing.assert_array_equal(before, after)


class TestConstantPropagation:
    def test_folds_arithmetic(self):
        ir, _ = _compiled(MaskConvolution, box_mask(3), 1, 1)
        folded = propagate_constants(ir)
        loops = [s for s in walk_stmts(folded.body)
                 if isinstance(s, N.ForRange)]
        for loop in loops:
            assert N.const_int_value(loop.start) is not None
            assert isinstance(loop.stop, N.IntConst) or \
                N.const_int_value(loop.stop) is not None

    def test_folds_mask_reads(self):
        ir, _ = _compiled(MaskConvolution, box_mask(3), 1, 1)
        unrolled = unroll_loops(propagate_constants(ir))
        folded = propagate_constants(unrolled, fold_masks=True)
        remaining = [e for e in iter_all_exprs(folded.body)
                     if isinstance(e, N.MaskRead)]
        assert not remaining

    def test_folds_intrinsics(self):
        body = [N.OutputWrite(N.Call("sqrt", (N.FloatConst(4.0),)))]
        k = N.KernelIR("t", ir_pixel(), body)
        folded = propagate_constants(typecheck_kernel(k))
        out = folded.body[0].value
        assert isinstance(out, N.FloatConst)
        assert out.value == pytest.approx(2.0)

    def test_dead_branch_eliminated(self):
        body = [
            N.If(N.BinOp("<", N.IntConst(1), N.IntConst(2)),
                 [N.OutputWrite(N.FloatConst(1.0))],
                 [N.OutputWrite(N.FloatConst(2.0))]),
        ]
        k = typecheck_kernel(N.KernelIR("t", ir_pixel(), body))
        folded = propagate_constants(k)
        assert len(folded.body) == 1
        assert isinstance(folded.body[0], N.OutputWrite)
        assert folded.body[0].value.value == 1.0

    def test_algebraic_identities(self):
        x = N.VarRef("x")
        body = [
            N.VarDecl("x", N.FloatConst(0.0)),
            N.Assign("x", N.BinOp("*", N.FloatConst(1.0),
                                  N.BinOp("+", x, N.FloatConst(0.0)))),
            N.OutputWrite(N.VarRef("x")),
        ]
        k = typecheck_kernel(N.KernelIR("t", ir_pixel(), body))
        folded = propagate_constants(k)
        # x * 1 and x + 0 simplify away: assignment becomes plain x (a
        # Cast at most)
        assign = folded.body[1]
        ops = [e for e in iter_all_exprs([assign])
               if isinstance(e, N.BinOp)]
        assert not ops


def ir_pixel():
    from repro.types import FLOAT
    return FLOAT


class TestUnrolling:
    def test_removes_constant_loops(self):
        ir, _ = _compiled(MaskConvolution, box_mask(3), 1, 1)
        unrolled = unroll_loops(propagate_constants(ir))
        loops = [s for s in walk_stmts(unrolled.body)
                 if isinstance(s, N.ForRange)]
        assert not loops

    def test_respects_budget(self):
        ir, _ = _compiled(MaskConvolution, box_mask(3), 1, 1)
        kept = unroll_loops(propagate_constants(ir), max_body_stmts=4)
        loops = [s for s in walk_stmts(kept.body)
                 if isinstance(s, N.ForRange)]
        assert loops             # too big to unroll within the budget

    def test_unrolled_locals_renamed(self):
        ir, _ = _compiled(ConvolveSyntax, box_mask(3))
        unrolled = unroll_loops(propagate_constants(ir))
        names = [s.name for s in walk_stmts(unrolled.body)
                 if isinstance(s, N.VarDecl)]
        assert len(names) == len(set(names)), "duplicate declarations"


class TestCseAndLicm:
    def test_cse_introduces_temps_for_repeats(self):
        from repro.evaluation.variants import _bilateral_ir
        ir = _bilateral_ir(False, "clamp", 2, 5.0)
        out = eliminate_common_subexpressions(ir)
        temps = [s.name for s in walk_stmts(out.body)
                 if isinstance(s, N.VarDecl) and s.name.startswith("_cse")]
        assert temps

    def test_cse_no_temps_without_repeats(self):
        ir, _ = _compiled(PositionKernel)
        out = eliminate_common_subexpressions(ir)
        temps = [s for s in walk_stmts(out.body)
                 if isinstance(s, N.VarDecl)
                 and s.name.startswith("_cse")]
        assert not temps

    def test_licm_moves_centre_read_out(self):
        from repro.evaluation.variants import _bilateral_ir
        ir = _bilateral_ir(True, "clamp", 2, 5.0)
        out = hoist_loop_invariants(ir)
        # the centre read input(0,0) must appear before the outer loop
        pre_loop = []
        for s in out.body:
            if isinstance(s, N.ForRange):
                break
            pre_loop.append(s)
        centre_reads = [e for s in pre_loop
                        for e in iter_all_exprs([s])
                        if isinstance(e, N.AccessorRead)]
        assert centre_reads

    def test_repeated_optimization_is_stable(self):
        from repro.evaluation.variants import _bilateral_ir
        from repro.ir.analysis import count_instruction_mix
        ir = _bilateral_ir(False, "clamp", 2, 5.0)
        once = optimize_for_device(ir)
        twice = optimize_for_device(once)
        m1 = count_instruction_mix(once.body)
        m2 = count_instruction_mix(twice.body)
        assert m2.global_reads == m1.global_reads
        assert m2.sfu == m1.sfu

    def test_no_name_collisions_across_passes(self):
        from repro.evaluation.variants import _bilateral_ir
        ir = optimize_for_device(_bilateral_ir(False, "clamp", 2, 5.0),
                                 passes=3)
        seen = set()
        dupes = []

        def check(body, scope):
            local = set()
            for s in body:
                if isinstance(s, N.VarDecl):
                    if s.name in scope or s.name in local:
                        dupes.append(s.name)
                    local.add(s.name)
                elif isinstance(s, N.ForRange):
                    check(s.body, scope | local)
                elif isinstance(s, N.If):
                    check(s.then_body, scope | local)
                    check(s.else_body, scope | local)
            return local

        check(ir.body, seen)
        assert not dupes
