"""Differential tests for the graph scheduler.

The bar is *byte-identical*: a pipeline graph run — any combination of
fusion, buffer pooling and thread-parallel branches — must produce
exactly the pixels of the manual ``compile_kernel(...).execute()``
chain, because every transformation (fusion's intermediate cast, the
pool's pre-padded zeroed buffers, the dependency-ordered parallel
dispatch) is designed to be value-preserving.
"""

import numpy as np
import pytest

from repro import (
    Accessor,
    Boundary,
    BoundaryCondition,
    CompilationCache,
    Image,
    IterationSpace,
    Mask,
    PipelineGraph,
    compile_kernel,
)
from repro.filters.point_ops import AddConstant, GammaCorrection, Scale
from repro.filters.sobel import (SOBEL_X, SOBEL_Y, GradientMagnitude,
                                 SobelX, SobelY)
from repro.graph import execute_graph

from .helpers import random_image

# padded rows (stride 128 floats) x 96 land exactly on the pool's 4 KiB
# bucket quantum, so peak-vs-naive comparisons are exact
W, H = 128, 96


def _edge_kernels(frame):
    """median-free edge chain: sobel-x/y -> magnitude -> scale -> gamma."""
    src = Image(W, H, float, name="src")
    src.set_data(frame)
    gx = Image(W, H, float, name="gx")
    gy = Image(W, H, float, name="gy")
    mag = Image(W, H, float, name="mag")
    scaled = Image(W, H, float, name="scaled")
    out = Image(W, H, float, name="out")
    bc = BoundaryCondition(src, 3, 3, Boundary.CLAMP)
    kernels = [
        SobelX(IterationSpace(gx), Accessor(bc), Mask(3, 3).set(SOBEL_X)),
        SobelY(IterationSpace(gy), Accessor(bc), Mask(3, 3).set(SOBEL_Y)),
        GradientMagnitude(IterationSpace(mag), Accessor(gx), Accessor(gy)),
        Scale(IterationSpace(scaled), Accessor(mag), 0.25),
        GammaCorrection(IterationSpace(out), Accessor(scaled), 0.8),
    ]
    return kernels, out


def _manual_reference(frame):
    kernels, out = _edge_kernels(frame)
    for k in kernels:
        compile_kernel(k, device="Tesla C2050").execute()
    return out.get_data().copy()


def _graph_run(frame, **kwargs):
    kernels, out = _edge_kernels(frame)
    g = PipelineGraph("edge")
    for k in kernels:
        g.add_kernel(k, device="Tesla C2050")
    g.mark_output(out)
    report = execute_graph(g, **kwargs)
    return out.get_data().copy(), report


@pytest.fixture(scope="module")
def frame():
    return random_image(W, H)


@pytest.fixture(scope="module")
def reference(frame):
    return _manual_reference(frame)


@pytest.mark.parametrize("workers", [1, 4])
@pytest.mark.parametrize("fuse", [False, True])
@pytest.mark.parametrize("pool", [False, True])
def test_graph_matches_manual_chain(frame, reference, workers, fuse,
                                    pool):
    result, report = _graph_run(frame, workers=workers, fuse=fuse,
                                pool=pool)
    assert np.array_equal(result, reference)
    assert report.launches == (3 if fuse else 5)


def test_threaded_execution_deterministic(frame):
    serial, _ = _graph_run(frame, workers=1)
    for _ in range(5):
        threaded, _ = _graph_run(frame, workers=4)
        assert np.array_equal(serial, threaded)


def test_pool_reuses_buffers_and_reduces_peak(frame):
    # unfused, pooled, serial: the linear tail (mag -> scaled) frees
    # buffers early enough for later intermediates to recycle them
    _, report = _graph_run(frame, workers=1, fuse=False, pool=True)
    stats = report.pool
    assert stats.reuses > 0
    assert stats.releases == stats.allocs + stats.reuses
    assert 0 < stats.peak_bytes < stats.naive_bytes
    assert stats.saved_bytes == stats.naive_bytes - stats.peak_bytes
    assert "KiB saved" in stats.summary()


def test_unpooled_peak_equals_naive(frame):
    _, report = _graph_run(frame, workers=1, fuse=False, pool=False)
    assert report.pool.peak_bytes == report.pool.naive_bytes
    assert report.pool.allocs == 0 and report.pool.reuses == 0


def test_shared_cache_across_nodes(frame):
    # two Scale launches with identical IR + geometry: the second compile
    # must be served from the shared cache (serial compile order)
    src = Image(W, H, float).set_data(frame)
    a = Image(W, H, float)
    b = Image(W, H, float)
    g = PipelineGraph()
    g.add_kernel(Scale(IterationSpace(a), Accessor(src), 2.0), name="s1")
    g.add_kernel(Scale(IterationSpace(b), Accessor(a), 2.0), name="s2")
    cache = CompilationCache()
    report = execute_graph(g, cache=cache, workers=1, fuse=False)
    assert not report.node("s1").from_cache
    assert report.node("s2").from_cache
    assert report.cache_hits == 1
    assert cache.stats.hits == 1
    expected = (frame * np.float32(2.0)) * np.float32(2.0)
    assert np.array_equal(b.get_data(), expected)


def test_graph_report_contents(frame):
    _, report = _graph_run(frame, workers=1, fuse=True, pool=True,
                           cache=CompilationCache())
    assert report.launches == len(report.nodes)
    assert report.total_device_ms == pytest.approx(
        sum(n.time_ms for n in report.nodes))
    text = report.summary()
    assert "launches" in text and "fusion:" in text and "pool:" in text
    assert "cache:" in text
    with pytest.raises(KeyError):
        report.node("nonexistent")


def test_rerun_same_graph_hits_cache(frame):
    cache = CompilationCache()
    _, first = _graph_run(frame, workers=1, cache=cache)
    assert first.cache_hits == 0
    result, second = _graph_run(frame, workers=1, cache=cache)
    assert second.cache_hits == second.launches
    assert np.array_equal(result, _graph_run(frame, workers=1)[0])


def test_single_node_graph_runs_serially(frame, monkeypatch):
    """compile_graph and the schedule short-circuit identically: no
    executor may be spun up for a single-node graph, whatever the
    worker count (the execute side used to check only workers == 1)."""
    import repro.graph.scheduler as sched

    def forbidden(*args, **kwargs):
        raise AssertionError(
            "ThreadPoolExecutor constructed for a single-node graph")

    monkeypatch.setattr(sched, "ThreadPoolExecutor", forbidden)
    src = Image(W, H, float).set_data(frame)
    out = Image(W, H, float)
    g = PipelineGraph("single")
    g.add_kernel(Scale(IterationSpace(out), Accessor(src), 2.0),
                 name="only")
    g.mark_output(out)
    report = execute_graph(g, workers=8)
    assert report.launches == 1
    assert np.array_equal(out.get_data(), frame * np.float32(2.0))


def test_pool_release_is_idempotent():
    from repro.graph.pool import BufferPool

    pool = BufferPool()
    img = Image(64, 64, float, name="tmp")
    pool.bind(img, 64)
    assert pool.stats.current_bytes > 0
    pool.release(img)
    assert pool.stats.current_bytes == 0
    pool.release(img)                   # second release: a no-op
    assert pool.stats.current_bytes == 0
    assert pool.stats.releases == 1
    pool.release(Image(8, 8, float))    # never bound: also a no-op
    assert pool.stats.releases == 1
    assert pool.live_count == 0


@pytest.mark.parametrize("workers", [1, 4])
def test_pool_drains_after_every_execution(frame, workers):
    from repro.graph.pool import BufferPool

    arena = BufferPool()
    _, report = _graph_run(frame, workers=workers, pool=arena)
    assert report.pool is arena.stats
    assert arena.stats.current_bytes == 0
    assert arena.live_count == 0
    assert arena.stats.releases == arena.stats.allocs \
        + arena.stats.reuses


def test_pool_drains_after_mid_schedule_error(frame):
    """A node's kernel raising mid-schedule must not leak pooled
    intermediates: current_bytes returns to 0 via the scheduler's
    error-path drain."""
    from repro.graph.pool import BufferPool
    from repro.graph.scheduler import compile_graph

    kernels, out = _edge_kernels(frame)
    g = PipelineGraph("edge")
    for k in kernels:
        g.add_kernel(k, device="Tesla C2050")
    g.mark_output(out)
    compile_graph(g)
    # magnitude fails after both sobel branches bound their buffers
    victim = next(n for n in g.nodes if "Magnitude" in n.label())

    def boom():
        raise RuntimeError("injected launch fault")

    victim.compiled.execute = boom
    arena = BufferPool()
    with pytest.raises(RuntimeError, match="injected launch fault"):
        execute_graph(g, workers=1, fuse=False, pool=arena)
    assert arena.stats.current_bytes == 0
    assert arena.live_count == 0


def test_pool_reset_keeps_arenas_warm(frame):
    """reset() between runs (the serve worker loop) must make the next
    run bind entirely from the free lists: zero new arena allocations,
    fresh per-run accounting, cumulative alloc/reuse counters intact."""
    from repro.graph.pool import BufferPool

    arena = BufferPool()
    _, first = _graph_run(frame, workers=1, fuse=False, pool=arena)
    cold_allocs = arena.stats.allocs
    assert cold_allocs > 0
    assert first.pool.naive_bytes > 0

    dropped = arena.reset()
    assert dropped == 0                       # scheduler already drained
    assert arena.stats.naive_bytes == 0
    assert arena.stats.peak_bytes == 0
    assert arena.stats.current_bytes == 0
    assert arena.stats.allocs == cold_allocs  # cumulative counters kept
    assert arena.reset() == 0                 # idempotent

    _, second = _graph_run(frame, workers=1, fuse=False, pool=arena)
    # the warm run reallocated nothing: every bind recycled a bucket
    assert arena.stats.allocs == cold_allocs
    assert arena.stats.reuses > cold_allocs
    assert second.pool.peak_bytes > 0         # accounting restarted


def test_pool_reset_drops_live_bindings():
    """A reset with live bindings (a request that died mid-flight)
    returns them to the free lists so the next bind reuses, not leaks."""
    from repro.graph.pool import BufferPool

    pool = BufferPool()
    img = Image(64, 64, float, name="tmp")
    pool.bind(img, 64)
    assert pool.live_count == 1
    assert pool.reset() == 1
    assert pool.live_count == 0
    assert pool.stats.current_bytes == 0
    again = Image(64, 64, float, name="tmp2")
    pool.bind(again, 64)
    assert pool.stats.allocs == 1             # recycled, not reallocated
    assert pool.stats.reuses == 1
