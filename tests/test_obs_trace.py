"""The tracing/metrics subsystem (:mod:`repro.obs`).

Three families of guarantees:

* **span mechanics** — nesting via per-thread stacks, parent-id
  stitching across thread-pool boundaries, measured-but-unrecorded
  behavior when no tracer is installed;
* **deterministic export** — the golden Chrome-trace test pins the span
  names and creation order a fixed compile workload produces, and the
  concurrency tests check parallel workers' spans keep correct parent
  ids (never interleave corruptly) under ``validate_chrome_trace``;
* **the stage-timings contract** — fresh-compile and cache-hit paths
  emit the identical key schema, with skipped stages present as 0.0.
"""

import json
import threading
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro import CompilationCache, compile_kernel
from repro.obs import (
    MetricsRegistry,
    STAGE_KEYS,
    TIMING_KEYS,
    Tracer,
    child_of,
    chrome_trace,
    current_id,
    enabled,
    get_tracer,
    json_trace,
    normalize_stage_timings,
    render,
    span,
    stage_sum_ms,
    stage_totals,
    text_summary,
    tracing,
    validate_chrome_trace,
    write_chrome_trace,
)

from .helpers import build_convolution

DEVICE = "Tesla C2050"


def _warm_optdb():
    """The per-device optimization database microbenchmarks lazily on
    first compile; run one untraced compile so golden traces don't
    depend on whether an earlier test already paid that cost."""
    compile_kernel(build_convolution(), device=DEVICE)


# --------------------------------------------------------------------------
# Span mechanics
# --------------------------------------------------------------------------


class TestSpanMechanics:
    def test_nesting_assigns_parent_ids(self):
        with tracing() as tracer:
            with span("outer") as outer:
                with span("inner.a") as a:
                    pass
                with span("inner.b") as b:
                    pass
        assert outer.parent_id is None
        assert a.parent_id == outer.span_id == b.parent_id
        names = [sp.name for sp in tracer.spans()]
        assert names == ["outer", "inner.a", "inner.b"]

    def test_span_ids_unique_and_creation_ordered(self):
        with tracing() as tracer:
            with span("a"):
                with span("b"):
                    pass
            with span("c"):
                pass
        ids = [sp.span_id for sp in tracer.spans()]
        assert len(ids) == len(set(ids))
        assert ids == sorted(ids)

    def test_attrs_travel_with_the_span(self):
        with tracing() as tracer:
            with span("work", kernel="gauss", pixels=42) as sp:
                sp.attrs["late"] = True
        recorded = tracer.spans()[0]
        assert recorded.attrs == {"kernel": "gauss", "pixels": 42,
                                  "late": True}

    def test_disabled_still_measures_but_records_nothing(self):
        assert not enabled()
        with span("unrecorded") as sp:
            x = sum(range(1000))
        assert x == 499500
        assert sp.duration_ms >= 0.0
        assert sp.end_us is not None
        assert get_tracer() is None

    def test_tracing_restores_previous_tracer(self):
        outer_tracer = Tracer("outer")
        with tracing(outer_tracer):
            with tracing() as inner:
                assert get_tracer() is inner
            assert get_tracer() is outer_tracer
        assert get_tracer() is None

    def test_exception_in_span_still_records(self):
        with tracing() as tracer:
            with pytest.raises(ValueError):
                with span("failing"):
                    raise ValueError("boom")
        assert [sp.name for sp in tracer.spans()] == ["failing"]
        assert tracer.spans()[0].end_us is not None


class TestThreadStitching:
    def test_child_of_adopts_parent_across_threads(self):
        with tracing() as tracer:
            with span("submit") as parent:
                token = current_id()
                assert token == parent.span_id

                def work():
                    with child_of(token):
                        with span("worker.task"):
                            pass

                t = threading.Thread(target=work)
                t.start()
                t.join()
        by_name = {sp.name: sp for sp in tracer.spans()}
        worker = by_name["worker.task"]
        assert worker.parent_id == by_name["submit"].span_id
        assert worker.thread_id != by_name["submit"].thread_id

    def test_child_of_none_is_a_noop(self):
        with tracing() as tracer:
            with child_of(None):
                with span("orphan"):
                    pass
        assert tracer.spans()[0].parent_id is None

    def test_pool_workers_keep_correct_parents(self):
        """Parallel workers' spans parent to the submitting span, get
        unique ids, and the export passes stack-discipline validation
        — the corruption mode would be interleaved per-thread stacks."""
        with tracing() as tracer:
            with span("fanout") as root:
                token = current_id()

                def work(i):
                    with child_of(token):
                        with span("chunk", index=i):
                            with span("chunk.step", index=i):
                                pass

                with ThreadPoolExecutor(max_workers=4) as pool:
                    list(pool.map(work, range(8)))
        spans = tracer.spans()
        chunks = [sp for sp in spans if sp.name == "chunk"]
        steps = [sp for sp in spans if sp.name == "chunk.step"]
        assert len(chunks) == len(steps) == 8
        assert all(c.parent_id == root.span_id for c in chunks)
        chunk_by_index = {c.attrs["index"]: c.span_id for c in chunks}
        for step in steps:
            assert step.parent_id == chunk_by_index[step.attrs["index"]]
        ids = [sp.span_id for sp in spans]
        assert len(ids) == len(set(ids))
        assert validate_chrome_trace(chrome_trace(tracer)) == []


# --------------------------------------------------------------------------
# Export + validation
# --------------------------------------------------------------------------


class TestExport:
    def _small_trace(self):
        tracer = Tracer()
        with tracing(tracer):
            with span("top", label="t"):
                with span("top.child"):
                    pass
        return tracer

    def test_chrome_trace_shape(self):
        doc = chrome_trace(self._small_trace())
        assert validate_chrome_trace(doc) == []
        xs = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        assert [e["name"] for e in xs] == ["top", "top.child"]
        assert xs[1]["args"]["parent_id"] == xs[0]["args"]["span_id"]
        metas = [e for e in doc["traceEvents"] if e["ph"] == "M"]
        assert metas and metas[0]["args"]["name"] == "main"

    def test_render_formats(self):
        tracer = self._small_trace()
        assert json.loads(render(tracer, "chrome"))["traceEvents"]
        assert json.loads(render(tracer, "json"))["spans"]
        assert "top.child" in render(tracer, "text")
        with pytest.raises(ValueError):
            render(tracer, "xml")

    def test_write_chrome_trace_is_loadable(self, tmp_path):
        path = str(tmp_path / "trace.json")
        write_chrome_trace(self._small_trace(), path)
        with open(path, "r", encoding="utf-8") as fh:
            assert validate_chrome_trace(json.load(fh)) == []

    def test_text_summary_indents_children(self):
        text = text_summary(self._small_trace())
        top = next(ln for ln in text.splitlines() if "top " in ln)
        child = next(ln for ln in text.splitlines() if "top.child" in ln)
        assert len(child) - len(child.lstrip()) > \
            len(top) - len(top.lstrip())

    def test_stage_totals_aggregates_by_name(self):
        tracer = Tracer()
        with tracing(tracer):
            for _ in range(3):
                with span("stage.x"):
                    pass
        agg = stage_totals(tracer)
        assert agg["stage.x"]["count"] == 3
        assert agg["stage.x"]["total_ms"] >= 0.0
        assert "mean_ms" in agg["stage.x"]

    def test_validator_rejects_missing_parent(self):
        doc = chrome_trace(self._small_trace())
        xs = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        xs[1]["args"]["parent_id"] = 9999
        problems = validate_chrome_trace(doc)
        assert any("missing parent" in p for p in problems)

    def test_validator_rejects_interleaved_spans(self):
        doc = {"traceEvents": [
            {"name": "a", "ph": "X", "ts": 0, "dur": 1000, "pid": 1,
             "tid": 0, "args": {"span_id": 1}},
            {"name": "b", "ph": "X", "ts": 500, "dur": 1000, "pid": 1,
             "tid": 0, "args": {"span_id": 2}},
        ]}
        problems = validate_chrome_trace(doc)
        assert any("interleaves" in p for p in problems)

    def test_validator_rejects_duplicate_ids(self):
        doc = chrome_trace(self._small_trace())
        for ev in doc["traceEvents"]:
            if ev["ph"] == "X":
                ev["args"]["span_id"] = 7
        assert any("duplicate" in p for p in validate_chrome_trace(doc))


# --------------------------------------------------------------------------
# Metrics registry
# --------------------------------------------------------------------------


class TestMetricsRegistry:
    def test_snapshot_reads_live_sources(self):
        reg = MetricsRegistry()
        state = {"cache.ir.hits": 0}
        reg.register_source("cache", lambda: state)
        assert reg.snapshot()["cache"]["cache.ir.hits"] == 0
        state["cache.ir.hits"] = 3
        assert reg.snapshot()["cache"]["cache.ir.hits"] == 3

    def test_dead_source_does_not_poison_snapshot(self):
        reg = MetricsRegistry()
        reg.register_source("bad", lambda: 1 / 0)
        reg.register_source("good", lambda: {"k": 1})
        assert reg.snapshot() == {"good": {"k": 1}}

    def test_counters_and_unregister(self):
        reg = MetricsRegistry()
        reg.count("events", 2)
        reg.count("events")
        reg.register_source("s", lambda: {"k": 1})
        reg.unregister_source("s")
        assert reg.snapshot() == {"counters": {"events": 3}}


# --------------------------------------------------------------------------
# Stage-timings schema
# --------------------------------------------------------------------------


class TestStageSchema:
    def test_normalize_fills_missing_stages(self):
        out = normalize_stage_timings({"lint_ms": 1.5, "total_ms": 2.0})
        assert set(out) == set(TIMING_KEYS)
        assert out["lint_ms"] == 1.5
        assert out["frontend_ms"] == 0.0
        assert out["total_ms"] == 2.0

    def test_stage_sum_excludes_total(self):
        timings = {key: 1.0 for key in TIMING_KEYS}
        assert stage_sum_ms(timings) == pytest.approx(len(STAGE_KEYS))


# --------------------------------------------------------------------------
# Golden traces over the real pipeline
# --------------------------------------------------------------------------

#: ``compile.*`` span sequence of one fresh compile followed by one
#: cache hit of the same kernel — creation order, pinned.  The cache-hit
#: path re-runs only frontend (memoised), lookup and lint.
GOLDEN_COMPILE_SPANS = [
    "compile",
    "compile.frontend",
    "compile.cache_lookup",
    "compile.codegen_provisional",
    "compile.resources",
    "compile.select",
    "compile.codegen_final",
    "compile.store",
    "compile.lint",
    "compile",
    "compile.frontend",
    "compile.cache_lookup",
    "compile.lint",
]


def _traced_compile_pair():
    cache = CompilationCache()
    with tracing() as tracer:
        k1 = compile_kernel(build_convolution(), device=DEVICE,
                            cache=cache)
        k2 = compile_kernel(build_convolution(), device=DEVICE,
                            cache=cache)
    return tracer, k1, k2


class TestGoldenTraces:
    def test_compile_span_sequence_is_golden(self, repro_seed):
        _warm_optdb()
        tracer, k1, k2 = _traced_compile_pair()
        assert not k1.from_cache and k2.from_cache
        names = [sp.name for sp in tracer.spans()
                 if sp.name.startswith("compile")]
        assert names == GOLDEN_COMPILE_SPANS

    def test_compile_trace_is_stable_across_runs(self, repro_seed):
        _warm_optdb()

        def shape():
            tracer, _, _ = _traced_compile_pair()
            return [(sp.name,
                     sp.parent_id is None,
                     sp.attrs.get("kernel"),
                     sp.attrs.get("from_cache"))
                    for sp in tracer.spans()]

        assert shape() == shape()

    def test_compile_trace_validates(self):
        _warm_optdb()
        tracer, _, _ = _traced_compile_pair()
        assert validate_chrome_trace(chrome_trace(tracer)) == []
        doc = json_trace(tracer)
        assert doc["spans"][0]["name"] == "compile"

    def test_compile_spans_nest_under_compile_root(self):
        _warm_optdb()
        tracer, _, _ = _traced_compile_pair()
        spans = tracer.spans()
        roots = [sp for sp in spans if sp.name == "compile"]
        assert len(roots) == 2
        root_ids = {sp.span_id for sp in roots}
        for sp in spans:
            if sp.name.startswith("compile."):
                assert sp.parent_id in root_ids


class TestParallelWorkloadTraces:
    def test_parallel_exploration_spans_stitch(self):
        """Exploration chunks fan out over a thread pool; each chunk
        span must parent back to the submitting ``explore`` span."""
        from repro.hwmodel import get_device
        from repro.ir.analysis import InstructionMix
        from repro.mapping.explore import explore_configurations

        mix = InstructionMix(alu=20, sfu=2, global_reads=9,
                             mask_reads=9)
        with tracing() as tracer:
            serial = explore_configurations(
                get_device(DEVICE), mix, 512, 512, (3, 3))
            parallel = explore_configurations(
                get_device(DEVICE), mix, 512, 512, (3, 3), workers=4)
        assert parallel == serial
        spans = tracer.spans()
        explores = [sp for sp in spans if sp.name == "explore"]
        assert len(explores) == 2
        chunks = [sp for sp in spans if sp.name == "explore.chunk"]
        assert len(chunks) == 4
        assert {c.parent_id for c in chunks} == {explores[1].span_id}
        assert validate_chrome_trace(chrome_trace(tracer)) == []

    def test_parallel_graph_trace_validates(self, repro_seed):
        """One parallel execute_graph exports a valid Chrome trace whose
        spans cover compile, cache, pool and execution stages."""
        from repro.obs import get_registry, set_registry

        from .test_graph_execution import W, _graph_run, random_image

        _warm_optdb()
        previous = get_registry()
        set_registry(MetricsRegistry())   # isolate this test's snapshot
        try:
            with tracing() as tracer:
                _, report = _graph_run(random_image(W, 96),
                                       cache=CompilationCache(),
                                       workers=4)
            doc = chrome_trace(tracer)
            assert validate_chrome_trace(doc) == []
            names = {e["name"] for e in doc["traceEvents"]
                     if e["ph"] == "X"}
            for expected in ("graph.run", "graph.compile",
                             "graph.node_compile", "graph.schedule",
                             "graph.node", "compile",
                             "compile.cache_lookup", "pool.bind",
                             "pool.release", "exec.launch",
                             "sim.evaluate"):
                assert expected in names, expected
            # worker threads appeared and were remapped to stable tids
            tids = {e["tid"] for e in doc["traceEvents"]
                    if e["ph"] == "X"}
            assert 0 in tids and len(tids) > 1
            # the registry snapshot rode along with the export
            metrics = doc["otherData"]["metrics"]
            assert metrics["pool"]["pool.current_bytes"] == 0
            assert metrics["cache"]["cache.ir.misses"] > 0
            # graph.node spans parent under graph.schedule via stitching
            by_id = {sp.span_id: sp for sp in tracer.spans()}
            schedule = next(sp for sp in tracer.spans()
                            if sp.name == "graph.schedule")
            for sp in tracer.spans():
                if sp.name == "graph.node":
                    assert by_id[sp.parent_id] is schedule
            assert report.launches == 3
        finally:
            set_registry(previous)


class TestEnvToggle:
    def test_repro_trace_env_writes_chrome_trace(self, tmp_path):
        """REPRO_TRACE=1 + REPRO_TRACE_OUT dump a valid Chrome trace at
        interpreter exit, with no code changes in the workload."""
        import os
        import subprocess
        import sys

        out = tmp_path / "env-trace.json"
        repo = os.path.dirname(os.path.dirname(os.path.abspath(
            __file__)))
        env = dict(os.environ,
                   REPRO_TRACE="1",
                   REPRO_TRACE_OUT=str(out),
                   PYTHONPATH=os.path.join(repo, "src"))
        script = ("from repro import compile_kernel\n"
                  "from repro.filters.gaussian import make_gaussian\n"
                  "compile_kernel(make_gaussian(32, 32, size=3)[0])\n")
        subprocess.run([sys.executable, "-c", script], env=env,
                       cwd=repo, check=True, timeout=120)
        with open(out, "r", encoding="utf-8") as fh:
            doc = json.load(fh)
        assert validate_chrome_trace(doc) == []
        names = {e["name"] for e in doc["traceEvents"]
                 if e["ph"] == "X"}
        assert "compile" in names and "compile.codegen_final" in names
