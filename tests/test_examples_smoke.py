"""Every example script must run to completion (its internal assertions
double as integration checks)."""

import os
import subprocess
import sys

import pytest

EXAMPLES_DIR = os.path.join(os.path.dirname(__file__), "..", "examples")

EXAMPLES = [
    "quickstart.py",
    "bilateral_denoise.py",
    "edge_pipeline.py",
    "dsa_pipeline.py",
    "multiresolution_enhance.py",
    "device_exploration.py",
    "vessel_enhancement.py",
]


@pytest.mark.parametrize("script", EXAMPLES)
def test_example_runs(script):
    path = os.path.join(EXAMPLES_DIR, script)
    result = subprocess.run([sys.executable, path],
                            capture_output=True, text=True, timeout=600)
    assert result.returncode == 0, \
        f"{script} failed:\n{result.stdout[-2000:]}\n{result.stderr[-2000:]}"
    assert result.stdout.strip(), f"{script} printed nothing"
