"""Region classification: the nine-region decomposition (Figure 3)."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.backends.border import (
    BorderRegion,
    Side,
    border_block_counts,
    border_thread_count,
    classify_regions,
    grid_for,
    region_grid_predicate,
)


class TestGridFor:
    def test_exact_division(self):
        assert grid_for(256, 128, (32, 8)) == (8, 16)

    def test_rounds_up(self):
        assert grid_for(100, 50, (32, 8)) == (4, 7)

    def test_block_bigger_than_image(self):
        assert grid_for(10, 10, (128, 1)) == (1, 10)


class TestBorderBlockCounts:
    def test_point_operator_no_borders(self):
        left, right, top, bottom = border_block_counts(
            256, 256, (32, 8), (1, 1))
        # only partial-block overshoot can force hi-side guards
        assert left == 0 and top == 0
        assert right == 0 and bottom == 0

    def test_window_spanning_one_block(self):
        left, right, top, bottom = border_block_counts(
            4096, 4096, (128, 1), (13, 13))
        assert left == 1             # 6 pixels < 128 => 1 block column
        assert top == 6              # 6 pixels, 1-high rows => 6 rows
        assert right == 1
        assert bottom == 6

    def test_partial_final_block_counts_as_hi(self):
        # image 100 wide, blocks of 32 -> last block partial => right >= 1
        _, right, _, _ = border_block_counts(100, 64, (32, 8), (1, 1))
        assert right == 1


class TestClassifyRegions:
    def test_nine_regions_for_interior_heavy_grid(self):
        layout = classify_regions(4096, 4096, (32, 6), (13, 13))
        assert not layout.degenerate
        labels = {r.label for r in layout.regions}
        assert labels == {"TL_BH", "T_BH", "TR_BH", "L_BH", "NO_BH",
                          "R_BH", "BL_BH", "B_BH", "BR_BH"}

    def test_interior_dominates(self):
        layout = classify_regions(4096, 4096, (128, 1), (13, 13))
        assert layout.border_block_fraction < 0.10

    def test_degenerate_small_image(self):
        layout = classify_regions(8, 8, (8, 8), (13, 13))
        assert layout.degenerate
        assert len(layout.regions) == 1
        region = layout.regions[0]
        assert region.side_x is Side.BOTH and region.side_y is Side.BOTH

    @settings(max_examples=120)
    @given(
        width=st.integers(8, 300),
        height=st.integers(8, 300),
        bx=st.sampled_from([8, 16, 32, 64, 128]),
        by=st.sampled_from([1, 2, 4, 8]),
        half=st.integers(0, 8),
    )
    def test_regions_partition_the_grid(self, width, height, bx, by, half):
        window = (2 * half + 1, 2 * half + 1)
        layout = classify_regions(width, height, (bx, by), window)
        grid_x, grid_y = layout.grid
        covered = {}
        for region in layout.regions:
            for gy in range(region.by_lo, region.by_hi):
                for gx in range(region.bx_lo, region.bx_hi):
                    key = (gx, gy)
                    assert key not in covered, "overlapping regions"
                    covered[key] = region
        assert len(covered) == grid_x * grid_y, "grid not fully covered"

    @settings(max_examples=120)
    @given(
        width=st.integers(16, 300),
        height=st.integers(16, 300),
        bx=st.sampled_from([8, 16, 32, 64]),
        by=st.sampled_from([1, 2, 4, 8]),
        half=st.integers(0, 6),
    )
    def test_interior_blocks_never_cross_borders(self, width, height, bx,
                                                 by, half):
        """The core safety property of the specialisation: a block in the
        NO_BH region must not touch out-of-bounds pixels through the
        window."""
        window = (2 * half + 1, 2 * half + 1)
        layout = classify_regions(width, height, (bx, by), window)
        if layout.degenerate:
            return
        for region in layout.regions:
            if not region.is_interior:
                continue
            x_lo = region.bx_lo * bx
            x_hi = region.bx_hi * bx - 1
            y_lo = region.by_lo * by
            y_hi = region.by_hi * by - 1
            if region.num_blocks == 0:
                continue
            assert x_lo - half >= 0
            assert x_hi + half <= width - 1
            assert y_lo - half >= 0
            assert y_hi + half <= height - 1

    @settings(max_examples=80)
    @given(
        width=st.integers(16, 300),
        height=st.integers(16, 300),
        bx=st.sampled_from([8, 16, 32, 64]),
        by=st.sampled_from([1, 2, 4, 8]),
        half=st.integers(1, 6),
    )
    def test_border_regions_guard_the_right_sides(self, width, height,
                                                  bx, by, half):
        """Blocks in a LO-side region may cross only the low border; the
        side-limited adjustment must therefore be sufficient."""
        window = (2 * half + 1, 2 * half + 1)
        layout = classify_regions(width, height, (bx, by), window)
        if layout.degenerate:
            return
        for region in layout.regions:
            if region.num_blocks == 0:
                continue
            x_lo = region.bx_lo * bx
            x_hi = min(region.bx_hi * bx, width) - 1
            if not region.side_x.needs_lo():
                assert x_lo - half >= 0, region
            if not region.side_x.needs_hi():
                assert x_hi + half <= width - 1, region
            y_lo = region.by_lo * by
            y_hi = min(region.by_hi * by, height) - 1
            if not region.side_y.needs_lo():
                assert y_lo - half >= 0, region
            if not region.side_y.needs_hi():
                assert y_hi + half <= height - 1, region


class TestBorderThreadCount:
    def test_paper_tiling_example(self):
        """Section V-C's example orderings for a 13x13 window: 32x3 has
        the fewest boundary threads of the three named tilings (the paper
        prefers 32x6 only because of its higher occupancy — verified in
        the heuristic tests)."""
        count_32x3 = border_thread_count(4096, 4096, (32, 3), (13, 13))
        count_32x4 = border_thread_count(4096, 4096, (32, 4), (13, 13))
        count_32x6 = border_thread_count(4096, 4096, (32, 6), (13, 13))
        assert count_32x3 < count_32x6
        assert count_32x3 < count_32x4

    def test_point_operator_zero(self):
        assert border_thread_count(4096, 4096, (128, 1), (1, 1)) == 0

    def test_monotone_in_window(self):
        small = border_thread_count(1024, 1024, (32, 4), (3, 3))
        large = border_thread_count(1024, 1024, (32, 4), (13, 13))
        assert small <= large


class TestRegionPredicates:
    def test_cuda_interior_predicate(self):
        region = BorderRegion(Side.NONE, Side.NONE, 1, 10, 2, 20)
        pred = region_grid_predicate(region, "cuda")
        assert "blockIdx.x >= BH_X_LO" in pred
        assert "blockIdx.y < BH_Y_HI" in pred

    def test_opencl_uses_group_id(self):
        region = BorderRegion(Side.LO, Side.LO, 0, 1, 0, 1)
        pred = region_grid_predicate(region, "opencl")
        assert "get_group_id(0)" in pred

    def test_both_both_is_always_true(self):
        region = BorderRegion(Side.BOTH, Side.BOTH, 0, 1, 0, 1)
        assert region_grid_predicate(region, "cuda") == "1"

    def test_labels_match_figure3(self):
        assert BorderRegion(Side.LO, Side.LO, 0, 0, 0, 0).label == "TL_BH"
        assert BorderRegion(Side.HI, Side.NONE, 0, 0, 0, 0).label == "R_BH"
        assert BorderRegion(Side.NONE, Side.HI, 0, 0, 0, 0).label == "B_BH"
        assert BorderRegion(Side.NONE, Side.NONE, 0, 0, 0, 0).label \
            == "NO_BH"
