"""Image, IterationSpace, Accessor, Mask, Kernel base-class behaviour."""

import numpy as np
import pytest

from repro import (
    Accessor,
    Boundary,
    BoundaryCondition,
    Image,
    IterationSpace,
    Kernel,
    Mask,
)
from repro.dsl.mask import gaussian_mask
from repro.errors import DslError

from .helpers import CopyKernel, random_image


class TestImage:
    def test_construction(self):
        img = Image(10, 20, float)
        assert img.width == 10 and img.height == 20
        assert img.pixel_type.name == "float"
        assert img.stride == 10

    def test_invalid_size(self):
        with pytest.raises(DslError):
            Image(0, 5)
        with pytest.raises(DslError):
            Image(5, -1)

    def test_set_get_roundtrip(self):
        data = random_image(10, 6)
        img = Image(10, 6).set_data(data)
        assert np.array_equal(img.get_data(), data)

    def test_get_data_is_copy(self):
        img = Image(4, 4).set_data(np.ones((4, 4), np.float32))
        out = img.get_data()
        out[0, 0] = 99.0
        assert img.get_data()[0, 0] == 1.0

    def test_shape_mismatch_rejected(self):
        with pytest.raises(DslError):
            Image(4, 4).set_data(np.zeros((4, 5)))

    def test_dtype_conversion_on_set(self):
        img = Image(4, 4, "uint8").set_data(
            np.full((4, 4), 7.0, np.float64))
        assert img.get_data().dtype == np.uint8
        assert img.get_data()[0, 0] == 7

    def test_padding_preserves_data(self):
        data = random_image(10, 4)
        img = Image(10, 4).set_data(data)
        stride = img.apply_padding(16)
        assert stride == 16
        assert np.array_equal(img.get_data(), data)

    def test_padding_rounds_up(self):
        img = Image(33, 4)
        assert img.apply_padding(32) == 64

    def test_padding_noop_when_aligned(self):
        img = Image(32, 4)
        assert img.apply_padding(32) == 32

    def test_padding_invalid(self):
        with pytest.raises(DslError):
            Image(8, 8).apply_padding(0)

    def test_bytes_includes_padding(self):
        img = Image(10, 4)
        img.apply_padding(16)
        assert img.bytes == 16 * 4 * 4

    def test_unique_names(self):
        a, b = Image(4, 4), Image(4, 4)
        assert a.name != b.name

    def test_pixels_view_writable(self):
        img = Image(4, 4)
        img.pixels[1, 2] = 3.0
        assert img.get_data()[1, 2] == 3.0


class TestIterationSpace:
    def test_defaults_to_whole_image(self):
        space = IterationSpace(Image(12, 8))
        assert (space.width, space.height) == (12, 8)
        assert (space.offset_x, space.offset_y) == (0, 0)

    def test_roi(self):
        space = IterationSpace(Image(12, 8), 4, 4, offset_x=2, offset_y=1)
        assert space.size == 16

    def test_roi_exceeding_image_rejected(self):
        with pytest.raises(DslError):
            IterationSpace(Image(8, 8), 8, 8, offset_x=1)

    def test_negative_offset_rejected(self):
        with pytest.raises(DslError):
            IterationSpace(Image(8, 8), offset_x=-1)

    def test_zero_size_rejected(self):
        with pytest.raises(DslError):
            IterationSpace(Image(8, 8), 0, 4)

    def test_requires_image(self):
        with pytest.raises(DslError):
            IterationSpace(np.zeros((4, 4)))

    def test_pixel_type_from_image(self):
        assert IterationSpace(Image(4, 4, "int")).pixel_type.name == "int"


class TestAccessor:
    def test_plain_image_is_undefined_mode(self):
        acc = Accessor(Image(8, 8))
        assert acc.boundary_mode is Boundary.UNDEFINED
        assert acc.window == (1, 1)

    def test_boundary_condition_carries_mode_and_window(self):
        img = Image(8, 8)
        acc = Accessor(BoundaryCondition(img, 5, 3, Boundary.MIRROR))
        assert acc.boundary_mode is Boundary.MIRROR
        assert acc.window == (5, 3)
        assert acc.image is img

    def test_rejects_other_sources(self):
        with pytest.raises(DslError):
            Accessor(np.zeros((4, 4)))

    def test_call_outside_kernel_raises(self):
        acc = Accessor(Image(8, 8))
        with pytest.raises(DslError):
            acc(0, 0)

    def test_sample_inside(self):
        data = random_image(8, 8)
        acc = Accessor(Image(8, 8).set_data(data))
        assert acc.sample(np.array([3]), np.array([2]))[0] == data[2, 3]

    def test_sample_clamp(self):
        data = random_image(8, 8)
        acc = Accessor(BoundaryCondition(Image(8, 8).set_data(data), 3, 3,
                                         Boundary.CLAMP))
        assert acc.sample(np.array([-2]), np.array([9]))[0] == data[7, 0]

    def test_sample_constant(self):
        data = random_image(8, 8)
        acc = Accessor(BoundaryCondition(Image(8, 8).set_data(data), 3, 3,
                                         Boundary.CONSTANT, constant=0.25))
        out = acc.sample(np.array([-1, 2]), np.array([0, 3]))
        assert out[0] == np.float32(0.25)
        assert out[1] == data[3, 2]

    def test_sample_undefined_oob_raises(self):
        acc = Accessor(Image(8, 8))
        with pytest.raises(IndexError):
            acc.sample(np.array([8]), np.array([0]))

    def test_multiple_accessors_same_image_different_modes(self):
        # "multiple boundary handling modes can be defined on the same
        # image" (Section III-A)
        img = Image(8, 8).set_data(random_image(8, 8))
        clamp = Accessor(BoundaryCondition(img, 3, 3, Boundary.CLAMP))
        mirror = Accessor(BoundaryCondition(img, 3, 3, Boundary.MIRROR))
        ix, iy = np.array([-2]), np.array([0])
        assert clamp.sample(ix, iy)[0] == img.pixels[0, 0]
        assert mirror.sample(ix, iy)[0] == img.pixels[0, 1]


class TestMask:
    def test_set_flat(self):
        m = Mask(3, 3).set(np.arange(9, dtype=np.float32))
        assert m.coefficients.shape == (3, 3)
        assert m.at(0, 0) == 4.0
        assert m.at(-1, -1) == 0.0
        assert m.at(1, 1) == 8.0

    def test_set_2d(self):
        coeffs = np.arange(15, dtype=np.float32).reshape(3, 5)
        m = Mask(5, 3).set(coeffs)
        assert np.array_equal(m.coefficients, coeffs)

    def test_wrong_count_rejected(self):
        with pytest.raises(DslError):
            Mask(3, 3).set(np.zeros(8))

    def test_wrong_shape_rejected(self):
        with pytest.raises(DslError):
            Mask(3, 3).set(np.zeros((3, 5)))

    def test_even_size_rejected(self):
        with pytest.raises(DslError):
            Mask(4, 3)

    def test_unset_coefficients_raise(self):
        with pytest.raises(DslError):
            Mask(3, 3).coefficients

    def test_call_outside_kernel_raises(self):
        with pytest.raises(DslError):
            Mask(3, 3)(0, 0)

    def test_coefficients_copied(self):
        src = np.zeros((3, 3), np.float32)
        m = Mask(3, 3).set(src)
        src[0, 0] = 5.0
        assert m.coefficients[0, 0] == 0.0

    def test_gaussian_mask_normalised(self):
        m = gaussian_mask(5)
        assert abs(float(m.coefficients.sum()) - 1.0) < 1e-6

    def test_rectangular(self):
        m = Mask(5, 1).set(np.ones(5, np.float32))
        assert m.size == (5, 1)
        assert m.half == (2, 0)


class TestKernelBase:
    def _make(self):
        src, dst = Image(8, 8), Image(8, 8)
        acc = Accessor(src)
        return CopyKernel(IterationSpace(dst), acc), acc

    def test_requires_iteration_space(self):
        with pytest.raises(DslError):
            Kernel("nope")

    def test_accessor_registration(self):
        k, acc = self._make()
        assert k.accessors == [acc]

    def test_duplicate_registration_ignored(self):
        k, acc = self._make()
        k.add_accessor(acc)
        assert len(k.accessors) == 1

    def test_add_accessor_type_checked(self):
        k, _ = self._make()
        with pytest.raises(DslError):
            k.add_accessor("nope")

    def test_methods_raise_outside_body(self):
        k, _ = self._make()
        for method in (k.output, k.x, k.y):
            with pytest.raises(DslError):
                method()
        with pytest.raises(DslError):
            k.convolve(None, None, None)

    def test_base_kernel_not_implemented(self):
        k, _ = self._make()
        with pytest.raises(DslError):
            Kernel(k.iteration_space).output()
        with pytest.raises(NotImplementedError):
            Kernel(k.iteration_space).kernel()
