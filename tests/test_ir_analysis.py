"""Access analysis, window inference and instruction-mix estimation."""

import pytest

from repro import Boundary
from repro.frontend import parse_kernel
from repro.ir import (
    analyze_accesses,
    count_instruction_mix,
    infer_window,
    typecheck_kernel,
)
from repro.ir import nodes as N
from repro.types import FLOAT

from .helpers import (
    CopyKernel,
    IterationSpace,
    MaskConvolution,
    ShiftRead,
    TwoInputKernel,
    accessor_for,
    box_mask,
    build_image_pair,
)


def _ir(kernel_cls, *args, window=1, mode=Boundary.CLAMP, two_inputs=False,
        **kwargs):
    src, dst = build_image_pair()
    if two_inputs:
        src2, _ = build_image_pair()
        k = kernel_cls(IterationSpace(dst), accessor_for(src, window, mode),
                       accessor_for(src2, window, mode), *args, **kwargs)
    else:
        k = kernel_cls(IterationSpace(dst),
                       accessor_for(src, window, mode), *args, **kwargs)
    return typecheck_kernel(parse_kernel(k))


class TestAccessAnalysis:
    def test_point_operator(self):
        info = analyze_accesses(_ir(CopyKernel))["inp"]
        assert info.is_read
        assert info.window == (1, 1)
        assert info.read_sites == 1

    def test_fixed_offset(self):
        info = analyze_accesses(_ir(ShiftRead, 2, -1))["inp"]
        assert (info.min_dx, info.max_dx) == (2, 2)
        assert (info.min_dy, info.max_dy) == (-1, -1)
        assert info.window == (5, 3)    # symmetric cover of (2, -1)

    def test_loop_offsets_resolved_from_bounds(self):
        info = analyze_accesses(
            _ir(MaskConvolution, box_mask(5), 2, 2, window=5))["inp"]
        assert (info.min_dx, info.max_dx) == (-2, 2)
        assert (info.min_dy, info.max_dy) == (-2, 2)
        assert info.window == (5, 5)

    def test_asymmetric_loops(self):
        info = analyze_accesses(
            _ir(MaskConvolution, box_mask(3), 1, 3, window=7))["inp"]
        assert info.window == (3, 7)

    def test_two_accessors_tracked_separately(self):
        ir = _ir(TwoInputKernel, two_inputs=True)
        infos = analyze_accesses(ir)
        assert set(infos) == {"a", "b"}
        assert all(i.is_read for i in infos.values())

    def test_infer_window_prefers_metadata(self):
        ir = _ir(MaskConvolution, box_mask(3), 1, 1, window=9)
        # BoundaryCondition declared 9x9 even though reads cover 3x3
        assert infer_window(ir, "inp") == (9, 9)

    def test_infer_window_falls_back_to_offsets(self):
        ir = _ir(ShiftRead, 1, 0)    # no boundary condition => (1,1) decl
        assert infer_window(ir, "inp") == (3, 1)


class TestInstructionMix:
    def test_point_op_small(self):
        mix = count_instruction_mix(_ir(CopyKernel).body)
        assert mix.global_reads == 1
        assert mix.sfu == 0
        assert mix.alu < 10

    def test_convolution_scales_with_taps(self):
        mix3 = count_instruction_mix(
            _ir(MaskConvolution, box_mask(3), 1, 1, window=3).body)
        mix5 = count_instruction_mix(
            _ir(MaskConvolution, box_mask(5), 2, 2, window=5).body)
        assert mix3.global_reads == 9
        assert mix5.global_reads == 25
        assert mix5.alu > mix3.alu

    def test_mask_reads_counted(self):
        mix = count_instruction_mix(
            _ir(MaskConvolution, box_mask(3), 1, 1, window=3).body)
        assert mix.mask_reads == 9

    def test_reads_by_accessor(self):
        mix = count_instruction_mix(
            _ir(MaskConvolution, box_mask(3), 1, 1, window=3).body)
        assert mix.reads_by_accessor == {"inp": 9}

    def test_sfu_weighted(self):
        body = [N.OutputWrite(N.Call("exp", (N.FloatConst(1.0, FLOAT),),
                                     FLOAT))]
        mix = count_instruction_mix(body)
        assert mix.sfu >= 10     # transcendental op costs > 10 ALU equiv

    def test_fma_fusion(self):
        # s = s + a*b should cost 1 op (FMA), not 2
        fma = [N.VarDecl("s", N.BinOp(
            "+", N.VarRef("s", FLOAT),
            N.BinOp("*", N.VarRef("a", FLOAT), N.VarRef("b", FLOAT),
                    FLOAT), FLOAT), FLOAT)]
        plain_add = [N.VarDecl("s", N.BinOp(
            "+", N.VarRef("s", FLOAT), N.VarRef("a", FLOAT), FLOAT),
            FLOAT)]
        assert count_instruction_mix(fma).alu == \
            count_instruction_mix(plain_add).alu

    def test_small_loops_get_unroll_credit(self):
        def loop_body(trips):
            return [N.ForRange("i", N.IntConst(0), N.IntConst(trips),
                               N.IntConst(1),
                               [N.VarDecl("t", N.FloatConst(1.0, FLOAT),
                                          FLOAT)])]
        small = count_instruction_mix(loop_body(8))
        large = count_instruction_mix(loop_body(640))
        # the large loop pays ~2 control ops per iteration; the small one
        # is modelled as unrolled
        assert large.alu / 640 > small.alu / 8

    def test_branches_charge_worst_arm(self):
        heavy = [N.Call("exp", (N.FloatConst(1.0, FLOAT),), FLOAT)]
        body = [
            N.If(N.BoolConst(True, None),
                 [N.VarDecl("a", heavy[0], FLOAT)],
                 [N.VarDecl("b", N.FloatConst(0.0, FLOAT), FLOAT)]),
            N.OutputWrite(N.FloatConst(0.0, FLOAT)),
        ]
        mix = count_instruction_mix(body)
        assert mix.sfu >= 10     # the expensive arm is charged

    def test_scaled_and_add(self):
        mix = count_instruction_mix(_ir(CopyKernel).body)
        doubled = mix.scaled(2.0)
        assert doubled.global_reads == 2 * mix.global_reads
        doubled.add(mix)
        assert doubled.global_reads == 3 * mix.global_reads

    def test_unknown_trip_count_fallback(self):
        body = [N.ForRange("i", N.IntConst(0), N.VarRef("n"),
                           N.IntConst(1),
                           [N.VarDecl("t", N.FloatConst(1.0, FLOAT),
                                      FLOAT)])]
        mix_default = count_instruction_mix(body, unknown_trip_count=8)
        mix_more = count_instruction_mix(body, unknown_trip_count=16)
        assert mix_more.alu > mix_default.alu


class TestOptimizedMix:
    """The device-compiler model (CSE + LICM) must shrink redundancy."""

    def test_bilateral_read_dedup(self):
        from repro.evaluation.variants import _bilateral_ir
        from repro.ir.optimize import optimize_for_device

        ir = _bilateral_ir(False, "clamp", 3, 5.0)
        raw = count_instruction_mix(ir.body)
        opt = count_instruction_mix(optimize_for_device(ir).body)
        # 3 syntactic reads per tap -> 1 shared read + hoisted centre
        assert raw.global_reads == 3 * 169
        assert opt.global_reads == 169 + 1

    def test_licm_hoists_row_invariant_exp(self):
        from repro.evaluation.variants import _bilateral_ir
        from repro.ir.optimize import optimize_for_device

        ir = _bilateral_ir(False, "clamp", 3, 5.0)
        raw = count_instruction_mix(ir.body)
        opt = count_instruction_mix(optimize_for_device(ir).body)
        # 3 exps per tap -> 2 per tap + 1 per row
        assert raw.sfu == pytest.approx(3 * 169 * raw.sfu / (3 * 169))
        assert opt.sfu < raw.sfu * 0.75
