"""Type checking: inference, implicit conversions, structural rules."""

import pytest

from repro.errors import TypeError_, VerificationError
from repro.ir import nodes as N
from repro.ir.typecheck import typecheck_kernel
from repro.ir.visitors import iter_all_exprs
from repro.types import BOOL, FLOAT, INT


def _kernel(body, accessors=None, masks=None, params=None):
    return N.KernelIR(
        name="t", pixel_type=FLOAT, body=body,
        accessors=accessors or [N.AccessorInfo("inp", FLOAT, "clamp",
                                               window=(3, 3))],
        masks=masks or [],
        params=params or [])


def _read(dx=0, dy=0):
    return N.AccessorRead("inp", N.IntConst(dx), N.IntConst(dy))


class TestInference:
    def test_literal_types(self):
        k = typecheck_kernel(_kernel([N.OutputWrite(N.FloatConst(1.0))]))
        assert k.body[0].value.type == FLOAT

    def test_int_float_promotion_inserts_cast(self):
        body = [N.OutputWrite(N.BinOp("+", N.IntConst(1),
                                      N.FloatConst(2.0)))]
        k = typecheck_kernel(_kernel(body))
        add = k.body[0].value
        assert add.type == FLOAT
        assert isinstance(add.lhs, N.Cast) and add.lhs.target == FLOAT

    def test_comparison_yields_bool(self):
        body = [
            N.VarDecl("f", N.BinOp("<", N.IntConst(1), N.IntConst(2))),
            N.OutputWrite(N.Select(N.VarRef("f"), N.FloatConst(1.0),
                                   N.FloatConst(0.0))),
        ]
        k = typecheck_kernel(_kernel(body))
        assert k.body[0].init.type == BOOL

    def test_accessor_read_gets_pixel_type(self):
        k = typecheck_kernel(_kernel([N.OutputWrite(_read())]))
        assert k.body[0].value.type == FLOAT

    def test_output_coerced_to_pixel_type(self):
        k = typecheck_kernel(_kernel([N.OutputWrite(N.IntConst(1))]))
        v = k.body[0].value
        assert isinstance(v, N.Cast) and v.target == FLOAT

    def test_select_promotes_arms(self):
        body = [N.OutputWrite(N.Select(N.BoolConst(True), N.IntConst(1),
                                       N.FloatConst(2.0)))]
        k = typecheck_kernel(_kernel(body))
        assert k.body[0].value.type == FLOAT

    def test_intrinsic_promotes_int_args(self):
        body = [N.OutputWrite(N.Call("exp", (N.IntConst(1),)))]
        k = typecheck_kernel(_kernel(body))
        call = k.body[0].value
        assert call.type == FLOAT
        assert call.args[0].type == FLOAT

    def test_loop_var_is_int(self):
        body = [
            N.VarDecl("s", N.FloatConst(0.0)),
            N.ForRange("i", N.IntConst(0), N.IntConst(3), N.IntConst(1), [
                N.Assign("s", N.BinOp("+", N.VarRef("s"),
                                      N.Cast(FLOAT, N.VarRef("i")))),
            ]),
            N.OutputWrite(N.VarRef("s")),
        ]
        k = typecheck_kernel(_kernel(body))
        loop = k.body[1]
        inner_ref = [e for e in iter_all_exprs(loop.body)
                     if isinstance(e, N.VarRef) and e.name == "i"]
        assert inner_ref[0].type == INT

    def test_nonbaked_param_in_scope(self):
        body = [N.OutputWrite(N.VarRef("gain"))]
        k = typecheck_kernel(_kernel(
            body, params=[N.ParamInfo("gain", FLOAT, 1.0, baked=False)]))
        assert k.body[0].value.type == FLOAT


class TestRules:
    def test_use_before_declaration(self):
        with pytest.raises(VerificationError, match="undeclared"):
            typecheck_kernel(_kernel([N.OutputWrite(N.VarRef("ghost"))]))

    def test_assign_before_declaration(self):
        body = [N.Assign("x", N.FloatConst(1.0)),
                N.OutputWrite(N.FloatConst(0.0))]
        with pytest.raises(VerificationError, match="undeclared"):
            typecheck_kernel(_kernel(body))

    def test_redeclaration_rejected(self):
        body = [N.VarDecl("x", N.FloatConst(1.0)),
                N.VarDecl("x", N.FloatConst(2.0)),
                N.OutputWrite(N.VarRef("x"))]
        with pytest.raises(VerificationError, match="redeclaration"):
            typecheck_kernel(_kernel(body))

    def test_branch_scoped_declaration_dies_at_join(self):
        body = [
            N.If(N.BoolConst(True),
                 [N.VarDecl("x", N.FloatConst(1.0))], []),
            N.OutputWrite(N.VarRef("x")),
        ]
        with pytest.raises(VerificationError, match="undeclared"):
            typecheck_kernel(_kernel(body))

    def test_loop_var_reassignment_rejected(self):
        body = [
            N.ForRange("i", N.IntConst(0), N.IntConst(2), N.IntConst(1),
                       [N.Assign("i", N.IntConst(5))]),
            N.OutputWrite(N.FloatConst(0.0)),
        ]
        with pytest.raises(VerificationError, match="loop variable"):
            typecheck_kernel(_kernel(body))

    def test_loop_var_shadowing_rejected(self):
        body = [
            N.VarDecl("i", N.IntConst(1)),
            N.ForRange("i", N.IntConst(0), N.IntConst(2), N.IntConst(1),
                       []),
            N.OutputWrite(N.FloatConst(0.0)),
        ]
        with pytest.raises(VerificationError, match="shadow"):
            typecheck_kernel(_kernel(body))

    def test_float_loop_bound_rejected(self):
        body = [
            N.ForRange("i", N.FloatConst(0.0), N.IntConst(2),
                       N.IntConst(1), []),
            N.OutputWrite(N.FloatConst(0.0)),
        ]
        with pytest.raises(TypeError_, match="integer"):
            typecheck_kernel(_kernel(body))

    def test_modulo_on_float_rejected(self):
        body = [N.OutputWrite(N.BinOp("%", N.FloatConst(1.0),
                                      N.IntConst(2)))]
        with pytest.raises(TypeError_):
            typecheck_kernel(_kernel(body))

    def test_shift_on_float_rejected(self):
        body = [N.OutputWrite(N.BinOp("<<", N.FloatConst(1.0),
                                      N.IntConst(2)))]
        with pytest.raises(TypeError_):
            typecheck_kernel(_kernel(body))

    def test_missing_output_write_rejected(self):
        with pytest.raises(VerificationError, match="output"):
            typecheck_kernel(_kernel([N.VarDecl("x", N.FloatConst(1.0))]))

    def test_output_in_only_one_branch_rejected(self):
        body = [N.If(N.BoolConst(True),
                     [N.OutputWrite(N.FloatConst(1.0))], [])]
        with pytest.raises(VerificationError, match="output"):
            typecheck_kernel(_kernel(body))

    def test_output_in_both_branches_accepted(self):
        body = [N.If(N.BoolConst(True),
                     [N.OutputWrite(N.FloatConst(1.0))],
                     [N.OutputWrite(N.FloatConst(2.0))])]
        assert typecheck_kernel(_kernel(body))

    def test_output_inside_loop_rejected(self):
        body = [N.ForRange("i", N.IntConst(0), N.IntConst(2),
                           N.IntConst(1),
                           [N.OutputWrite(N.FloatConst(1.0))])]
        with pytest.raises(VerificationError, match="loop"):
            typecheck_kernel(_kernel(body))

    def test_unknown_accessor_rejected(self):
        body = [N.OutputWrite(N.AccessorRead("ghost"))]
        with pytest.raises(VerificationError, match="unknown accessor"):
            typecheck_kernel(_kernel(body))

    def test_unknown_mask_rejected(self):
        body = [N.OutputWrite(N.MaskRead("ghost"))]
        with pytest.raises(VerificationError, match="unknown mask"):
            typecheck_kernel(_kernel(body))

    def test_float_accessor_offset_rejected(self):
        body = [N.OutputWrite(
            N.AccessorRead("inp", N.FloatConst(1.0), N.IntConst(0)))]
        with pytest.raises(TypeError_, match="integer"):
            typecheck_kernel(_kernel(body))

    def test_intrinsic_arity_checked(self):
        body = [N.OutputWrite(N.Call("exp", (N.FloatConst(1.0),
                                             N.FloatConst(2.0))))]
        with pytest.raises(TypeError_, match="argument"):
            typecheck_kernel(_kernel(body))


class TestErrorLocations:
    """Typecheck errors point at the user's kernel() line when the
    frontend recorded one (and stay location-free when it didn't)."""

    def test_located_error_from_frontend_ir(self):
        from repro import Accessor, Image, IterationSpace, Kernel
        from repro.frontend.parser import parse_kernel

        class FloatOffset(Kernel):
            def __init__(self):
                super().__init__(IterationSpace(Image(8, 8, float)))
                self.inp = Accessor(Image(8, 8, float))
                self.add_accessor(self.inp)

            def kernel(self):
                v = self.inp(0, 0)
                self.output(self.inp(v, 0))

        with pytest.raises(TypeError_) as exc_info:
            typecheck_kernel(parse_kernel(FloatOffset()))
        exc = exc_info.value
        assert exc.lineno == 3     # 1-based from the def kernel line
        assert "self.output(self.inp(v, 0))" in exc.source_line
        assert "(line 3)" in str(exc)
        assert exc.bare_message == ("accessor 'inp': x-offset must be an "
                                    "integer expression, got float")

    def test_synthesized_ir_stays_unlocated(self):
        body = [N.OutputWrite(
            N.AccessorRead("inp", N.FloatConst(1.0), N.IntConst(0)))]
        with pytest.raises(TypeError_) as exc_info:
            typecheck_kernel(_kernel(body))
        assert exc_info.value.lineno is None
        assert "(line" not in str(exc_info.value)

    def test_verification_error_located(self):
        from repro import Accessor, Image, IterationSpace, Kernel
        from repro.frontend.parser import parse_kernel

        class LoopWrite(Kernel):
            def __init__(self):
                super().__init__(IterationSpace(Image(8, 8, float)))
                self.inp = Accessor(Image(8, 8, float))
                self.add_accessor(self.inp)

            def kernel(self):
                for i in range(0, 2):
                    self.output(self.inp(0, 0))

        with pytest.raises(VerificationError) as exc_info:
            typecheck_kernel(parse_kernel(LoopWrite()))
        assert exc_info.value.lineno is not None
