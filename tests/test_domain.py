"""Domain: boolean tap masks for convolve() (HIPAcc's Domain concept)."""

import numpy as np
import pytest
from scipy import ndimage

from repro import (
    Accessor,
    Boundary,
    BoundaryCondition,
    Domain,
    Image,
    IterationSpace,
    Kernel,
    Reduce,
    compile_kernel,
)
from repro.dsl.domain import cross_domain, disk_domain
from repro.errors import DslError, FrontendError
from repro.frontend import parse_kernel
from repro.ir import nodes as N
from repro.ir.visitors import iter_all_exprs, walk_stmts

from .helpers import accessor_for, build_image_pair, random_image


class DomainMin(Kernel):
    """Neighbourhood minimum over an arbitrary Domain shape."""

    def __init__(self, iteration_space, inp, dom):
        super().__init__(iteration_space)
        self.inp = inp
        self.dom = dom
        self.add_accessor(inp)

    def kernel(self):
        self.output(self.convolve(self.dom, Reduce.MIN,
                                  lambda: self.inp(self.dom)))


class DomainSum(Kernel):
    def __init__(self, iteration_space, inp, dom):
        super().__init__(iteration_space)
        self.inp = inp
        self.dom = dom
        self.add_accessor(inp)

    def kernel(self):
        self.output(self.convolve(self.dom, Reduce.SUM,
                                  lambda: self.inp(self.dom)))


def _run(kernel_cls, dom, data, mode=Boundary.CLAMP):
    h, w = data.shape
    src, dst = build_image_pair(w, h, data=data)
    k = kernel_cls(IterationSpace(dst),
                   accessor_for(src, max(dom.size), mode), dom)
    compile_kernel(k, use_texture=False).execute()
    return dst.get_data()


class TestDomainObject:
    def test_all_enabled_by_default(self):
        dom = Domain(3, 3)
        assert len(dom.enabled_offsets()) == 9
        assert dom.is_enabled(0, 0)

    def test_disable(self):
        dom = Domain(3, 3).disable(1, 1).disable(-1, -1)
        assert len(dom.enabled_offsets()) == 7
        assert not dom.is_enabled(1, 1)

    def test_cross_shape(self):
        dom = cross_domain(5)
        offsets = set(dom.enabled_offsets())
        assert (0, 0) in offsets and (2, 0) in offsets
        assert (1, 1) not in offsets
        assert len(offsets) == 9           # 5 + 5 - shared centre

    def test_disk_shape(self):
        dom = disk_domain(5)
        offsets = set(dom.enabled_offsets())
        assert (0, 0) in offsets and (2, 0) in offsets
        assert (2, 2) not in offsets       # corner outside the disk

    def test_validation(self):
        with pytest.raises(DslError):
            Domain(4, 3)
        with pytest.raises(DslError):
            Domain(3).set_enabled(np.zeros((3, 3), bool))
        with pytest.raises(DslError):
            Domain(3).disable(5, 0)
        with pytest.raises(DslError):
            Domain(3)(0, 0)


class TestDomainConvolve:
    def test_full_domain_equals_box_min(self):
        data = random_image(18, 14, seed=1)
        out = _run(DomainMin, Domain(3, 3), data)
        ref = ndimage.minimum_filter(data, size=3, mode="nearest")
        np.testing.assert_array_equal(out, ref)

    def test_cross_min_matches_footprint_filter(self):
        data = random_image(18, 14, seed=2)
        dom = cross_domain(3)
        out = _run(DomainMin, dom, data)
        footprint = np.array([[0, 1, 0], [1, 1, 1], [0, 1, 0]], bool)
        ref = ndimage.minimum_filter(data, footprint=footprint,
                                     mode="nearest")
        np.testing.assert_array_equal(out, ref)

    def test_disk_sum(self):
        data = random_image(16, 16, seed=3)
        dom = disk_domain(5)
        out = _run(DomainSum, dom, data)
        half = 2
        padded = np.pad(data, half, mode="edge")
        expected = np.zeros_like(data)
        for dx, dy in dom.enabled_offsets():
            expected += padded[half + dy:half + dy + 16,
                               half + dx:half + dx + 16]
        np.testing.assert_allclose(out, expected, atol=1e-5)

    def test_straight_line_expansion(self):
        """Domain convolve emits one tap per enabled offset, no loops."""
        data = random_image(8, 8)
        src, dst = build_image_pair(8, 8, data=data)
        dom = cross_domain(3)
        k = DomainSum(IterationSpace(dst), accessor_for(src, 3), dom)
        ir = parse_kernel(k)
        loops = [s for s in walk_stmts(ir.body)
                 if isinstance(s, N.ForRange)]
        assert not loops
        reads = [e for e in iter_all_exprs(ir.body)
                 if isinstance(e, N.AccessorRead)]
        assert len(reads) == len(dom.enabled_offsets())

    def test_disabled_taps_absent_from_generated_code(self):
        data = random_image(64, 64)
        src, dst = build_image_pair(64, 64, data=data)
        dom = Domain(3, 3)
        for dx, dy in [(-1, -1), (1, -1), (-1, 1), (1, 1)]:
            dom.disable(dx, dy)
        k = DomainSum(IterationSpace(dst), accessor_for(src, 3), dom)
        compiled = compile_kernel(k, use_texture=False, block=(8, 4))
        interior = compiled.device_code.split("NO_BH:")[1]
        # corner taps like (gid_x + (-1)) with (gid_y + (-1)) never occur
        assert "(gid_y + (-1)) * inp_stride + (gid_x + (-1))" \
            not in interior

    def test_bare_domain_read_rejected(self):
        class BadRead(Kernel):
            def __init__(self, iteration_space, inp, dom):
                super().__init__(iteration_space)
                self.inp = inp
                self.dom = dom
                self.add_accessor(inp)

            def kernel(self):
                self.output(self.inp(self.dom))   # outside convolve

        src, dst = build_image_pair(8, 8)
        k = BadRead(IterationSpace(dst), accessor_for(src, 3),
                    Domain(3, 3))
        with pytest.raises(FrontendError, match="convolve"):
            parse_kernel(k)
