"""Focused unit tests for smaller modules: dsl.math, visitors, printer,
convolve reduce modes, Uniform typing, error hierarchy."""

import math

import numpy as np
import pytest

from repro import Reduce, Uniform
from repro.dsl import math as dslmath
from repro.dsl.convolve import REDUCE_COMBINE_OP, reduce_identity
from repro.errors import (
    CodegenError,
    DeviceFault,
    DslError,
    FrontendError,
    HipaccError,
    LaunchError,
    MappingError,
    TypeError_,
    UnsupportedFunctionError,
    VerificationError,
)
from repro.ir import nodes as N
from repro.ir.printer import format_expr
from repro.ir.visitors import (
    ExprTransformer,
    iter_all_exprs,
    map_exprs,
    walk_exprs,
    walk_stmts,
)
from repro.types import FLOAT, INT


class TestDslMath:
    def test_scalar_wrappers(self):
        assert dslmath.exp(0.0) == pytest.approx(1.0)
        assert dslmath.sqrt(4.0) == pytest.approx(2.0)
        assert dslmath.fabs(-3.0) == 3.0
        assert dslmath.min(2.0, 5.0) == 2.0
        assert dslmath.max(2.0, 5.0) == 5.0

    def test_suffixed_variants_exist(self):
        assert dslmath.expf(1.0) == pytest.approx(math.e)
        assert dslmath.sqrtf(9.0) == pytest.approx(3.0)

    def test_returns_python_scalars(self):
        assert isinstance(dslmath.exp(1.0), float)

    def test_vector_passthrough(self):
        out = dslmath.exp(np.zeros(4, np.float32))
        assert out.shape == (4,)

    def test_all_intrinsics_exported(self):
        from repro.intrinsics import INTRINSICS
        for name in INTRINSICS:
            assert hasattr(dslmath, name), name


class TestReduceModes:
    def test_identities(self):
        assert reduce_identity(Reduce.SUM) == 0.0
        assert reduce_identity(Reduce.PROD) == 1.0
        assert reduce_identity(Reduce.MIN) == float("inf")
        assert reduce_identity(Reduce.MAX) == float("-inf")

    def test_string_coercion(self):
        assert Reduce.coerce("sum") is Reduce.SUM
        assert reduce_identity("max") == float("-inf")

    def test_invalid(self):
        with pytest.raises(DslError):
            Reduce.coerce("mean")

    def test_combine_table_complete(self):
        assert set(REDUCE_COMBINE_OP) == set(Reduce)
        for binop, intrinsic in REDUCE_COMBINE_OP.values():
            assert (binop is None) != (intrinsic is None)


class TestUniform:
    def test_type_coercion(self):
        assert Uniform(1.5).type is FLOAT
        assert Uniform(3, int).type is INT
        assert Uniform(1, "float32").type is FLOAT

    def test_bad_type(self):
        with pytest.raises(TypeError_):
            Uniform(1, "vec3")


class TestErrorHierarchy:
    def test_all_derive_from_hipacc_error(self):
        for exc in (DslError, FrontendError, TypeError_,
                    VerificationError, UnsupportedFunctionError,
                    CodegenError, MappingError, LaunchError, DeviceFault):
            assert issubclass(exc, HipaccError)

    def test_frontend_error_location(self):
        err = FrontendError("bad thing", lineno=7,
                            source_line="    while True:")
        assert "line 7" in str(err)
        assert "while True:" in str(err)

    def test_frontend_error_without_location(self):
        assert str(FrontendError("plain")) == "plain"


def _sample_body():
    return [
        N.VarDecl("a", N.BinOp("+", N.IntConst(1), N.IntConst(2))),
        N.If(N.BoolConst(True),
             [N.Assign("a", N.IntConst(5))],
             [N.Assign("a", N.IntConst(6))]),
        N.ForRange("i", N.IntConst(0), N.IntConst(3), N.IntConst(1),
                   [N.Assign("a", N.BinOp("*", N.VarRef("a"),
                                          N.VarRef("i")))]),
        N.OutputWrite(N.Cast(FLOAT, N.VarRef("a"))),
    ]


class TestVisitors:
    def test_walk_stmts_covers_nesting(self):
        kinds = [type(s).__name__ for s in walk_stmts(_sample_body())]
        assert kinds.count("Assign") == 3
        assert "ForRange" in kinds and "If" in kinds

    def test_iter_all_exprs_counts(self):
        exprs = list(iter_all_exprs(_sample_body()))
        assert sum(1 for e in exprs if isinstance(e, N.IntConst)) >= 7

    def test_map_exprs_rewrites_everywhere(self):
        def bump(e):
            if isinstance(e, N.IntConst):
                return N.IntConst(e.value + 100, e.type)
            return e

        out = map_exprs(_sample_body(), bump)
        values = [e.value for e in iter_all_exprs(out)
                  if isinstance(e, N.IntConst)]
        assert all(v >= 100 for v in values)
        # original untouched
        orig_values = [e.value for e in iter_all_exprs(_sample_body())
                       if isinstance(e, N.IntConst)]
        assert all(v < 100 for v in orig_values)

    def test_expr_transformer_bottom_up(self):
        class Collapse(ExprTransformer):
            def visit_BinOp(self, e):
                if isinstance(e.lhs, N.IntConst) and \
                        isinstance(e.rhs, N.IntConst) and e.op == "+":
                    return N.IntConst(e.lhs.value + e.rhs.value)
                return e

        out = Collapse().rewrite_body(_sample_body())
        assert isinstance(out[0].init, N.IntConst)
        assert out[0].init.value == 3


class TestPrinterEdgeCases:
    def test_double_negation_parenthesised(self):
        e = N.UnOp("-", N.UnOp("-", N.VarRef("x")))
        assert format_expr(e) == "-(-x)"

    def test_not_not(self):
        e = N.UnOp("!", N.UnOp("!", N.VarRef("x")))
        assert format_expr(e) == "!(!x)"

    def test_nested_select(self):
        e = N.Select(N.VarRef("c"),
                     N.Select(N.VarRef("d"), N.IntConst(1),
                              N.IntConst(2)),
                     N.IntConst(3))
        text = format_expr(e)
        assert text.count("?") == 2

    def test_precedence_mixed(self):
        e = N.BinOp("*", N.BinOp("+", N.VarRef("a"), N.VarRef("b")),
                    N.BinOp("-", N.VarRef("c"), N.VarRef("d")))
        assert format_expr(e) == "(a + b) * (c - d)"

    def test_c_float_literal_special_values(self):
        from repro.backends.base import c_float_literal
        assert c_float_literal(float("inf"), FLOAT) == "INFINITY"
        assert c_float_literal(float("-inf"), FLOAT) == "-INFINITY"
        assert c_float_literal(float("nan"), FLOAT) == "NAN"
        assert c_float_literal(1.0, FLOAT).endswith("f")
        from repro.types import DOUBLE
        assert not c_float_literal(1.0, DOUBLE).endswith("f")
        assert c_float_literal(2.0, None) == "2.0f"
