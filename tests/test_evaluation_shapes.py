"""The paper's qualitative results ("shape claims") must hold in the
modelled tables — these are the headline checks of the reproduction.
Numbered claims reference DESIGN.md section 4."""

import numpy as np
import pytest

from repro.dsl.boundary import Boundary
from repro.evaluation import paper_data
from repro.evaluation.figure4 import figure4_exploration
from repro.evaluation.opencv_cmp import gaussian_table
from repro.evaluation.variants import (
    BILATERAL_MODES,
    bilateral_table,
    cuda_variants,
    opencl_variants,
)
from repro.reporting.tables import marker_agreement, relative_errors

HANDLED = ["clamp", "repeat", "mirror", "constant"]


@pytest.fixture(scope="module")
def tesla_cuda():
    return bilateral_table("Tesla C2050", "cuda")


@pytest.fixture(scope="module")
def quadro_cuda():
    return bilateral_table("Quadro FX 5800", "cuda")


@pytest.fixture(scope="module")
def tesla_opencl():
    return bilateral_table("Tesla C2050", "opencl")


@pytest.fixture(scope="module")
def amd_tables():
    return {
        "hd5870": bilateral_table("Radeon HD 5870", "opencl"),
        "hd6970": bilateral_table("Radeon HD 6970", "opencl"),
    }


def spread(row, modes=HANDLED):
    values = [row[m] for m in modes if isinstance(row[m], float)]
    return max(values) / min(values)


class TestClaim1BoundaryConstancy:
    """Generated code: near-constant across boundary modes; manual
    varies strongly (up to ~2x, constant worst)."""

    def test_generated_flat_on_tesla(self, tesla_cuda):
        for name in ("Generated", "Generated+Mask",
                     "Generated+Mask+Tex"):
            assert spread(tesla_cuda[name]) < 1.12, name

    def test_manual_varies_on_tesla(self, tesla_cuda):
        assert spread(tesla_cuda["Manual"]) > 1.5
        assert spread(tesla_cuda["+Mask+Tex"]) > 1.5

    def test_manual_constant_mode_worst(self, tesla_cuda):
        row = tesla_cuda["Manual"]
        assert row["constant"] == max(row[m] for m in HANDLED)

    def test_generated_flat_on_all_devices(self, quadro_cuda,
                                           tesla_opencl, amd_tables):
        for table in (quadro_cuda, tesla_opencl,
                      amd_tables["hd5870"], amd_tables["hd6970"]):
            assert spread(table["Generated+Mask"]) < 1.12


class TestClaim2MaskSpeedup:
    """Constant-memory masks: ~1.4-1.6x on NVIDIA."""

    def test_tesla(self, tesla_cuda):
        ratio = tesla_cuda["Generated"]["clamp"] / \
            tesla_cuda["Generated+Mask"]["clamp"]
        assert 1.3 < ratio < 1.9

    def test_quadro(self, quadro_cuda):
        ratio = quadro_cuda["Generated"]["clamp"] / \
            quadro_cuda["Generated+Mask"]["clamp"]
        assert 1.25 < ratio < 1.9

    def test_manual_benefits_too(self, tesla_cuda):
        assert tesla_cuda["+Mask"]["clamp"] < \
            tesla_cuda["Manual"]["clamp"]


class TestClaim3TexturePaths:
    def test_texture_helps_cuda_on_gt200(self, quadro_cuda):
        assert quadro_cuda["Generated+Tex"]["clamp"] < \
            quadro_cuda["Generated"]["clamp"]

    def test_opencl_images_do_not_beat_buffers(self, tesla_opencl):
        assert tesla_opencl["Generated+Img"]["clamp"] >= \
            tesla_opencl["Generated"]["clamp"] * 0.98

    def test_hardware_border_na_cells(self, tesla_cuda, tesla_opencl):
        # CUDA 2D textures: no Mirror, no Constant
        assert tesla_cuda["+2DTex"]["mirror"] == "n/a"
        assert tesla_cuda["+2DTex"]["constant"] == "n/a"
        # OpenCL samplers: no Mirror, Constant allowed (0/1 only)
        assert tesla_opencl["+ImgBH"]["mirror"] == "n/a"
        assert isinstance(tesla_opencl["+ImgBH"]["constant"], float)


class TestClaim4GeneratedVsCompetitors:
    def test_generated_at_least_matches_manual(self, tesla_cuda):
        for mode in HANDLED:
            assert tesla_cuda["Generated+Mask+Tex"][mode] <= \
                tesla_cuda["+Mask+Tex"][mode] * 1.10, mode

    def test_generated_beats_manual_where_conditionals_cost(self,
                                                            tesla_cuda):
        # repeat/constant: inline conditionals hurt the manual variants
        for mode in ("repeat", "constant"):
            assert tesla_cuda["Generated+Mask+Tex"][mode] < \
                tesla_cuda["+Mask+Tex"][mode]

    def test_rapidmind_factor_two(self, tesla_cuda):
        """'our generated code outperforms the one of RapidMind by a
        factor of two'."""
        ratio = tesla_cuda["RapidMind"]["clamp"] / \
            tesla_cuda["Generated+Mask"]["clamp"]
        assert ratio > 2.0

    def test_rapidmind_crashes_repeat_on_tesla(self, tesla_cuda):
        assert tesla_cuda["RapidMind"]["repeat"] == "crash"
        assert tesla_cuda["RapidMind+Tex"]["repeat"] == "crash"

    def test_rapidmind_repeat_3x_on_quadro(self, quadro_cuda):
        row = quadro_cuda["RapidMind"]
        assert row["repeat"] / row["clamp"] > 2.0

    def test_rapidmind_no_mirror(self, tesla_cuda):
        assert tesla_cuda["RapidMind"]["mirror"] == "n/a"

    def test_crash_cells_match_paper(self, tesla_cuda):
        """Undefined-mode crashes: exactly the paper's pattern on the
        memory-protected Tesla under CUDA."""
        for variant in ("Manual", "+Mask", "Generated", "Generated+Mask"):
            assert tesla_cuda[variant]["undefined"] == "crash", variant
        for variant in ("+Tex", "+Mask+Tex", "Generated+Tex",
                        "Generated+Mask+Tex"):
            assert isinstance(tesla_cuda[variant]["undefined"], float), \
                variant

    def test_no_crashes_on_quadro(self, quadro_cuda):
        for name, row in quadro_cuda.items():
            if name.startswith("RapidMind"):
                continue
            for mode, v in row.items():
                assert v != "crash", (name, mode)


class TestClaim5OpenCV:
    @pytest.fixture(scope="class")
    def t8(self):
        return gaussian_table("Tesla C2050", 3)

    def test_ppt8_beats_ppt1(self, t8):
        for mode in HANDLED:
            assert t8["OpenCV: PPT=8"][mode] < t8["OpenCV: PPT=1"][mode]

    def test_opencv_varies_generated_constant(self, t8):
        assert spread(t8["OpenCV: PPT=8"]) > 1.2
        assert spread(t8["CUDA(Gen)"]) < 1.08

    def test_generated_in_ppt1_ballpark(self, t8):
        """'about as fast as the OpenCV implementation using the simple
        one-to-one mapping'."""
        for mode in HANDLED:
            gen = t8["CUDA(Gen)"][mode]
            ppt1 = t8["OpenCV: PPT=1"][mode]
            assert gen < ppt1 * 1.2, mode


class TestClaim6SmemSlowdown:
    @pytest.mark.parametrize("device", ["Tesla C2050", "Quadro FX 5800"])
    @pytest.mark.parametrize("size", [3, 5])
    def test_smem_slower_for_small_windows(self, device, size):
        table = gaussian_table(device, size)
        for mode in HANDLED:
            assert table["CUDA(+Smem)"][mode] > \
                table["CUDA(Gen)"][mode], (device, size, mode)


class TestClaim7Figure4:
    @pytest.fixture(scope="class")
    def fig4(self):
        return figure4_exploration()

    def test_wide_spread(self, fig4):
        worst = max(p.time_ms for p in fig4.points)
        assert worst / fig4.best.time_ms > 1.8

    def test_heuristic_within_10pct(self, fig4):
        assert fig4.heuristic_within <= 1.10

    def test_heuristic_is_paper_config(self, fig4):
        assert fig4.heuristic_block == paper_data.FIGURE4_OPTIMUM_BLOCK

    def test_optimum_in_paper_band(self, fig4):
        lo, hi = paper_data.FIGURE4_RANGE_MS
        assert lo * 0.8 <= fig4.best.time_ms <= hi * 1.2


class TestClaim8AmdMuted:
    def test_mask_benefit_smaller_on_vliw(self, quadro_cuda, amd_tables):
        def benefit(table):
            return table["Generated"]["clamp"] / \
                table["Generated+Mask"]["clamp"]
        nvidia = benefit(quadro_cuda)
        for name, table in amd_tables.items():
            assert benefit(table) < nvidia, name

    def test_amd_manual_modes_flat(self, amd_tables):
        """VLIW predication: manual boundary modes cluster on AMD (the
        paper's manual rows vary ~10-30%, far below NVIDIA's 2x)."""
        for table in amd_tables.values():
            assert spread(table["Manual"]) < 1.35


class TestQuantitativeAgreement:
    """Beyond shapes: modelled cells should track the published numbers
    (the substrate is a model, so generous tolerances)."""

    @pytest.mark.parametrize("device,backend", [
        ("Tesla C2050", "cuda"),
        ("Quadro FX 5800", "cuda"),
        ("Tesla C2050", "opencl"),
        ("Quadro FX 5800", "opencl"),
        ("Radeon HD 5870", "opencl"),
        ("Radeon HD 6970", "opencl"),
    ])
    def test_mean_relative_error_bounded(self, device, backend):
        model = bilateral_table(device, backend)
        paper = paper_data.ALL_BILATERAL_TABLES[(device, backend)]
        errs = relative_errors(model, paper, paper_data.MODE_ORDER)
        assert errs, "no comparable cells"
        assert float(np.mean(errs)) < 0.40, \
            f"mean error {np.mean(errs):.1%}"

    def test_crash_and_na_markers_match_tables_ii_iv(self):
        for device in ("Tesla C2050", "Quadro FX 5800"):
            model = bilateral_table(device, "cuda")
            paper = paper_data.ALL_BILATERAL_TABLES[(device, "cuda")]
            mismatches = list(marker_agreement(model, paper,
                                               paper_data.MODE_ORDER))
            assert not mismatches, mismatches

    @pytest.mark.parametrize("device,size", [
        ("Tesla C2050", 3), ("Tesla C2050", 5),
        ("Quadro FX 5800", 3), ("Quadro FX 5800", 5),
    ])
    def test_gaussian_tables_bounded(self, device, size):
        model = gaussian_table(device, size)
        paper = paper_data.ALL_GAUSSIAN_TABLES[device][size]
        # align row naming (Table VIII uses +Tex for the OpenCL image row)
        model = dict(model)
        model.setdefault("OpenCL(+Tex)", model.get("OpenCL(+Img)"))
        errs = relative_errors(model, paper,
                               paper_data.GAUSSIAN_MODE_ORDER)
        assert errs
        assert float(np.mean(errs)) < 0.60


class TestTableCompleteness:
    def test_cuda_tables_have_all_rows(self, tesla_cuda):
        expected = {v.name for v in cuda_variants()}
        assert set(tesla_cuda) == expected

    def test_opencl_tables_have_all_rows(self, tesla_opencl):
        expected = {v.name for v in opencl_variants()}
        assert set(tesla_opencl) == expected

    def test_all_modes_present(self, tesla_cuda):
        for row in tesla_cuda.values():
            assert set(row) == {m.value for m in BILATERAL_MODES}
