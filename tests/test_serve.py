"""End-to-end tests for ``repro serve`` (:mod:`repro.serve`).

The contract under test, per ISSUE acceptance:

* a served request's output is **byte-identical** to executing the same
  pipeline directly through the scheduler;
* N identical concurrent requests coalesce into **exactly one
  execution** (proven both by counting ``execute_graph`` calls through
  a monkeypatch and by the ``serve.dedup_hits`` metric);
* the timeout and load-shedding paths answer with their documented
  status codes and retriable markers;
* ``/metrics`` and ``/healthz`` have the documented shape;
* SIGTERM drains cleanly: in-flight requests complete, queued ones are
  rejected retriable, the process exits 0.

HTTP tests bind an ephemeral port; queue-mechanics tests drive
:class:`~repro.serve.ServeService` directly (no sockets) so windows and
worker counts are deterministic.
"""

from __future__ import annotations

import json
import re
import signal
import subprocess
import sys
import threading
import time

import numpy as np
import pytest

from repro.graph.scheduler import execute_graph
from repro.serve import (
    PROTOCOL_VERSION,
    ProtocolError,
    ServeClient,
    ServeConfig,
    ServeService,
    ServerBusy,
    decode_image,
    encode_image,
    plan_request,
    request_fingerprint,
)
from repro.serve.server import create_server


W, H = 40, 32


@pytest.fixture
def frame():
    rng = np.random.default_rng(20240807)
    return rng.random((H, W), dtype=np.float32)


@pytest.fixture
def http_serve():
    """A real server on an ephemeral port; yields (client, server)."""
    server = create_server(port=0, config=ServeConfig(
        workers=2, batch_window_ms=2.0, engine="sim"))
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    host, port = server.server_address[:2]
    client = ServeClient(host, port, timeout=30.0)
    client.wait_ready(timeout=10.0)
    try:
        yield client, server
    finally:
        server.service.drain(timeout=10.0)
        server.shutdown()
        server.server_close()


# --------------------------------------------------------------------------
# Protocol round-trips
# --------------------------------------------------------------------------


class TestProtocol:
    def test_image_roundtrip_is_byte_identical(self, frame):
        assert np.array_equal(decode_image(encode_image(frame)), frame)

    def test_decode_rejects_wrong_byte_count(self, frame):
        payload = encode_image(frame)
        payload["shape"] = [H, W + 1]
        with pytest.raises(ProtocolError, match="bytes"):
            decode_image(payload)

    def test_decode_rejects_unknown_dtype(self, frame):
        payload = encode_image(frame)
        payload["dtype"] = "complex128"
        with pytest.raises(ProtocolError, match="dtype"):
            decode_image(payload)

    def test_fingerprint_covers_pixels_and_work(self, frame):
        body = {"pipeline": "edge", "image": encode_image(frame)}
        fp1, _ = request_fingerprint(body)
        assert fp1 == request_fingerprint(dict(body))[0]
        other = dict(body, image=encode_image(frame + 1.0))
        assert request_fingerprint(other)[0] != fp1
        assert request_fingerprint(
            dict(body, pipeline="denoise"))[0] != fp1

    def test_fingerprint_ignores_timeout(self, frame):
        body = {"pipeline": "edge", "image": encode_image(frame)}
        with_timeout = dict(body, timeout_ms=5)
        assert (request_fingerprint(body)[0]
                == request_fingerprint(with_timeout)[0])

    def test_fingerprint_resolves_omitted_engine(self, frame):
        # omitted engine and explicit server-default engine are
        # interchangeable work and must coalesce
        body = {"pipeline": "edge", "image": encode_image(frame)}
        explicit = dict(body, engine="auto")
        assert (request_fingerprint(body)[0]
                == request_fingerprint(explicit)[0])
        assert (request_fingerprint(body, default_engine="sim")[0]
                == request_fingerprint(dict(body, engine="sim"))[0])
        assert (request_fingerprint(body, default_engine="sim")[0]
                != request_fingerprint(explicit)[0])


# --------------------------------------------------------------------------
# End-to-end over HTTP
# --------------------------------------------------------------------------


class TestHTTP:
    def test_result_byte_identical_to_direct_scheduler(self, http_serve,
                                                       frame):
        client, _ = http_serve
        served = client.execute(frame, pipeline="edge", engine="sim")

        plan = plan_request({"pipeline": "edge"}, frame.copy())
        execute_graph(plan.graph, engine="sim", register_metrics=False)
        direct = plan.output.get_data()

        assert served.image.dtype == direct.dtype
        assert np.array_equal(served.image, direct)
        assert served.meta["engine"] == "sim"
        assert served.meta["launches"] >= 4

    def test_chain_request_executes(self, http_serve, frame):
        client, _ = http_serve
        result = client.execute(
            frame, chain=[{"op": "gaussian", "size": 5},
                          {"op": "threshold", "value": 0.5}],
            engine="sim")
        assert result.image.shape == frame.shape

    def test_healthz_shape(self, http_serve):
        client, _ = http_serve
        doc = client.healthz()
        assert doc["status"] == "ok"
        assert doc["protocol"] == PROTOCOL_VERSION
        assert doc["uptime_s"] >= 0
        # started_at_unix is wall-clock "now" give or take the fixture
        assert abs(doc["started_at_unix"] - time.time()) < 300
        assert doc["engine"] == "sim"
        assert doc["engine_fingerprint"] == "sim"

    def test_metrics_shape(self, http_serve, frame):
        client, _ = http_serve
        client.execute(frame, pipeline="edge", engine="sim")
        snapshot = client.metrics()
        serve = snapshot["serve"]
        for key in ("serve.requests", "serve.batched",
                    "serve.dedup_hits", "serve.queue_depth",
                    "serve.shed"):
            assert key in serve, key
        assert serve["serve.requests"] >= 1
        assert serve["serve.queue_depth"] == 0
        # the service's aggregate cache/pool sources are installed too
        assert "cache.ir.hits" in snapshot["cache"]
        assert "pool.allocs" in snapshot["pool"]

    def test_bad_pipeline_is_400(self, http_serve, frame):
        client, _ = http_serve
        from repro.serve import ServeError
        with pytest.raises(ServeError) as exc_info:
            client.execute(frame, pipeline="no_such_pipeline")
        assert exc_info.value.http_status == 400

    def test_malformed_json_is_400(self, http_serve):
        import http.client as http_client
        client, _ = http_serve
        conn = http_client.HTTPConnection(client.host, client.port,
                                          timeout=10)
        conn.request("POST", "/v1/execute", body=b"{not json",
                     headers={"Content-Length": "9"})
        response = conn.getresponse()
        doc = json.loads(response.read())
        conn.close()
        assert response.status == 400
        assert doc["error"] == "bad_json"

    def test_unknown_endpoint_is_404(self, http_serve):
        client, _ = http_serve
        from repro.serve import ServeError
        with pytest.raises(ServeError) as exc_info:
            client._request("GET", "/nope")
        assert exc_info.value.http_status == 404


# --------------------------------------------------------------------------
# Dedup: identical concurrent requests -> exactly one execution
# --------------------------------------------------------------------------


class TestDedup:
    def test_identical_concurrent_requests_execute_once(
            self, frame, monkeypatch):
        calls = []
        real = execute_graph

        def counting(*args, **kwargs):
            calls.append(threading.get_ident())
            return real(*args, **kwargs)

        import repro.serve.service as service_mod
        monkeypatch.setattr(service_mod, "execute_graph", counting)

        # a wide window so every submission provably lands in one batch
        svc = ServeService(ServeConfig(
            workers=4, batch_window_ms=150.0, engine="sim")).start()
        try:
            body = {"pipeline": "edge", "image": encode_image(frame),
                    "engine": "sim"}
            n = 8
            results = [None] * n

            def go(i):
                results[i] = svc.handle(dict(body))

            threads = [threading.Thread(target=go, args=(i,))
                       for i in range(n)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()

            assert len(calls) == 1, \
                f"expected exactly one execution, saw {len(calls)}"
            statuses = {status for status, _ in results}
            assert statuses == {200}
            images = [decode_image(doc["image"])
                      for _, doc in results]
            assert all(np.array_equal(images[0], img)
                       for img in images)
            metrics = svc.metrics()
            assert metrics["serve.dedup_hits"] == n - 1
            assert metrics["serve.executions"] == 1
            assert metrics["serve.batched"] == n
        finally:
            svc.drain(timeout=10.0)

    def test_distinct_requests_each_execute(self, frame):
        svc = ServeService(ServeConfig(
            workers=2, batch_window_ms=50.0, engine="sim")).start()
        try:
            results = [None] * 3

            def go(i):
                body = {"pipeline": "edge",
                        "image": encode_image(frame + i),
                        "engine": "sim"}
                results[i] = svc.handle(body)

            threads = [threading.Thread(target=go, args=(i,))
                       for i in range(3)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            assert all(status == 200 for status, _ in results)
            metrics = svc.metrics()
            assert metrics["serve.executions"] == 3
            assert metrics["serve.dedup_hits"] == 0
        finally:
            svc.drain(timeout=10.0)


# --------------------------------------------------------------------------
# Timeouts, shedding, drain
# --------------------------------------------------------------------------


class TestRobustness:
    def test_timeout_answers_504(self, frame, monkeypatch):
        import repro.serve.service as service_mod

        def slow(*args, **kwargs):
            time.sleep(0.5)
            return execute_graph(*args, **kwargs)

        monkeypatch.setattr(service_mod, "execute_graph", slow)
        svc = ServeService(ServeConfig(
            workers=1, batch_window_ms=0.0, engine="sim")).start()
        try:
            status, doc = svc.handle(
                {"pipeline": "edge", "image": encode_image(frame),
                 "engine": "sim", "timeout_ms": 50})
            assert status == 504
            assert doc["error"] == "timeout"
            assert doc["retriable"] is True
            assert svc.metrics()["serve.timeouts"] == 1
        finally:
            svc.drain(timeout=10.0)

    def test_fully_abandoned_group_is_cancelled(self, frame,
                                                monkeypatch):
        import repro.serve.service as service_mod

        calls = []

        def counting(*args, **kwargs):
            calls.append(1)
            return execute_graph(*args, **kwargs)

        monkeypatch.setattr(service_mod, "execute_graph", counting)
        # the window is far longer than the deadline: the waiter gives
        # up while its request is still queued, so the group must be
        # cancelled without ever executing
        svc = ServeService(ServeConfig(
            workers=1, batch_window_ms=300.0, engine="sim")).start()
        try:
            status, doc = svc.handle(
                {"pipeline": "edge", "image": encode_image(frame),
                 "engine": "sim", "timeout_ms": 30})
            assert status == 504
            deadline = time.monotonic() + 5.0
            while (svc.metrics()["serve.cancelled"] == 0
                   and time.monotonic() < deadline):
                time.sleep(0.02)
            assert svc.metrics()["serve.cancelled"] == 1
            assert calls == []
        finally:
            svc.drain(timeout=10.0)

    def test_queue_limit_sheds_429(self, frame, monkeypatch):
        import repro.serve.service as service_mod

        release = threading.Event()

        def blocking(*args, **kwargs):
            release.wait(timeout=10.0)
            return execute_graph(*args, **kwargs)

        monkeypatch.setattr(service_mod, "execute_graph", blocking)
        svc = ServeService(ServeConfig(
            workers=1, batch_window_ms=0.0, queue_limit=2,
            engine="sim")).start()
        waiters = []
        try:
            # occupy the single worker, then fill the bounded queue
            occupier = threading.Thread(target=svc.handle, args=(
                {"pipeline": "edge", "image": encode_image(frame),
                 "engine": "sim"},))
            occupier.start()
            deadline = time.monotonic() + 5.0
            while (svc.metrics()["serve.executions"] == 0
                   and time.monotonic() < deadline):
                time.sleep(0.01)
            waiters = []
            for i in range(2):
                body = {"pipeline": "edge",
                        "image": encode_image(frame + 1 + i),
                        "engine": "sim"}
                t = threading.Thread(target=svc.handle, args=(body,))
                t.start()
                waiters.append(t)
            deadline = time.monotonic() + 5.0
            while (svc.metrics()["serve.queue_depth"] < 2
                   and time.monotonic() < deadline):
                time.sleep(0.01)

            shed_body = {"pipeline": "edge",
                         "image": encode_image(frame + 9),
                         "engine": "sim"}
            status, doc = svc.handle(shed_body)
            assert status == 429
            assert doc["error"] == "queue_full"
            assert doc["retry_after"] > 0
            assert svc.metrics()["serve.shed"] == 1
        finally:
            release.set()
            for t in waiters:
                t.join(timeout=10.0)
            occupier.join(timeout=10.0)
            svc.drain(timeout=10.0)

    def test_shed_over_http_sets_retry_after_header(self, frame):
        import http.client as http_client

        server = create_server(port=0, config=ServeConfig(
            workers=1, batch_window_ms=500.0, queue_limit=1,
            engine="sim"))
        thread = threading.Thread(target=server.serve_forever,
                                  daemon=True)
        thread.start()
        host, port = server.server_address[:2]
        client = ServeClient(host, port, timeout=30.0)
        client.wait_ready()
        try:
            # the huge batching window keeps request #1 queued; #2 must
            # be shed with a Retry-After header
            first = threading.Thread(
                target=lambda: client.execute(
                    frame, pipeline="edge", timeout_ms=8000))
            first.start()
            deadline = time.monotonic() + 5.0
            while (server.service.metrics()["serve.queue_depth"] < 1
                   and time.monotonic() < deadline):
                time.sleep(0.01)

            body = json.dumps(
                {"pipeline": "edge", "image": encode_image(frame + 1),
                 "engine": "sim"}).encode()
            conn = http_client.HTTPConnection(host, port, timeout=10)
            conn.request("POST", "/v1/execute", body=body,
                         headers={"Content-Type": "application/json"})
            response = conn.getresponse()
            doc = json.loads(response.read())
            retry_after = response.getheader("Retry-After")
            conn.close()
            assert response.status == 429, doc
            assert retry_after is not None and float(retry_after) >= 1
            first.join(timeout=15.0)
        finally:
            server.service.drain(timeout=10.0)
            server.shutdown()
            server.server_close()

    def test_client_raises_server_busy(self, frame):
        svc = ServeService(ServeConfig(
            workers=1, batch_window_ms=400.0, queue_limit=1,
            engine="sim")).start()
        try:
            svc.submit({"pipeline": "edge",
                        "image": encode_image(frame), "engine": "sim"})
            status, doc = svc.handle(
                {"pipeline": "edge", "image": encode_image(frame + 1),
                 "engine": "sim", "timeout_ms": 100})
            assert status == 429
        finally:
            svc.drain(timeout=10.0)
        assert ServerBusy(429, {"retry_after": 2.5}).retry_after == 2.5

    def test_drain_rejects_queued_as_retriable(self, frame):
        svc = ServeService(ServeConfig(
            workers=1, batch_window_ms=1000.0, engine="sim")).start()
        statuses = []

        def go():
            status, doc = svc.handle(
                {"pipeline": "edge", "image": encode_image(frame),
                 "engine": "sim"})
            statuses.append((status, doc))

        t = threading.Thread(target=go)
        t.start()
        deadline = time.monotonic() + 5.0
        while (svc.metrics()["serve.queue_depth"] < 1
               and time.monotonic() < deadline):
            time.sleep(0.01)
        assert svc.drain(timeout=10.0)
        t.join(timeout=10.0)
        assert statuses, "queued request never answered"
        status, doc = statuses[0]
        assert status == 503
        assert doc["error"] == "draining"
        assert doc["retriable"] is True
        # new submissions are refused outright
        status, doc = svc.handle(
            {"pipeline": "edge", "image": encode_image(frame),
             "engine": "sim"})
        assert status == 503


# --------------------------------------------------------------------------
# Observability: request ids, structured log, histograms, Prometheus
# --------------------------------------------------------------------------


class TestObservability:
    def test_request_id_round_trip(self, http_serve, frame):
        """One request's id appears in the response doc, the meta, the
        X-Request-Id header, every structured-log line of its lifecycle
        and the serve.request span — the whole correlation story."""
        import io

        from repro.obs import tracing
        from repro.obs.log import EVENTS, logging_to

        client, _ = http_serve
        with logging_to(io.StringIO()) as log, tracing() as tracer:
            result = client.execute(frame, pipeline="edge",
                                    engine="sim")
        rid = result.request_id
        assert re.fullmatch(r"[0-9a-f]{16}", rid)
        assert result.meta["request_id"] == rid

        events = [json.loads(line)
                  for line in log.stream.getvalue().splitlines()]
        assert all(e["event"] in EVENTS for e in events)
        mine = [e["event"] for e in events
                if e.get("request_id") == rid]
        assert mine == ["request.received", "request.grouped",
                        "request.dispatched", "request.completed"]
        completed = [e for e in events
                     if e["event"] == "request.completed"
                     and e["request_id"] == rid][0]
        assert completed["http_status"] == 200
        assert completed["request_ms"] > 0

        by_name = {}
        for span in tracer.spans():
            by_name.setdefault(span.name, []).append(span)
        req_spans = [s for s in by_name.get("serve.request", [])
                     if s.attrs.get("request_id") == rid]
        assert len(req_spans) == 1
        # the worker spans carry the lead waiter's id
        assert any(s.attrs.get("request_id") == rid
                   for s in by_name.get("serve.exec", []))

    def test_request_id_header_and_uniqueness(self, http_serve, frame):
        import http.client as http_client

        client, _ = http_serve
        seen = set()
        for i in range(3):
            body = json.dumps(
                {"pipeline": "edge", "image": encode_image(frame + i),
                 "engine": "sim"}).encode()
            conn = http_client.HTTPConnection(client.host, client.port,
                                              timeout=10)
            conn.request("POST", "/v1/execute", body=body,
                         headers={"Content-Type": "application/json"})
            response = conn.getresponse()
            doc = json.loads(response.read())
            header = response.getheader("X-Request-Id")
            conn.close()
            assert response.status == 200
            assert header == doc["request_id"]
            seen.add(header)
        assert len(seen) == 3

    def test_rejections_carry_request_id(self, frame):
        svc = ServeService(ServeConfig(
            workers=1, batch_window_ms=400.0, queue_limit=1,
            engine="sim")).start()
        try:
            svc.submit({"pipeline": "edge",
                        "image": encode_image(frame), "engine": "sim"})
            status, doc = svc.handle(
                {"pipeline": "edge", "image": encode_image(frame + 1),
                 "engine": "sim", "timeout_ms": 100})
            assert status == 429
            assert re.fullmatch(r"[0-9a-f]{16}", doc["request_id"])
            status, doc = svc.handle(["not", "an", "object"])
            assert status == 400
            assert re.fullmatch(r"[0-9a-f]{16}", doc["request_id"])
        finally:
            svc.drain(timeout=10.0)

    def test_request_histograms_populate(self, http_serve, frame):
        client, _ = http_serve
        for i in range(4):
            client.execute(frame + i, pipeline="edge", engine="sim")
        hist = client.metrics()["hist"]
        assert hist["serve.hist.request_ms.count"] >= 4
        p50 = hist["serve.hist.request_ms.p50"]
        p99 = hist["serve.hist.request_ms.p99"]
        assert 0 < p50 <= p99
        assert hist["serve.hist.queue_wait_ms.count"] >= 4
        assert hist["serve.hist.batch_size.count"] >= 4
        # the scheduler and cache record through the same set
        assert hist["graph.hist.execute_ms.count"] >= 4
        assert hist["cache.hist.hit_ms.count"] >= 1

    def test_prometheus_endpoint(self, http_serve, frame):
        import http.client as http_client

        client, _ = http_serve
        client.execute(frame, pipeline="edge", engine="sim")
        conn = http_client.HTTPConnection(client.host, client.port,
                                          timeout=10)
        conn.request("GET", "/metrics?format=prometheus")
        response = conn.getresponse()
        text = response.read().decode()
        content_type = response.getheader("Content-Type")
        conn.close()
        assert response.status == 200
        assert content_type.startswith("text/plain; version=0.0.4")
        assert "# TYPE repro_serve_requests gauge" in text
        assert "# TYPE repro_serve_hist_request_ms histogram" in text
        assert 'repro_serve_hist_request_ms_bucket{le="+Inf"}' in text
        assert "repro_serve_hist_request_ms_count" in text
        # the flattened hist gauges must NOT leak into the gauge
        # section (their .count would collide with _count)
        assert "# TYPE repro_serve_hist_request_ms_count gauge" \
            not in text

    def test_unknown_metrics_format_is_400(self, http_serve):
        client, _ = http_serve
        from repro.serve import ServeError
        with pytest.raises(ServeError) as exc_info:
            client._request("GET", "/metrics?format=xml")
        assert exc_info.value.http_status == 400


# --------------------------------------------------------------------------
# The real process: SIGTERM drain through the CLI
# --------------------------------------------------------------------------


class TestSubprocess:
    def test_sigterm_drains_and_exits_zero(self, frame, tmp_path):
        import os
        import pathlib

        repo_root = pathlib.Path(__file__).resolve().parents[1]
        env = dict(os.environ)
        env["PYTHONPATH"] = str(repo_root / "src")
        env["REPRO_NATIVE_DIR"] = str(tmp_path)
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro.cli", "serve", "--port", "0",
             "--engine", "sim", "--workers", "2"],
            stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True,
            cwd=str(repo_root), env=env)
        try:
            line = proc.stdout.readline()
            match = re.search(r"http://([\d.]+):(\d+)", line)
            assert match, f"no ready line, got {line!r}"
            host, port = match.group(1), int(match.group(2))
            client = ServeClient(host, port, timeout=30.0)
            client.wait_ready(timeout=15.0)
            result = client.execute(frame, pipeline="edge",
                                    engine="sim")
            assert result.image.shape == frame.shape

            proc.send_signal(signal.SIGTERM)
            out, err = proc.communicate(timeout=30)
            assert proc.returncode == 0, (out, err)
            assert "drained" in out
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.communicate(timeout=10)
