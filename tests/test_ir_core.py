"""IR node helpers, CFG construction, printer."""

import pytest

from repro.ir import nodes as N
from repro.ir.cfg import build_cfg
from repro.ir.printer import format_expr, format_kernel
from repro.types import FLOAT, INT


def _int(v):
    return N.IntConst(v, INT)


class TestConstIntValue:
    def test_literals(self):
        assert N.const_int_value(_int(5)) == 5
        assert N.const_int_value(N.BoolConst(True)) == 1

    def test_unary(self):
        assert N.const_int_value(N.UnOp("-", _int(3))) == -3
        assert N.const_int_value(N.UnOp("+", _int(3))) == 3

    def test_arithmetic(self):
        e = N.BinOp("+", N.BinOp("*", _int(2), _int(3)), _int(1))
        assert N.const_int_value(e) == 7
        e = N.BinOp("-", _int(10), _int(4))
        assert N.const_int_value(e) == 6

    def test_int_cast(self):
        e = N.Cast(INT, _int(9))
        assert N.const_int_value(e) == 9

    def test_float_cast_not_constant_int(self):
        e = N.Cast(FLOAT, _int(9))
        assert N.const_int_value(e) is None

    def test_var_not_constant(self):
        assert N.const_int_value(N.VarRef("x")) is None
        e = N.BinOp("+", N.VarRef("x"), _int(1))
        assert N.const_int_value(e) is None

    def test_division_not_folded(self):
        # division is excluded (C vs Python semantics differ)
        e = N.BinOp("/", _int(7), _int(2))
        assert N.const_int_value(e) is None


class TestNodeStructure:
    def test_children_and_rebuild(self):
        e = N.BinOp("+", _int(1), _int(2))
        a, b = e.children()
        rebuilt = e.with_children(_int(3), b)
        assert rebuilt.lhs.value == 3
        assert e.lhs.value == 1          # original untouched

    def test_unknown_operator_rejected(self):
        with pytest.raises(ValueError):
            N.BinOp("**", _int(1), _int(2))
        with pytest.raises(ValueError):
            N.UnOp("abs", _int(1))

    def test_accessor_read_defaults_to_centre(self):
        r = N.AccessorRead("inp")
        assert N.const_int_value(r.dx) == 0
        assert N.const_int_value(r.dy) == 0

    def test_kernel_lookup_helpers(self):
        k = N.KernelIR(
            name="k", pixel_type=FLOAT, body=[],
            accessors=[N.AccessorInfo("a", FLOAT, "clamp")],
            masks=[N.MaskInfo("m", FLOAT, (3, 3))],
            params=[N.ParamInfo("p", INT, 1)])
        assert k.accessor("a").name == "a"
        assert k.mask("m").size == (3, 3)
        assert k.param("p").value == 1
        with pytest.raises(KeyError):
            k.accessor("zzz")


def _simple_body():
    return [
        N.VarDecl("s", N.FloatConst(0.0, FLOAT), FLOAT),
        N.ForRange("i", _int(0), _int(3), _int(1), [
            N.Assign("s", N.BinOp("+", N.VarRef("s"),
                                  N.AccessorRead("inp", N.VarRef("i"),
                                                 _int(0)))),
        ]),
        N.If(N.BinOp(">", N.VarRef("s"), N.FloatConst(1.0, FLOAT)),
             [N.Assign("s", N.FloatConst(1.0, FLOAT))],
             [N.Assign("s", N.FloatConst(0.0, FLOAT))]),
        N.OutputWrite(N.VarRef("s")),
    ]


class TestCfg:
    def test_straight_line_single_path(self):
        cfg = build_cfg([N.OutputWrite(N.FloatConst(1.0))])
        order = cfg.reverse_postorder()
        assert order[0] == cfg.entry
        assert order[-1] == cfg.exit

    def test_if_creates_diamond(self):
        body = [N.If(N.BoolConst(True), [N.OutputWrite(N.FloatConst(1.0))],
                     [N.OutputWrite(N.FloatConst(2.0))])]
        cfg = build_cfg(body)
        entry_succ = cfg.blocks[cfg.entry].successors
        assert len(entry_succ) == 2     # then + else

    def test_loop_has_back_edge(self):
        cfg = build_cfg(_simple_body())
        has_back_edge = False
        order = cfg.reverse_postorder()
        position = {b: i for i, b in enumerate(order)}
        for block in cfg.blocks.values():
            for succ in block.successors:
                if succ in position and block.index in position \
                        and position[succ] < position[block.index]:
                    has_back_edge = True
        assert has_back_edge

    def test_all_blocks_reachable(self):
        cfg = build_cfg(_simple_body())
        assert cfg.reachable() == set(cfg.blocks)

    def test_predecessors(self):
        cfg = build_cfg(_simple_body())
        assert cfg.predecessors(cfg.entry) == [] or \
            all(cfg.entry in cfg.blocks[p].successors
                for p in cfg.predecessors(cfg.entry))


class TestPrinter:
    def test_expr_precedence_parentheses(self):
        e = N.BinOp("*", N.BinOp("+", _int(1), _int(2)), _int(3))
        assert format_expr(e) == "(1 + 2) * 3"

    def test_expr_no_spurious_parens(self):
        e = N.BinOp("+", N.BinOp("*", _int(1), _int(2)), _int(3))
        assert format_expr(e) == "1 * 2 + 3"

    def test_kernel_format_includes_metadata(self):
        k = N.KernelIR(
            name="k", pixel_type=FLOAT, body=_simple_body(),
            accessors=[N.AccessorInfo("inp", FLOAT, "clamp",
                                      window=(3, 3))])
        text = format_kernel(k)
        assert "accessor inp" in text
        assert "for i in range(0, 3, 1)" in text
        assert "output() = s;" in text
