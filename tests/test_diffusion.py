"""Perona-Malik anisotropic diffusion: iterative kernel with Uniform
runtime parameters, validated against a golden NumPy implementation."""

import numpy as np
import pytest

from repro import Boundary
from repro.filters.diffusion import (
    anisotropic_diffusion,
    diffusion_reference,
    make_diffusion_step,
)

from .helpers import random_image


class TestDiffusion:
    def test_matches_reference(self):
        data = random_image(24, 20, seed=1)
        got = anisotropic_diffusion(data, iterations=5, kappa=0.15,
                                    lam=0.2)
        ref = diffusion_reference(data, 5, 0.15, 0.2)
        np.testing.assert_allclose(got, ref, atol=1e-5)

    def test_single_step_exact(self):
        data = random_image(16, 16, seed=2)
        got = anisotropic_diffusion(data, iterations=1, kappa=0.1,
                                    lam=0.25)
        ref = diffusion_reference(data, 1, 0.1, 0.25)
        np.testing.assert_allclose(got, ref, atol=1e-6)

    def test_smooths_flats_keeps_edges(self):
        data = np.zeros((32, 32), np.float32)
        data[:, 16:] = 1.0
        rng = np.random.default_rng(0)
        noisy = data + 0.05 * rng.standard_normal((32, 32)) \
            .astype(np.float32)
        out = anisotropic_diffusion(noisy, iterations=15, kappa=0.15,
                                    lam=0.2)
        assert out[:, :12].std() < noisy[:, :12].std() * 0.5
        edge = out[:, 17].mean() - out[:, 14].mean()
        assert edge > 0.8

    def test_preserves_mean_with_mirror(self):
        data = random_image(24, 24, seed=3)
        out = anisotropic_diffusion(data, iterations=8, kappa=0.2,
                                    lam=0.2, boundary=Boundary.MIRROR)
        assert abs(float(out.mean() - data.mean())) < 1e-3

    def test_uniforms_are_runtime_params(self):
        from repro import compile_kernel
        data = random_image(8, 8, seed=4)
        kernel, _, _ = make_diffusion_step(8, 8, 0.1, 0.2, data=data)
        compiled = compile_kernel(kernel, use_texture=False)
        sig = compiled.device_code.split("_kernel(")[1].split(")")[0]
        assert "float kappa" in sig
        assert "float lam" in sig

    def test_stability_validation(self):
        data = random_image(8, 8)
        with pytest.raises(ValueError):
            anisotropic_diffusion(data, lam=0.5)
        with pytest.raises(ValueError):
            anisotropic_diffusion(data, iterations=0)

    def test_convergence_towards_piecewise_constant(self):
        data = random_image(24, 24, seed=5)
        few = anisotropic_diffusion(data, iterations=2, kappa=0.3,
                                    lam=0.2)
        many = anisotropic_diffusion(data, iterations=20, kappa=0.3,
                                     lam=0.2)
        grad = lambda im: np.abs(np.diff(im, axis=1)).mean()
        assert grad(many) < grad(few) < grad(data)
