"""Multiresolution filtering through a shared compilation cache.

The pyramid compiles one blur per level per pass (analysis + synthesis)
plus optional device resamples; routing them through one
CompilationCache must leave the pixels untouched while the synthesis
pass reuses the analysis pass's artifacts.
"""

import numpy as np
import pytest

from repro import CompilationCache
from repro.dsl.boundary import Boundary
from repro.filters.multiresolution import multiresolution_filter

from .helpers import random_image


@pytest.fixture(scope="module")
def frame():
    return random_image(64, 64)


def test_cached_results_identical_to_uncached(frame):
    baseline = multiresolution_filter(frame, levels=2, cache=False)
    cache = CompilationCache()
    cached = multiresolution_filter(frame, levels=2, cache=cache)
    assert np.array_equal(baseline, cached)
    # synthesis blurs share geometry with analysis blurs level by level
    assert cache.stats.hits > 0
    assert cache.stats.misses == 2       # one fresh compile per level


def test_default_uses_fresh_per_call_cache(frame):
    baseline = multiresolution_filter(frame, levels=2, cache=False)
    assert np.array_equal(baseline, multiresolution_filter(frame,
                                                           levels=2))


def test_shared_cache_across_calls(frame):
    cache = CompilationCache()
    first = multiresolution_filter(frame, levels=2, cache=cache)
    misses_after_first = cache.stats.misses
    second = multiresolution_filter(frame, levels=2, cache=cache)
    assert np.array_equal(first, second)
    # the second call compiles nothing new
    assert cache.stats.misses == misses_after_first


def test_device_resample_path_cached(frame):
    kwargs = dict(levels=2, boundary=Boundary.MIRROR,
                  device_resample=True)
    baseline = multiresolution_filter(frame, cache=False, **kwargs)
    cache = CompilationCache()
    cached = multiresolution_filter(frame, cache=cache, **kwargs)
    assert np.array_equal(baseline, cached)
    assert cache.stats.hits + cache.stats.misses > 0


def test_gains_still_apply_with_cache(frame):
    cache = CompilationCache()
    identity = multiresolution_filter(frame, levels=2, cache=cache)
    boosted = multiresolution_filter(frame, levels=2, gains=[2.0, 1.0],
                                     cache=cache)
    assert not np.array_equal(identity, boosted)
