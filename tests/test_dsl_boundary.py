"""Boundary modes: index-adjustment semantics pinned to np.pad.

The central invariant: :func:`repro.dsl.boundary.adjust_indices` — whose
formulas the backends also print in C — must agree with the equivalent
``np.pad`` mode for every in- and out-of-bounds index the generated code
can produce.  Verified property-based.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dsl.boundary import (
    Boundary,
    BoundaryCondition,
    NUMPY_PAD_MODE,
    adjust_indices,
    out_of_bounds_mask,
)
from repro.dsl.image import Image
from repro.errors import DslError


class TestBoundaryEnum:
    def test_coerce_from_string(self):
        assert Boundary.coerce("clamp") is Boundary.CLAMP
        assert Boundary.coerce("MIRROR") is Boundary.MIRROR

    def test_coerce_passthrough(self):
        assert Boundary.coerce(Boundary.REPEAT) is Boundary.REPEAT

    def test_coerce_invalid(self):
        with pytest.raises(DslError):
            Boundary.coerce("wrap-around")
        with pytest.raises(DslError):
            Boundary.coerce(42)

    def test_all_five_modes_exist(self):
        assert {m.value for m in Boundary} == {
            "undefined", "repeat", "clamp", "mirror", "constant"}


def _pad_reference(mode: Boundary, n: int, idx: np.ndarray) -> np.ndarray:
    """Ground truth: index an arange padded with the equivalent np.pad
    mode, then read back the original index."""
    pad = int(np.max(np.abs(idx))) + 1
    base = np.arange(n)
    padded = np.pad(base, pad, mode=NUMPY_PAD_MODE[mode])
    return padded[idx + pad]


@st.composite
def _axis_case(draw):
    n = draw(st.integers(min_value=1, max_value=40))
    offsets = draw(st.lists(
        st.integers(min_value=-3 * n, max_value=4 * n - 1),
        min_size=1, max_size=32))
    return n, np.array(offsets)


class TestAdjustIndicesVsNumpyPad:
    @settings(max_examples=200)
    @given(_axis_case())
    def test_clamp_matches_edge_pad(self, case):
        n, idx = case
        ax, _ = adjust_indices(idx, np.zeros_like(idx), n, 1,
                               Boundary.CLAMP)
        assert np.array_equal(ax, _pad_reference(Boundary.CLAMP, n, idx))

    @settings(max_examples=200)
    @given(_axis_case())
    def test_mirror_matches_symmetric_pad(self, case):
        n, idx = case
        ax, _ = adjust_indices(idx, np.zeros_like(idx), n, 1,
                               Boundary.MIRROR)
        assert np.array_equal(ax, _pad_reference(Boundary.MIRROR, n, idx))

    @settings(max_examples=200)
    @given(_axis_case())
    def test_repeat_matches_wrap_pad(self, case):
        n, idx = case
        ax, _ = adjust_indices(idx, np.zeros_like(idx), n, 1,
                               Boundary.REPEAT)
        assert np.array_equal(ax, _pad_reference(Boundary.REPEAT, n, idx))

    @settings(max_examples=100)
    @given(_axis_case())
    def test_adjusted_always_in_bounds(self, case):
        n, idx = case
        for mode in (Boundary.CLAMP, Boundary.MIRROR, Boundary.REPEAT):
            ax, _ = adjust_indices(idx, np.zeros_like(idx), n, 1, mode)
            assert np.all((ax >= 0) & (ax < n)), mode

    @settings(max_examples=100)
    @given(_axis_case())
    def test_in_bounds_indices_untouched(self, case):
        n, idx = case
        inside = idx[(idx >= 0) & (idx < n)]
        for mode in (Boundary.CLAMP, Boundary.MIRROR, Boundary.REPEAT):
            ax, _ = adjust_indices(inside, np.zeros_like(inside), n, 1,
                                   mode)
            assert np.array_equal(ax, inside), mode


class TestAdjustIndicesExamples:
    """The exact Figure 2 mappings of the paper."""

    def test_mirror_figure2d(self):
        # Figure 2d row "C B A | A B C D | D C B": -1->0 -2->1 -3->2,
        # n->n-1, n+1->n-2 for n=4
        ix = np.array([-3, -2, -1, 0, 3, 4, 5, 6])
        ax, _ = adjust_indices(ix, np.zeros_like(ix), 4, 1, Boundary.MIRROR)
        assert ax.tolist() == [2, 1, 0, 0, 3, 3, 2, 1]

    def test_repeat_figure2b(self):
        ix = np.array([-2, -1, 0, 4, 5])
        ax, _ = adjust_indices(ix, np.zeros_like(ix), 4, 1, Boundary.REPEAT)
        assert ax.tolist() == [2, 3, 0, 0, 1]

    def test_clamp_figure2c(self):
        ix = np.array([-5, -1, 0, 3, 4, 9])
        ax, _ = adjust_indices(ix, np.zeros_like(ix), 4, 1, Boundary.CLAMP)
        assert ax.tolist() == [0, 0, 0, 3, 3, 3]

    def test_constant_and_undefined_pass_through(self):
        ix = np.array([-1, 5])
        for mode in (Boundary.CONSTANT, Boundary.UNDEFINED):
            ax, _ = adjust_indices(ix, np.zeros_like(ix), 4, 1, mode)
            assert np.array_equal(ax, ix)

    def test_both_axes_adjusted(self):
        ax, ay = adjust_indices(np.array([-1]), np.array([7]), 5, 6,
                                Boundary.CLAMP)
        assert ax[0] == 0 and ay[0] == 5


class TestOutOfBoundsMask:
    def test_basic(self):
        ix = np.array([-1, 0, 4, 5])
        iy = np.array([0, 0, 0, 0])
        mask = out_of_bounds_mask(ix, iy, 5, 5)
        assert mask.tolist() == [True, False, False, True]

    def test_y_axis(self):
        mask = out_of_bounds_mask(np.array([0]), np.array([5]), 5, 5)
        assert mask[0]


class TestBoundaryCondition:
    def test_valid_construction(self):
        img = Image(8, 8)
        bc = BoundaryCondition(img, 3, 5, Boundary.MIRROR)
        assert bc.window == (3, 5)
        assert bc.mode is Boundary.MIRROR

    def test_default_square_window(self):
        bc = BoundaryCondition(Image(8, 8), 7)
        assert bc.window == (7, 7)

    def test_string_mode(self):
        bc = BoundaryCondition(Image(8, 8), 3, 3, "repeat")
        assert bc.mode is Boundary.REPEAT

    def test_even_window_rejected(self):
        with pytest.raises(DslError):
            BoundaryCondition(Image(8, 8), 4, 3)
        with pytest.raises(DslError):
            BoundaryCondition(Image(8, 8), 3, 2)

    def test_negative_window_rejected(self):
        with pytest.raises(DslError):
            BoundaryCondition(Image(8, 8), -3)

    def test_non_image_rejected(self):
        with pytest.raises(DslError):
            BoundaryCondition("not an image", 3)

    def test_constant_value_stored(self):
        bc = BoundaryCondition(Image(8, 8), 3, 3, Boundary.CONSTANT,
                               constant=0.5)
        assert bc.constant == 0.5
