"""Native end-to-end validation: generated C compiled with the system C
compiler and executed on real hardware, diffed bit-exactly against the
Python simulator.

The CPU backend shares the boundary helpers, region decomposition and
expression printer with the CUDA/OpenCL emitters, so agreement here
validates the whole lowering chain on real silicon.
"""

import numpy as np
import pytest

from repro import (
    Accessor,
    Boundary,
    BoundaryCondition,
    Image,
    IterationSpace,
    compile_kernel,
)
from repro.filters.bilateral import make_bilateral
from repro.filters.gaussian import make_gaussian
from repro.filters.median import make_median
from repro.runtime.native import compile_native

from .helpers import (
    AddUniform,
    BranchKernel,
    ConvolveSyntax,
    IntArithmetic,
    MaskConvolution,
    accessor_for,
    box_mask,
    build_image_pair,
    random_image,
)

pytestmark = pytest.mark.requires_cc

MODES = [Boundary.CLAMP, Boundary.MIRROR, Boundary.REPEAT,
         Boundary.CONSTANT]


def _simulate(kernel_factory):
    """Run the same kernel through the simulator (fresh objects)."""
    kernel, out_img = kernel_factory()
    compile_kernel(kernel, backend="cuda", device="quadro",
                   use_texture=False).execute()
    return out_img.get_data()


class TestNativeVsSimulator:
    @pytest.mark.parametrize("mode", MODES)
    def test_convolution_all_modes(self, mode):
        data = random_image(40, 32, seed=1)

        def build():
            src, dst = build_image_pair(40, 32, data=data)
            k = MaskConvolution(IterationSpace(dst),
                                accessor_for(src, 5, mode, 0.25),
                                box_mask(5), 2, 2)
            return k, dst

        native = compile_native(build()[0])(40, 32)
        sim = _simulate(build)
        np.testing.assert_array_equal(native, sim)

    def test_bilateral(self):
        data = random_image(48, 40, seed=2)
        k, _, _ = make_bilateral(48, 40, sigma_d=1, sigma_r=0.1,
                                 boundary=Boundary.MIRROR, data=data)
        native = compile_native(k)(48, 40)

        k2, _, out2 = make_bilateral(48, 40, sigma_d=1, sigma_r=0.1,
                                     boundary=Boundary.MIRROR, data=data)
        compile_kernel(k2, backend="cuda", device="quadro",
                       use_texture=False).execute()
        np.testing.assert_allclose(native, out2.get_data(), atol=2e-6)

    def test_median_network(self):
        data = random_image(24, 24, seed=3)
        k, _, _ = make_median(24, 24, boundary=Boundary.CLAMP, data=data)
        native = compile_native(k)(24, 24)
        k2, _, out2 = make_median(24, 24, boundary=Boundary.CLAMP,
                                  data=data)
        compile_kernel(k2, backend="cuda", device="quadro",
                       use_texture=False).execute()
        np.testing.assert_array_equal(native, out2.get_data())

    def test_branch_kernel(self):
        data = random_image(20, 20, seed=4)

        def build():
            src, dst = build_image_pair(20, 20, data=data)
            return BranchKernel(IterationSpace(dst), accessor_for(src),
                                0.5), dst

        native = compile_native(build()[0])(20, 20)
        sim = _simulate(build)
        np.testing.assert_array_equal(native, sim)

    def test_int_arithmetic_kernel(self):
        data = random_image(20, 20, seed=5)

        def build():
            src, dst = build_image_pair(20, 20, data=data)
            return IntArithmetic(IterationSpace(dst),
                                 accessor_for(src)), dst

        native = compile_native(build()[0])(20, 20)
        sim = _simulate(build)
        np.testing.assert_array_equal(native, sim)

    def test_convolve_syntax_kernel(self):
        data = random_image(24, 20, seed=6)

        def build():
            src, dst = build_image_pair(24, 20, data=data)
            return ConvolveSyntax(IterationSpace(dst),
                                  accessor_for(src, 3), box_mask(3)), dst

        native = compile_native(build()[0])(24, 20)
        sim = _simulate(build)
        np.testing.assert_array_equal(native, sim)

    def test_uniform_parameter_passed_at_call(self):
        data = random_image(16, 16, seed=7)
        src, dst = build_image_pair(16, 16, data=data)
        k = AddUniform(IterationSpace(dst), accessor_for(src), 1.0)
        native = compile_native(k)
        out = native(16, 16, value=2.5)
        np.testing.assert_allclose(out, data + np.float32(2.5),
                                   rtol=1e-6)

    def test_interpolated_accessor_native(self):
        from repro.dsl.interpolate import InterpolatedAccessor, resize
        from .helpers import CopyKernel

        data = random_image(10, 8, seed=8)
        img_in = Image(10, 8).set_data(data)
        img_out = Image(25, 19)
        bc = BoundaryCondition(img_in, 3, 3, Boundary.CLAMP)
        acc = InterpolatedAccessor(bc, 25, 19, "linear")
        k = CopyKernel(IterationSpace(img_out), acc)
        native = compile_native(k)(25, 19)
        ref = resize(data, 25, 19, "linear", Boundary.CLAMP)
        np.testing.assert_allclose(native, ref, atol=2e-6)

    def test_gaussian_against_golden(self):
        data = random_image(64, 64, seed=9)
        from repro.filters.gaussian import gaussian_reference
        k, _, _ = make_gaussian(64, 64, size=3,
                                boundary=Boundary.REPEAT, data=data)
        native = compile_native(k)(64, 64)
        ref = gaussian_reference(data, 3, boundary=Boundary.REPEAT)
        np.testing.assert_allclose(native, ref, atol=2e-6)

    def test_shared_object_cached(self):
        data = random_image(16, 16, seed=10)
        k, _, _ = make_gaussian(16, 16, size=3, data=data)
        first = compile_native(k)
        k2, _, _ = make_gaussian(16, 16, size=3, data=data)
        second = compile_native(k2)
        assert first.library_path == second.library_path
