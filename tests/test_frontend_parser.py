"""Frontend: restricted-Python kernel bodies -> kernel IR.

Covers every supported construct and every diagnostic the parser emits.
Kernels exercising *invalid* constructs are defined inside the test file
(the frontend reads their source from here).
"""

import numpy as np
import pytest

from repro import (
    Accessor,
    Boundary,
    Image,
    IterationSpace,
    Kernel,
    Mask,
    Reduce,
    Uniform,
)
from repro.errors import FrontendError, UnsupportedFunctionError
from repro.frontend import parse_kernel
from repro.frontend.parser import accessor_objects, mask_objects
from repro.ir import nodes as N
from repro.ir import typecheck_kernel
from repro.ir.visitors import iter_all_exprs, walk_stmts

from .helpers import (
    AddScalar,
    AddUniform,
    BranchKernel,
    ConvolveSyntax,
    CopyKernel,
    IntArithmetic,
    MaskConvolution,
    PositionKernel,
    accessor_for,
    box_mask,
    build_image_pair,
)

MODULE_CONSTANT = 2.5


def _setup(kernel_cls, *args, window=1, mode=Boundary.CLAMP, **kwargs):
    src, dst = build_image_pair()
    acc = accessor_for(src, window, mode)
    return kernel_cls(IterationSpace(dst), acc, *args, **kwargs)


class TestBasicParsing:
    def test_copy_kernel(self):
        ir = parse_kernel(_setup(CopyKernel))
        assert ir.name == "CopyKernel"
        assert len(ir.accessors) == 1
        assert isinstance(ir.body[-1], N.OutputWrite)
        assert isinstance(ir.body[-1].value, N.AccessorRead)

    def test_scalar_params_baked(self):
        ir = parse_kernel(_setup(AddScalar, 1.5))
        consts = [e for e in iter_all_exprs(ir.body)
                  if isinstance(e, N.FloatConst) and e.value == 1.5]
        assert consts, "baked parameter should appear as a literal"
        assert ir.param("value").baked

    def test_scalar_params_not_baked(self):
        ir = parse_kernel(_setup(AddScalar, 1.5), bake_params=False)
        assert not ir.param("value").baked
        refs = [e for e in iter_all_exprs(ir.body)
                if isinstance(e, N.VarRef) and e.name == "value"]
        assert refs

    def test_uniform_always_runtime_param(self):
        ir = parse_kernel(_setup(AddUniform, 2.0))
        assert not ir.param("value").baked

    def test_loops_become_for_range(self):
        ir = parse_kernel(_setup(MaskConvolution, box_mask(3), 1, 1,
                                 window=3))
        loops = [s for s in walk_stmts(ir.body)
                 if isinstance(s, N.ForRange)]
        assert len(loops) == 2

    def test_if_else(self):
        ir = parse_kernel(_setup(BranchKernel, 0.5))
        ifs = [s for s in walk_stmts(ir.body) if isinstance(s, N.If)]
        assert len(ifs) == 1
        assert ifs[0].else_body

    def test_position_functions(self):
        ir = parse_kernel(_setup(PositionKernel))
        kinds = {type(e) for e in iter_all_exprs(ir.body)}
        assert N.GidX in kinds and N.GidY in kinds

    def test_accessor_metadata_carried(self):
        ir = parse_kernel(_setup(MaskConvolution, box_mask(3), 1, 1,
                                 window=5, mode=Boundary.MIRROR))
        acc = ir.accessors[0]
        assert acc.boundary_mode == "mirror"
        assert acc.window == (5, 5)

    def test_mask_metadata_carried(self):
        ir = parse_kernel(_setup(MaskConvolution, box_mask(3), 1, 1,
                                 window=3))
        mask = ir.masks[0]
        assert mask.size == (3, 3)
        assert mask.compile_time_constant
        assert np.allclose(np.asarray(mask.coefficients), 1.0 / 9.0)

    def test_module_level_constant_baked(self):
        class UsesModuleConstant(Kernel):
            def __init__(self, iteration_space, inp):
                super().__init__(iteration_space)
                self.inp = inp
                self.add_accessor(inp)

            def kernel(self):
                self.output(self.inp(0, 0) * MODULE_CONSTANT)

        ir = parse_kernel(_setup(UsesModuleConstant))
        consts = [e for e in iter_all_exprs(ir.body)
                  if isinstance(e, N.FloatConst) and e.value == 2.5]
        assert consts

    def test_int_arithmetic_kernel(self):
        ir = typecheck_kernel(parse_kernel(_setup(IntArithmetic)))
        ops = {e.op for e in iter_all_exprs(ir.body)
               if isinstance(e, N.BinOp)}
        assert "/" in ops and "%" in ops

    def test_helper_object_maps(self):
        k = _setup(MaskConvolution, box_mask(3), 1, 1, window=3)
        accs = accessor_objects(k)
        masks = mask_objects(k)
        assert set(accs) == {"inp"}
        assert set(masks) == {"cmask"}


class TestExpressionForms:
    def _parse_body(self, kernel_cls):
        return parse_kernel(_setup(kernel_cls))

    def test_comparison_chain(self):
        class Chain(Kernel):
            def __init__(self, iteration_space, inp):
                super().__init__(iteration_space)
                self.inp = inp
                self.add_accessor(inp)

            def kernel(self):
                v = self.inp(0, 0)
                ok = 0.2 < v < 0.8
                self.output(1.0 if ok else 0.0)

        ir = typecheck_kernel(self._parse_body(Chain))
        ands = [e for e in iter_all_exprs(ir.body)
                if isinstance(e, N.BinOp) and e.op == "&&"]
        assert ands

    def test_bool_ops_and_not(self):
        class Logic(Kernel):
            def __init__(self, iteration_space, inp):
                super().__init__(iteration_space)
                self.inp = inp
                self.add_accessor(inp)

            def kernel(self):
                v = self.inp(0, 0)
                flag = (v > 0.5 and v < 0.9) or not (v > 0.1)
                self.output(1.0 if flag else 0.0)

        ir = typecheck_kernel(self._parse_body(Logic))
        ops = {e.op for e in iter_all_exprs(ir.body)
               if isinstance(e, N.BinOp)}
        assert {"&&", "||"} <= ops

    def test_power_becomes_pow_call(self):
        class Power(Kernel):
            def __init__(self, iteration_space, inp):
                super().__init__(iteration_space)
                self.inp = inp
                self.add_accessor(inp)

            def kernel(self):
                self.output(self.inp(0, 0) ** 2.0)

        ir = self._parse_body(Power)
        calls = [e for e in iter_all_exprs(ir.body)
                 if isinstance(e, N.Call) and e.func == "pow"]
        assert calls

    def test_casts(self):
        class Casts(Kernel):
            def __init__(self, iteration_space, inp):
                super().__init__(iteration_space)
                self.inp = inp
                self.add_accessor(inp)

            def kernel(self):
                i = int(self.inp(0, 0) * 255.0)
                self.output(float(i) / 255.0)

        ir = typecheck_kernel(self._parse_body(Casts))
        casts = [e for e in iter_all_exprs(ir.body)
                 if isinstance(e, N.Cast)]
        assert casts

    def test_math_module_calls(self):
        class UsesMathModule(Kernel):
            def __init__(self, iteration_space, inp):
                super().__init__(iteration_space)
                self.inp = inp
                self.add_accessor(inp)

            def kernel(self):
                import math  # noqa: F401 (name resolution only)
                self.output(math.sqrt(self.inp(0, 0)))

        # the import statement itself is unsupported — math.* calls must
        # appear without a local import
        with pytest.raises(FrontendError):
            parse_kernel(_setup(UsesMathModule))

    def test_suffixed_intrinsics(self):
        class Suffixed(Kernel):
            def __init__(self, iteration_space, inp):
                super().__init__(iteration_space)
                self.inp = inp
                self.add_accessor(inp)

            def kernel(self):
                self.output(expf(self.inp(0, 0)))

        ir = self._parse_body(Suffixed)
        calls = [e for e in iter_all_exprs(ir.body)
                 if isinstance(e, N.Call)]
        assert calls[0].func == "exp"      # canonicalised

    def test_annotated_declaration(self):
        class Annotated(Kernel):
            def __init__(self, iteration_space, inp):
                super().__init__(iteration_space)
                self.inp = inp
                self.add_accessor(inp)

            def kernel(self):
                s: float = 0.0
                s += self.inp(0, 0)
                self.output(s)

        ir = self._parse_body(Annotated)
        decls = [s for s in walk_stmts(ir.body)
                 if isinstance(s, N.VarDecl) and s.name == "s"]
        assert decls[0].type is not None


class TestDiagnostics:
    def _expect_error(self, kernel_cls, match=None, *args):
        with pytest.raises((FrontendError, UnsupportedFunctionError),
                           match=match):
            parse_kernel(_setup(kernel_cls, *args))

    def test_while_rejected(self):
        class UsesWhile(Kernel):
            def __init__(self, iteration_space, inp):
                super().__init__(iteration_space)
                self.inp = inp
                self.add_accessor(inp)

            def kernel(self):
                while True:
                    pass

        self._expect_error(UsesWhile, "while")

    def test_return_value_rejected(self):
        class Returns(Kernel):
            def __init__(self, iteration_space, inp):
                super().__init__(iteration_space)
                self.inp = inp
                self.add_accessor(inp)

            def kernel(self):
                return self.inp(0, 0)

        self._expect_error(Returns, "output")

    def test_unknown_function_rejected(self):
        class CallsUnknown(Kernel):
            def __init__(self, iteration_space, inp):
                super().__init__(iteration_space)
                self.inp = inp
                self.add_accessor(inp)

            def kernel(self):
                self.output(open(self.inp(0, 0)))

        self._expect_error(CallsUnknown)

    def test_unknown_name_rejected(self):
        class UsesUnknownName(Kernel):
            def __init__(self, iteration_space, inp):
                super().__init__(iteration_space)
                self.inp = inp
                self.add_accessor(inp)

            def kernel(self):
                self.output(never_defined_anywhere_xyz)  # noqa: F821

        self._expect_error(UsesUnknownName, "unknown name")

    def test_bad_accessor_arity(self):
        class OneOffset(Kernel):
            def __init__(self, iteration_space, inp):
                super().__init__(iteration_space)
                self.inp = inp
                self.add_accessor(inp)

            def kernel(self):
                self.output(self.inp(1))

        self._expect_error(OneOffset, "0 or 2")

    def test_non_range_loop_rejected(self):
        class LoopsOverList(Kernel):
            def __init__(self, iteration_space, inp):
                super().__init__(iteration_space)
                self.inp = inp
                self.add_accessor(inp)

            def kernel(self):
                s = 0.0
                for v in [1, 2, 3]:
                    s += float(v)
                self.output(s)

        self._expect_error(LoopsOverList, "range")

    def test_tuple_unpacking_rejected(self):
        class Unpacks(Kernel):
            def __init__(self, iteration_space, inp):
                super().__init__(iteration_space)
                self.inp = inp
                self.add_accessor(inp)

            def kernel(self):
                a, b = 1.0, 2.0
                self.output(a + b)

        self._expect_error(Unpacks)

    def test_output_in_expression_rejected(self):
        class OutputExpr(Kernel):
            def __init__(self, iteration_space, inp):
                super().__init__(iteration_space)
                self.inp = inp
                self.add_accessor(inp)

            def kernel(self):
                v = self.output(1.0) + 1.0  # noqa: F841
                self.output(v)

        self._expect_error(OutputExpr, "standalone")

    def test_unreferenced_attribute_rejected(self):
        class BadAttr(Kernel):
            def __init__(self, iteration_space, inp):
                super().__init__(iteration_space)
                self.inp = inp
                self.add_accessor(inp)

            def kernel(self):
                self.output(self.not_a_thing)

        self._expect_error(BadAttr)

    def test_accessor_reference_without_call_rejected(self):
        class AccessorRef(Kernel):
            def __init__(self, iteration_space, inp):
                super().__init__(iteration_space)
                self.inp = inp
                self.add_accessor(inp)

            def kernel(self):
                self.output(self.inp)

        self._expect_error(AccessorRef, "must be called")

    def test_keyword_args_rejected(self):
        class KwArgs(Kernel):
            def __init__(self, iteration_space, inp):
                super().__init__(iteration_space)
                self.inp = inp
                self.add_accessor(inp)

            def kernel(self):
                self.output(min(1.0, self.inp(0, 0), key=None))

        self._expect_error(KwArgs, "keyword")

    def test_missing_override_rejected(self):
        src, dst = build_image_pair()
        k = Kernel.__new__(CopyKernel)
        Kernel.__init__(k, IterationSpace(dst))
        k.inp = accessor_for(src)
        # replace class with base — kernel() not overridden
        bare = Kernel(IterationSpace(dst))
        with pytest.raises(FrontendError, match="override"):
            parse_kernel(bare)

    def test_error_carries_line_number(self):
        class Located(Kernel):
            def __init__(self, iteration_space, inp):
                super().__init__(iteration_space)
                self.inp = inp
                self.add_accessor(inp)

            def kernel(self):
                v = self.inp(0, 0)
                while v > 0:     # unsupported, on a known line
                    v = v - 1.0
                self.output(v)

        try:
            parse_kernel(_setup(Located))
            raise AssertionError("expected FrontendError")
        except FrontendError as exc:
            assert exc.lineno is not None
            assert "while" in str(exc)

    def test_non_kernel_instance_rejected(self):
        with pytest.raises(FrontendError):
            parse_kernel("not a kernel")


class TestConvolveSyntax:
    def test_expansion_structure(self):
        ir = parse_kernel(_setup(ConvolveSyntax, box_mask(3), window=3))
        loops = [s for s in walk_stmts(ir.body)
                 if isinstance(s, N.ForRange)]
        assert len(loops) == 2       # expanded into the nested loops
        reads = [e for e in iter_all_exprs(ir.body)
                 if isinstance(e, N.AccessorRead)]
        assert reads

    def test_reduce_modes_string(self):
        class StringMode(Kernel):
            def __init__(self, iteration_space, inp, cmask):
                super().__init__(iteration_space)
                self.inp = inp
                self.cmask = cmask
                self.add_accessor(inp)

            def kernel(self):
                self.output(self.convolve(self.cmask, "sum",
                                          lambda: self.cmask()
                                          * self.inp(self.cmask)))

        src, dst = build_image_pair()
        k = StringMode(IterationSpace(dst), accessor_for(src, 3),
                       box_mask(3))
        ir = typecheck_kernel(parse_kernel(k))
        assert ir is not None

    def test_nested_convolve_rejected(self):
        class Nested(Kernel):
            def __init__(self, iteration_space, inp, cmask):
                super().__init__(iteration_space)
                self.inp = inp
                self.cmask = cmask
                self.add_accessor(inp)

            def kernel(self):
                self.output(self.convolve(
                    self.cmask, Reduce.SUM,
                    lambda: self.convolve(self.cmask, Reduce.SUM,
                                          lambda: self.inp(self.cmask))))

        src, dst = build_image_pair()
        k = Nested(IterationSpace(dst), accessor_for(src, 3), box_mask(3))
        with pytest.raises(FrontendError, match="nested"):
            parse_kernel(k)

    def test_lambda_with_args_rejected(self):
        class BadLambda(Kernel):
            def __init__(self, iteration_space, inp, cmask):
                super().__init__(iteration_space)
                self.inp = inp
                self.cmask = cmask
                self.add_accessor(inp)

            def kernel(self):
                self.output(self.convolve(self.cmask, Reduce.SUM,
                                          lambda q: q))

        src, dst = build_image_pair()
        k = BadLambda(IterationSpace(dst), accessor_for(src, 3),
                      box_mask(3))
        with pytest.raises(FrontendError, match="zero-argument"):
            parse_kernel(k)

    def test_mask_positional_read_outside_convolve_rejected(self):
        class BareMaskRead(Kernel):
            def __init__(self, iteration_space, inp, cmask):
                super().__init__(iteration_space)
                self.inp = inp
                self.cmask = cmask
                self.add_accessor(inp)

            def kernel(self):
                self.output(self.cmask())

        src, dst = build_image_pair()
        k = BareMaskRead(IterationSpace(dst), accessor_for(src, 3),
                         box_mask(3))
        with pytest.raises(FrontendError, match="convolve"):
            parse_kernel(k)
