"""Structural checks on generated CUDA and OpenCL source."""

import re

import numpy as np
import pytest

from repro import Boundary, BorderMode, CodegenOptions, MaskMemory
from repro.backends import generate
from repro.errors import CodegenError
from repro.frontend import parse_kernel
from repro.ir import typecheck_kernel

from .helpers import (
    AddUniform,
    CopyKernel,
    IterationSpace,
    MaskConvolution,
    accessor_for,
    box_mask,
    build_image_pair,
)


def _conv_ir(window=13, mode=Boundary.CLAMP, radius=None,
             mask_const=True):
    src, dst = build_image_pair(4096, 4096)
    radius = (window // 2) if radius is None else radius
    mask = box_mask(2 * radius + 1)
    if not mask_const:
        mask.compile_time_constant = False
    k = MaskConvolution(IterationSpace(dst),
                        accessor_for(src, window, mode), mask,
                        radius, radius)
    return typecheck_kernel(parse_kernel(k))


def _gen(backend="cuda", window=13, mode=Boundary.CLAMP,
         geometry=(4096, 4096), mask_const=True, **opts):
    ir = _conv_ir(window=window, mode=mode, mask_const=mask_const)
    options = CodegenOptions(backend=backend, **opts)
    return generate(ir, options, launch_geometry=geometry)


def balanced(code: str) -> bool:
    return code.count("{") == code.count("}") and \
        code.count("(") == code.count(")")


class TestStructure:
    @pytest.mark.parametrize("backend", ["cuda", "opencl"])
    def test_braces_and_parens_balanced(self, backend):
        src = _gen(backend)
        assert balanced(src.device_code)
        assert balanced(src.host_code)

    def test_nine_region_dispatch_cuda_goto(self):
        """CUDA: the Listing-8 goto structure."""
        src = _gen("cuda")
        assert src.num_variants == 9
        for label in ("TL_BH", "T_BH", "TR_BH", "L_BH", "R_BH", "BL_BH",
                      "B_BH", "BR_BH", "NO_BH"):
            assert f"goto {label};" in src.device_code or \
                f"{label}:" in src.device_code
        assert "_done: return;" in src.device_code

    def test_nine_region_dispatch_opencl_chain(self):
        """OpenCL C forbids goto: the same nine variants chain as
        if / else-if blocks."""
        src = _gen("opencl")
        assert src.num_variants == 9
        code = src.device_code
        assert "goto" not in code
        assert code.count("else if (") == 7
        assert "else {  // NO_BH" in code
        for label in ("TL_BH", "T_BH", "TR_BH", "L_BH", "R_BH", "BL_BH",
                      "B_BH", "BR_BH"):
            assert f"// {label}" in code

    def test_dispatch_constants_from_layout(self):
        src = _gen("cuda", window=13, block=(128, 1))
        assert "#define BH_X_LO 1" in src.device_code
        assert "#define BH_Y_LO 6" in src.device_code

    def test_macro_mode_for_exploration(self):
        src = _gen("cuda", emit_config_macros=True)
        assert "#ifndef BH_X_LO" in src.device_code

    def test_inline_mode_single_variant(self):
        src = _gen("cuda", border=BorderMode.INLINE)
        assert src.num_variants == 1
        assert "goto" not in src.device_code

    def test_undefined_mode_no_helpers(self):
        ir = _conv_ir(mode=Boundary.UNDEFINED)
        src = generate(ir, CodegenOptions(backend="cuda",
                                          border=BorderMode.NONE),
                       launch_geometry=(4096, 4096))
        assert "bh_clamp" not in src.device_code

    @pytest.mark.parametrize("mode,helper", [
        (Boundary.CLAMP, "bh_clamp"),
        (Boundary.MIRROR, "bh_mirror"),
        (Boundary.REPEAT, "bh_repeat"),
    ])
    def test_mode_specific_helpers_used(self, mode, helper):
        src = _gen("cuda", mode=mode)
        assert f"{helper}_lo(" in src.device_code
        assert f"{helper}_hi(" in src.device_code

    def test_constant_mode_predicated_reads(self):
        src = _gen("cuda", mode=Boundary.CONSTANT)
        assert "?" in src.device_code
        # the constant value appears as a literal
        assert re.search(r"\? 0\.0f :", src.device_code)

    def test_interior_variant_has_no_adjustment(self):
        src = _gen("cuda", mode=Boundary.CLAMP)
        interior = src.device_code.split("NO_BH:")[1].split("_done")[0]
        assert "bh_clamp" not in interior
        src_cl = _gen("opencl", mode=Boundary.CLAMP)
        interior_cl = src_cl.device_code.split("else {  // NO_BH")[1]
        interior_cl = interior_cl.split("}")[0]
        assert "bh_clamp" not in interior_cl


class TestCudaSpecifics:
    def test_signature(self):
        src = _gen("cuda")
        assert 'extern "C" __global__ void MaskConvolution_kernel(' \
            in src.device_code
        assert "float * OUT" in src.device_code

    def test_texture_path(self):
        src = _gen("cuda", use_texture=True)
        assert "texture<float, cudaTextureType1D" in src.device_code
        assert "tex1Dfetch(_texinp," in src.device_code
        # texture refs are not kernel parameters (Section IV-A)
        sig = src.device_code.split("MaskConvolution_kernel(")[1]
        sig = sig.split(")")[0]
        assert "_texinp" not in sig
        assert "const float * inp" not in sig

    def test_plain_global_path(self):
        src = _gen("cuda", use_texture=False)
        assert "const float * inp" in src.device_code
        assert "tex1Dfetch" not in src.device_code

    def test_hardware_border_2d_texture(self):
        src = _gen("cuda", use_texture=True, border=BorderMode.HARDWARE,
                   mode=Boundary.CLAMP)
        assert "cudaTextureType2D" in src.device_code
        assert "tex2D(_tex2dinp" in src.device_code
        assert "cudaAddressModeClamp" in src.host_code

    def test_hardware_border_rejects_mirror(self):
        with pytest.raises(CodegenError, match="mirror"):
            _gen("cuda", use_texture=True, border=BorderMode.HARDWARE,
                 mode=Boundary.MIRROR)

    def test_hardware_border_rejects_constant(self):
        with pytest.raises(CodegenError, match="constant"):
            _gen("cuda", use_texture=True, border=BorderMode.HARDWARE,
                 mode=Boundary.CONSTANT)

    def test_static_constant_mask(self):
        src = _gen("cuda")
        assert "__device__ __constant__ float _constcmask[169]" \
            in src.device_code
        assert "= {" in src.device_code

    def test_dynamic_constant_mask(self):
        src = _gen("cuda", mask_const=False)
        # declared without initialiser; host copies at run time
        decl = [ln for ln in src.device_code.splitlines()
                if "_constcmask" in ln and "__constant__" in ln]
        assert decl and "= {" not in decl[0]
        assert "cudaMemcpyToSymbol" in src.host_code

    def test_smem_staging(self):
        src = _gen("cuda", use_smem=True, block=(32, 4))
        assert "__shared__ float _smeminp" in src.device_code
        assert "__syncthreads();" in src.device_code
        assert src.smem_bytes > 0
        # bank-conflict padding: tile width = bx + wx - 1 + 1
        assert f"[{4 + 12}][{32 + 12 + 1}]" in src.device_code

    def test_host_code_pipeline(self):
        src = _gen("cuda")
        host = src.host_code
        for call in ("cudaMallocPitch", "cudaMemcpy2D", "<<<grid, block>>>",
                     "cudaDeviceSynchronize", "cudaFree"):
            assert call in host

    def test_fast_math_variant(self):
        ir = _conv_ir()
        # inject an exp call via bilateral instead: use fast_math on the
        # bilateral kernel
        from repro.evaluation.variants import _bilateral_ir
        bir = _bilateral_ir(True, "clamp", 3, 5.0)
        plain = generate(bir, CodegenOptions(backend="cuda"),
                         launch_geometry=(256, 256))
        fast = generate(bir, CodegenOptions(backend="cuda",
                                            fast_math=True),
                        launch_geometry=(256, 256))
        assert "expf(" in plain.device_code
        assert "__expf(" in fast.device_code


class TestOpenCLSpecifics:
    def test_signature(self):
        src = _gen("opencl")
        assert "__kernel void MaskConvolution_kernel(" in src.device_code
        assert "__global float * OUT" in src.device_code

    def test_image_objects(self):
        src = _gen("opencl", use_texture=True)
        assert "__read_only image2d_t inp_img" in src.device_code
        assert "__write_only image2d_t OUT_img" in src.device_code
        assert "read_imagef(inp_img, _smpinp" in src.device_code
        assert ".x" in src.device_code          # CL_R channel extraction
        assert "write_imagef(OUT_img" in src.device_code

    def test_sampler_declared(self):
        src = _gen("opencl", use_texture=True)
        assert "__constant sampler_t _smpinp" in src.device_code
        assert "CLK_NORMALIZED_COORDS_FALSE" in src.device_code

    def test_hardware_border_sampler_modes(self):
        src = _gen("opencl", use_texture=True,
                   border=BorderMode.HARDWARE, mode=Boundary.CLAMP)
        assert "CLK_ADDRESS_CLAMP_TO_EDGE" in src.device_code

    def test_hardware_border_constant_allowed_for_zero(self):
        src = _gen("opencl", use_texture=True,
                   border=BorderMode.HARDWARE, mode=Boundary.CONSTANT)
        assert "CLK_ADDRESS_CLAMP" in src.device_code

    def test_hardware_border_rejects_mirror(self):
        with pytest.raises(CodegenError, match="mirror"):
            _gen("opencl", use_texture=True, border=BorderMode.HARDWARE,
                 mode=Boundary.MIRROR)

    def test_local_memory_staging(self):
        src = _gen("opencl", use_smem=True, block=(32, 4))
        assert "__local float _smeminp" in src.device_code
        assert "barrier(CLK_LOCAL_MEM_FENCE);" in src.device_code

    def test_static_constant_mask(self):
        src = _gen("opencl")
        assert "__constant float _constcmask[169]" in src.device_code

    def test_dynamic_mask_becomes_kernel_argument(self):
        src = _gen("opencl", mask_const=False)
        assert "__constant float * cmask_coeffs" in src.device_code

    def test_function_name_mapping(self):
        """expf in CUDA must become exp in OpenCL (Section V-A)."""
        from repro.evaluation.variants import _bilateral_ir
        bir = _bilateral_ir(True, "clamp", 3, 5.0)
        cu = generate(bir, CodegenOptions(backend="cuda"),
                      launch_geometry=(256, 256))
        cl = generate(bir, CodegenOptions(backend="opencl"),
                      launch_geometry=(256, 256))
        assert "expf(" in cu.device_code
        assert "expf(" not in cl.device_code
        assert "exp(" in cl.device_code

    def test_host_code_pipeline(self):
        src = _gen("opencl")
        host = src.host_code
        for call in ("clCreateContext", "clBuildProgram",
                     "clSetKernelArg", "clEnqueueNDRangeKernel",
                     "clFinish", "clReleaseContext"):
            assert call in host

    def test_read_write_qualifiers_from_analysis(self):
        src = _gen("opencl", use_texture=True)
        assert "__read_only image2d_t inp_img" in src.device_code


class TestParameters:
    def test_uniform_param_in_signature(self):
        src_img, dst = build_image_pair()
        k = AddUniform(IterationSpace(dst), accessor_for(src_img), 2.0)
        ir = typecheck_kernel(parse_kernel(k))
        code = generate(ir, CodegenOptions(backend="cuda"),
                        launch_geometry=(16, 16))
        sig = code.device_code.split("AddUniform_kernel(")[1].split(")")[0]
        assert "float value" in sig

    def test_point_operator_single_variant(self):
        src_img, dst = build_image_pair()
        k = CopyKernel(IterationSpace(dst), accessor_for(src_img))
        ir = typecheck_kernel(parse_kernel(k))
        code = generate(ir, CodegenOptions(backend="cuda",
                                           border=BorderMode.NONE),
                        launch_geometry=(16, 16))
        assert code.num_variants == 1

    def test_unrolled_code_has_no_loops(self):
        src = _gen("cuda", window=3, unroll=True)
        kernel_part = src.device_code.split("_kernel(")[1]
        assert "for (" not in kernel_part

    def test_inline_masks_fold_to_literals(self):
        src = _gen("cuda", window=3, unroll=True,
                   mask_memory=MaskMemory.INLINE)
        kernel_part = src.device_code.split("NO_BH:")[1]
        assert "_constcmask[" not in kernel_part


class TestGeneratedCodeSize:
    def test_paper_vi_c_claim(self):
        """Section VI-C: 'the source-to-source compiler generates a CUDA
        kernel with 317 lines of code for the kernel description shown in
        Listing 5 (16 lines of code)' — our generated bilateral must be in
        the same regime (hundreds of lines from a ~20-line DSL kernel)."""
        from repro.evaluation.variants import _bilateral_ir
        import inspect
        from repro.filters.bilateral import BilateralFilter

        dsl_lines = len(inspect.getsource(BilateralFilter.kernel)
                        .strip().splitlines())
        assert dsl_lines <= 20

        bir = _bilateral_ir(True, "clamp", 3, 5.0)
        src = generate(bir, CodegenOptions(backend="cuda",
                                           use_texture=True),
                       launch_geometry=(4096, 4096))
        assert 150 <= src.device_lines <= 700
        assert src.num_variants == 9
