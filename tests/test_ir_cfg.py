"""CFG construction edge cases, locked down by golden block/edge dumps
(:meth:`repro.ir.cfg.CFG.dump`): nested If inside ForRange, empty
branches, and the loop back-edge's successor ordering."""

from __future__ import annotations

from repro.ir.cfg import build_cfg
from repro.ir.nodes import (
    Assign,
    FloatConst,
    ForRange,
    If,
    IntConst,
    OutputWrite,
    VarDecl,
    VarRef,
)


def _decl(name="a"):
    return VarDecl(name, FloatConst(0.0))


def _assign(name="a"):
    return Assign(name, FloatConst(1.0))


def _loop(body, var="i"):
    return ForRange(var, IntConst(0), IntConst(4), IntConst(1), body)


class TestStraightLine:
    def test_single_block_plus_exit(self):
        cfg = build_cfg([_decl(), _assign(), OutputWrite(VarRef("a"))])
        assert cfg.dump() == (
            "B0[entry] stmts=3 -> B1\n"
            "B1[exit] stmts=0")
        assert cfg.entry == 0
        assert cfg.exit == 1

    def test_empty_body(self):
        cfg = build_cfg([])
        assert cfg.dump() == (
            "B0[entry] stmts=0 -> B1\n"
            "B1[exit] stmts=0")


class TestIf:
    def test_diamond_with_else(self):
        cfg = build_cfg([
            _decl(),
            If(VarRef("a"), [_assign()], [Assign("a", FloatConst(2.0))]),
            OutputWrite(VarRef("a")),
        ])
        # cond block branches to then (B1) and else (B3); both join in B2
        assert cfg.dump() == (
            "B0[entry] stmts=2 -> B1, B3\n"
            "B1[then] stmts=1 -> B2\n"
            "B2[join] stmts=1 -> B4\n"
            "B3[else] stmts=1 -> B2\n"
            "B4[exit] stmts=0")

    def test_empty_else_falls_through(self):
        cfg = build_cfg([
            _decl(),
            If(VarRef("a"), [_assign()], []),
            OutputWrite(VarRef("a")),
        ])
        # no else block: the condition edge goes straight to the join
        assert cfg.dump() == (
            "B0[entry] stmts=2 -> B1, B2\n"
            "B1[then] stmts=1 -> B2\n"
            "B2[join] stmts=1 -> B3\n"
            "B3[exit] stmts=0")

    def test_empty_then_branch(self):
        # an empty then body still gets its own block (then -> join)
        cfg = build_cfg([
            _decl(),
            If(VarRef("a"), [], [_assign()]),
        ])
        assert cfg.dump() == (
            "B0[entry] stmts=2 -> B1, B3\n"
            "B1[then] stmts=0 -> B2\n"
            "B2[join] stmts=0 -> B4\n"
            "B3[else] stmts=1 -> B2\n"
            "B4[exit] stmts=0")


class TestForRange:
    def test_back_edge_successor_ordering(self):
        cfg = build_cfg([
            _decl(),
            _loop([_assign()]),
            OutputWrite(VarRef("a")),
        ])
        # the header's successors are [body, after] in that order — the
        # body edge is added first, then the exit edge; the body's last
        # block closes the back edge to the header
        assert cfg.dump() == (
            "B0[entry] stmts=1 -> B1\n"
            "B1[loop-header] stmts=1 -> B2, B3\n"
            "B2[loop-body] stmts=1 -> B1\n"
            "B3[loop-exit] stmts=1 -> B4\n"
            "B4[exit] stmts=0")
        header = cfg.blocks[1]
        assert header.successors == [2, 3]
        assert cfg.predecessors(1) == [0, 2]   # entry edge + back edge

    def test_empty_loop_body(self):
        cfg = build_cfg([_loop([])])
        assert cfg.dump() == (
            "B0[entry] stmts=0 -> B1\n"
            "B1[loop-header] stmts=1 -> B2, B3\n"
            "B2[loop-body] stmts=0 -> B1\n"
            "B3[loop-exit] stmts=0 -> B4\n"
            "B4[exit] stmts=0")

    def test_nested_if_inside_for(self):
        cfg = build_cfg([
            _decl(),
            _loop([
                If(VarRef("i"), [_assign()], []),
            ]),
            OutputWrite(VarRef("a")),
        ])
        # the If's join block carries the back edge to the loop header
        assert cfg.dump() == (
            "B0[entry] stmts=1 -> B1\n"
            "B1[loop-header] stmts=1 -> B2, B5\n"
            "B2[loop-body] stmts=1 -> B3, B4\n"
            "B3[then] stmts=1 -> B4\n"
            "B4[join] stmts=0 -> B1\n"
            "B5[loop-exit] stmts=1 -> B6\n"
            "B6[exit] stmts=0")

    def test_nested_loops(self):
        cfg = build_cfg([_loop([_loop([_assign()], var="j")])])
        # the inner loop-exit (B5) carries the outer back edge
        assert cfg.dump() == (
            "B0[entry] stmts=0 -> B1\n"
            "B1[loop-header] stmts=1 -> B2, B6\n"
            "B2[loop-body] stmts=0 -> B3\n"
            "B3[loop-header] stmts=1 -> B4, B5\n"
            "B4[loop-body] stmts=1 -> B3\n"
            "B5[loop-exit] stmts=0 -> B1\n"
            "B6[loop-exit] stmts=0 -> B7\n"
            "B7[exit] stmts=0")


class TestTraversals:
    def test_reverse_postorder_starts_at_entry(self):
        cfg = build_cfg([
            _decl(),
            If(VarRef("a"), [_assign()], [Assign("a", FloatConst(2.0))]),
            _loop([_assign()]),
        ])
        order = cfg.reverse_postorder()
        assert order[0] == cfg.entry
        assert set(order) == set(cfg.blocks)
        # every edge u->v with v != back-edge target appears in order
        pos = {b: i for i, b in enumerate(order)}
        for b in cfg.blocks.values():
            for s in b.successors:
                if cfg.blocks[s].label == "loop-header" and pos[s] < pos[b.index]:
                    continue    # the back edge is the only exception
                assert pos[s] > pos[b.index]

    def test_reachable_covers_all_blocks(self):
        cfg = build_cfg([_decl(), _loop([_assign()])])
        assert cfg.reachable() == set(cfg.blocks)
