"""Native graph tier vs the simulator oracle.

Every test here is differential: the same graph runs through the Python
simulator (the oracle) and through the compiled C tier, and the outputs
must be **byte-identical** — the native tier only admits nodes whose
lowering is provably bit-exact, and hybrid graphs interleave compiled
segments with simulator launches (``tests/helpers.py``'s
``assert_native_matches_sim`` is the shared harness).

The artifact tests pin the warm-start contract: a second compilation of
the same graph must not invoke the C compiler at all (workdir, then
artifact store), corrupt or stale artifacts heal transparently, and a
compiler-version change misses the cache.
"""

import ctypes
import os

import numpy as np
import pytest

from repro import (
    Accessor,
    Boundary,
    BoundaryCondition,
    CompilationCache,
    Image,
    IterationSpace,
    Mask,
    PipelineGraph,
)
from repro.cli import build_edge_pipeline
from repro.data import impulse_noise_image
from repro.errors import CodegenError, GraphError
from repro.filters.gaussian import GaussianFilter, gaussian_mask_2d
from repro.filters.point_ops import AddConstant, Scale, Threshold
from repro.filters.sobel import SOBEL_X, SobelX
from repro.graph import compile_graph, execute_graph
from repro.runtime import native, native_graph
from repro.runtime.native import clear_compiler_cache, find_c_compiler
from repro.runtime.native_graph import (
    EXACT_POW_EXPONENTS,
    NATIVE_GRAPH_FORMAT,
    compile_native_graph,
    native_ineligibility,
    plan_native_graph,
    whitelist_ineligibility,
)

from .helpers import assert_native_matches_sim, random_image

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import given, settings, strategies as st  # noqa: E402

requires_cc = pytest.mark.requires_cc

W, H = 24, 16


@pytest.fixture
def native_env(tmp_path, monkeypatch):
    """Hermetic native workdir + fresh compiler probes per test."""
    monkeypatch.setenv("REPRO_NATIVE_DIR", str(tmp_path))
    clear_compiler_cache()
    yield tmp_path
    clear_compiler_cache()


def _img(data=None, name=None, w=W, h=H):
    img = Image(w, h, float, name=name)
    if data is not None:
        img.set_data(data)
    return img


def _sobel(space, acc_img):
    return SobelX(space,
                  Accessor(BoundaryCondition(acc_img, 3, 3,
                                             Boundary.CLAMP)),
                  Mask(3, 3).set(SOBEL_X))


def _simple_graph(frame):
    """Scale -> SobelX: one slab intermediate, fully native."""
    src = _img(frame, "src")
    a, out = _img(name="a"), _img(name="out")
    g = PipelineGraph("native-simple")
    g.add_kernel(Scale(IterationSpace(a), Accessor(src), 2.0),
                 name="scale")
    g.add_kernel(_sobel(IterationSpace(out), a), name="sobel")
    g.mark_output(out)
    return g, out


# --------------------------------------------------------------------------
# Example pipelines, differentially
# --------------------------------------------------------------------------


@requires_cc
def test_edge_example_pipeline_fully_native(native_env):
    from examples.edge_pipeline import build_chain

    size = 48
    frame = impulse_noise_image(size, size, seed=11, density=0.03)

    def build():
        kernels, out = build_chain(frame, size)
        g = PipelineGraph("edge-example")
        for k, name in zip(kernels, ["median", "sobel_x", "sobel_y",
                                     "magnitude"]):
            g.add_kernel(k, name=name, backend="cuda",
                         device="Tesla C2050")
        g.mark_output(out)
        return g, out

    report = assert_native_matches_sim(build, workers=1)
    # median/sobel/sqrt-magnitude are all bit-exact lowerings: the whole
    # chain runs in compiled segments
    assert report.engine_used == "native"
    assert report.fallback_reason is None
    assert report.native_nodes == report.launches
    assert all(n.engine == "native" for n in report.nodes)


@requires_cc
def test_cli_edge_pipeline_is_hybrid(native_env):
    # median -> sobel x2 -> magnitude -> scale -> gamma: fusion folds the
    # pow() of gamma into the tail point-op node, which must stay on the
    # simulator (pow is not bit-exact between libm and NumPy)
    def build():
        return build_edge_pipeline(48, "Tesla C2050", "cuda")

    report = assert_native_matches_sim(build, workers=1)
    assert report.engine_used == "native"
    assert 0 < report.native_nodes < report.launches
    sim_nodes = [n for n in report.nodes if n.engine == "sim"]
    assert sim_nodes and all("gamma" in n.name for n in sim_nodes)


@requires_cc
def test_enhance_pipeline_square_gamma_native(native_env):
    # scale -> gamma(2.0): pow(x, 2.0) strength-reduces to x*x, which the
    # abstract interpreter proves bit-exact — the syntactic whitelist
    # still rejects the node, so this pins the prove-based gate widening
    # eligibility beyond the whitelist.
    from repro.serve.planner import plan_request

    frame = random_image(48, 48)

    def build():
        plan = plan_request({"pipeline": "enhance"}, frame)
        return plan.graph, plan.output

    report = assert_native_matches_sim(build, workers=1)
    assert report.engine_used == "native"
    assert report.fallback_reason is None
    assert report.native_nodes == report.launches
    assert all(n.engine == "native" for n in report.nodes)

    plan = plan_request({"pipeline": "enhance"}, frame)
    compile_graph(plan.graph, cache=False, workers=1)
    gamma = next(n for n in plan.graph.nodes if "gamma" in n.name)
    wl = whitelist_ineligibility(gamma)
    assert wl is not None and "pow" in wl
    assert native_ineligibility(gamma) is None


@requires_cc
def test_dsa_frontend_is_hybrid(native_env):
    from examples.dsa_pipeline import build_frontend

    size = 32
    rng = np.random.default_rng(7)
    mask_frame = rng.random((size, size), dtype=np.float32)
    fill_frame = rng.random((size, size), dtype=np.float32)

    def build():
        stages, img_den = build_frontend(size, mask_frame, fill_frame)
        g = PipelineGraph("dsa-frontend")
        for kernel, name, opts in stages:
            g.add_kernel(kernel, name=name, **opts)
        g.mark_output(img_den)
        return g, img_den

    report = assert_native_matches_sim(build, workers=1)
    assert report.engine_used == "native"
    # subtract + median compile; the bilateral's exp() keeps it on sim
    assert report.node("subtract").engine == "native"
    assert report.node("median").engine == "native"
    assert report.node("bilateral").engine == "sim"


@requires_cc
def test_multiresolution_style_chain(native_env):
    # blur -> detail gain -> threshold -> blur: the Gaussian smoothing /
    # point-op alternation of the multiresolution example
    frame = random_image(W, H, seed=5)

    def build():
        src = _img(frame, "src")
        b1, s1, t1 = _img(name="b1"), _img(name="s1"), _img(name="t1")
        out = _img(name="out")
        g = PipelineGraph("multires")
        g.add_kernel(GaussianFilter(
            IterationSpace(b1),
            Accessor(BoundaryCondition(src, 5, 5, Boundary.MIRROR)),
            gaussian_mask_2d(5), 2), name="blur0")
        g.add_kernel(Scale(IterationSpace(s1), Accessor(b1), 1.8),
                     name="gain")
        g.add_kernel(Threshold(IterationSpace(t1), Accessor(s1), 0.75),
                     name="clip")
        g.add_kernel(GaussianFilter(
            IterationSpace(out),
            Accessor(BoundaryCondition(t1, 5, 5, Boundary.MIRROR)),
            gaussian_mask_2d(5), 2), name="blur1")
        g.mark_output(out)
        return g, out

    report = assert_native_matches_sim(build, workers=1)
    assert report.engine_used == "native"
    assert report.native_nodes == report.launches


# --------------------------------------------------------------------------
# Randomized point-op chains (same generators as the fusion suite)
# --------------------------------------------------------------------------

_OPS = st.sampled_from(["add", "scale", "threshold", "gamma"])
_PARAM = st.floats(min_value=-2.0, max_value=2.0, allow_nan=False,
                   width=32)


def _make_op(op, param, space, acc):
    from repro.filters.point_ops import GammaCorrection

    if op == "add":
        return AddConstant(space, acc, param)
    if op == "scale":
        return Scale(space, acc, param, offset=0.125)
    if op == "threshold":
        return Threshold(space, acc, param)
    return GammaCorrection(space, acc, abs(param) + 0.5)


@requires_cc
@settings(max_examples=15, deadline=None)
@given(ops=st.lists(st.tuples(_OPS, _PARAM), min_size=1, max_size=5),
       seed=st.integers(min_value=0, max_value=2**16),
       fuse=st.booleans())
def test_randomized_point_chain_native(ops, seed, fuse):
    rng = np.random.default_rng(seed)
    frame = rng.random((H, W), dtype=np.float32)   # [0, 1): gamma-safe

    def build():
        src = _img(frame, "src")
        g = PipelineGraph("rand-chain")
        current = src
        for i, (op, param) in enumerate(ops):
            out = _img(name=f"t{i}")
            g.add_kernel(_make_op(op, param, IterationSpace(out),
                                  Accessor(current)))
            current = out
        g.mark_output(current)
        return g, current

    report = assert_native_matches_sim(build, workers=1, fuse=fuse)
    exponents = [abs(p) + 0.5 for op, p in ops if op == "gamma"]
    if all(e in EXACT_POW_EXPONENTS for e in exponents):
        # add/scale/threshold always lower bit-exactly, and every
        # gamma's pow() exponent was proven exact (strength-reduced to
        # 1, sqrt, x, x*x or 1/x) — the whole chain runs native
        assert report.engine_used == "native"
        assert report.native_nodes == report.launches
    else:
        # an inexact pow() exponent pins its node (or the whole fused
        # chain) to the simulator; output equality held either way
        assert report.native_nodes < report.launches


# --------------------------------------------------------------------------
# Eligibility, fallback, engine plumbing
# --------------------------------------------------------------------------


def test_native_ineligibility_reasons():
    frame = random_image(W, H)
    src = _img(frame, "src")
    a, out = _img(name="a"), _img(name="out")
    g = PipelineGraph("elig")
    g.add_kernel(Scale(IterationSpace(a), Accessor(src), 2.0),
                 name="scale")
    from repro.filters.point_ops import GammaCorrection
    g.add_kernel(GammaCorrection(IterationSpace(out), Accessor(a), 1.4),
                 name="gamma")
    g.mark_output(out)
    compile_graph(g, cache=False, workers=1)
    by_name = {n.name: n for n in g.nodes}
    assert native_ineligibility(by_name["scale"]) is None
    reason = native_ineligibility(by_name["gamma"])
    assert reason is not None and "pow" in reason


def test_plan_segments_and_slab():
    g, _ = _simple_graph(random_image(W, H))
    compile_graph(g, cache=False, workers=1)
    plan = plan_native_graph(g)
    assert plan.native_count == 2
    assert plan.segments == [[0, 1]]          # one contiguous segment
    assert plan.schedule == [("native", 0)]
    # src + out are external; the intermediate lives in the slab
    assert len(plan.ext_images) == 2
    assert plan.slab_bytes > 0 and plan.slab_allocs == 1


def test_uncompiled_graph_rejected():
    g, _ = _simple_graph(random_image(W, H))
    with pytest.raises(CodegenError, match="not compiled"):
        plan_native_graph(g)


def test_unknown_engine_rejected():
    g, _ = _simple_graph(random_image(W, H))
    with pytest.raises(GraphError, match="unknown engine"):
        execute_graph(g, engine="gpu")


def test_auto_engine_without_compiler_falls_back(monkeypatch):
    clear_compiler_cache()
    native._PROBE_CACHE["cc"] = None          # simulate a bare machine
    try:
        def build():
            return _simple_graph(random_image(W, H, seed=3))

        report = assert_native_matches_sim(build, engine="auto",
                                           workers=1)
        assert report.engine == "auto"
        assert report.engine_used == "sim"
        assert "no C compiler" in report.fallback_reason
        assert all(n.engine == "sim" for n in report.nodes)
    finally:
        clear_compiler_cache()


@requires_cc
def test_native_engine_with_nothing_eligible_falls_back(native_env):
    from repro.filters.point_ops import GammaCorrection

    frame = random_image(W, H, seed=9)

    def build():
        src = _img(frame, "src")
        out = _img(name="out")
        g = PipelineGraph("all-sim")
        g.add_kernel(GammaCorrection(IterationSpace(out), Accessor(src),
                                     1.3), name="gamma")
        g.mark_output(out)
        return g, out

    report = assert_native_matches_sim(build, workers=1)
    assert report.engine_used == "sim"
    assert "no native-eligible nodes" in report.fallback_reason
    assert "pow" in report.fallback_reason


# --------------------------------------------------------------------------
# Artifact round-trips: warm starts never invoke the compiler
# --------------------------------------------------------------------------


def _compiled_simple(cache, seed=0):
    g, out = _simple_graph(random_image(W, H, seed=seed))
    compile_graph(g, cache=cache, workers=1)
    return g, out


class _CcSpy:
    """Counting (or forbidding) stand-in for ``subprocess.run``."""

    def __init__(self, real=None):
        self.calls = 0
        self.real = real

    def __call__(self, *args, **kwargs):
        self.calls += 1
        if self.real is None:
            raise AssertionError(
                "C compiler invoked on a warm start")
        return self.real(*args, **kwargs)


@requires_cc
def test_warm_start_zero_compiler_invocations(native_env, tmp_path,
                                              monkeypatch):
    cache = CompilationCache(directory=str(tmp_path / "store"))
    g, _ = _compiled_simple(cache)
    mod1 = compile_native_graph(g, cache=cache)
    assert mod1.origin == "fresh"

    # from here on, *any* subprocess is a failure (compiler probes are
    # memoized, so only a cc invocation could reach it)
    spy = _CcSpy(real=None)
    monkeypatch.setattr(native_graph.subprocess, "run", spy)

    mod2 = compile_native_graph(g, cache=cache)
    assert mod2.origin == "workdir"
    assert mod2.fingerprint == mod1.fingerprint
    assert spy.calls == 0

    # drop the materialised .so: the artifact store must satisfy the
    # next start, still without a compiler
    os.unlink(mod1.library_path)
    mod3 = compile_native_graph(g, cache=cache)
    assert mod3.origin == "store"
    assert mod3.fingerprint == mod1.fingerprint
    assert spy.calls == 0

    # and the store-restored library actually executes
    run = ctypes.CDLL(mod3.library_path)
    assert all(hasattr(run, e) for e in mod3.entries)


@requires_cc
def test_warm_execute_graph_end_to_end(native_env, tmp_path, monkeypatch):
    # the scheduler path: second execute_graph(engine="native") with the
    # same shared cache must not compile anything
    cache = CompilationCache(directory=str(tmp_path / "store"))
    frame = random_image(W, H, seed=21)

    g1, out1 = _simple_graph(frame)
    execute_graph(g1, cache=cache, workers=1, engine="native")
    ref = out1.get_data().copy()

    spy = _CcSpy(real=None)
    monkeypatch.setattr(native_graph.subprocess, "run", spy)
    g2, out2 = _simple_graph(frame)
    report = execute_graph(g2, cache=cache, workers=1, engine="native")
    assert report.engine_used == "native"
    assert spy.calls == 0
    assert np.array_equal(ref, out2.get_data())


@requires_cc
def test_corrupt_workdir_so_heals_from_store(native_env, tmp_path,
                                             monkeypatch):
    cache = CompilationCache(directory=str(tmp_path / "store"))
    g, _ = _compiled_simple(cache)
    mod1 = compile_native_graph(g, cache=cache)
    # plant a garbage .so in a *fresh* workdir (dlopen caches loaded
    # paths per process, so corrupting mod1's own path is invisible)
    wd2 = tmp_path / "wd2"
    monkeypatch.setenv("REPRO_NATIVE_DIR", str(wd2))
    corrupt = (wd2 / "hipacc_py_native_graph"
               / os.path.basename(mod1.library_path))
    corrupt.parent.mkdir(parents=True)
    corrupt.write_bytes(b"\x00garbage, not ELF\x00")
    mod2 = compile_native_graph(g, cache=cache)
    assert mod2.origin == "store"          # healed without a compiler
    assert mod2.library_path == str(corrupt)


@requires_cc
def test_corrupt_store_entry_heals_to_fresh(native_env, tmp_path,
                                            monkeypatch):
    cache = CompilationCache(directory=str(tmp_path / "store"))
    g, _ = _compiled_simple(cache)
    mod1 = compile_native_graph(g, cache=cache)
    key = f"ng_{mod1.fingerprint}"
    os.unlink(mod1.library_path)
    # blob is not valid base64: get_artifact must invalidate the entry
    cache.put(key, {"kind": "native-graph",
                    "format": NATIVE_GRAPH_FORMAT,
                    "blob_b64": "!!! not base64 !!!"})
    spy = _CcSpy(real=native_graph.subprocess.run)
    monkeypatch.setattr(native_graph.subprocess, "run", spy)
    mod2 = compile_native_graph(g, cache=cache)
    assert mod2.origin == "fresh" and spy.calls == 1
    assert cache.get_artifact(key) is not None   # re-stored


@requires_cc
def test_stale_format_entry_misses(native_env, tmp_path, monkeypatch):
    cache = CompilationCache(directory=str(tmp_path / "store"))
    g, _ = _compiled_simple(cache)
    mod1 = compile_native_graph(g, cache=cache)
    key = f"ng_{mod1.fingerprint}"
    os.unlink(mod1.library_path)
    entry = cache.get(key)
    entry = dict(entry, format=NATIVE_GRAPH_FORMAT + 1)
    cache.put(key, entry)
    spy = _CcSpy(real=native_graph.subprocess.run)
    monkeypatch.setattr(native_graph.subprocess, "run", spy)
    mod2 = compile_native_graph(g, cache=cache)
    assert mod2.origin == "fresh" and spy.calls == 1


@requires_cc
def test_compiler_version_change_misses_cache(native_env, tmp_path,
                                              monkeypatch):
    cache = CompilationCache(directory=str(tmp_path / "store"))
    g, _ = _compiled_simple(cache)
    mod1 = compile_native_graph(g, cache=cache)

    cc = find_c_compiler()
    native._PROBE_CACHE[f"sig:{cc}"] = "fake-cc (Fake) 99.9.9"
    spy = _CcSpy(real=native_graph.subprocess.run)
    monkeypatch.setattr(native_graph.subprocess, "run", spy)
    mod2 = compile_native_graph(g, cache=cache)
    assert mod2.fingerprint != mod1.fingerprint
    assert mod2.origin == "fresh" and spy.calls == 1


def test_artifact_store_roundtrip(tmp_path):
    cache = CompilationCache(directory=str(tmp_path / "store"))
    blob = bytes(range(256)) * 3
    cache.put_artifact("ng_x", {"kind": "native-graph", "format": 1},
                       blob)
    hit = cache.get_artifact("ng_x")
    assert hit is not None
    payload, restored = hit
    assert restored == blob
    assert payload["kind"] == "native-graph"
    assert "blob_b64" not in payload
    # a fresh process sees it through the disk tier too
    cache2 = CompilationCache(directory=str(tmp_path / "store"))
    payload2, restored2 = cache2.get_artifact("ng_x")
    assert restored2 == blob

    # an entry without a blob is not an artifact
    cache.put("ng_y", {"kind": "native-graph"})
    assert cache.get_artifact("ng_y") is None


# --------------------------------------------------------------------------
# Reporting and observability
# --------------------------------------------------------------------------


@requires_cc
def test_report_and_spans(native_env):
    from repro.obs import tracing
    from repro.obs.schema import NATIVE_SPANS

    g, out = _simple_graph(random_image(W, H, seed=13))
    with tracing() as tracer:
        report = execute_graph(g, cache=False, workers=1,
                               engine="native")
    assert report.engine == "native"
    assert report.engine_used == "native"
    assert report.metrics()["graph.native_nodes"] == report.launches
    assert "engine:  native" in report.summary()
    names = {s.name for s in tracer.spans()}
    for span_name in NATIVE_SPANS:
        assert span_name in names, f"missing {span_name} span"
