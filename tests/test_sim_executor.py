"""Functional executor: vectorised IR evaluation semantics."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Boundary
from repro.backends.border import Side
from repro.errors import DeviceFault, VerificationError
from repro.frontend import parse_kernel
from repro.frontend.parser import accessor_objects
from repro.ir import nodes as N
from repro.ir import typecheck_kernel
from repro.sim.executor import (
    _c_int_div,
    _c_int_mod,
    evaluate_body,
    sample_accessor,
)
from repro.sim.reference import execute_reference
from repro.types import FLOAT

from .helpers import (
    AddUniform,
    BranchKernel,
    ConvolveSyntax,
    CopyKernel,
    IntArithmetic,
    IterationSpace,
    MaskConvolution,
    MinReduce,
    PositionKernel,
    accessor_for,
    box_mask,
    build_image_pair,
    random_image,
)


def _compile(kernel_cls, *args, width=12, height=10, window=1,
             mode=Boundary.CLAMP, seed=3, **kwargs):
    data = random_image(width, height, seed=seed)
    src, dst = build_image_pair(width, height, data=data)
    k = kernel_cls(IterationSpace(dst), accessor_for(src, window, mode),
                   *args, **kwargs)
    ir = typecheck_kernel(parse_kernel(k))
    return ir, accessor_objects(k), data


def _grid(width=12, height=10):
    return np.meshgrid(np.arange(width), np.arange(height))


class TestCIntegerSemantics:
    @settings(max_examples=200)
    @given(a=st.integers(-1000, 1000), b=st.integers(-50, 50))
    def test_div_mod_match_c(self, a, b):
        if b == 0:
            return
        # C: truncation toward zero; remainder takes the dividend's sign
        expected_q = int(a / b) if a * b >= 0 else -(-a // b) \
            if a < 0 else -(a // -b)
        expected_q = int(np.trunc(a / b))
        expected_r = a - expected_q * b
        assert int(_c_int_div(np.int64(a), np.int64(b))) == expected_q
        assert int(_c_int_mod(np.int64(a), np.int64(b))) == expected_r

    def test_examples(self):
        assert int(_c_int_div(np.int32(-7), np.int32(2))) == -3
        assert int(_c_int_mod(np.int32(-7), np.int32(2))) == -1
        assert int(_c_int_div(np.int32(7), np.int32(-2))) == -3
        assert int(_c_int_mod(np.int32(7), np.int32(-2))) == 1


class TestBasicExecution:
    def test_copy(self):
        ir, accs, data = _compile(CopyKernel)
        gx, gy = _grid()
        out = evaluate_body(ir, accs, gx, gy)
        np.testing.assert_array_equal(out, data)

    def test_output_dtype_is_pixel_type(self):
        ir, accs, _ = _compile(CopyKernel)
        gx, gy = _grid()
        assert evaluate_body(ir, accs, gx, gy).dtype == np.float32

    def test_uniform_param_value_used(self):
        ir, accs, data = _compile(AddUniform, 2.5)
        gx, gy = _grid()
        out = evaluate_body(ir, accs, gx, gy)
        np.testing.assert_allclose(out, data + np.float32(2.5), rtol=1e-6)

    def test_position_kernel(self):
        ir, accs, data = _compile(PositionKernel)
        gx, gy = _grid()
        out = evaluate_body(ir, accs, gx, gy)
        expected = (data + gx.astype(np.float32) * np.float32(0.001)
                    + gy.astype(np.float32) * np.float32(0.002))
        np.testing.assert_allclose(out, expected, rtol=1e-5)

    def test_divergent_branch(self):
        ir, accs, data = _compile(BranchKernel, 0.5)
        gx, gy = _grid()
        out = evaluate_body(ir, accs, gx, gy)
        expected = np.where(data > 0.5, data * 2.0, data * 0.5)
        np.testing.assert_allclose(out, expected.astype(np.float32),
                                   rtol=1e-6)

    def test_int_arithmetic_kernel(self):
        ir, accs, data = _compile(IntArithmetic)
        gx, gy = _grid()
        out = evaluate_body(ir, accs, gx, gy)
        ix = gx - 5
        q = np.trunc(ix / 3)
        r = ix - q * 3
        expected = data + q.astype(np.float32) \
            + np.float32(0.125) * r.astype(np.float32)
        np.testing.assert_allclose(out, expected, rtol=1e-5)

    def test_convolution_matches_scipy(self):
        from scipy.ndimage import correlate
        ir, accs, data = _compile(MaskConvolution, box_mask(3), 1, 1,
                                  window=3)
        gx, gy = _grid()
        out = evaluate_body(ir, accs, gx, gy)
        ref = correlate(data, np.full((3, 3), 1 / 9, np.float32),
                        mode="nearest")
        np.testing.assert_allclose(out, ref, atol=1e-6)

    def test_min_reduce_convolve(self):
        from scipy.ndimage import minimum_filter
        ir, accs, data = _compile(MinReduce, box_mask(3), window=3)
        gx, gy = _grid()
        out = evaluate_body(ir, accs, gx, gy)
        ref = minimum_filter(data, size=3, mode="nearest")
        np.testing.assert_allclose(out, ref, atol=1e-6)

    def test_missing_output_raises(self):
        body = [N.VarDecl("x", N.FloatConst(1.0, FLOAT), FLOAT)]
        k = N.KernelIR("t", FLOAT, body)
        with pytest.raises(VerificationError, match="output"):
            evaluate_body(k, {}, np.array([0]), np.array([0]))

    def test_missing_mask_coefficients_raise(self):
        from repro.dsl import Mask
        src, dst = build_image_pair()
        mask = Mask(3, 3)   # never .set()
        k = MaskConvolution(IterationSpace(dst), accessor_for(src, 3),
                            mask, 1, 1)
        ir = typecheck_kernel(parse_kernel(k))
        with pytest.raises(VerificationError, match="coefficients"):
            evaluate_body(ir, accessor_objects(k), *_grid(16, 16))


class TestAgainstReference:
    """Vectorised executor == scalar per-pixel interpreter."""

    @pytest.mark.parametrize("mode", [Boundary.CLAMP, Boundary.MIRROR,
                                      Boundary.REPEAT, Boundary.CONSTANT])
    def test_convolution_all_modes(self, mode):
        ir, accs, _ = _compile(MaskConvolution, box_mask(3), 1, 1,
                               window=3, mode=mode)
        gx, gy = _grid()
        fast = evaluate_body(ir, accs, gx, gy)
        slow = execute_reference(ir, accs, 12, 10)
        np.testing.assert_array_equal(fast, slow)

    def test_branch_kernel(self):
        ir, accs, _ = _compile(BranchKernel, 0.4)
        gx, gy = _grid()
        fast = evaluate_body(ir, accs, gx, gy)
        slow = execute_reference(ir, accs, 12, 10)
        np.testing.assert_array_equal(fast, slow)

    def test_convolve_syntax_kernel(self):
        ir, accs, _ = _compile(ConvolveSyntax, box_mask(3), window=3)
        gx, gy = _grid()
        fast = evaluate_body(ir, accs, gx, gy)
        slow = execute_reference(ir, accs, 12, 10)
        np.testing.assert_array_equal(fast, slow)


class TestSideLimitedSampling:
    """sample_accessor's side-limited adjustments = the C bh_* helpers."""

    def _acc(self, mode, constant=0.0):
        data = random_image(8, 6, seed=9)
        src = build_image_pair(8, 6, data=data)[0]
        return accessor_for(src, 3, mode, constant), data

    @pytest.mark.parametrize("mode", [Boundary.CLAMP, Boundary.MIRROR,
                                      Boundary.REPEAT])
    def test_lo_side_only_adjusts_low(self, mode):
        acc, data = self._acc(mode)
        ix = np.array([-1, 0, 3])
        iy = np.array([0, 0, 0])
        out = sample_accessor(acc, ix, iy, Side.LO, Side.NONE, False)
        # -1 adjusted; in-bounds untouched
        assert out[1] == data[0, 0]
        assert out[2] == data[0, 3]

    def test_lo_clamp_example(self):
        acc, data = self._acc(Boundary.CLAMP)
        out = sample_accessor(acc, np.array([-2]), np.array([0]),
                              Side.LO, Side.NONE, False)
        assert out[0] == data[0, 0]

    def test_hi_mirror_example(self):
        acc, data = self._acc(Boundary.MIRROR)
        out = sample_accessor(acc, np.array([8]), np.array([0]),
                              Side.HI, Side.NONE, False)
        assert out[0] == data[0, 7]
        out = sample_accessor(acc, np.array([9]), np.array([0]),
                              Side.HI, Side.NONE, False)
        assert out[0] == data[0, 6]

    def test_constant_side_limited_predicate(self):
        acc, data = self._acc(Boundary.CONSTANT, constant=0.5)
        # only LO guarded: a low OOB read yields the constant
        out = sample_accessor(acc, np.array([-1]), np.array([0]),
                              Side.LO, Side.NONE, False)
        assert out[0] == np.float32(0.5)

    def test_undefined_fault(self):
        data = random_image(8, 6)
        src = build_image_pair(8, 6, data=data)[0]
        from repro.dsl import Accessor
        acc = Accessor(src)
        with pytest.raises(DeviceFault):
            sample_accessor(acc, np.array([-1]), np.array([0]),
                            Side.NONE, Side.NONE, True)

    def test_undefined_no_fault_returns_values(self):
        data = random_image(8, 6)
        src = build_image_pair(8, 6, data=data)[0]
        from repro.dsl import Accessor
        acc = Accessor(src)
        out = sample_accessor(acc, np.array([-1]), np.array([0]),
                              Side.NONE, Side.NONE, False)
        assert out.shape == (1,)    # unspecified value, but no crash

    @settings(max_examples=100)
    @given(
        mode=st.sampled_from([Boundary.CLAMP, Boundary.MIRROR,
                              Boundary.REPEAT]),
        offsets=st.lists(st.integers(-6, 13), min_size=1, max_size=16),
    )
    def test_both_sides_equals_full_adjustment(self, mode, offsets):
        """Side.BOTH sampling must equal the Accessor's own full
        boundary-handled sample()."""
        acc, data = self._acc(mode)
        ix = np.array(offsets)
        iy = np.zeros_like(ix)
        full = acc.sample(ix, iy)
        sided = sample_accessor(acc, ix, iy, Side.BOTH, Side.BOTH, False)
        np.testing.assert_array_equal(full, sided)


class TestFloat32Fidelity:
    def test_accumulation_stays_float32(self):
        """The simulator must accumulate in float32 like the device —
        summing many small values shows the difference vs float64."""
        ir, accs, data = _compile(MaskConvolution, box_mask(5), 2, 2,
                                  width=16, height=16, window=5)
        gx, gy = _grid(16, 16)
        out = evaluate_body(ir, accs, gx, gy)
        assert out.dtype == np.float32
        # float32 sequential accumulation reference
        coeffs = np.full((5, 5), 1 / 25, np.float32)
        padded = np.pad(data, 2, mode="edge")
        expected = np.zeros((16, 16), np.float32)
        for dy in range(5):
            for dx in range(5):
                expected = expected + np.float32(coeffs[dy, dx]) * \
                    padded[dy:dy + 16, dx:dx + 16]
        np.testing.assert_allclose(out, expected, atol=2e-6)
