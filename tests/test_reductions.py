"""Global operators: image-wide reductions (paper Sections I / VIII)."""

import numpy as np
import pytest

from repro import (
    Accessor,
    AbsMaxReduction,
    GlobalReduction,
    Image,
    IterationSpace,
    MaxReduction,
    MinReduction,
    SumReduction,
    compile_reduction,
)
from repro.errors import DslError, FrontendError

from repro.dsl.math import fabs, max  # noqa: A004 (kernel intrinsics)

from .helpers import random_image


class MeanAbsCombine(GlobalReduction):
    """Custom combine with a local temporary and an intrinsic."""

    def reduce(self, left, right):
        bigger = max(fabs(left), fabs(right))
        return bigger


class BadNoReturn(GlobalReduction):
    def reduce(self, left, right):
        x = left + right  # noqa: F841


class BadArity(GlobalReduction):
    def reduce(self, left):  # type: ignore[override]
        return left


def _setup(width=33, height=21, seed=0, signed=True):
    data = random_image(width, height, seed=seed)
    if signed:
        data = (data - 0.5).astype(np.float32)
    img = Image(width, height).set_data(data)
    return data, img, IterationSpace(img), Accessor(img)


class TestBuiltins:
    def test_sum(self):
        data, img, space, acc = _setup()
        result = compile_reduction(SumReduction(space, acc)).execute()
        assert result.value == pytest.approx(float(data.sum()), rel=1e-4)

    def test_min_max(self):
        data, img, space, acc = _setup(seed=1)
        assert compile_reduction(MinReduction(space, acc)).execute() \
            .value == pytest.approx(float(data.min()))
        assert compile_reduction(MaxReduction(space, acc)).execute() \
            .value == pytest.approx(float(data.max()))

    def test_absmax(self):
        data, img, space, acc = _setup(seed=2)
        result = compile_reduction(AbsMaxReduction(space, acc)).execute()
        assert result.value == pytest.approx(float(np.abs(data).max()))

    def test_execute_shortcut(self):
        data, img, space, acc = _setup(seed=3)
        value = SumReduction(space, acc).execute(device="quadro")
        assert value == pytest.approx(float(data.sum()), rel=1e-4)

    def test_roi_reduction(self):
        data, img, _, acc = _setup(48, 48, seed=4)
        roi = IterationSpace(img, 12, 10, offset_x=8, offset_y=6)
        result = compile_reduction(SumReduction(roi, acc)).execute()
        ref = float(data[6:16, 8:20].sum())
        assert result.value == pytest.approx(ref, rel=1e-4)

    def test_tree_order_is_float32(self):
        # the pairwise tree over many elements differs from float64 sums
        data, img, space, acc = _setup(128, 128, seed=5, signed=False)
        result = compile_reduction(SumReduction(space, acc)).execute()
        assert result.value == pytest.approx(float(data.sum()), rel=1e-4)
        assert isinstance(result.value, float)

    def test_custom_combine(self):
        data, img, space, acc = _setup(seed=6)
        result = compile_reduction(MeanAbsCombine(space, acc)).execute()
        assert result.value == pytest.approx(float(np.abs(data).max()))


class TestCodegen:
    def _source(self, backend):
        _, img, space, acc = _setup()
        return compile_reduction(SumReduction(space, acc),
                                 backend=backend)

    @pytest.mark.parametrize("backend", ["cuda", "opencl"])
    def test_two_stage_structure(self, backend):
        compiled = self._source(backend)
        code = compiled.device_code
        assert "REDUCE(a, b)" in code
        assert "_stage1" in code and "_stage2" in code
        assert compiled.source.num_variants == 2
        assert code.count("{") == code.count("}")

    def test_cuda_uses_shared_memory_tree(self):
        code = self._source("cuda").device_code
        assert "__shared__ float _sdata" in code
        assert "__syncthreads();" in code
        assert "s >>= 1" in code

    def test_opencl_uses_local_memory_tree(self):
        code = self._source("opencl").device_code
        assert "__local float _sdata" in code
        assert "barrier(CLK_LOCAL_MEM_FENCE);" in code

    def test_combine_macro_inlined(self):
        code = self._source("cuda").device_code
        assert "#define REDUCE(a, b) ((a) + (b))" in code

    def test_multi_statement_combine_becomes_function(self):
        _, img, space, acc = _setup()
        compiled = compile_reduction(MeanAbsCombine(space, acc))
        assert "reduce_op(" in compiled.device_code

    def test_block_size_power_of_two(self):
        from repro.errors import CodegenError
        _, img, space, acc = _setup()
        with pytest.raises(CodegenError):
            compile_reduction(SumReduction(space, acc), block_size=200)

    def test_host_driver_emitted(self):
        compiled = self._source("cuda")
        assert "cudaMalloc" in compiled.source.host_code
        assert "_stage2<<<1," in compiled.source.host_code


class TestValidation:
    def test_missing_return(self):
        _, img, space, acc = _setup()
        with pytest.raises(FrontendError, match="return"):
            compile_reduction(BadNoReturn(space, acc))

    def test_wrong_arity(self):
        _, img, space, acc = _setup()
        with pytest.raises(FrontendError, match="two value parameters"):
            compile_reduction(BadArity(space, acc))

    def test_base_class_not_implemented(self):
        _, img, space, acc = _setup()
        with pytest.raises(FrontendError, match="override"):
            compile_reduction(GlobalReduction(space, acc))

    def test_requires_accessor_and_space(self):
        _, img, space, acc = _setup()
        with pytest.raises(DslError):
            GlobalReduction(space, "nope")
        with pytest.raises(DslError):
            GlobalReduction("nope", acc)

    def test_non_reduction_rejected(self):
        with pytest.raises(DslError):
            compile_reduction("nope")

    def test_timing_is_bandwidth_bound(self):
        _, img, space, acc = _setup(512, 512)
        compiled = compile_reduction(SumReduction(space, acc))
        t = compiled.estimate_time_ms()
        # one streaming pass of 1 MB at ~144 GB/s + two launches
        assert 0.005 < t < 1.0
