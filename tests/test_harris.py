"""Harris corner detector pipeline."""

import numpy as np
import pytest

from repro.filters.harris import corner_peaks, harris_response

from .helpers import random_image


def _rectangle_image(size=48):
    """Bright rectangle on dark background: 4 strong corners."""
    img = np.zeros((size, size), np.float32)
    img[12:36, 16:40] = 1.0
    return img, [(12, 16), (12, 39), (35, 16), (35, 39)]


class TestHarris:
    def test_response_peaks_at_corners(self):
        img, corners = _rectangle_image()
        response = harris_response(img, k=0.05, window=5)
        peak = response.max()
        for cy, cx in corners:
            neighbourhood = response[cy - 3:cy + 4, cx - 3:cx + 4]
            assert neighbourhood.max() > 0.5 * peak, (cy, cx)

    def test_edges_score_below_corners(self):
        img, _ = _rectangle_image()
        response = harris_response(img, k=0.05, window=5)
        corner_score = response[10:15, 14:19].max()
        edge_score = response[22:26, 14:19].max()   # mid-edge
        assert corner_score > 4 * abs(edge_score)

    def test_flat_region_near_zero(self):
        img, _ = _rectangle_image()
        response = harris_response(img, k=0.05, window=5)
        assert abs(response[22:26, 26:30]).max() < \
            0.01 * response.max()

    def test_corner_peaks_extraction(self):
        img, corners = _rectangle_image()
        response = harris_response(img, k=0.05, window=5)
        peaks = corner_peaks(response, threshold_rel=0.3, min_distance=4)
        assert 4 <= len(peaks) <= 12
        # every true corner has a detected peak nearby
        for cy, cx in corners:
            dist = np.abs(peaks - np.array([cy, cx])).sum(axis=1).min()
            assert dist <= 4, (cy, cx)

    def test_rotation_symmetry(self):
        img, _ = _rectangle_image()
        r0 = harris_response(img, k=0.05, window=5)
        r90 = harris_response(np.rot90(img).copy(), k=0.05, window=5)
        np.testing.assert_allclose(np.rot90(r0), r90, atol=1e-4)

    def test_noise_robustness(self):
        img, corners = _rectangle_image()
        rng = np.random.default_rng(0)
        noisy = img + 0.03 * rng.standard_normal(img.shape) \
            .astype(np.float32)
        response = harris_response(noisy, k=0.05, window=5)
        peaks = corner_peaks(response, threshold_rel=0.3, min_distance=4)
        for cy, cx in corners:
            dist = np.abs(peaks - np.array([cy, cx])).sum(axis=1).min()
            assert dist <= 5
