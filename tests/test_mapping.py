"""Device mapping: Algorithm 2, exploration, optimization database."""

import pytest

from repro import Boundary
from repro.errors import MappingError
from repro.hwmodel import DEVICES, get_device
from repro.ir.analysis import InstructionMix
from repro.mapping import (
    candidate_configurations,
    default_database,
    explore_configurations,
    select_configuration,
)
from repro.mapping.explore import best_point
from repro.mapping.microbench import benchmark_device, build_database


class TestCandidates:
    def test_all_multiples_of_simd_width(self):
        for cand in candidate_configurations(get_device("tesla"), 20):
            assert cand.threads % 32 == 0

    def test_sorted_by_occupancy_then_threads(self):
        cands = candidate_configurations(get_device("tesla"), 20)
        occs = [c.occupancy.occupancy for c in cands]
        assert occs == sorted(occs, reverse=True)
        top = [c for c in cands if c.occupancy.occupancy == occs[0]]
        threads = [c.threads for c in top]
        assert threads == sorted(threads)

    def test_within_device_limits(self):
        for name in ("tesla", "quadro", "hd5870"):
            dev = get_device(name)
            for cand in candidate_configurations(dev, 20):
                assert cand.threads <= dev.max_threads_per_block

    def test_amd_capped_at_256(self):
        cands = candidate_configurations(get_device("hd5870"), 20)
        assert max(c.threads for c in cands) <= 256

    def test_impossible_resources_raise(self):
        with pytest.raises(MappingError):
            candidate_configurations(get_device("tesla"), 20,
                                     smem_per_block=10 ** 9)

    def test_register_pressure_filters_configs(self):
        light = candidate_configurations(get_device("tesla"), 16)
        heavy = candidate_configurations(get_device("tesla"), 60)
        assert max(c.threads for c in heavy) <= \
            max(c.threads for c in light)


class TestAlgorithm2:
    def test_no_border_prefers_1d_rows(self):
        """Without border handling the x-dimension is preferred —
        '1D-configurations like 128x1 or 256x1'."""
        sel = select_configuration(get_device("tesla"), 24,
                                   border_handling=False)
        assert sel.block[1] == 1
        assert sel.block[0] >= 128

    def test_border_prefers_y_tiling(self):
        """With border handling, x pinned near the SIMD width and y
        preferred — the paper's 32x6 example on the Tesla."""
        sel = select_configuration(get_device("tesla"), 24,
                                   border_handling=True,
                                   image_size=(4096, 4096),
                                   window=(13, 13))
        assert sel.block == (32, 6)
        assert sel.boundary_threads is not None

    def test_border_choice_minimises_bh_threads_among_top_occ(self):
        from repro.backends.border import border_thread_count
        dev = get_device("tesla")
        sel = select_configuration(dev, 24, border_handling=True,
                                   image_size=(4096, 4096),
                                   window=(13, 13))
        assert sel.boundary_threads == border_thread_count(
            4096, 4096, sel.block, (13, 13))

    def test_always_legal_configuration(self):
        for name in DEVICES:
            dev = get_device(name)
            sel = select_configuration(dev, 24, border_handling=True,
                                       image_size=(1024, 1024),
                                       window=(5, 5))
            assert dev.valid_block(*sel.block)
            assert sel.block[0] * sel.block[1] % dev.simd_width == 0

    def test_gt200_picks_smaller_blocks(self):
        tesla = select_configuration(get_device("tesla"), 24,
                                     border_handling=False)
        quadro = select_configuration(get_device("quadro"), 24,
                                      border_handling=False)
        assert quadro.block[0] * quadro.block[1] <= \
            tesla.block[0] * tesla.block[1]

    def test_high_register_pressure_adapts(self):
        # 60 regs/thread on Fermi: 1920 regs/warp -> 17 resident warps;
        # the best single block is exactly 17 warps = 544 threads
        sel = select_configuration(get_device("tesla"), 60,
                                   border_handling=False)
        assert sel.block[0] * sel.block[1] <= 544
        light = select_configuration(get_device("tesla"), 16,
                                     border_handling=False)
        assert sel.occupancy <= light.occupancy

    def test_occupancy_reported(self):
        sel = select_configuration(get_device("tesla"), 24,
                                   border_handling=False)
        assert 0 < sel.occupancy <= 1.0


class TestExploration:
    def _points(self, device="tesla"):
        mix = InstructionMix(alu=3000, sfu=2000, global_reads=170,
                             mask_reads=169, branches=28,
                             reads_by_accessor={"input": 170})
        return explore_configurations(
            get_device(device), mix, 4096, 4096, (13, 13),
            boundary_mode=Boundary.CLAMP, use_texture=True,
            regs_per_thread=24)

    def test_explores_many_configs(self):
        points = self._points()
        assert len(points) > 60

    def test_multiple_tilings_per_thread_count(self):
        """Figure 4: 'Multiple points with the same number of threads
        denote a different tiling for that configuration.'"""
        points = self._points()
        per_total = {}
        for p in points:
            per_total.setdefault(p.threads, []).append(p)
        assert any(len(v) > 2 for v in per_total.values())

    def test_best_point_is_minimum(self):
        points = self._points()
        best = best_point(points)
        assert best.time_ms == min(p.time_ms for p in points)

    def test_spread_is_significant(self):
        """Figure 4 shows ~2.5x between best and worst configuration."""
        points = self._points()
        worst = max(p.time_ms for p in points)
        best = min(p.time_ms for p in points)
        assert worst / best > 1.8

    def test_heuristic_within_10_percent(self):
        """'the configurations selected by our heuristic are typically
        within 10% of the best configuration'."""
        from repro.evaluation.figure4 import figure4_exploration
        result = figure4_exploration()
        assert result.heuristic_within <= 1.10

    def test_empty_points_raise(self):
        with pytest.raises(Exception):
            best_point([])


class TestOptimizationDatabase:
    def test_database_populated_for_all_devices(self):
        db = build_database()
        assert len(db) >= len(DEVICES)   # NVIDIA devices contribute twice

    def test_lookup_direct(self):
        db = default_database()
        entry = db.lookup(get_device("tesla"), "cuda")
        assert entry is not None
        assert entry.padding_bytes == 128

    def test_lookup_falls_back_to_architecture(self):
        import dataclasses
        db = default_database()
        phantom = dataclasses.replace(get_device("tesla"),
                                      name="Tesla C2070")
        entry = db.lookup(phantom, "cuda")
        assert entry is not None
        assert get_device(entry.device).architecture == "Fermi"

    def test_texture_beneficial_on_gt200(self):
        """No L1 on GT200: the texture path must win the micro-benchmark
        ('whether texture memory is beneficial')."""
        entry = benchmark_device(get_device("quadro"), "cuda")
        assert entry.texture_beneficial

    def test_smem_not_beneficial_for_small_windows(self):
        """Section IV-A: 'For local operators with small window sizes,
        this is rarely the case.'"""
        for name in ("tesla", "quadro"):
            entry = benchmark_device(get_device(name), "cuda")
            assert not entry.smem_beneficial

    def test_static_masks_always_preferred(self):
        for entry in default_database().entries():
            assert entry.constant_mask_static
