"""Non-float pixel types and mixed multi-accessor kernels end to end."""

import numpy as np
import pytest
from scipy.ndimage import correlate

from repro import (
    Accessor,
    Boundary,
    BoundaryCondition,
    Image,
    IterationSpace,
    Kernel,
    compile_kernel,
)

from .helpers import random_image


class ThresholdU8(Kernel):
    """uint8 -> uint8 threshold (integer select)."""

    def __init__(self, iteration_space, inp, t):
        super().__init__(iteration_space)
        self.inp = inp
        self.t = int(t)
        self.add_accessor(inp)

    def kernel(self):
        v = self.inp(0, 0)
        self.output(255 if v > self.t else 0)


class BoxSumInt(Kernel):
    """int32 3x3 neighbourhood sum."""

    def __init__(self, iteration_space, inp):
        super().__init__(iteration_space)
        self.inp = inp
        self.add_accessor(inp)

    def kernel(self):
        s = 0
        for dy in range(-1, 2):
            for dx in range(-1, 2):
                s += self.inp(dx, dy)
        self.output(s)


class MixedWindows(Kernel):
    """Two accessors with different windows and boundary modes — the
    paper's rule: "the largest window size specified is taken"."""

    def __init__(self, iteration_space, wide, narrow):
        super().__init__(iteration_space)
        self.wide = wide
        self.narrow = narrow
        self.add_accessor(wide)
        self.add_accessor(narrow)

    def kernel(self):
        s = 0.0
        for d in range(-3, 4):
            s += self.wide(d, 0)
        self.output(s * 0.1 + self.narrow(0, 1))


class TestIntegerKernels:
    def test_u8_threshold(self):
        data = (np.arange(64, dtype=np.uint8).reshape(8, 8) * 4) \
            .astype(np.uint8)
        src = Image(8, 8, "uint8").set_data(data)
        dst = Image(8, 8, "uint8")
        k = ThresholdU8(IterationSpace(dst), Accessor(src), 100)
        compiled = compile_kernel(k, backend="cuda", use_texture=False)
        compiled.execute()
        ref = np.where(data > 100, 255, 0).astype(np.uint8)
        np.testing.assert_array_equal(dst.get_data(), ref)
        assert dst.get_data().dtype == np.uint8

    def test_u8_codegen_types(self):
        data = np.zeros((8, 8), np.uint8)
        src = Image(8, 8, "uint8").set_data(data)
        dst = Image(8, 8, "uint8")
        k = ThresholdU8(IterationSpace(dst), Accessor(src), 100)
        cu = compile_kernel(k, backend="cuda", use_texture=False)
        assert "unsigned char * OUT" in cu.device_code
        assert "unsigned char v" in cu.device_code
        cl = compile_kernel(k, backend="opencl", use_texture=False)
        assert "uchar" in cl.device_code

    def test_int_box_sum_with_boundary(self):
        data = np.arange(100, dtype=np.int32).reshape(10, 10)
        src = Image(10, 10, "int").set_data(data)
        dst = Image(10, 10, "int")
        bc = BoundaryCondition(src, 3, 3, Boundary.CLAMP)
        k = BoxSumInt(IterationSpace(dst), Accessor(bc))
        compile_kernel(k, backend="opencl", device="hd6970",
                       use_texture=False).execute()
        ref = correlate(data.astype(np.int64), np.ones((3, 3), np.int64),
                        mode="nearest")
        np.testing.assert_array_equal(dst.get_data().astype(np.int64),
                                      ref)

    def test_short_roundtrip(self):
        data = (random_image(8, 8, seed=1) * 1000).astype(np.int16)
        src = Image(8, 8, "int16").set_data(data)
        dst = Image(8, 8, "int16")
        from .helpers import CopyKernel
        k = CopyKernel(IterationSpace(dst), Accessor(src))
        compile_kernel(k, use_texture=False).execute()
        np.testing.assert_array_equal(dst.get_data(), data)


class TestMultiAccessor:
    def _build(self, data):
        src = Image(16, 16).set_data(data)
        dst = Image(16, 16)
        wide = Accessor(BoundaryCondition(src, 7, 1, Boundary.CLAMP))
        narrow = Accessor(BoundaryCondition(src, 3, 3, Boundary.MIRROR))
        return MixedWindows(IterationSpace(dst), wide, narrow), dst

    def test_largest_window_drives_layout(self):
        data = random_image(16, 16, seed=2)
        k, _ = self._build(data)
        compiled = compile_kernel(k, use_texture=False, block=(8, 2))
        assert compiled.window == (7, 3)

    def test_functional_result(self):
        data = random_image(16, 16, seed=3)
        k, dst = self._build(data)
        compile_kernel(k, use_texture=False, block=(8, 2)).execute()
        padded_c = np.pad(data, ((0, 0), (3, 3)), mode="edge")
        wide_sum = sum(padded_c[:, 3 + d:3 + d + 16]
                       for d in range(-3, 4))
        padded_m = np.pad(data, 1, mode="symmetric")
        narrow = padded_m[2:2 + 16, 1:1 + 16]
        expected = (wide_sum * np.float32(0.1) + narrow) \
            .astype(np.float32)
        np.testing.assert_allclose(dst.get_data(), expected, atol=1e-5)

    def test_each_accessor_keeps_its_mode_in_codegen(self):
        data = random_image(16, 16, seed=4)
        k, _ = self._build(data)
        compiled = compile_kernel(k, use_texture=False, block=(8, 2))
        code = compiled.device_code
        assert "bh_clamp" in code      # the wide accessor
        assert "bh_mirror" in code     # the narrow accessor
