"""CPU (C99 + OpenMP) backend: loop-split boundary specialisation."""

import pytest

from repro import Boundary, CodegenOptions
from repro.backends import generate
from repro.errors import CodegenError
from repro.evaluation.variants import _bilateral_ir
from repro.frontend import parse_kernel
from repro.ir import typecheck_kernel

from .helpers import (
    CopyKernel,
    IterationSpace,
    MaskConvolution,
    accessor_for,
    box_mask,
    build_image_pair,
)


def _gen(mode=Boundary.CLAMP, geometry=(512, 512), window=5, **opts):
    src, dst = build_image_pair(64, 64)
    k = MaskConvolution(IterationSpace(dst),
                        accessor_for(src, window, mode),
                        box_mask(window), window // 2, window // 2)
    ir = typecheck_kernel(parse_kernel(k))
    return generate(ir, CodegenOptions(backend="cpu", **opts),
                    launch_geometry=geometry)


class TestStructure:
    def test_balanced_and_named(self):
        srcs = _gen()
        code = srcs.device_code
        assert code.count("{") == code.count("}")
        assert srcs.entry == "MaskConvolution_cpu"
        assert "void MaskConvolution_cpu(" in code

    def test_interior_is_parallel_and_unguarded(self):
        code = _gen().device_code
        interior = code.split("interior fast path")[1] \
            .split("// region")[0]
        assert "bh_clamp" not in interior
        assert "#pragma omp parallel for" in code

    def test_nine_loop_nests(self):
        src = _gen()
        assert src.num_variants == 9
        assert src.device_code.count("for (int gid_y") == 9

    def test_border_strips_use_side_limited_helpers(self):
        code = _gen(mode=Boundary.MIRROR).device_code
        assert "bh_mirror_lo(" in code
        assert "bh_mirror_hi(" in code

    def test_pixel_exact_strips(self):
        # 5x5 window -> 2-pixel border strips
        code = _gen().device_code
        assert "x in 2..510-1, y in 0..2-1" in code or \
            "x in 2..510-1, y in 2..510-1" in code

    def test_constant_mode_predicated(self):
        code = _gen(mode=Boundary.CONSTANT).device_code
        assert "? 0.0f :" in code

    def test_masks_are_static_const(self):
        code = _gen().device_code
        assert "static const float _constcmask[25]" in code

    def test_restrict_qualifiers(self):
        code = _gen().device_code
        assert "float * restrict OUT" in code
        assert "const float * restrict inp" in code

    def test_bilateral_regions(self):
        ir = _bilateral_ir(True, "clamp", 3, 5.0)
        src = generate(ir, CodegenOptions(backend="cpu"),
                       launch_geometry=(4096, 4096))
        assert src.num_variants == 9
        assert "expf(" in src.device_code

    def test_point_operator_single_nest(self):
        src_img, dst = build_image_pair(16, 16)
        k = CopyKernel(IterationSpace(dst), accessor_for(src_img))
        ir = typecheck_kernel(parse_kernel(k))
        code = generate(ir, CodegenOptions(backend="cpu"),
                        launch_geometry=(16, 16))
        assert code.device_code.count("for (int gid_y") == 1


class TestValidation:
    def test_requires_geometry(self):
        src, dst = build_image_pair(16, 16)
        k = CopyKernel(IterationSpace(dst), accessor_for(src))
        ir = typecheck_kernel(parse_kernel(k))
        with pytest.raises(CodegenError, match="geometry"):
            generate(ir, CodegenOptions(backend="cpu"))

    def test_gpu_only_options_rejected(self):
        for kwargs in (dict(use_texture=True), dict(use_smem=True),
                       dict(vectorize=4)):
            with pytest.raises(CodegenError):
                CodegenOptions(backend="cpu", **kwargs).validate()

    def test_unknown_backend_still_rejected(self):
        with pytest.raises(CodegenError):
            CodegenOptions(backend="metal").validate()
