"""Concurrency tests: parallel exploration and cache contention.

The parallel configuration walk must be a pure speed-up — same point
set, same canonical order, same ``LaunchError``-skipping — and the
compilation cache must stay coherent when hammered from a thread pool:
a reader sees either nothing or a complete entry, never a
partially-written one.
"""

import concurrent.futures
import threading

import pytest

from repro import CompilationCache, compile_kernel
from repro.backends.base import BorderMode, MaskMemory
from repro.dsl.boundary import Boundary
from repro.errors import LaunchError
from repro.evaluation.figure4 import figure4_device_sweep
from repro.filters.gaussian import make_gaussian
from repro.hwmodel import get_device
from repro.mapping import explore as explore_mod
from repro.mapping.explore import (
    ExplorationTask,
    explore_configurations,
    explore_many,
    run_exploration_task,
)

from .helpers import build_convolution, random_image

WINDOW = (5, 5)


def _mix_and_regs():
    """An InstructionMix + register count from a real compile."""
    kernel, _, _ = make_gaussian(64, 64, size=5, data=random_image(64, 64))
    compiled = compile_kernel(kernel, backend="cuda",
                              device="Tesla C2050")
    res = compiled.resources
    return res.instruction_mix, res.registers_per_thread


def _explore(device_name, backend, mix, regs, **kw):
    return explore_configurations(
        get_device(device_name), mix, 1024, 1024, WINDOW,
        boundary_mode=Boundary.CLAMP, backend=backend,
        border=BorderMode.SPECIALIZED, use_texture=False,
        mask_memory=MaskMemory.CONSTANT, regs_per_thread=regs, **kw)


class TestParallelEqualsSerial:
    @pytest.mark.parametrize("device_name,backend", [
        ("Tesla C2050", "cuda"),
        ("Radeon HD 5870", "opencl"),
    ])
    def test_threads(self, device_name, backend):
        mix, regs = _mix_and_regs()
        serial = _explore(device_name, backend, mix, regs)
        parallel = _explore(device_name, backend, mix, regs, workers=4)
        assert parallel == serial
        assert len(serial) > 0

    def test_processes(self):
        # the smallest candidate set keeps process start-up cheap; this
        # proves ExplorationTask and the points pickle cleanly
        mix, regs = _mix_and_regs()
        serial = _explore("Radeon HD 5870", "opencl", mix, regs)
        parallel = _explore("Radeon HD 5870", "opencl", mix, regs,
                            workers=2, use_processes=True)
        assert parallel == serial

    def test_launcherror_skipping_matches(self, monkeypatch):
        mix, regs = _mix_and_regs()
        real = explore_mod.estimate_time

        def flaky(spec):
            if spec.block[0] * spec.block[1] >= 256:
                raise LaunchError("synthetic: configuration rejected")
            return real(spec)

        monkeypatch.setattr(explore_mod, "estimate_time", flaky)
        serial = _explore("Tesla C2050", "cuda", mix, regs)
        parallel = _explore("Tesla C2050", "cuda", mix, regs, workers=4)
        assert parallel == serial
        assert serial                        # something survived
        assert all(p.threads < 256 for p in serial)

    def test_explore_many_preserves_task_order(self):
        mix, regs = _mix_and_regs()
        tasks = [
            ExplorationTask(device=get_device(name), mix=mix,
                            width=1024, height=1024, window=WINDOW,
                            backend=backend, regs_per_thread=regs)
            for name, backend in [("Tesla C2050", "cuda"),
                                  ("Quadro FX 5800", "cuda"),
                                  ("Radeon HD 5870", "opencl")]
        ]
        serial = explore_many(tasks)
        parallel = explore_many(tasks, workers=3)
        assert parallel == serial
        assert serial == [run_exploration_task(t) for t in tasks]

    def test_figure4_device_sweep_parallel_consistent(self):
        serial = figure4_device_sweep(width=512, height=512)
        parallel = figure4_device_sweep(width=512, height=512, workers=4)
        assert parallel == serial
        assert set(serial) == {"Tesla C2050", "Quadro FX 5800",
                               "Radeon HD 5870", "Radeon HD 6970"}
        assert all(pts for pts in serial.values())

    def test_figure4_device_sweep_rejects_duplicate_names(self):
        # results are keyed by device name; a duplicate would silently
        # shadow one device's point set after doing all the work
        with pytest.raises(ValueError, match="duplicate device name"):
            figure4_device_sweep(devices=["Tesla C2050", "Tesla C2050"],
                                 width=256, height=256)


class TestCacheContention:
    REQUIRED = {"kind", "format", "source", "options", "resources"}

    def test_contended_compiles_match_serial_reference(self, tmp_path):
        variants = [dict(mask_size=3), dict(mask_size=5),
                    dict(boundary=Boundary.MIRROR),
                    dict(coefficient_scale=2.0)]
        reference = {
            i: compile_kernel(build_convolution(**kw), backend="cuda",
                              device="Tesla C2050").source.device_code
            for i, kw in enumerate(variants)}

        cache = CompilationCache(directory=str(tmp_path))

        def job(i):
            kw = variants[i % len(variants)]
            compiled = compile_kernel(build_convolution(**kw),
                                      backend="cuda",
                                      device="Tesla C2050", cache=cache)
            return i % len(variants), compiled.source.device_code

        with concurrent.futures.ThreadPoolExecutor(max_workers=8) as pool:
            results = list(pool.map(job, range(16)))
        for i, code in results:
            assert code == reference[i], f"variant {i} diverged"
        # the initial 8-thread burst may double-miss each variant (both
        # threads compile before either stores — benign duplicate work),
        # but afterwards every compile must hit
        assert cache.stats.hits + cache.stats.disk_hits >= \
            len(results) - 2 * len(variants)

    def test_no_partial_entries_under_contention(self, tmp_path):
        # hammer one key with full payloads from half the threads while
        # the other half reads: a get() must yield None or a complete
        # payload, never a partially-written dict or corrupt JSON
        cache = CompilationCache(capacity=4, directory=str(tmp_path))
        payload = {k: f"value-{k}" for k in sorted(self.REQUIRED)}
        stop = threading.Event()
        bad = []

        def writer(key):
            while not stop.is_set():
                cache.put(key, dict(payload))

        def reader(key):
            while not stop.is_set():
                got = cache.get(key)
                if got is not None and set(got) != set(payload):
                    bad.append(got)
            # disk path too: a fresh instance re-reads the JSON file
            got = CompilationCache(directory=str(tmp_path)).get(key)
            if got is not None and set(got) != set(payload):
                bad.append(got)

        keys = [f"{i:02x}" * 32 for i in range(4)]
        threads = [threading.Thread(target=writer, args=(k,))
                   for k in keys]
        threads += [threading.Thread(target=reader, args=(k,))
                    for k in keys]
        for t in threads:
            t.start()
        threading.Event().wait(0.5)
        stop.set()
        for t in threads:
            t.join(timeout=10)
        assert not bad, f"partial entries observed: {bad[:3]}"
