"""Scratchpad staging (Listing 7) executed block-accurately: staged
execution must be bit-identical to the direct path for every mode,
block shape and region, and reads outside the staged halo must fail
loudly."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Boundary, CodegenOptions, compile_kernel
from repro.backends.border import BorderRegion, Side
from repro.dsl import Accessor, BoundaryCondition, Image
from repro.filters.gaussian import make_gaussian
from repro.sim.staging import TileAccessor, stage_tile

from .helpers import (
    IterationSpace,
    MaskConvolution,
    accessor_for,
    box_mask,
    build_image_pair,
    random_image,
)

MODES = [Boundary.CLAMP, Boundary.MIRROR, Boundary.REPEAT,
         Boundary.CONSTANT]


def _run(data, window, mode, block, use_smem):
    h, w = data.shape
    src, dst = build_image_pair(w, h, data=data)
    k = MaskConvolution(IterationSpace(dst),
                        accessor_for(src, window, mode, 0.25),
                        box_mask(window), window // 2, window // 2)
    compile_kernel(k, backend="cuda", use_texture=False,
                   use_smem=use_smem, block=block).execute()
    return dst.get_data()


class TestStagedEqualsDirect:
    @pytest.mark.parametrize("mode", MODES)
    def test_all_modes(self, mode):
        data = random_image(40, 36, seed=1)
        direct = _run(data, 5, mode, (8, 4), use_smem=False)
        staged = _run(data, 5, mode, (8, 4), use_smem=True)
        np.testing.assert_array_equal(direct, staged)

    @settings(max_examples=25, deadline=None)
    @given(
        bx=st.sampled_from([4, 8, 16]),
        by=st.sampled_from([2, 4, 8]),
        window=st.sampled_from([3, 5, 7]),
        mode=st.sampled_from(MODES),
        width=st.integers(18, 40),
        height=st.integers(18, 40),
    )
    def test_property(self, bx, by, window, mode, width, height):
        data = random_image(width, height, seed=2)
        direct = _run(data, window, mode, (bx, by), use_smem=False)
        staged = _run(data, window, mode, (bx, by), use_smem=True)
        np.testing.assert_array_equal(direct, staged)

    def test_point_accessor_not_staged(self):
        # smem with a 1x1 window accessor: no staging, still correct
        data = random_image(16, 16, seed=3)
        k, _, out = make_gaussian(16, 16, size=3, data=data)
        compile_kernel(k, use_texture=False, use_smem=True,
                       block=(8, 4)).execute()
        assert out.get_data().std() > 0


class TestStageTile:
    def _acc(self, mode=Boundary.CLAMP):
        data = random_image(12, 10, seed=4)
        img = Image(12, 10).set_data(data)
        return Accessor(BoundaryCondition(img, 3, 3, mode)), data

    def test_tile_shape_includes_halo(self):
        acc, _ = self._acc()
        region = BorderRegion(Side.BOTH, Side.BOTH, 0, 1, 0, 1)
        tile = stage_tile(acc, (0, 0), (4, 4), (3, 3), region)
        assert tile.shape == (6, 6)

    def test_interior_tile_is_plain_copy(self):
        acc, data = self._acc()
        region = BorderRegion(Side.NONE, Side.NONE, 0, 1, 0, 1)
        tile = stage_tile(acc, (4, 4), (4, 4), (3, 3), region)
        np.testing.assert_array_equal(tile, data[3:9, 3:9])

    def test_border_tile_applies_adjustment(self):
        acc, data = self._acc(Boundary.MIRROR)
        region = BorderRegion(Side.LO, Side.LO, 0, 1, 0, 1)
        tile = stage_tile(acc, (0, 0), (4, 4), (3, 3), region)
        # halo column -1 mirrors to column 0
        np.testing.assert_array_equal(tile[1:, 0], tile[1:, 1])

    def test_out_of_tile_read_raises(self):
        acc, _ = self._acc()
        region = BorderRegion(Side.BOTH, Side.BOTH, 0, 1, 0, 1)
        tile = stage_tile(acc, (0, 0), (4, 4), (3, 3), region)
        proxy = TileAccessor(acc, tile, (0, 0), (3, 3))
        with pytest.raises(IndexError, match="staged"):
            proxy.sample_tile(np.array([6]), np.array([0]))
