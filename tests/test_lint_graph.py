"""Pipeline-graph diagnostics (HIP3xx) and their scheduler wiring."""

from __future__ import annotations

from repro.dsl import (
    Accessor,
    Boundary,
    BoundaryCondition,
    Image,
    IterationSpace,
    Mask,
)
from repro.filters.median import Median3x3
from repro.filters.point_ops import GammaCorrection, Scale
from repro.graph import PipelineGraph, execute_graph
from repro.lint import Severity, collecting, lint_graph

N = 32


def _img(name):
    return Image(N, N, name=name)


def codes(diags):
    return sorted(d.code for d in diags)


def _chain(mark=True, dangling=False):
    """src -> scale -> gamma (point ops, fusable), optionally plus a
    dangling median node nobody consumes."""
    src = _img("src")
    mid = _img("mid")
    out = _img("out")
    g = PipelineGraph("t")
    g.add_kernel(Scale(IterationSpace(mid), Accessor(src), factor=2.0),
                 name="scale")
    g.add_kernel(GammaCorrection(IterationSpace(out), Accessor(mid),
                                 gamma=0.5), name="gamma")
    if dangling:
        dang = _img("dangling")
        g.add_kernel(Median3x3(IterationSpace(dang), Accessor(
            BoundaryCondition(src, 3, 3, Boundary.CLAMP))), name="median")
    if mark:
        g.mark_output(out)
    return g, out


class TestHip301:
    def test_unconsumed_unmarked_output(self):
        g, _ = _chain(mark=True, dangling=True)
        diags = [d for d in lint_graph(g) if d.code == "HIP301"]
        assert len(diags) == 1
        assert "'dangling'" in diags[0].message
        assert diags[0].kernel == "median"
        assert diags[0].severity == Severity.WARNING

    def test_marked_sink_is_clean(self):
        g, _ = _chain(mark=True, dangling=False)
        assert "HIP301" not in codes(lint_graph(g))

    def test_silent_without_any_marks(self):
        # graphs that never call mark_output treat sinks as implicit
        # outputs; flagging them would punish the common case
        g, _ = _chain(mark=False, dangling=True)
        assert "HIP301" not in codes(lint_graph(g))


class TestHip302:
    def test_point_into_local_explained(self):
        src = _img("src")
        mid = _img("mid")
        out = _img("out")
        g = PipelineGraph("t")
        g.add_kernel(Scale(IterationSpace(mid), Accessor(src), factor=2.0),
                     name="scale")
        g.add_kernel(Median3x3(IterationSpace(out), Accessor(
            BoundaryCondition(mid, 3, 3, Boundary.CLAMP))), name="median")
        diags = [d for d in lint_graph(g) if d.code == "HIP302"]
        assert len(diags) == 1
        assert "'median' is not a point operator" in diags[0].message
        assert diags[0].severity == Severity.INFO

    def test_multi_consumer_explained(self):
        src = _img("src")
        mid = _img("mid")
        a = _img("a")
        b = _img("b")
        g = PipelineGraph("t")
        g.add_kernel(Scale(IterationSpace(mid), Accessor(src), factor=2.0),
                     name="scale")
        g.add_kernel(Scale(IterationSpace(a), Accessor(mid), factor=3.0),
                     name="left")
        g.add_kernel(Scale(IterationSpace(b), Accessor(mid), factor=4.0),
                     name="right")
        diags = [d for d in lint_graph(g) if d.code == "HIP302"]
        assert len(diags) == 2     # scale->left and scale->right
        assert all("2 consumers" in d.message for d in diags)

    def test_fusable_pair_not_flagged(self):
        # before fusion a clean point chain is fusable, so HIP302 stays
        # quiet about it; after execute_graph the pair is actually fused
        g, _ = _chain(mark=True)
        assert "HIP302" not in codes(lint_graph(g))

    def test_two_local_ops_not_flagged(self):
        src = _img("src")
        mid = _img("mid")
        out = _img("out")
        g = PipelineGraph("t")
        g.add_kernel(Median3x3(IterationSpace(mid), Accessor(
            BoundaryCondition(src, 3, 3, Boundary.CLAMP))), name="m1")
        g.add_kernel(Median3x3(IterationSpace(out), Accessor(
            BoundaryCondition(mid, 3, 3, Boundary.CLAMP))), name="m2")
        assert "HIP302" not in codes(lint_graph(g))


class TestSchedulerWiring:
    def test_report_carries_diagnostics(self):
        src = _img("src")
        mid = _img("mid")
        out = _img("out")
        g = PipelineGraph("t")
        g.add_kernel(Scale(IterationSpace(mid), Accessor(src), factor=2.0),
                     name="scale")
        g.add_kernel(Median3x3(IterationSpace(out), Accessor(
            BoundaryCondition(mid, 3, 3, Boundary.CLAMP))), name="median")
        report = execute_graph(g, workers=1)
        assert codes(report.diagnostics) == ["HIP302"]
        assert "lint:" in report.summary()

    def test_clean_graph_reports_nothing(self):
        g, _ = _chain(mark=True)
        report = execute_graph(g, workers=1)
        assert report.diagnostics == []
        assert "lint:" not in report.summary()

    def test_collector_receives_graph_findings(self):
        src = _img("src")
        mid = _img("mid")
        out = _img("out")
        g = PipelineGraph("t")
        g.add_kernel(Scale(IterationSpace(mid), Accessor(src), factor=2.0),
                     name="scale")
        g.add_kernel(Median3x3(IterationSpace(out), Accessor(
            BoundaryCondition(mid, 3, 3, Boundary.CLAMP))), name="median")
        with collecting() as sink:
            execute_graph(g, workers=1)
        assert "HIP302" in codes(sink)
