"""Host/device interface consistency: the host code must set exactly the
arguments the kernel signature declares, in order."""

import re

import pytest

from repro import Boundary, CodegenOptions
from repro.backends import generate
from repro.frontend import parse_kernel
from repro.ir import typecheck_kernel

from .helpers import (
    AddUniform,
    IterationSpace,
    MaskConvolution,
    accessor_for,
    box_mask,
    build_image_pair,
)


def _sources(backend, mask_const=True, with_uniform=False, **opts):
    src, dst = build_image_pair(64, 64)
    if with_uniform:
        k = AddUniform(IterationSpace(dst), accessor_for(src), 1.0)
    else:
        mask = box_mask(3)
        if not mask_const:
            mask.compile_time_constant = False
        k = MaskConvolution(IterationSpace(dst),
                            accessor_for(src, 3, Boundary.CLAMP),
                            mask, 1, 1)
    ir = typecheck_kernel(parse_kernel(k))
    return generate(ir, CodegenOptions(backend=backend, **opts),
                    launch_geometry=(64, 64))


def _signature_params(device_code, entry):
    sig = device_code.split(f"{entry}(")[1].split(")")[0]
    return [p.strip() for p in sig.split(",")]


class TestOpenCLHostArgs:
    @pytest.mark.parametrize("kwargs", [
        dict(),
        dict(use_texture=True),
        dict(mask_const=False),
        dict(with_uniform=True),
    ])
    def test_arg_count_matches_signature(self, kwargs):
        src = _sources("opencl", **kwargs)
        params = _signature_params(src.device_code, src.entry)
        set_args = re.findall(r"clSetKernelArg\(kernel, (\d+),",
                              src.host_code)
        assert len(set_args) == len(params), (params, set_args)
        assert [int(i) for i in set_args] == list(range(len(params)))

    def test_float_uniform_uses_float_size(self):
        src = _sources("opencl", with_uniform=True)
        assert re.search(r"clSetKernelArg\(kernel, \d+, sizeof\(float\), "
                         r"&value\)", src.host_code)

    def test_buffers_use_cl_mem_size(self):
        src = _sources("opencl")
        assert "sizeof(cl_mem), &dev_out" in src.host_code
        assert "sizeof(cl_mem), &dev_inp" in src.host_code


class TestCudaHostArgs:
    @pytest.mark.parametrize("kwargs", [
        dict(),
        dict(use_texture=True),
        dict(with_uniform=True),
    ])
    def test_call_arity_matches_signature(self, kwargs):
        src = _sources("cuda", **kwargs)
        params = _signature_params(src.device_code, src.entry)
        call = re.search(rf"{src.entry}<<<grid, block>>>\(([^;]*)\);",
                         src.host_code).group(1)
        n_call_args = len([a for a in call.split(",") if a.strip()])
        assert n_call_args == len(params), (params, call)

    def test_texture_mode_drops_pointer_everywhere(self):
        src = _sources("cuda", use_texture=True)
        params = _signature_params(src.device_code, src.entry)
        assert not any("* inp" in p for p in params)
        call = re.search(rf"{src.entry}<<<grid, block>>>\(([^;]*)\);",
                         src.host_code).group(1)
        assert "dev_inp," not in call
