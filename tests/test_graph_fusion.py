"""Point-operator fusion correctness.

Fusion must be invisible: a fused graph produces byte-identical pixels
to the unfused one (the merged kernel casts the producer's value through
the intermediate's pixel type, reproducing the store/reload rounding of
the two-launch version), and must refuse to fuse anything whose
semantics it cannot preserve — local operators, multi-consumer
intermediates, pinned outputs, mismatched compile options.

The randomized chains (hypothesis, derandomized profile) sweep operator
choice, parameters and chain length; every case is checked
differentially against the unfused execution.
"""

import numpy as np
import pytest

from repro import (
    Accessor,
    Boundary,
    BoundaryCondition,
    Image,
    IterationSpace,
    Mask,
    PipelineGraph,
)
from repro.filters.point_ops import (AbsDiff, AddConstant, GammaCorrection,
                                     Scale, Threshold)
from repro.filters.sobel import SOBEL_X, SobelX
from repro.frontend.parser import parse_kernel
from repro.graph import fuse_point_ops, is_point_op
from repro.graph.fusion import node_ir
from repro.ir.typecheck import typecheck_kernel

from .helpers import ShiftRead, random_image

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import given, settings, strategies as st  # noqa: E402

W, H = 24, 16


def _img(data=None, name=None):
    img = Image(W, H, float, name=name)
    if data is not None:
        img.set_data(data)
    return img


def _ir(kernel):
    return typecheck_kernel(parse_kernel(kernel))


def test_is_point_op_classification():
    src = _img(random_image(W, H))
    out = _img()
    assert is_point_op(_ir(Scale(IterationSpace(out), Accessor(src), 2.0)))
    assert is_point_op(_ir(AbsDiff(IterationSpace(out), Accessor(src),
                                   Accessor(src))))
    # local operator: 3x3 mask window
    sobel = SobelX(IterationSpace(_img()),
                   Accessor(BoundaryCondition(src, 3, 3, Boundary.CLAMP)),
                   Mask(3, 3).set(SOBEL_X))
    assert not is_point_op(_ir(sobel))
    # non-centre read
    assert not is_point_op(_ir(ShiftRead(IterationSpace(_img()),
                                         Accessor(src), 1, 0)))


def _run_both(build):
    """Execute *build()*'s graph unfused and fused; returns both outputs
    and the fusion stats of the fused run."""
    g1, out1 = build()
    g1.run(fuse=False, workers=1)
    ref = out1.get_data().copy()
    g2, out2 = build()
    stats = fuse_point_ops(g2)
    g2.run(fuse=False, workers=1)    # already fused above
    return ref, out2.get_data().copy(), stats, g2


def test_linear_chain_collapses_to_one_node():
    frame = random_image(W, H)

    def build():
        src = _img(frame, "src")
        a, b, out = _img(name="a"), _img(name="b"), _img(name="out")
        g = PipelineGraph()
        g.add_kernel(Scale(IterationSpace(a), Accessor(src), 2.0))
        g.add_kernel(AddConstant(IterationSpace(b), Accessor(a), 0.25))
        g.add_kernel(Threshold(IterationSpace(out), Accessor(b), 0.9))
        g.mark_output(out)
        return g, out

    ref, fused, stats, g = _run_both(build)
    assert np.array_equal(ref, fused)
    assert stats.pairs_fused == 2 and len(g) == 1
    assert g.nodes[0].is_fused
    assert len(g.nodes[0].fused_from) == 3
    assert stats.launches_saved == 2
    assert stats.intermediate_bytes_eliminated > 0


def test_diamond_fuses_into_join():
    frame = random_image(W, H)

    def build():
        src = _img(frame, "src")
        a, b, out = _img(name="a"), _img(name="b"), _img(name="out")
        g = PipelineGraph()
        g.add_kernel(Scale(IterationSpace(a), Accessor(src), 3.0))
        g.add_kernel(AddConstant(IterationSpace(b), Accessor(src), 0.5))
        g.add_kernel(AbsDiff(IterationSpace(out), Accessor(a),
                             Accessor(b)))
        g.mark_output(out)
        return g, out

    ref, fused, stats, g = _run_both(build)
    assert np.array_equal(ref, fused)
    assert len(g) == 1 and stats.pairs_fused == 2


def test_multi_consumer_intermediate_not_fused():
    src = _img(random_image(W, H))
    a, o1, o2 = _img(name="a"), _img(name="o1"), _img(name="o2")
    g = PipelineGraph()
    g.add_kernel(Scale(IterationSpace(a), Accessor(src), 2.0))
    g.add_kernel(AddConstant(IterationSpace(o1), Accessor(a), 1.0))
    g.add_kernel(AddConstant(IterationSpace(o2), Accessor(a), 2.0))
    stats = fuse_point_ops(g)
    assert stats.pairs_fused == 0 and len(g) == 3


def test_marked_output_not_fused_away():
    src = _img(random_image(W, H))
    a, out = _img(name="a"), _img(name="out")
    g = PipelineGraph()
    g.add_kernel(Scale(IterationSpace(a), Accessor(src), 2.0))
    g.add_kernel(AddConstant(IterationSpace(out), Accessor(a), 1.0))
    g.mark_output(a)                 # caller wants the intermediate
    stats = fuse_point_ops(g)
    assert stats.pairs_fused == 0
    g.run(fuse=False, workers=1)
    assert np.array_equal(a.get_data() + np.float32(1.0), out.get_data())


def test_mismatched_options_not_fused():
    src = _img(random_image(W, H))
    a, out = _img(name="a"), _img(name="out")
    g = PipelineGraph()
    g.add_kernel(Scale(IterationSpace(a), Accessor(src), 2.0),
                 device="Tesla C2050")
    g.add_kernel(AddConstant(IterationSpace(out), Accessor(a), 1.0),
                 device="Quadro FX 5800")
    assert fuse_point_ops(g).pairs_fused == 0


def test_local_operator_blocks_fusion():
    src = _img(random_image(W, H))
    a, out = _img(name="a"), _img(name="out")
    g = PipelineGraph()
    g.add_kernel(Scale(IterationSpace(a), Accessor(src), 2.0))
    g.add_kernel(SobelX(IterationSpace(out),
                        Accessor(BoundaryCondition(a, 3, 3,
                                                   Boundary.CLAMP)),
                        Mask(3, 3).set(SOBEL_X)))
    assert fuse_point_ops(g).pairs_fused == 0


def test_fused_node_ir_is_point_op():
    # a fused point op is itself a point op, so chains collapse fully
    src = _img(random_image(W, H))
    a, out = _img(name="a"), _img(name="out")
    g = PipelineGraph()
    g.add_kernel(Scale(IterationSpace(a), Accessor(src), 2.0))
    g.add_kernel(AddConstant(IterationSpace(out), Accessor(a), 1.0))
    fuse_point_ops(g)
    assert len(g) == 1 and is_point_op(node_ir(g.nodes[0]))


# -- randomized chains -------------------------------------------------------

_OPS = st.sampled_from(["add", "scale", "threshold", "gamma"])
_PARAM = st.floats(min_value=-2.0, max_value=2.0, allow_nan=False,
                   width=32)


def _make_op(op, param, space, acc):
    if op == "add":
        return AddConstant(space, acc, param)
    if op == "scale":
        return Scale(space, acc, param, offset=0.125)
    if op == "threshold":
        return Threshold(space, acc, param)
    # gamma over |param| keeps pow() real for non-negative inputs
    return GammaCorrection(space, acc, abs(param) + 0.5)


@settings(max_examples=30, deadline=None)
@given(ops=st.lists(st.tuples(_OPS, _PARAM), min_size=1, max_size=5),
       seed=st.integers(min_value=0, max_value=2**16))
def test_randomized_point_chain_fusion(ops, seed):
    rng = np.random.default_rng(seed)
    frame = rng.random((H, W), dtype=np.float32)   # in [0, 1): gamma-safe

    def build():
        src = _img(frame, "src")
        g = PipelineGraph()
        current = src
        for i, (op, param) in enumerate(ops):
            out = _img(name=f"t{i}")
            g.add_kernel(_make_op(op, param, IterationSpace(out),
                                  Accessor(current)))
            current = out
        g.mark_output(current)
        return g, current

    ref, fused, stats, g = _run_both(build)
    assert len(g) == 1
    assert stats.pairs_fused == len(ops) - 1
    assert np.array_equal(ref, fused, equal_nan=True)
