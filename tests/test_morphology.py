"""Erosion/dilation (convolve MIN/MAX) vs scipy.ndimage morphology."""

import numpy as np
import pytest
from scipy import ndimage

from repro import Boundary, compile_kernel
from repro.filters.morphology import make_morphology, opening, top_hat

from .helpers import random_image


def _run(operation, data, size=3, boundary=Boundary.CLAMP):
    h, w = data.shape
    k, _, out = make_morphology(w, h, operation, size,
                                boundary=boundary, data=data)
    compile_kernel(k, use_texture=False).execute()
    return out.get_data()


class TestMorphology:
    @pytest.mark.parametrize("size", [3, 5])
    def test_erode_matches_scipy(self, size):
        data = random_image(24, 20, seed=1)
        got = _run("erode", data, size)
        ref = ndimage.minimum_filter(data, size=size, mode="nearest")
        np.testing.assert_array_equal(got, ref)

    @pytest.mark.parametrize("size", [3, 5])
    def test_dilate_matches_scipy(self, size):
        data = random_image(24, 20, seed=2)
        got = _run("dilate", data, size)
        ref = ndimage.maximum_filter(data, size=size, mode="nearest")
        np.testing.assert_array_equal(got, ref)

    def test_mirror_boundary(self):
        data = random_image(16, 16, seed=3)
        got = _run("erode", data, 3, Boundary.MIRROR)
        padded = np.pad(data, 1, mode="symmetric")
        ref = np.zeros_like(data)
        for y in range(16):
            for x in range(16):
                ref[y, x] = padded[y:y + 3, x:x + 3].min()
        np.testing.assert_array_equal(got, ref)

    def test_erode_le_dilate(self):
        data = random_image(16, 16, seed=4)
        assert np.all(_run("erode", data) <= _run("dilate", data))

    def test_opening_removes_bright_specks(self):
        data = np.zeros((32, 32), np.float32)
        data[10, 10] = 1.0          # single bright pixel
        data[20:28, 20:28] = 0.8    # large bright block survives
        opened = opening(data, size=3)
        assert opened[10, 10] == 0.0
        assert opened[23, 23] == pytest.approx(0.8)

    def test_top_hat_isolates_thin_structures(self):
        data = np.full((32, 32), 0.5, np.float32)
        data[:, 15] = 1.0           # thin bright line
        th = top_hat(data, size=5)
        assert th[16, 15] == pytest.approx(0.5)
        assert abs(th[16, 3]) < 1e-6

    def test_idempotent_opening(self):
        data = random_image(20, 20, seed=5)
        once = opening(data, size=3)
        twice = opening(once, size=3)
        np.testing.assert_allclose(twice, once, atol=1e-6)

    def test_generated_code_uses_min_max(self):
        from repro import CodegenOptions
        from repro.backends import generate
        from repro.frontend import parse_kernel
        from repro.ir import typecheck_kernel

        data = random_image(16, 16)
        k, _, _ = make_morphology(16, 16, "erode", 3,
                                  boundary=Boundary.CLAMP, data=data)
        ir = typecheck_kernel(parse_kernel(k))
        src = generate(ir, CodegenOptions(backend="cuda"),
                       launch_geometry=(16, 16))
        assert "min(" in src.device_code


class TestStructuringShapes:
    def test_disk_erosion_matches_scipy_footprint(self):
        from scipy import ndimage
        from repro.dsl.domain import disk_domain

        data = random_image(20, 20, seed=7)
        got = _run_shape("erode", data, 5, "disk")
        half = 2
        yy, xx = np.mgrid[-half:half + 1, -half:half + 1]
        footprint = xx * xx + yy * yy <= half * half
        ref = ndimage.minimum_filter(data, footprint=footprint,
                                     mode="nearest")
        np.testing.assert_array_equal(got, ref)

    def test_cross_dilation(self):
        from scipy import ndimage

        data = random_image(20, 20, seed=8)
        got = _run_shape("dilate", data, 3, "cross")
        footprint = np.array([[0, 1, 0], [1, 1, 1], [0, 1, 0]], bool)
        ref = ndimage.maximum_filter(data, footprint=footprint,
                                     mode="nearest")
        np.testing.assert_array_equal(got, ref)

    def test_unknown_shape(self):
        from repro.errors import DslError
        from repro.filters.morphology import structuring_element

        with pytest.raises(DslError):
            structuring_element(3, "hexagon")


def _run_shape(operation, data, size, shape):
    from repro import compile_kernel
    from repro.filters.morphology import make_morphology

    h, w = data.shape
    k, _, out = make_morphology(w, h, operation, size, shape,
                                boundary=Boundary.CLAMP, data=data)
    compile_kernel(k, use_texture=False).execute()
    return out.get_data()
