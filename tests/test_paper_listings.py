"""Traceability: one test per paper listing/algorithm, checking that our
generated artifacts have the published structure.

* Listing 1/2  — the bilateral kernel DSL and its wiring
* Listing 3    — BoundaryCondition + Accessor collaboration
* Listing 4/5  — Mask usage inside the kernel
* Listing 6    — texture read lowering (tex1Dfetch / read_imagef)
* Listing 7    — scratchpad staging with bank-conflict padding
* Listing 8    — the nine-region goto dispatch
* Listing 9    — the convolve() lambda syntax (outlook)
* Algorithm 1  — the two-layered parallel execution model
* Algorithm 2  — configuration selection (covered in test_mapping too)
* Table I      — the five boundary modes
"""

import re

import numpy as np
import pytest

from repro import (
    Accessor,
    Boundary,
    BoundaryCondition,
    CodegenOptions,
    Image,
    IterationSpace,
    Mask,
    compile_kernel,
)
from repro.backends import generate
from repro.backends.base import BorderMode
from repro.evaluation.variants import _bilateral_ir
from repro.filters.bilateral import BilateralFilter, closeness_mask


@pytest.fixture(scope="module")
def bilateral_cuda_tex():
    ir = _bilateral_ir(True, "clamp", 3, 5.0)
    return generate(ir, CodegenOptions(backend="cuda", use_texture=True),
                    launch_geometry=(4096, 4096))


@pytest.fixture(scope="module")
def bilateral_opencl_img():
    ir = _bilateral_ir(True, "clamp", 3, 5.0)
    return generate(ir, CodegenOptions(backend="opencl",
                                       use_texture=True),
                    launch_geometry=(4096, 4096))


class TestListing1And2:
    """The DSL mirrors the C++ API: Kernel subclass + wiring objects."""

    def test_bilateral_wiring(self):
        width = height = 64
        sigma_d, sigma_r = 3, 5.0
        img_in = Image(width, height, float)      # Image<float> IN(...)
        img_out = Image(width, height, float)
        is_out = IterationSpace(img_out)          # IterationSpace IsOut
        acc_in = Accessor(img_in)                 # Accessor AccIn(IN)
        bf = BilateralFilter(is_out, acc_in, closeness_mask(sigma_d),
                             sigma_d, sigma_r)
        assert bf.accessors == [acc_in]
        # BF.execute() compiles and runs
        img_in.set_data(np.random.default_rng(0)
                        .random((height, width)).astype(np.float32))
        report = bf.execute(device="quadro")
        assert report.time_ms > 0


class TestListing3:
    """BoundaryCondition of size (4*sigma_d+1) wrapped by an Accessor."""

    def test_collaboration(self):
        sigma_d = 3
        img = Image(64, 64)
        bc = BoundaryCondition(img, 4 * sigma_d + 1, 4 * sigma_d + 1,
                               Boundary.CLAMP)
        acc = Accessor(bc)
        assert acc.window == (13, 13)
        assert acc.boundary_mode is Boundary.CLAMP
        assert acc.image is img            # no pixel data held by the BC


class TestListing6:
    """Texture read lowering with offsets."""

    def test_cuda_tex1dfetch_with_offset(self, bilateral_cuda_tex):
        # Listing 6: tex1Dfetch(_texIN, gid_x+xf + (gid_y+yf)*stride)
        code = bilateral_cuda_tex.device_code
        assert re.search(
            r"tex1Dfetch\(_texinput, \(gid_y \+ \(yf\)\) \* "
            r"input_stride \+ \(gid_x \+ \(xf\)\)\)", code)

    def test_opencl_read_imagef_with_offset(self, bilateral_opencl_img):
        # Listing 6: read_imagef(imgIN, Sampler, (int2)(...)).x
        code = bilateral_opencl_img.device_code
        assert "read_imagef(input_img, _smpinput, (int2)(" in code
        assert ").x" in code

    def test_write_lowering(self, bilateral_opencl_img):
        # write goes through write_imagef with a float4
        assert "write_imagef(OUT_img, (int2)(gid_x, gid_y)" in \
            bilateral_opencl_img.device_code


class TestListing7:
    """Scratchpad staging: two phases, padded tile, synchronisation."""

    def _smem_code(self, backend):
        ir = _bilateral_ir(True, "clamp", 3, 5.0)
        return generate(ir, CodegenOptions(backend=backend, use_smem=True,
                                           block=(32, 4)),
                        launch_geometry=(4096, 4096)).device_code

    def test_cuda_phases(self):
        code = self._smem_code("cuda")
        # __shared__ float _smemIN[SY + BSY][SX + BSX + 1]
        assert "__shared__ float _smeminput[16][45]" in code
        assert "__syncthreads();" in code
        # phase 2: reads through threadIdx-relative indices
        assert "_smeminput[threadIdx.y + (yf) + input_HALF_Y]" in code

    def test_opencl_phases(self):
        code = self._smem_code("opencl")
        assert "__local float _smeminput[16][45]" in code
        assert "barrier(CLK_LOCAL_MEM_FENCE);" in code
        assert "get_local_id(1)" in code


class TestListing8:
    """One fat kernel hosting nine implementations behind a dispatch."""

    def test_goto_structure(self, bilateral_cuda_tex):
        code = bilateral_cuda_tex.device_code
        # dispatch conditions on blockIdx
        assert re.search(
            r"if \(blockIdx\.x < BH_X_LO && blockIdx\.y < BH_Y_LO\) "
            r"goto TL_BH;", code)
        assert "goto NO_BH;" in code
        # all nine labelled implementations in one kernel
        for label in ("TL_BH:", "T_BH:", "TR_BH:", "L_BH:", "NO_BH:",
                      "R_BH:", "BL_BH:", "B_BH:", "BR_BH:"):
            assert label in code
        assert code.count("__global__") == 1     # one kernel hosts all


class TestListing9:
    """convolve(cMask, SUM, lambda: cMask() * Input(cMask))."""

    def test_syntax_compiles_and_matches(self):
        from .helpers import (
            ConvolveSyntax,
            MaskConvolution,
            accessor_for,
            box_mask,
            build_image_pair,
            random_image,
        )

        data = random_image(20, 20, seed=1)
        src1, dst1 = build_image_pair(20, 20, data=data)
        k1 = ConvolveSyntax(IterationSpace(dst1), accessor_for(src1, 3),
                            box_mask(3))
        src2, dst2 = build_image_pair(20, 20, data=data)
        k2 = MaskConvolution(IterationSpace(dst2), accessor_for(src2, 3),
                             box_mask(3), 1, 1)
        compile_kernel(k1, use_texture=False).execute()
        compile_kernel(k2, use_texture=False).execute()
        np.testing.assert_array_equal(dst1.get_data(), dst2.get_data())


class TestAlgorithm1:
    """Two-layered parallelism: SPMD within blocks, MPMD across them."""

    def test_mpmd_region_programs(self, bilateral_cuda_tex):
        # different "programs" (region variants) execute on different
        # SIMD units, selected by block index — the MPMD layer
        assert bilateral_cuda_tex.num_variants == 9

    def test_spmd_within_block(self, bilateral_cuda_tex):
        # within a block every thread runs the same code on its gid
        code = bilateral_cuda_tex.device_code
        assert "blockIdx.x * blockDim.x + threadIdx.x" in code


class TestTableI:
    """All five boundary modes exist with the published semantics."""

    @pytest.mark.parametrize("mode,expected", [
        (Boundary.UNDEFINED, "not specified"),
        (Boundary.REPEAT, "wrap"),
        (Boundary.CLAMP, "edge"),
        (Boundary.MIRROR, "symmetric"),
        (Boundary.CONSTANT, "constant"),
    ])
    def test_mode_exists(self, mode, expected):
        from repro.dsl.boundary import NUMPY_PAD_MODE
        if mode in (Boundary.UNDEFINED,):
            assert mode not in NUMPY_PAD_MODE
        elif mode is Boundary.CONSTANT:
            assert NUMPY_PAD_MODE[mode] == "constant"
        else:
            assert NUMPY_PAD_MODE[mode] == expected


class TestSectionIIIA:
    """"multiple boundary handling modes can be defined on the same
    image ... without the need to keep separate copies"."""

    def test_no_copies(self):
        img = Image(32, 32)
        a = Accessor(BoundaryCondition(img, 3, 3, Boundary.CLAMP))
        b = Accessor(BoundaryCondition(img, 5, 5, Boundary.MIRROR))
        assert a.image is b.image          # one pixel buffer
        assert a.boundary_mode != b.boundary_mode
        assert a.window != b.window
