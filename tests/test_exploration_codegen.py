"""Exploration-driver code generation (Section V-D)."""

import pytest

from repro import CodegenOptions
from repro.backends import generate
from repro.evaluation.variants import _bilateral_ir
from repro.hwmodel import get_device
from repro.mapping.exploration_codegen import (
    configuration_defines,
    generate_exploration_driver,
)


def _macro_source(backend="cuda"):
    ir = _bilateral_ir(True, "clamp", 3, 5.0)
    return generate(ir, CodegenOptions(backend=backend,
                                       emit_config_macros=True),
                    launch_geometry=(4096, 4096))


class TestConfigurationDefines:
    def test_one_entry_per_candidate(self):
        rows = configuration_defines(get_device("tesla"), 4096, 4096,
                                     (13, 13))
        assert len(rows) > 50
        for row in rows:
            assert set(row["defines"]) == {"BH_X_LO", "BH_X_HI",
                                           "BH_Y_LO", "BH_Y_HI"}
            assert 0 < row["occupancy"] <= 1.0

    def test_defines_depend_on_tiling(self):
        rows = {r["block"]: r["defines"]
                for r in configuration_defines(get_device("tesla"),
                                               4096, 4096, (13, 13))}
        assert rows[(32, 6)]["BH_Y_LO"] != rows[(128, 1)]["BH_Y_LO"]

    def test_amd_respects_block_cap(self):
        rows = configuration_defines(get_device("hd5870"), 4096, 4096,
                                     (13, 13))
        assert all(r["block"][0] * r["block"][1] <= 256 for r in rows)


class TestDriverGeneration:
    def test_cuda_driver_uses_nvrtc(self):
        driver = generate_exploration_driver(
            _macro_source("cuda"), get_device("tesla"), 4096, 4096,
            (13, 13))
        assert "nvrtcCompileProgram" in driver
        assert "-DBH_X_LO=%d" in driver
        assert "cuModuleGetFunction" in driver
        assert "BilateralFilter_kernel" in driver
        assert driver.count("{") == driver.count("}")

    def test_opencl_driver_uses_build_options(self):
        driver = generate_exploration_driver(
            _macro_source("opencl"), get_device("hd5870"), 4096, 4096,
            (13, 13))
        assert "clBuildProgram(prog, 1, &dev, build_opts" in driver
        assert "-DBH_X_LO=%d" in driver

    def test_invalid_configs_skipped_at_jit(self):
        """'Selecting a configuration that allocates more resources than
        available results in a kernel launch error' — the driver treats a
        failed JIT/build as DBL_MAX."""
        driver = generate_exploration_driver(
            _macro_source("cuda"), get_device("tesla"), 4096, 4096,
            (13, 13))
        assert "return DBL_MAX" in driver

    def test_requires_macro_mode(self):
        ir = _bilateral_ir(True, "clamp", 3, 5.0)
        plain = generate(ir, CodegenOptions(backend="cuda"),
                         launch_geometry=(4096, 4096))
        with pytest.raises(ValueError, match="emit_config_macros"):
            generate_exploration_driver(plain, get_device("tesla"),
                                        4096, 4096, (13, 13))

    def test_config_table_matches_candidates(self):
        driver = generate_exploration_driver(
            _macro_source("cuda"), get_device("tesla"), 4096, 4096,
            (13, 13))
        rows = configuration_defines(get_device("tesla"), 4096, 4096,
                                     (13, 13))
        assert f"static const Config configs[{len(rows)}]" in driver
