"""Differential tests for the content-addressed compilation cache.

A cache that returns stale or mismatched artifacts is worse than no
cache, so every property is checked differentially against a fresh
pipeline run:

* over a grid of filters x backends x devices, cached compiles are
  byte-identical to uncached ones (device code, host code, selected
  block, resource estimates);
* the key changes exactly when the compiled content changes — kernel IR,
  codegen options, device, backend, boundary mode — and does NOT change
  for non-baked (``Uniform``) parameter values;
* keys are stable across processes (no ``id()``/``hash()``
  randomization leaks), verified under different ``PYTHONHASHSEED``;
* the on-disk store round-trips across cache instances and shrugs off
  corrupt entries.
"""

import json
import os
import subprocess
import sys

import pytest

from repro import CompilationCache, compile_kernel
from repro.dsl.boundary import Boundary
from repro.filters.gaussian import make_gaussian
from repro.filters.laplacian import make_laplacian
from repro.filters.sobel import make_sobel

from .helpers import AddScalar, AddUniform, CopyKernel, accessor_for, \
    build_convolution, build_image_pair, random_image
from repro.dsl import IterationSpace

GRID_FILTERS = {
    "gaussian": lambda: make_gaussian(32, 32, size=5,
                                      data=random_image(32, 32))[0],
    "sobel": lambda: make_sobel(32, 32, axis="x",
                                data=random_image(32, 32))[0],
    "laplacian": lambda: make_laplacian(32, 32, connectivity=8,
                                        data=random_image(32, 32))[0],
}
#: (backend, device) pairs — CUDA only exists on the NVIDIA cards
GRID_TARGETS = [
    ("cuda", "Tesla C2050"),
    ("opencl", "Tesla C2050"),
    ("opencl", "Radeon HD 5870"),
]


def _artifact(compiled):
    """Everything a cache hit must reproduce byte-for-byte."""
    return {
        "device_code": compiled.source.device_code,
        "host_code": compiled.source.host_code,
        "entry": compiled.source.entry,
        "backend": compiled.source.backend,
        "block": compiled.options.block,
        "options": compiled.options,
        "resources": compiled.resources,
        "occupancy": compiled.selected_occupancy,
    }


def _add_scalar(value):
    src, dst = build_image_pair(16, 16, random_image())
    return AddScalar(IterationSpace(dst), accessor_for(src), value)


def _add_uniform(value):
    src, dst = build_image_pair(16, 16, random_image())
    return AddUniform(IterationSpace(dst), accessor_for(src), value)


class TestDifferentialGrid:
    @pytest.mark.parametrize("backend,device", GRID_TARGETS)
    @pytest.mark.parametrize("filter_name", sorted(GRID_FILTERS))
    def test_cached_equals_fresh(self, filter_name, backend, device):
        cache = CompilationCache()
        fresh = compile_kernel(GRID_FILTERS[filter_name](),
                               backend=backend, device=device)
        cold = compile_kernel(GRID_FILTERS[filter_name](),
                              backend=backend, device=device, cache=cache)
        warm = compile_kernel(GRID_FILTERS[filter_name](),
                              backend=backend, device=device, cache=cache)
        assert not fresh.from_cache and not cold.from_cache
        assert warm.from_cache
        assert warm.cache_key == cold.cache_key
        assert cache.stats.hits + cache.stats.disk_hits == 1
        assert _artifact(fresh) == _artifact(cold) == _artifact(warm)

    def test_keys_distinct_across_grid(self):
        cache = CompilationCache()
        keys = set()
        for filter_name, build in sorted(GRID_FILTERS.items()):
            for backend, device in GRID_TARGETS:
                compiled = compile_kernel(build(), backend=backend,
                                          device=device, cache=cache)
                keys.add(compiled.cache_key)
        assert len(keys) == len(GRID_FILTERS) * len(GRID_TARGETS)

    def test_warm_hit_executes_like_fresh(self):
        import numpy as np
        cache = CompilationCache()
        data = random_image(32, 32, seed=3)
        k1, _, out1 = make_gaussian(32, 32, size=3, data=data)
        compile_kernel(k1, backend="cuda", device="Tesla C2050",
                       cache=cache).execute()
        k2, _, out2 = make_gaussian(32, 32, size=3, data=data)
        warm = compile_kernel(k2, backend="cuda", device="Tesla C2050",
                              cache=cache)
        assert warm.from_cache
        warm.execute()
        np.testing.assert_array_equal(out1.get_data(), out2.get_data())


class TestKeySensitivity:
    def _key(self, kernel, cache=None, **kw):
        cache = cache or CompilationCache()
        return compile_kernel(kernel, backend=kw.pop("backend", "cuda"),
                              device=kw.pop("device", "Tesla C2050"),
                              cache=cache, **kw).cache_key

    def test_equal_content_equal_key(self):
        assert self._key(build_convolution()) == \
            self._key(build_convolution())

    def test_ir_change_changes_key(self):
        base = self._key(build_convolution())
        assert self._key(build_convolution(mask_size=5)) != base
        assert self._key(build_convolution(coefficient_scale=2.0)) != base

    def test_baked_scalar_changes_key_and_code(self):
        cache = CompilationCache()
        a = compile_kernel(_add_scalar(1.5), cache=cache)
        b = compile_kernel(_add_scalar(2.5), cache=cache)
        assert a.cache_key != b.cache_key
        assert a.source.device_code != b.source.device_code
        assert cache.stats.hits == 0

    def test_uniform_value_does_not_change_key(self):
        # runtime (non-baked) parameters are kernel arguments, never code
        # bytes — different values must share one cached artifact
        cache = CompilationCache()
        a = compile_kernel(_add_uniform(1.5), cache=cache)
        b = compile_kernel(_add_uniform(2.5), cache=cache)
        assert a.cache_key == b.cache_key
        assert b.from_cache
        assert a.source.device_code == b.source.device_code

    def test_output_pixel_type_changes_key(self):
        # differential for the fingerprint memo: the output pixel type is
        # the one thing the parser reads off iteration_space, so two
        # kernels identical in every other fingerprinted attribute must
        # not share a frontend memo entry (or the second would be served
        # code generated for the wrong type)
        from repro import Image

        def build(pixel_type):
            src, _ = build_image_pair(16, 16, random_image())
            dst = Image(16, 16, pixel_type)
            return CopyKernel(IterationSpace(dst), accessor_for(src))

        cache = CompilationCache()
        a = compile_kernel(build("float32"), cache=cache)
        b = compile_kernel(build("float64"), cache=cache)
        assert not b.from_cache
        assert a.cache_key != b.cache_key
        assert a.source.device_code != b.source.device_code
        assert a.ir.pixel_type.name == "float"
        assert b.ir.pixel_type.name == "double"

    def test_boundary_changes_key(self):
        assert self._key(build_convolution(boundary=Boundary.CLAMP)) != \
            self._key(build_convolution(boundary=Boundary.MIRROR))

    def test_device_and_backend_change_key(self):
        base = self._key(build_convolution())
        assert self._key(build_convolution(),
                         device="Quadro FX 5800") != base
        assert self._key(build_convolution(), backend="opencl") != base

    def test_options_change_key(self):
        base = self._key(build_convolution())
        assert self._key(build_convolution(), block=(32, 4)) != base
        assert self._key(build_convolution(), fast_math=True) != base
        assert self._key(build_convolution(), pixels_per_thread=2) != base
        assert self._key(build_convolution(), unroll=True) != base
        # vectorization targets the OpenCL backend only
        assert self._key(build_convolution(), backend="opencl",
                         vectorize=4) != \
            self._key(build_convolution(), backend="opencl")


class TestCrossProcessStability:
    def test_key_stable_under_hash_randomization(self, tmp_path):
        script = tmp_path / "emit_key.py"
        root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
        script.write_text(
            "import sys\n"
            f"sys.path.insert(0, {os.path.join(root, 'src')!r})\n"
            f"sys.path.insert(0, {root!r})\n"
            "from tests.helpers import build_convolution\n"
            "from repro import CompilationCache, compile_kernel\n"
            "c = compile_kernel(build_convolution(), backend='cuda',\n"
            "                   device='Tesla C2050',\n"
            "                   cache=CompilationCache())\n"
            "print(c.cache_key)\n")
        keys = []
        for hashseed in ("0", "4242"):
            env = dict(os.environ, PYTHONHASHSEED=hashseed)
            out = subprocess.run([sys.executable, str(script)],
                                 capture_output=True, text=True, env=env,
                                 timeout=120)
            assert out.returncode == 0, out.stderr
            keys.append(out.stdout.strip())
        in_process = compile_kernel(build_convolution(), backend="cuda",
                                    device="Tesla C2050",
                                    cache=CompilationCache()).cache_key
        assert keys[0] == keys[1] == in_process


class TestDiskStore:
    def test_roundtrip_across_instances(self, tmp_path):
        first = CompilationCache(directory=str(tmp_path))
        cold = compile_kernel(build_convolution(), backend="cuda",
                              device="Tesla C2050", cache=first)
        assert first.stats.disk_writes == 1

        second = CompilationCache(directory=str(tmp_path))
        warm = compile_kernel(build_convolution(), backend="cuda",
                              device="Tesla C2050", cache=second)
        assert warm.from_cache
        assert second.stats.disk_hits == 1
        assert _artifact(cold) == _artifact(warm)

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        first = CompilationCache(directory=str(tmp_path))
        cold = compile_kernel(build_convolution(), backend="cuda",
                              device="Tesla C2050", cache=first)
        [entry] = list(tmp_path.rglob("*.json"))
        entry.write_text("{definitely not json")

        second = CompilationCache(directory=str(tmp_path))
        again = compile_kernel(build_convolution(), backend="cuda",
                               device="Tesla C2050", cache=second)
        assert not again.from_cache
        assert second.stats.misses == 1
        assert _artifact(cold) == _artifact(again)
        # the recompile healed the corrupt file in place
        assert second.stats.disk_writes == 1
        third = CompilationCache(directory=str(tmp_path))
        assert compile_kernel(build_convolution(), backend="cuda",
                              device="Tesla C2050",
                              cache=third).from_cache

    def test_undecodable_entry_is_a_miss(self, tmp_path):
        # an entry under the current key whose body this build cannot
        # decode (e.g. hand-edited) must fall through to a recompile and
        # be replaced, never crash compile_kernel
        first = CompilationCache(directory=str(tmp_path))
        cold = compile_kernel(build_convolution(), backend="cuda",
                              device="Tesla C2050", cache=first)
        [entry] = list(tmp_path.rglob("*.json"))
        data = json.loads(entry.read_text())
        data["format"] = 999
        entry.write_text(json.dumps(data))

        second = CompilationCache(directory=str(tmp_path))
        again = compile_kernel(build_convolution(), backend="cuda",
                               device="Tesla C2050", cache=second)
        assert not again.from_cache
        assert _artifact(cold) == _artifact(again)
        assert json.loads(entry.read_text())["format"] != 999
        third = CompilationCache(directory=str(tmp_path))
        assert compile_kernel(build_convolution(), backend="cuda",
                              device="Tesla C2050",
                              cache=third).from_cache

    def test_entry_format_is_part_of_the_key(self, monkeypatch, tmp_path):
        # a future ENTRY_FORMAT bump must orphan old entries, not decode
        # them: same compile under a patched format lands on another key
        import repro.cache.key as key_mod
        cache = CompilationCache(directory=str(tmp_path))
        current = compile_kernel(build_convolution(), backend="cuda",
                                 device="Tesla C2050", cache=cache)
        monkeypatch.setattr(key_mod, "ENTRY_FORMAT",
                            key_mod.ENTRY_FORMAT + 1)
        bumped = compile_kernel(build_convolution(), backend="cuda",
                                device="Tesla C2050",
                                cache=CompilationCache(
                                    directory=str(tmp_path)))
        assert bumped.cache_key != current.cache_key
        assert not bumped.from_cache

    def test_clear(self, tmp_path):
        cache = CompilationCache(directory=str(tmp_path))
        compile_kernel(build_convolution(), backend="cuda",
                       device="Tesla C2050", cache=cache)
        assert len(list(tmp_path.rglob("*.json"))) == 1
        cache.clear(disk=True)
        assert len(cache) == 0
        assert list(tmp_path.rglob("*.json")) == []


class TestEviction:
    def test_lru_bounds_memory(self):
        cache = CompilationCache(capacity=2)
        for mask_size in (3, 5, 7):
            compile_kernel(build_convolution(mask_size=mask_size),
                           backend="cuda", device="Tesla C2050",
                           cache=cache)
        assert len(cache) == 2
        assert cache.stats.evictions >= 1

    def test_restore_after_eviction_not_counted_or_rewritten(self,
                                                             tmp_path):
        # an entry LRU-evicted from memory but still on disk is not a new
        # store: re-putting it must leave stores/disk_writes untouched
        cache = CompilationCache(capacity=1, directory=str(tmp_path))
        key_a, key_b = "aa" + "0" * 62, "bb" + "0" * 62
        cache.put(key_a, {"payload": "a"})
        cache.put(key_b, {"payload": "b"})      # evicts key_a from memory
        assert cache.stats.evictions == 1
        assert cache.stats.stores == 2
        assert cache.stats.disk_writes == 2

        cache.put(key_a, {"payload": "a"})      # still on disk
        assert cache.stats.stores == 2
        assert cache.stats.disk_writes == 2
        assert cache.get(key_a) == {"payload": "a"}


class TestHitRates:
    """`ir_hit_rate` vs `frontend_hit_rate` (previously one conflated
    `hit_rate`/`total` that silently mixed both counter families)."""

    def _compile(self, cache, backend="cuda"):
        return compile_kernel(make_gaussian(32, 32, size=3)[0],
                              backend=backend, device="Tesla C2050",
                              cache=cache)

    def test_rates_track_their_own_counter_families(self):
        cache = CompilationCache()
        assert not self._compile(cache).from_cache
        assert self._compile(cache).from_cache
        s = cache.stats
        assert (s.hits + s.disk_hits, s.misses) == (1, 1)
        assert s.ir_hit_rate == 0.5
        assert (s.frontend_hits, s.frontend_misses) == (1, 1)
        assert s.frontend_hit_rate == 0.5

    def test_frontend_traffic_does_not_skew_ir_rate(self):
        # same kernel for two backends: the frontend memo hits while
        # the artifact store misses — exactly the shape the old single
        # hit_rate misreported
        cache = CompilationCache()
        self._compile(cache, backend="cuda")
        self._compile(cache, backend="opencl")
        s = cache.stats
        assert (s.hits, s.misses) == (0, 2)
        assert s.ir_hit_rate == 0.0
        assert (s.frontend_hits, s.frontend_misses) == (1, 1)
        assert s.frontend_hit_rate == 0.5

    def test_alias_dict_and_summary_expose_both_rates(self):
        from repro.cache.store import CacheStats

        s = CacheStats(hits=3, misses=1, frontend_hits=5)
        assert s.hit_rate == s.ir_hit_rate == 0.75     # legacy alias
        assert s.frontend_hit_rate == 1.0
        d = s.as_dict()
        assert d["ir_hit_rate"] == 0.75
        assert d["frontend_hit_rate"] == 1.0
        assert "ir_hit_rate=75.0%" in s.summary()
        assert "frontend_hit_rate=100.0%" in s.summary()

    def test_zero_lookup_rates_are_zero(self):
        from repro.cache.store import CacheStats

        s = CacheStats()
        assert s.ir_hit_rate == 0.0
        assert s.frontend_hit_rate == 0.0
        assert s.lookups == 0 and s.frontend_lookups == 0

    def test_metrics_namespace(self):
        from repro.cache.store import CacheStats

        s = CacheStats(hits=2, misses=2, frontend_hits=1,
                       frontend_misses=1)
        m = s.metrics()
        assert m["cache.ir.hit_rate"] == 0.5
        assert m["cache.frontend.hit_rate"] == 0.5
        assert all(k.startswith("cache.") for k in m)


class TestSingleFlight:
    """Shared-instance concurrency: the serve workers hammer one cache."""

    def test_concurrent_same_key_compiles_exactly_once(self):
        """N threads racing on one key must produce ONE fresh compile:
        the winner pays codegen, every racer blocks in locked() and then
        reads the stored entry as a hit (no cache stampede)."""
        import threading

        from repro.backends import base as backends_base
        from repro.runtime import compile as compile_mod

        cache = CompilationCache()
        n_threads = 12
        generate_calls = []
        gen_lock = threading.Lock()
        real_generate = backends_base.generate

        def counting_generate(*args, **kwargs):
            with gen_lock:
                generate_calls.append(threading.get_ident())
            return real_generate(*args, **kwargs)

        results = [None] * n_threads
        barrier = threading.Barrier(n_threads)

        def worker(i):
            barrier.wait()     # maximise the race window
            kernel = GRID_FILTERS["gaussian"]()
            results[i] = compile_kernel(kernel, backend="cuda",
                                        device="Tesla C2050",
                                        cache=cache)

        # compile_mod resolved `generate` at import time
        saved = compile_mod.generate
        compile_mod.generate = counting_generate
        try:
            threads = [threading.Thread(target=worker, args=(i,))
                       for i in range(n_threads)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
        finally:
            compile_mod.generate = saved

        # one fresh compile = provisional + final codegen, nothing more
        assert len(generate_calls) == 2
        assert cache.stats.stores == 1
        assert cache.stats.misses == 1
        assert cache.stats.hits == n_threads - 1
        fresh = [r for r in results if not r.from_cache]
        assert len(fresh) == 1
        baseline = _artifact(fresh[0])
        for r in results:
            assert _artifact(r) == baseline

    def test_distinct_keys_do_not_serialise(self):
        """locked() is per key: two different kernels can hold their
        flights simultaneously (a coarse global lock would deadlock this
        ordering)."""
        cache = CompilationCache()
        with cache.locked("a" * 64):
            with cache.locked("b" * 64):
                pass
        # both entries were refcounted away
        assert cache._key_locks == {}

    def test_locked_releases_on_error(self):
        cache = CompilationCache()
        with pytest.raises(RuntimeError):
            with cache.locked("c" * 64):
                raise RuntimeError("boom")
        assert cache._key_locks == {}
        # the key is free again
        with cache.locked("c" * 64):
            pass
