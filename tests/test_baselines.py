"""Baselines: manual variants, RapidMind model, OpenCV separable filters."""

import numpy as np
import pytest

from repro import Boundary
from repro.baselines import (
    OpenCVSeparableFilter,
    RapidMindProgram,
    manual_bilateral_time,
    manual_variant_names,
    opencv_gaussian_time,
    rapidmind_bilateral_time,
)
from repro.errors import DeviceFault, DslError
from repro.filters.bilateral import bilateral_reference
from repro.filters.gaussian import gaussian_reference

from .helpers import random_image


class TestManualVariants:
    def test_variant_names_per_backend(self):
        cuda_names = manual_variant_names("cuda")
        assert "+2DTex" in cuda_names and "+Mask+Tex" in cuda_names
        ocl_names = manual_variant_names("opencl")
        assert "+ImgBH" in ocl_names
        assert "+2DTex" not in ocl_names

    def test_time_lookup(self):
        t = manual_bilateral_time("tesla", "cuda", "+Mask+Tex",
                                  Boundary.CLAMP)
        assert isinstance(t, float) and 50 < t < 800

    def test_unknown_variant(self):
        with pytest.raises(KeyError):
            manual_bilateral_time("tesla", "cuda", "+Bogus",
                                  Boundary.CLAMP)

    def test_generated_not_reachable_as_manual(self):
        with pytest.raises(KeyError):
            manual_bilateral_time("tesla", "cuda", "Generated",
                                  Boundary.CLAMP)


class TestRapidMind:
    def test_functional_matches_reference(self):
        data = random_image(24, 20, seed=1)
        out = RapidMindProgram(sigma_d=1, sigma_r=0.1,
                               mode=Boundary.CLAMP).run(data,
                                                        device="quadro")
        ref = bilateral_reference(data, 1, 0.1, Boundary.CLAMP)
        np.testing.assert_allclose(out, ref, atol=1e-4)

    def test_repeat_crashes_on_tesla(self):
        data = random_image(16, 16)
        with pytest.raises(DeviceFault):
            RapidMindProgram(mode=Boundary.REPEAT).run(data,
                                                       device="tesla")

    def test_repeat_runs_on_quadro(self):
        data = random_image(16, 16)
        out = RapidMindProgram(sigma_d=1, mode=Boundary.REPEAT) \
            .run(data, device="quadro")
        assert out.shape == (16, 16)

    def test_mirror_unsupported(self):
        with pytest.raises(DslError, match="mirror"):
            RapidMindProgram(mode=Boundary.MIRROR)

    def test_modelled_time_slower_than_generated(self):
        from repro.evaluation.variants import (
            VariantSpec,
            evaluate_bilateral_cell,
        )
        rm = rapidmind_bilateral_time("tesla", "cuda", Boundary.CLAMP)
        gen = evaluate_bilateral_cell(
            "tesla", "cuda",
            VariantSpec("Generated+Mask", "generated", use_mask=True),
            Boundary.CLAMP)
        assert rm > 1.5 * gen


class TestOpenCVBaseline:
    def test_separable_equals_2d_gaussian(self):
        data = random_image(32, 28, seed=2)
        out = OpenCVSeparableFilter(size=5, mode=Boundary.CLAMP) \
            .run(data, device="quadro")
        ref = gaussian_reference(data, 5, boundary=Boundary.CLAMP)
        np.testing.assert_allclose(out, ref, atol=1e-5)

    @pytest.mark.parametrize("mode", [Boundary.MIRROR, Boundary.REPEAT])
    def test_boundary_modes(self, mode):
        data = random_image(20, 20, seed=3)
        out = OpenCVSeparableFilter(size=3, mode=mode).run(
            data, device="quadro")
        # separable with per-pass 1-D boundary handling equals the 2-D
        # convolution reference (padding factorises over the axes)
        ref = gaussian_reference(data, 3, boundary=mode)
        np.testing.assert_allclose(out, ref, atol=1e-5)

    def test_modelled_time_ppt_effect(self):
        t8 = opencv_gaussian_time("tesla", 3, 8, Boundary.CLAMP)
        t1 = opencv_gaussian_time("tesla", 3, 1, Boundary.CLAMP)
        assert t8 < t1

    def test_modelled_time_mode_effect(self):
        tc = opencv_gaussian_time("tesla", 3, 8, Boundary.CLAMP)
        tm = opencv_gaussian_time("tesla", 3, 8, Boundary.MIRROR)
        assert tm > tc            # OpenCV's mirror is its slowest mode
