"""PipelineGraph construction, validation and export.

Build-time validation must catch malformed pipelines (cycles, double
writers, shape-unsafe undefined-boundary reads) before anything
compiles, and the structure queries (producers, consumers, topological
order, intermediates) must be deterministic — the scheduler, the fusion
pass and the buffer pool all trust them.
"""

import numpy as np
import pytest

from repro import (
    Accessor,
    Boundary,
    BoundaryCondition,
    GraphError,
    Image,
    IterationSpace,
    PipelineGraph,
    pipe,
    stage,
)
from repro.filters.point_ops import AddConstant, Scale
from repro.filters.sobel import SOBEL_X, SobelX
from repro.dsl import Mask

from .helpers import CopyKernel, random_image


def _image(w=16, h=12, data=True, name=None):
    img = Image(w, h, float, name=name)
    if data:
        img.set_data(random_image(w, h))
    return img


def test_add_kernel_rejects_non_kernel():
    g = PipelineGraph()
    with pytest.raises(GraphError, match="Kernel instance"):
        g.add_kernel(object())


def test_duplicate_node_name_rejected():
    src, a, b = _image(), _image(data=False), _image(data=False)
    g = PipelineGraph()
    g.add_kernel(CopyKernel(IterationSpace(a), Accessor(src)), name="n")
    with pytest.raises(GraphError, match="duplicate node name"):
        g.add_kernel(CopyKernel(IterationSpace(b), Accessor(src)),
                     name="n")


def test_single_writer_enforced():
    src, out = _image(), _image(data=False)
    g = PipelineGraph()
    g.add_kernel(CopyKernel(IterationSpace(out), Accessor(src)))
    with pytest.raises(GraphError, match="written by both"):
        g.add_kernel(AddConstant(IterationSpace(out), Accessor(src), 1.0))


def test_cycle_detection():
    a, b = _image(), _image()
    g = PipelineGraph("loop")
    g.add_kernel(CopyKernel(IterationSpace(b), Accessor(a)))
    g.add_kernel(CopyKernel(IterationSpace(a), Accessor(b)))
    with pytest.raises(GraphError, match="cycle"):
        g.validate()


def test_undefined_boundary_shape_check():
    # 3x3 window with UNDEFINED boundary over a full-size iteration
    # space must go out of bounds -> build-time error
    src, out = _image(), _image(data=False)
    g = PipelineGraph()
    k = SobelX(IterationSpace(out),
               Accessor(BoundaryCondition(src, 3, 3, Boundary.UNDEFINED)),
               Mask(3, 3).set(SOBEL_X))
    g.add_kernel(k)
    with pytest.raises(GraphError, match="undefined boundary"):
        g.validate()
    # the same read with a defined boundary mode is fine
    g2 = PipelineGraph()
    g2.add_kernel(SobelX(
        IterationSpace(_image(data=False)),
        Accessor(BoundaryCondition(src, 3, 3, Boundary.CLAMP)),
        Mask(3, 3).set(SOBEL_X)))
    g2.validate()


def test_oversized_iteration_space_caught():
    # a 1x1 read of a smaller image than the iteration space faults at
    # launch; the graph catches it at build time
    small = _image(8, 8)
    big_out = _image(16, 16, data=False)
    g = PipelineGraph()
    g.add_kernel(CopyKernel(IterationSpace(big_out), Accessor(small)))
    with pytest.raises(GraphError, match="undefined boundary"):
        g.validate()


def test_structure_queries_and_topological_order():
    src = _image(name="src")
    mid = _image(data=False, name="mid")
    out1 = _image(data=False, name="out1")
    out2 = _image(data=False, name="out2")
    g = PipelineGraph()
    n_mid = g.add_kernel(CopyKernel(IterationSpace(mid), Accessor(src)))
    n1 = g.add_kernel(Scale(IterationSpace(out1), Accessor(mid), 2.0))
    n2 = g.add_kernel(AddConstant(IterationSpace(out2), Accessor(mid),
                                  1.0))
    assert g.producer_of(mid) is n_mid
    assert g.producer_of(src) is None
    assert g.consumers_of(mid) == [n1, n2]
    assert g.dependencies(n1) == [n_mid]
    assert [img.name for img in g.inputs()] == ["src"]
    assert {img.name for img in g.outputs()} == {"out1", "out2"}
    assert [img.name for img in g.intermediates()] == ["mid"]
    order = [n.name for n in g.topological_order()]
    assert order.index(n_mid.name) == 0
    # deterministic: same order every time
    assert order == [n.name for n in g.topological_order()]


def test_mark_output_removes_from_intermediates():
    src, mid, out = _image(), _image(data=False), _image(data=False)
    g = PipelineGraph()
    g.add_kernel(CopyKernel(IterationSpace(mid), Accessor(src)))
    g.add_kernel(Scale(IterationSpace(out), Accessor(mid), 2.0))
    assert mid in g.intermediates()
    g.mark_output(mid)
    assert mid not in g.intermediates()
    assert any(mid is o for o in g.outputs())


def test_pipe_builds_linear_chain():
    src = _image(32, 24, name="src")
    g, out = pipe(
        src,
        stage(lambda IS, acc: Scale(IS, acc, 2.0)),
        stage(lambda IS, acc: AddConstant(IS, acc, 0.5)),
        name="chain")
    assert len(g) == 2
    assert out.width == 32 and out.height == 24
    assert any(out is o for o in g.outputs())
    g.run(fuse=False, workers=1)
    expected = src.get_data() * np.float32(2.0) + np.float32(0.5)
    assert np.array_equal(out.get_data(), expected)


def test_pipe_local_stage_window():
    src = _image(16, 16)
    g, out = pipe(src, stage(
        lambda IS, acc: SobelX(IS, acc, Mask(3, 3).set(SOBEL_X)),
        window=(3, 3), boundary=Boundary.CLAMP))
    g.validate()         # boundary condition was wired in -> no error


def test_to_dot_export():
    src, mid, out = (_image(name="src"), _image(data=False, name="mid"),
                     _image(data=False, name="out"))
    g = PipelineGraph("dotted")
    g.add_kernel(CopyKernel(IterationSpace(mid), Accessor(src)),
                 name="copy")
    g.add_kernel(Scale(IterationSpace(out), Accessor(mid), 2.0),
                 name="scale")
    dot = g.to_dot()
    assert dot.startswith('digraph "dotted"')
    assert "CopyKernel" in dot and "Scale" in dot
    assert '"src' in dot and '"mid' in dot
    assert dot.count("->") == 4      # src->copy->mid->scale->out


def test_empty_graph_invalid():
    with pytest.raises(GraphError, match="no nodes"):
        PipelineGraph("empty").validate()
