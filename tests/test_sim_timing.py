"""Analytical timing model: each mechanism must move time the right way."""

import dataclasses

import pytest

from repro import Boundary, BorderMode, MaskMemory
from repro.errors import LaunchError
from repro.hwmodel import get_device
from repro.ir.analysis import InstructionMix
from repro.sim.timing import (
    BOUNDARY_ADJUST_COST,
    LaunchSpec,
    estimate_time,
)


def _mix(taps=169, exps_per_tap=1, reads_per_tap=1):
    return InstructionMix(
        alu=18.0 * taps,
        sfu=12.0 * exps_per_tap * taps,
        global_reads=float(reads_per_tap * taps),
        mask_reads=float(taps),
        branches=2.0,
        reads_by_accessor={"input": float(reads_per_tap * taps)},
    )


def _spec(**overrides):
    defaults = dict(
        device=get_device("tesla"),
        backend="cuda",
        width=4096,
        height=4096,
        block=(128, 1),
        window=(13, 13),
        mix=_mix(),
        boundary_mode=Boundary.CLAMP,
        border=BorderMode.SPECIALIZED,
        regs_per_thread=24,
    )
    defaults.update(overrides)
    return LaunchSpec(**defaults)


def ms(**overrides):
    return estimate_time(_spec(**overrides)).total_ms


class TestMechanisms:
    def test_more_compute_takes_longer(self):
        assert ms(mix=_mix(exps_per_tap=3)) > ms(mix=_mix(exps_per_tap=1))

    def test_larger_image_takes_longer(self):
        assert ms(width=8192, height=8192) > 3.5 * ms()

    def test_inline_boundary_slower_than_specialized(self):
        for mode in (Boundary.CLAMP, Boundary.REPEAT, Boundary.CONSTANT):
            inline = ms(border=BorderMode.INLINE, boundary_mode=mode)
            spec = ms(border=BorderMode.SPECIALIZED, boundary_mode=mode)
            assert inline > spec, mode

    def test_specialized_near_constant_across_modes(self):
        times = [ms(boundary_mode=m)
                 for m in (Boundary.CLAMP, Boundary.REPEAT,
                           Boundary.MIRROR, Boundary.CONSTANT)]
        assert max(times) / min(times) < 1.10

    def test_inline_varies_strongly_across_modes(self):
        times = {m: ms(border=BorderMode.INLINE, boundary_mode=m)
                 for m in (Boundary.UNDEFINED, Boundary.CLAMP,
                           Boundary.REPEAT, Boundary.CONSTANT)}
        assert times[Boundary.CONSTANT] / times[Boundary.UNDEFINED] > 1.4
        assert times[Boundary.REPEAT] > times[Boundary.CLAMP]

    def test_hardware_border_free(self):
        hw = ms(border=BorderMode.HARDWARE, use_texture=True,
                boundary_mode=Boundary.REPEAT)
        inline = ms(border=BorderMode.INLINE, use_texture=True,
                    boundary_mode=Boundary.REPEAT)
        assert hw < inline

    def test_mode_cost_table_ordering(self):
        c = BOUNDARY_ADJUST_COST
        assert c[Boundary.UNDEFINED] < c[Boundary.CLAMP] \
            < c[Boundary.MIRROR] < c[Boundary.REPEAT] \
            < c[Boundary.CONSTANT]

    def test_texture_helps_memory_bound_kernels(self):
        mem_bound = _mix(taps=169, exps_per_tap=0, reads_per_tap=3)
        assert ms(mix=mem_bound, use_texture=True,
                  device=get_device("quadro")) < \
            ms(mix=mem_bound, use_texture=False,
               device=get_device("quadro"))

    def test_smem_hurts_small_windows(self):
        """Tables VIII/IX: staging slows 3x3/5x5 filters down."""
        small = _mix(taps=9, exps_per_tap=0)
        base = ms(mix=small, window=(3, 3), block=(32, 4))
        smem = ms(mix=small, window=(3, 3), block=(32, 4), use_smem=True,
                  smem_bytes_per_block=(4 + 2) * (32 + 2 + 1) * 4)
        assert smem > base

    def test_constant_mask_cheaper_than_global(self):
        const = ms(mask_memory=MaskMemory.CONSTANT)
        glob = ms(mask_memory=MaskMemory.GLOBAL)
        assert const < glob

    def test_amd_constant_mask_less_beneficial(self):
        """Muted mask benefit on VLIW (paper Section VI-A.1)."""
        def ratio(device):
            with_mask = ms(device=get_device(device), backend="opencl",
                           mix=_mix(exps_per_tap=1))
            without = ms(device=get_device(device), backend="opencl",
                         mix=_mix(exps_per_tap=3))
            return without / with_mask
        assert ratio("hd5870") < ratio("quadro")

    def test_framework_overhead_multiplies(self):
        assert ms(framework_overhead=2.0) > 1.8 * ms()

    def test_low_occupancy_penalised(self):
        good = ms(block=(32, 6), regs_per_thread=20)
        bad = ms(block=(32, 1), regs_per_thread=20)
        assert bad > 1.5 * good

    def test_kernel_launches_scale(self):
        one = ms(kernel_launches=1)
        two = ms(kernel_launches=2)
        assert two == pytest.approx(2 * one, rel=0.01)

    def test_ppt_amortises_fixed_cost(self):
        small = _mix(taps=3, exps_per_tap=0)
        ppt1 = ms(mix=small, window=(3, 1), pixels_per_thread=1)
        ppt8 = ms(mix=small, window=(3, 1), pixels_per_thread=8)
        assert ppt8 < ppt1

    def test_opencl_slower_than_cuda_on_nvidia(self):
        assert ms(backend="opencl") > ms(backend="cuda")

    def test_opencl_gap_larger_for_sfu_heavy_kernels(self):
        def gap(mix):
            return ms(backend="opencl", mix=mix) / ms(backend="cuda",
                                                      mix=mix)
        sfu_heavy = _mix(exps_per_tap=3)
        alu_only = _mix(exps_per_tap=0)
        assert gap(sfu_heavy) > gap(alu_only)

    def test_image_objects_penalised_on_opencl(self):
        small = _mix(taps=9, exps_per_tap=0)
        buf = ms(backend="opencl", mix=small, window=(3, 3))
        img = ms(backend="opencl", mix=small, window=(3, 3),
                 use_texture=True)
        assert img > buf

    def test_flat_boundary_cost_on_amd(self):
        times = [ms(device=get_device("hd6970"), backend="opencl",
                    border=BorderMode.INLINE, boundary_mode=m)
                 for m in (Boundary.CLAMP, Boundary.REPEAT,
                           Boundary.CONSTANT)]
        assert max(times) / min(times) < 1.02

    def test_rapidmind_boundary_override(self):
        flat = ms(border=BorderMode.INLINE,
                  boundary_mode=Boundary.CONSTANT,
                  boundary_cost_override=10.0)
        table = ms(border=BorderMode.INLINE,
                   boundary_mode=Boundary.CONSTANT)
        assert flat < table

    def test_unsupported_backend_raises(self):
        with pytest.raises(LaunchError):
            ms(device=get_device("hd5870"), backend="cuda")

    def test_invalid_block_raises(self):
        with pytest.raises(LaunchError):
            ms(block=(2048, 1))

    def test_breakdown_fields(self):
        t = estimate_time(_spec())
        assert t.total_ms > 0
        assert t.compute_ms > 0
        assert t.memory_ms > 0
        assert 0 <= t.occupancy <= 1
        assert 0 <= t.border_thread_fraction <= 1
        assert t.launch_ms < t.total_ms
        assert t.traffic_bytes_per_pixel >= 4

    def test_gt200_uncached_traffic_higher_than_fermi(self):
        mem_bound = _mix(taps=25, exps_per_tap=0, reads_per_tap=1)
        fermi = estimate_time(_spec(mix=mem_bound, window=(5, 5)))
        gt200 = estimate_time(_spec(mix=mem_bound, window=(5, 5),
                                    device=get_device("quadro")))
        assert gt200.traffic_bytes_per_pixel > fermi.traffic_bytes_per_pixel
