"""End-to-end compilation driver: compile_kernel and CompiledKernel."""

import numpy as np
import pytest

from repro import (
    Boundary,
    BorderMode,
    MaskMemory,
    compile_kernel,
    get_device,
)
from repro.errors import DslError

from .helpers import (
    AddUniform,
    CopyKernel,
    GeneratorKernel,
    IterationSpace,
    MaskConvolution,
    accessor_for,
    box_mask,
    build_image_pair,
    random_image,
)


def _kernel(width=32, height=32, window=3, mode=Boundary.CLAMP, seed=0):
    data = random_image(width, height, seed=seed)
    src, dst = build_image_pair(width, height, data=data)
    k = MaskConvolution(IterationSpace(dst),
                        accessor_for(src, window, mode),
                        box_mask(window), window // 2, window // 2)
    return k, data, dst


class TestCompile:
    def test_defaults(self):
        k, _, _ = _kernel()
        compiled = compile_kernel(k)
        assert compiled.device.name == "Tesla C2050"
        assert compiled.source.backend == "cuda"
        assert compiled.options.border == BorderMode.SPECIALIZED
        assert compiled.window == (3, 3)

    def test_device_by_alias(self):
        k, _, _ = _kernel()
        compiled = compile_kernel(k, device="hd6970", backend="opencl")
        assert compiled.device.name == "Radeon HD 6970"

    def test_device_by_spec(self):
        k, _, _ = _kernel()
        compiled = compile_kernel(k, device=get_device("quadro"))
        assert compiled.device.name == "Quadro FX 5800"

    def test_backend_mismatch_rejected(self):
        k, _, _ = _kernel()
        with pytest.raises(DslError):
            compile_kernel(k, backend="cuda", device="hd5870")

    def test_non_kernel_rejected(self):
        with pytest.raises(DslError):
            compile_kernel("nope")

    def test_algorithm2_runs_when_block_unset(self):
        k, _, _ = _kernel()
        compiled = compile_kernel(k)
        assert compiled.selected_occupancy > 0
        bx, by = compiled.options.block
        assert (bx * by) % 32 == 0

    def test_explicit_block_respected(self):
        k, _, _ = _kernel()
        compiled = compile_kernel(k, block=(64, 2))
        assert compiled.options.block == (64, 2)
        assert compiled.selected_occupancy == 0.0   # heuristic skipped

    def test_optdb_texture_decision_used(self):
        k, _, _ = _kernel()
        compiled = compile_kernel(k, device="quadro")
        # micro-benchmarks find texture beneficial on GT200
        assert compiled.options.use_texture

    def test_texture_override(self):
        k, _, _ = _kernel()
        compiled = compile_kernel(k, device="quadro", use_texture=False)
        assert not compiled.options.use_texture

    def test_undefined_mode_skips_border_codegen(self):
        k, _, _ = _kernel(mode=Boundary.UNDEFINED)
        compiled = compile_kernel(k, device="quadro")
        assert compiled.options.border == BorderMode.NONE
        assert compiled.source.num_variants == 1

    def test_border_as_string(self):
        k, _, _ = _kernel()
        compiled = compile_kernel(k, border="inline")
        assert compiled.options.border == BorderMode.INLINE

    def test_mask_memory_as_string(self):
        k, _, _ = _kernel()
        compiled = compile_kernel(k, mask_memory="constant")
        assert compiled.options.mask_memory == MaskMemory.CONSTANT

    def test_code_properties(self):
        k, _, _ = _kernel()
        cu = compile_kernel(k, backend="cuda")
        assert "__global__" in cu.cuda_code
        with pytest.raises(ValueError):
            cu.opencl_code
        cl = compile_kernel(k, backend="opencl")
        assert "__kernel" in cl.opencl_code
        with pytest.raises(ValueError):
            cl.cuda_code


class TestExecute:
    def test_execute_writes_output(self):
        from scipy.ndimage import correlate
        k, data, dst = _kernel()
        report = compile_kernel(k).execute()
        ref = correlate(data, np.full((3, 3), 1 / 9, np.float32),
                        mode="nearest")
        np.testing.assert_allclose(dst.get_data(), ref, atol=1e-5)
        np.testing.assert_allclose(report.output, ref, atol=1e-5)

    def test_report_contents(self):
        k, _, _ = _kernel()
        report = compile_kernel(k).execute()
        assert report.time_ms > 0
        assert report.launch.pixels_written == 32 * 32
        assert report.launch.estimated_ms == report.timing.total_ms

    def test_kernel_execute_shortcut(self):
        k, data, dst = _kernel(seed=3)
        report = k.execute(device="Tesla C2050", backend="cuda")
        assert report.time_ms > 0
        assert dst.get_data().any()

    def test_estimate_time_overrides(self):
        k, _, _ = _kernel()
        compiled = compile_kernel(k)
        base = compiled.estimate_time()
        double = compiled.estimate_time(framework_overhead=2.0)
        # launch overhead dominates tiny images; compare the execution
        # component, which the framework factor multiplies
        assert (double.total_ms - double.launch_ms) == pytest.approx(
            2.0 * (base.total_ms - base.launch_ms), rel=0.01)

    def test_rerun_after_input_update(self):
        k, data, dst = _kernel()
        compiled = compile_kernel(k)
        compiled.execute()
        first = dst.get_data()
        acc = next(iter(compiled.accessors.values()))
        acc.image.set_data(data * np.float32(2.0))
        compiled.execute()
        np.testing.assert_allclose(dst.get_data(), first * 2.0,
                                   rtol=1e-5)

    def test_backend_equivalence(self):
        """CUDA and OpenCL compilations must produce identical pixels."""
        k1, data, d1 = _kernel(seed=7)
        k2, _, d2 = _kernel(seed=7)
        compile_kernel(k1, backend="cuda").execute()
        compile_kernel(k2, backend="opencl").execute()
        np.testing.assert_array_equal(d1.get_data(), d2.get_data())

    def test_uniform_param_flows_to_execution(self):
        data = random_image(16, 16, seed=9)
        src, dst = build_image_pair(16, 16, data=data)
        k = AddUniform(IterationSpace(dst), accessor_for(src), 3.25)
        compile_kernel(k).execute()
        np.testing.assert_allclose(dst.get_data(),
                                   data + np.float32(3.25), rtol=1e-6)

    def test_point_operator_pipeline(self):
        data = random_image(16, 16, seed=10)
        src, dst = build_image_pair(16, 16, data=data)
        k = CopyKernel(IterationSpace(dst), accessor_for(src))
        compiled = compile_kernel(k)
        compiled.execute()
        np.testing.assert_array_equal(dst.get_data(), data)

    def test_generator_kernel_without_accessors(self):
        """Pure generator kernels (no inputs) compile and execute."""
        import numpy as np
        from repro import Image

        dst = Image(16, 12)
        k = GeneratorKernel(IterationSpace(dst))
        compiled = compile_kernel(k, use_texture=False)
        compiled.execute()
        yy, xx = np.mgrid[0:12, 0:16].astype(np.float32)
        ref = xx * np.float32(0.01) + yy * np.float32(0.1)
        np.testing.assert_allclose(dst.get_data(), ref, atol=1e-6)
        assert compiled.source.num_variants == 1

    def test_dominant_boundary_mode(self):
        k, _, _ = _kernel(mode=Boundary.MIRROR)
        assert compile_kernel(k).dominant_boundary_mode() == \
            Boundary.MIRROR
        k2, _, _ = _kernel(mode=Boundary.UNDEFINED)
        assert compile_kernel(k2, device="quadro") \
            .dominant_boundary_mode() == Boundary.UNDEFINED


class TestStageTimingsSchema:
    """Fresh and cache-hit compiles emit the identical timings schema.

    Historically the cache-hit early return carried only
    ``lint_ms``/``cache_lookup_ms``/``total_ms`` while the fresh path
    carried the codegen stages and neither carried the other's keys, so
    consumers summing stages against ``total_ms`` silently disagreed
    between the two paths.  Every compile now normalizes onto
    :data:`repro.obs.TIMING_KEYS` with skipped stages present as 0.0.
    """

    def test_fresh_and_cached_share_one_schema(self):
        from repro import CompilationCache
        from repro.obs import TIMING_KEYS, stage_sum_ms

        cache = CompilationCache()
        fresh = compile_kernel(_kernel()[0], cache=cache)
        cached = compile_kernel(_kernel()[0], cache=cache)
        assert not fresh.from_cache and cached.from_cache
        assert set(fresh.stage_timings) == set(TIMING_KEYS)
        assert set(cached.stage_timings) == set(TIMING_KEYS)
        for compiled in (fresh, cached):
            timings = compiled.stage_timings
            assert all(v >= 0.0 for v in timings.values())
            assert stage_sum_ms(timings) <= timings["total_ms"] + 0.05
        # codegen never ran on the hit — present, but zero
        assert cached.stage_timings["codegen_final_ms"] == 0.0
        assert cached.stage_timings["select_ms"] == 0.0
        assert fresh.stage_timings["codegen_final_ms"] > 0.0
        assert cached.stage_timings["cache_lookup_ms"] >= 0.0

    def test_uncached_compile_is_normalized_too(self):
        from repro.obs import TIMING_KEYS

        timings = compile_kernel(_kernel()[0]).stage_timings
        assert set(timings) == set(TIMING_KEYS)
        # no cache attached: lookup/store are schema-present zeros
        assert timings["cache_lookup_ms"] == 0.0
        assert timings["store_ms"] == 0.0
        assert timings["frontend_ms"] > 0.0

    def test_timings_property_aliases_stage_timings(self):
        compiled = compile_kernel(_kernel()[0])
        assert compiled.timings == compiled.stage_timings
