"""Tests for the perf-regression sentinel (:mod:`repro.obs.compare`,
``scripts/bench_compare.py``, ``repro perf``).

The acceptance behaviour: comparing a benchmark document against itself
exits 0, and an injected 2x slowdown of a latency headline exits
non-zero — plus the gating rules (relative threshold AND absolute noise
floor), direction inference, and the schema_version hard gate.
"""

from __future__ import annotations

import copy
import json
import os

import pytest

from repro.obs.compare import (
    BENCH_SCHEMA_VERSION,
    compare_docs,
    metric_direction,
    run_compare,
)


def make_doc(benchmark="serve", **headline_overrides):
    headline = {
        "cold_ms": 450.0,
        "warm_p50_ms": 56.0,
        "warm_p99_ms": 90.0,
        "warm_rps": 17.5,
        "dedup_rate": 0.875,
        "warm_cache_misses": 0.0,
        "image_size": 32,
        "cold_over_warm_p50": 8.0,
    }
    headline.update(headline_overrides)
    return {
        "benchmark": benchmark,
        "schema_version": BENCH_SCHEMA_VERSION,
        "headline": headline,
        "stages": {
            "serve.exec": {"count": 40, "total_ms": 2000.0,
                           "mean_ms": 50.0},
            "compile.lint": {"count": 5, "total_ms": 12.0,
                             "mean_ms": 2.4},
        },
    }


class TestDirections:
    def test_suffix_heuristics(self):
        assert metric_direction("warm_p50_ms") == "lower"
        assert metric_direction("peak_bytes") == "lower"
        assert metric_direction("warm_cache_misses") == "lower"
        assert metric_direction("warm_rps") == "higher"
        assert metric_direction("dedup_rate") == "higher"
        assert metric_direction("cold_over_warm_p50") == "higher"
        assert metric_direction("image_size") is None
        assert metric_direction("warm_requests") is None


class TestCompareDocs:
    def test_identical_docs_pass(self):
        doc = make_doc()
        cmp = compare_docs(doc, copy.deepcopy(doc))
        assert cmp.ok
        assert cmp.regressions == []

    def test_injected_2x_slowdown_regresses(self):
        base = make_doc()
        cur = make_doc(warm_p50_ms=112.0, warm_p99_ms=180.0)
        cmp = compare_docs(base, cur, threshold=0.25,
                           noise_floor_ms=5.0)
        regressed = {e.metric for e in cmp.regressions}
        assert "headline.warm_p50_ms" in regressed
        assert "headline.warm_p99_ms" in regressed
        assert not cmp.ok

    def test_change_below_threshold_passes(self):
        cmp = compare_docs(make_doc(), make_doc(warm_p50_ms=66.0),
                           threshold=0.25, noise_floor_ms=5.0)
        assert cmp.ok      # +18% < 25% gate

    def test_noise_floor_suppresses_tiny_absolute_deltas(self):
        # 3x relative blowup, but only 2 ms absolute — under a 5 ms
        # floor that is indistinguishable from scheduler jitter
        base = make_doc(warm_p50_ms=1.0)
        cur = make_doc(warm_p50_ms=3.0)
        assert compare_docs(base, cur, threshold=0.25,
                            noise_floor_ms=5.0).ok
        assert not compare_docs(base, cur, threshold=0.25,
                                noise_floor_ms=0.5).ok

    def test_throughput_halved_regresses(self):
        cmp = compare_docs(make_doc(), make_doc(warm_rps=8.0),
                           threshold=0.25)
        assert "headline.warm_rps" in \
            {e.metric for e in cmp.regressions}

    def test_throughput_gain_is_improvement_not_failure(self):
        cmp = compare_docs(make_doc(), make_doc(warm_rps=35.0),
                           threshold=0.25)
        assert cmp.ok
        assert any(e.status == "improved" for e in cmp.entries)

    def test_info_metrics_never_regress(self):
        cmp = compare_docs(make_doc(), make_doc(image_size=64))
        assert cmp.ok
        entry = [e for e in cmp.entries if e.metric == "image_size"][0]
        assert entry.status == "info"

    def test_stage_total_regression_is_caught(self):
        base, cur = make_doc(), make_doc()
        cur["stages"]["compile.lint"]["total_ms"] = 80.0
        cmp = compare_docs(base, cur, threshold=0.25,
                           noise_floor_ms=5.0)
        assert "stages.compile.lint.total_ms" in \
            {e.metric for e in cmp.regressions}

    def test_stage_threshold_is_independent(self):
        base, cur = make_doc(), make_doc()
        cur["stages"]["serve.exec"]["total_ms"] = 2900.0   # +45%
        assert compare_docs(base, cur, threshold=0.25,
                            stage_threshold=0.5).ok
        assert not compare_docs(base, cur, threshold=0.25,
                                stage_threshold=0.25).ok

    def test_missing_current_key_is_skipped(self):
        cur = make_doc()
        del cur["headline"]["warm_p99_ms"]
        assert compare_docs(make_doc(), cur).ok


class TestSchemaGate:
    def test_stale_schema_version_fails_hard(self):
        stale = make_doc()
        stale["schema_version"] = BENCH_SCHEMA_VERSION - 1
        cmp = compare_docs(stale, make_doc())
        assert not cmp.ok
        assert any("schema_version" in p for p in cmp.problems)

    def test_missing_schema_version_fails_hard(self):
        missing = make_doc()
        del missing["schema_version"]
        cmp = compare_docs(make_doc(), missing)
        assert not cmp.ok
        assert any("current" in p for p in cmp.problems)

    def test_benchmark_name_mismatch_fails(self):
        cmp = compare_docs(make_doc("serve"), make_doc("native_graph"))
        assert not cmp.ok
        assert any("mismatch" in p for p in cmp.problems)


class TestRunCompare:
    def _write(self, directory, doc):
        os.makedirs(directory, exist_ok=True)
        path = os.path.join(directory,
                            f"BENCH_{doc['benchmark']}.json")
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(doc, fh)
        return path

    def test_self_comparison_exits_zero(self, tmp_path, capsys):
        base_dir = str(tmp_path / "base")
        cur_dir = str(tmp_path / "cur")
        self._write(base_dir, make_doc())
        self._write(cur_dir, make_doc())
        code = run_compare(base_dir, cur_dir, names=("serve",))
        out = capsys.readouterr().out
        assert code == 0
        assert "perf sentinel: ok" in out

    def test_injected_slowdown_exits_nonzero(self, tmp_path, capsys):
        base_dir = str(tmp_path / "base")
        cur_dir = str(tmp_path / "cur")
        self._write(base_dir, make_doc())
        self._write(cur_dir, make_doc(warm_p50_ms=112.0))
        code = run_compare(base_dir, cur_dir, names=("serve",))
        out = capsys.readouterr().out
        assert code == 1
        assert "REGRESSED" in out
        assert "warm_p50_ms" in out

    def test_missing_document_fails_unless_allowed(self, tmp_path,
                                                   capsys):
        base_dir = str(tmp_path / "base")
        cur_dir = str(tmp_path / "cur")
        self._write(base_dir, make_doc())
        assert run_compare(base_dir, cur_dir, names=("serve",)) == 1
        assert run_compare(base_dir, cur_dir, names=("serve",),
                           allow_missing=True) == 0
        capsys.readouterr()

    def test_json_report_written(self, tmp_path, capsys):
        base_dir = str(tmp_path / "base")
        cur_dir = str(tmp_path / "cur")
        self._write(base_dir, make_doc())
        self._write(cur_dir, make_doc(warm_p50_ms=112.0))
        report_path = str(tmp_path / "report.json")
        code = run_compare(base_dir, cur_dir, names=("serve",),
                           json_out=report_path)
        capsys.readouterr()
        assert code == 1
        with open(report_path, "r", encoding="utf-8") as fh:
            report = json.load(fh)
        assert report["ok"] is False
        assert report["schema_version"] == BENCH_SCHEMA_VERSION
        entries = report["comparisons"][0]["entries"]
        bad = [e for e in entries
               if e["metric"] == "headline.warm_p50_ms"][0]
        assert bad["status"] == "regressed"
        assert bad["change_pct"] == pytest.approx(100.0)

    def test_unreadable_document_is_a_problem(self, tmp_path, capsys):
        base_dir = str(tmp_path / "base")
        cur_dir = str(tmp_path / "cur")
        self._write(base_dir, make_doc())
        os.makedirs(cur_dir, exist_ok=True)
        with open(os.path.join(cur_dir, "BENCH_serve.json"), "w",
                  encoding="utf-8") as fh:
            fh.write("{not json")
        assert run_compare(base_dir, cur_dir, names=("serve",)) == 1
        capsys.readouterr()


class TestCLIs:
    def test_repro_perf_subcommand(self, tmp_path, capsys):
        from repro.cli import main

        base_dir = str(tmp_path / "base")
        cur_dir = str(tmp_path / "cur")
        TestRunCompare._write(None, base_dir, make_doc())
        TestRunCompare._write(None, cur_dir, make_doc())
        code = main(["perf", "--baseline-dir", base_dir,
                     "--current-dir", cur_dir, "--bench", "serve"])
        assert code == 0
        slow = make_doc(warm_p50_ms=200.0)
        TestRunCompare._write(None, cur_dir, slow)
        code = main(["perf", "--baseline-dir", base_dir,
                     "--current-dir", cur_dir, "--bench", "serve"])
        assert code == 1
        capsys.readouterr()

    def test_bench_compare_script(self, tmp_path, capsys):
        import importlib.util
        import pathlib

        script = (pathlib.Path(__file__).resolve().parents[1]
                  / "scripts" / "bench_compare.py")
        spec = importlib.util.spec_from_file_location("bench_compare",
                                                      script)
        mod = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(mod)

        base_dir = str(tmp_path / "base")
        cur_dir = str(tmp_path / "cur")
        TestRunCompare._write(None, base_dir, make_doc())
        TestRunCompare._write(None, cur_dir,
                              make_doc(warm_p50_ms=112.0))
        assert mod.main(["--baseline-dir", base_dir,
                         "--current-dir", cur_dir,
                         "--bench", "serve"]) == 1
        TestRunCompare._write(None, cur_dir, make_doc())
        assert mod.main(["--baseline-dir", base_dir,
                         "--current-dir", cur_dir,
                         "--bench", "serve"]) == 0
        capsys.readouterr()
