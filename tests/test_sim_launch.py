"""Launch simulation: region-specialised execution must equal the
whole-image reference for every mode/geometry — the correctness claim
behind the paper's nine-region optimisation."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Boundary, BorderMode, CodegenOptions
from repro.errors import DeviceFault, LaunchError
from repro.frontend import parse_kernel
from repro.frontend.parser import accessor_objects
from repro.hwmodel import get_device
from repro.ir import typecheck_kernel
from repro.sim.launch import simulate_launch
from repro.sim.reference import execute_reference

from .helpers import (
    IterationSpace,
    MaskConvolution,
    accessor_for,
    box_mask,
    build_image_pair,
    random_image,
)


def _setup(width, height, window, mode, seed=0, constant=0.25):
    data = random_image(width, height, seed=seed)
    src, dst = build_image_pair(width, height, data=data)
    k = MaskConvolution(IterationSpace(dst),
                        accessor_for(src, window, mode, constant),
                        box_mask(window), window // 2, window // 2)
    ir = typecheck_kernel(parse_kernel(k))
    return k, ir, dst


MODES = [Boundary.CLAMP, Boundary.MIRROR, Boundary.REPEAT,
         Boundary.CONSTANT]


class TestRegionSpecialisationCorrectness:
    @pytest.mark.parametrize("mode", MODES)
    def test_specialized_equals_reference(self, mode):
        k, ir, dst = _setup(40, 28, 5, mode)
        options = CodegenOptions(backend="cuda", block=(16, 4),
                                 border=BorderMode.SPECIALIZED)
        result = simulate_launch(ir, accessor_objects(k),
                                 k.iteration_space, options,
                                 get_device("tesla"))
        ref = execute_reference(ir, accessor_objects(k), 40, 28)
        np.testing.assert_array_equal(dst.get_data(), ref)
        assert result.pixels_written == 40 * 28

    @pytest.mark.parametrize("mode", MODES)
    def test_inline_equals_specialized(self, mode):
        k, ir, dst = _setup(33, 19, 3, mode, seed=4)
        accs = accessor_objects(k)
        dev = get_device("tesla")
        simulate_launch(ir, accs, k.iteration_space,
                        CodegenOptions(backend="cuda", block=(8, 4),
                                       border=BorderMode.SPECIALIZED),
                        dev)
        spec = dst.get_data()
        simulate_launch(ir, accs, k.iteration_space,
                        CodegenOptions(backend="cuda", block=(8, 4),
                                       border=BorderMode.INLINE), dev)
        np.testing.assert_array_equal(spec, dst.get_data())

    @settings(max_examples=20, deadline=None)
    @given(
        width=st.integers(9, 36),
        height=st.integers(9, 36),
        bx=st.sampled_from([8, 16, 32]),
        by=st.sampled_from([1, 2, 4, 8]),
        mode=st.sampled_from(MODES),
        window=st.sampled_from([3, 5, 7]),
    )
    def test_property_specialized_equals_reference(self, width, height,
                                                   bx, by, mode, window):
        k, ir, dst = _setup(width, height, window, mode, seed=1)
        options = CodegenOptions(backend="cuda", block=(bx, by),
                                 border=BorderMode.SPECIALIZED)
        simulate_launch(ir, accessor_objects(k), k.iteration_space,
                        options, get_device("tesla"))
        ref = execute_reference(ir, accessor_objects(k), width, height)
        np.testing.assert_array_equal(dst.get_data(), ref)

    def test_degenerate_layout_still_correct(self):
        # window wider than the whole image: degenerate single region
        k, ir, dst = _setup(10, 10, 7, Boundary.MIRROR)
        options = CodegenOptions(backend="cuda", block=(8, 8),
                                 border=BorderMode.SPECIALIZED)
        result = simulate_launch(ir, accessor_objects(k),
                                 k.iteration_space, options,
                                 get_device("tesla"))
        assert result.layout.degenerate
        ref = execute_reference(ir, accessor_objects(k), 10, 10)
        np.testing.assert_array_equal(dst.get_data(), ref)

    def test_iteration_space_offset_respected(self):
        data = random_image(24, 24, seed=2)
        src, dst = build_image_pair(24, 24, data=data)
        space = IterationSpace(dst, 10, 8, offset_x=4, offset_y=6)
        k = MaskConvolution(space, accessor_for(src, 3, Boundary.CLAMP),
                            box_mask(3), 1, 1)
        ir = typecheck_kernel(parse_kernel(k))
        options = CodegenOptions(backend="cuda", block=(8, 2))
        result = simulate_launch(ir, accessor_objects(k), space, options,
                                 get_device("tesla"))
        assert result.pixels_written == 80
        out = dst.get_data()
        # untouched pixels remain zero
        assert np.all(out[:6, :] == 0)
        assert np.all(out[:, :4] == 0)
        assert np.any(out[6:14, 4:14] != 0)


class TestLaunchValidation:
    def test_block_exceeding_device_raises(self):
        k, ir, _ = _setup(16, 16, 3, Boundary.CLAMP)
        options = CodegenOptions(backend="cuda", block=(1024, 2))
        with pytest.raises(LaunchError):
            simulate_launch(ir, accessor_objects(k), k.iteration_space,
                            options, get_device("tesla"))

    def test_amd_does_not_run_cuda(self):
        k, ir, _ = _setup(16, 16, 3, Boundary.CLAMP)
        options = CodegenOptions(backend="cuda", block=(32, 2))
        with pytest.raises(LaunchError):
            simulate_launch(ir, accessor_objects(k), k.iteration_space,
                            options, get_device("hd5870"))

    def test_excess_registers_raise(self):
        k, ir, _ = _setup(16, 16, 3, Boundary.CLAMP)
        options = CodegenOptions(backend="cuda", block=(128, 1))
        with pytest.raises(LaunchError):
            simulate_launch(ir, accessor_objects(k), k.iteration_space,
                            options, get_device("tesla"),
                            regs_per_thread=200)

    def test_undefined_oob_faults_on_tesla(self):
        k, ir, _ = _setup(16, 16, 3, Boundary.UNDEFINED)
        options = CodegenOptions(backend="cuda", block=(8, 2),
                                 border=BorderMode.NONE)
        with pytest.raises(DeviceFault):
            simulate_launch(ir, accessor_objects(k), k.iteration_space,
                            options, get_device("tesla"))

    def test_undefined_oob_tolerated_on_quadro(self):
        k, ir, dst = _setup(16, 16, 3, Boundary.UNDEFINED)
        options = CodegenOptions(backend="cuda", block=(8, 2),
                                 border=BorderMode.NONE)
        result = simulate_launch(ir, accessor_objects(k),
                                 k.iteration_space, options,
                                 get_device("quadro"))
        assert result.pixels_written == 256

    def test_memory_padding_applied(self):
        k, ir, _ = _setup(17, 16, 3, Boundary.CLAMP)
        options = CodegenOptions(backend="cuda", block=(8, 2))
        simulate_launch(ir, accessor_objects(k), k.iteration_space,
                        options, get_device("tesla"))
        acc = next(iter(accessor_objects(k).values()))
        # Fermi: 128-byte segments = 32 floats -> stride padded to 32
        assert acc.image.stride == 32

    def test_occupancy_reported(self):
        k, ir, _ = _setup(32, 32, 3, Boundary.CLAMP)
        options = CodegenOptions(backend="cuda", block=(32, 6))
        result = simulate_launch(ir, accessor_objects(k),
                                 k.iteration_space, options,
                                 get_device("tesla"))
        assert result.occupancy.occupancy == 1.0
        assert result.grid == (1, 6)
