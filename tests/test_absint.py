"""The abstract interpreter (``repro.lint.absint``) and its footprint
domain: hypothesis-randomized soundness against brute-force window
enumeration, one mutation kernel per HIP4xx code (each must trip
exactly its code, clean kernels must trip none), SARIF 2.1.0
structural validation, absint observability spans, and the
fingerprint-keyed lint-result cache."""

from __future__ import annotations

import json

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import (
    Accessor,
    Boundary,
    BoundaryCondition,
    CompilationCache,
    Image,
    IterationSpace,
    Kernel,
    compile_kernel,
)
from repro.dsl.math import sin, sqrt
from repro.frontend.parser import parse_kernel
from repro.ir.typecheck import typecheck_kernel
from repro.lint import LintReport, Severity, interpret, lint_kernel

W, H = 16, 12


def _ir(kernel):
    return typecheck_kernel(parse_kernel(kernel))


def _space(pt=float):
    return IterationSpace(Image(W, H, pt))


def _acc(wx=1, wy=1, boundary=None, pt=float):
    img = Image(W, H, pt)
    if boundary is None:
        return Accessor(img)
    return Accessor(BoundaryCondition(img, wx, wy, boundary))


def hip4(diags):
    return sorted(d.code for d in diags if d.code.startswith("HIP4"))


# -- kernels under test (bodies must live in a real file) -------------------


class AsymStencil(Kernel):
    """Asymmetric loop bounds inside a symmetric (covering) window: the
    proven hull must be exactly the loop product, not the window."""

    def __init__(self, ax, bx, ay, by):
        rx, ry = max(ax, bx), max(ay, by)
        super().__init__(_space())
        self.inp = _acc(2 * rx + 1, 2 * ry + 1, Boundary.CLAMP)
        self.ax, self.bx = int(ax), int(bx)
        self.ay, self.by = int(ay), int(by)
        self.add_accessor(self.inp)

    def kernel(self):
        s = 0.0
        for dy in range(-self.ay, self.by + 1):
            for dx in range(-self.ax, self.bx + 1):
                s = s + self.inp(dx, dy)
        self.output(s)


class ScaledStencil(Kernel):
    """Column offset scaled through a local variable — syntactically
    unbounded (HIP204 territory), provable only by the interpreter."""

    def __init__(self, sx, r):
        super().__init__(_space())
        self.inp = _acc(2 * sx * r + 1, 2 * r + 1, Boundary.CLAMP)
        self.sx, self.r = int(sx), int(r)
        self.add_accessor(self.inp)

    def kernel(self):
        s = 0.0
        for d in range(-self.r, self.r + 1):
            col = self.sx * d
            s = s + self.inp(col, d)
        self.output(s)


class EscapeViaLocal(Kernel):
    """HIP401 (warning): derived offsets [-2..2] escape the 3x3 window,
    but boundary handling is defined so the read is merely clamped."""

    def __init__(self):
        super().__init__(_space())
        self.inp = _acc(3, 3, Boundary.CLAMP)
        self.add_accessor(self.inp)

    def kernel(self):
        acc = 0.0
        for dy in range(-1, 2):
            d = 2 * dy
            acc = acc + self.inp(d, dy)
        self.output(acc)


class EscapeUndefined(Kernel):
    """HIP401 (error): same escape, but the accessor has no boundary
    condition — out-of-window is out-of-bounds at the border."""

    def __init__(self):
        super().__init__(_space())
        self.inp = _acc()
        self.add_accessor(self.inp)

    def kernel(self):
        acc = 0.0
        for dy in range(-1, 2):
            d = 2 * dy
            acc = acc + self.inp(d, dy)
        self.output(acc)


class DivZero(Kernel):
    """HIP402 (error): the divisor is a proven-zero singleton."""

    def __init__(self):
        super().__init__(_space())
        self.inp = _acc()
        self.scale = 2.0
        self.add_accessor(self.inp)

    def kernel(self):
        d = self.scale - self.scale
        self.output(self.inp(0, 0) / d)


class DivMaybeZero(Kernel):
    """HIP402 (warning): sin() is proven into [-1, 1], which contains
    zero without being it."""

    def __init__(self):
        super().__init__(_space())
        self.inp = _acc()
        self.add_accessor(self.inp)

    def kernel(self):
        d = sin(self.inp(0, 0))
        self.output(self.inp(0, 0) / d)


class NarrowCast(Kernel):
    """HIP403 (warning): uint8 data scaled to [0..102000] then cast back
    into a uint8 store."""

    def __init__(self):
        super().__init__(_space(np.uint8))
        self.inp = _acc(pt=np.uint8)
        self.add_accessor(self.inp)

    def kernel(self):
        v = int(self.inp(0, 0) * 400.0)
        self.output(v)


class SqrtNeg(Kernel):
    """HIP404 (error): uint8 data shifted to [-300..-45], entirely
    negative under sqrt."""

    def __init__(self):
        super().__init__(_space())
        self.inp = _acc(pt=np.uint8)
        self.add_accessor(self.inp)

    def kernel(self):
        self.output(sqrt(self.inp(0, 0) - 300.0))


class SqrtMaybeNeg(Kernel):
    """HIP404 (warning): [-100..155] is only partially negative."""

    def __init__(self):
        super().__init__(_space())
        self.inp = _acc(pt=np.uint8)
        self.add_accessor(self.inp)

    def kernel(self):
        self.output(sqrt(self.inp(0, 0) - 100.0))


class CleanSquareSqrt(Kernel):
    """sqrt(x*x + y*y) — squares are proven non-negative, so the
    idiomatic gradient magnitude stays HIP4xx-clean."""

    def __init__(self):
        super().__init__(_space())
        self.a = _acc()
        self.b = _acc()
        self.add_accessor(self.a)
        self.add_accessor(self.b)

    def kernel(self):
        gx = self.a(0, 0)
        gy = self.b(0, 0)
        self.output(sqrt(gx * gx + gy * gy))


# -- footprint soundness vs brute-force enumeration -------------------------


class TestFootprintSoundness:
    @settings(max_examples=30, deadline=None)
    @given(ax=st.integers(0, 3), bx=st.integers(0, 3),
           ay=st.integers(0, 2), by=st.integers(0, 2))
    def test_asymmetric_hull_matches_bruteforce(self, ax, bx, ay, by):
        fp = _ir(AsymStencil(ax, bx, ay, by)).footprint()
        offsets = {(dx, dy) for dy in range(-ay, by + 1)
                   for dx in range(-ax, bx + 1)}
        acc = fp.accessor("inp")
        assert acc.proven
        assert (acc.lo_dx, acc.hi_dx) == (min(o[0] for o in offsets),
                                          max(o[0] for o in offsets))
        assert (acc.lo_dy, acc.hi_dy) == (min(o[1] for o in offsets),
                                          max(o[1] for o in offsets))
        assert acc.in_window()
        assert fp.proven
        assert fp.halo() == (max(ax, bx), max(ay, by))
        assert fp.is_pointwise() == (ax == bx == ay == by == 0)

    @settings(max_examples=20, deadline=None)
    @given(sx=st.integers(1, 3), r=st.integers(0, 3))
    def test_scaled_hull_matches_bruteforce(self, sx, r):
        fp = _ir(ScaledStencil(sx, r)).footprint()
        offsets = {(sx * d, d) for d in range(-r, r + 1)}
        acc = fp.accessor("inp")
        assert acc.proven
        assert (acc.lo_dx, acc.hi_dx) == (min(o[0] for o in offsets),
                                          max(o[0] for o in offsets))
        assert (acc.lo_dy, acc.hi_dy) == (min(o[1] for o in offsets),
                                          max(o[1] for o in offsets))
        assert acc.in_window()

    @settings(max_examples=10, deadline=None)
    @given(ax=st.integers(0, 2), bx=st.integers(0, 2),
           ay=st.integers(0, 2), by=st.integers(0, 2))
    def test_in_window_stencils_lint_and_execute_clean(self, ax, bx,
                                                       ay, by):
        k = AsymStencil(ax, bx, ay, by)
        assert hip4(lint_kernel(k)) == []
        data = np.arange(W * H, dtype=np.float32).reshape(H, W) / 7.0
        k.inp.image.set_data(data)
        compiled = compile_kernel(k)
        assert hip4(compiled.diagnostics) == []
        compiled.execute()
        out = k.iteration_space.image.get_data()
        # interior pixels see no boundary handling: pure window sums
        y, x = H // 2, W // 2
        expect = sum(data[y + dy, x + dx]
                     for dy in range(-ay, by + 1)
                     for dx in range(-ax, bx + 1))
        assert np.isclose(out[y, x], expect, rtol=1e-5)


# -- HIP4xx mutation kernels ------------------------------------------------


class TestMutations:
    def expect(self, kernel, code, severity):
        diags = lint_kernel(kernel)
        assert hip4(diags) == [code]
        d = next(x for x in diags if x.code == code)
        assert d.severity == severity
        return d

    def test_hip401_warning_with_boundary(self):
        d = self.expect(EscapeViaLocal(), "HIP401", Severity.WARNING)
        assert "[-2..2]" in d.message and "3x3" in d.message

    def test_hip401_error_undefined_boundary(self):
        d = self.expect(EscapeUndefined(), "HIP401", Severity.ERROR)
        assert "out of bounds" in d.message

    def test_hip402_proven_zero_is_error(self):
        d = self.expect(DivZero(), "HIP402", Severity.ERROR)
        assert "always zero" in d.message

    def test_hip402_zero_in_range_is_warning(self):
        self.expect(DivMaybeZero(), "HIP402", Severity.WARNING)

    def test_hip403_narrowing_overflow(self):
        self.expect(NarrowCast(), "HIP403", Severity.WARNING)

    def test_hip404_proven_negative_is_error(self):
        self.expect(SqrtNeg(), "HIP404", Severity.ERROR)

    def test_hip404_maybe_negative_is_warning(self):
        self.expect(SqrtMaybeNeg(), "HIP404", Severity.WARNING)

    def test_square_under_sqrt_is_clean(self):
        assert hip4(lint_kernel(CleanSquareSqrt())) == []

    def test_every_builtin_kernel_is_hip4xx_clean(self):
        from repro.lint.builtin import builtin_kernels

        for kernel in builtin_kernels():
            assert hip4(lint_kernel(kernel)) == [], \
                f"{type(kernel).__name__} trips HIP4xx"


# -- unbounded data stays silent (the noise policy) -------------------------


class TestNoisePolicy:
    def test_division_by_float_data_is_silent(self):
        class DivByData(Kernel):
            def __init__(self):
                super().__init__(_space())
                self.inp = _acc()
                self.add_accessor(self.inp)

            def kernel(self):
                self.output(1.0 / self.inp(0, 0))

        assert hip4(lint_kernel(DivByData())) == []

    def test_sqrt_of_float_data_is_silent(self):
        class SqrtData(Kernel):
            def __init__(self):
                super().__init__(_space())
                self.inp = _acc()
                self.add_accessor(self.inp)

            def kernel(self):
                self.output(sqrt(self.inp(0, 0)))

        assert hip4(lint_kernel(SqrtData())) == []


# -- SARIF 2.1.0 structural validation (hand-rolled; no jsonschema) ---------


class TestSarif:
    def _doc(self):
        report = LintReport()
        report.extend(lint_kernel(EscapeUndefined()))
        report.extend(lint_kernel(DivZero()))
        report.extend(lint_kernel(NarrowCast()))
        return json.loads(report.to_sarif())

    def test_document_shape(self):
        doc = self._doc()
        assert doc["version"] == "2.1.0"
        assert "sarif-schema-2.1.0" in doc["$schema"]
        assert len(doc["runs"]) == 1

    def test_rules_metadata(self):
        run = self._doc()["runs"][0]
        rules = run["tool"]["driver"]["rules"]
        assert rules, "at least one rule must be used"
        for rule in rules:
            assert rule["id"].startswith("HIP")
            assert rule["name"]
            assert rule["shortDescription"]["text"]
            assert rule["helpUri"].endswith(
                f"DIAGNOSTICS.md#{rule['id'].lower()}")
            assert rule["defaultConfiguration"]["level"] in (
                "note", "warning", "error")

    def test_results_reference_rules_and_regions(self):
        run = self._doc()["runs"][0]
        rules = run["tool"]["driver"]["rules"]
        assert run["results"], "mutation kernels must produce results"
        for res in run["results"]:
            assert rules[res["ruleIndex"]]["id"] == res["ruleId"]
            assert res["level"] in ("note", "warning", "error")
            assert res["message"]["text"]
            loc = res["locations"][0]["physicalLocation"]
            assert loc["artifactLocation"]["uri"]
            region = loc.get("region")
            if region is not None:
                assert region["startLine"] >= 1
                assert region["startColumn"] >= 1
                assert region["endLine"] >= region["startLine"]
                assert region["endColumn"] > region["startColumn"]


# -- observability ----------------------------------------------------------


class TestObservability:
    def test_absint_spans_emitted(self):
        from repro.obs import tracing
        from repro.obs.schema import ABSINT_SPANS

        with tracing() as tracer:
            ir = _ir(AsymStencil(1, 1, 1, 1))
            interpret(ir)
            ir.footprint()
        names = {s.name for s in tracer.spans()}
        for span_name in ABSINT_SPANS:
            assert span_name in names, f"missing {span_name} span"

    def test_finding_metrics_counted(self):
        from repro.obs.metrics import get_registry

        def counted():
            counters = get_registry().snapshot().get("counters", {})
            return counters.get("lint.findings.hip402", 0)

        before = counted()
        lint_kernel(DivZero())
        assert counted() == before + 1


# -- the lint-result cache (keyed by IR fingerprint + options) --------------


class TestLintCache:
    def test_second_compile_hits_lint_cache(self):
        cache = CompilationCache()
        compile_kernel(CleanSquareSqrt(), cache=cache)
        compile_kernel(CleanSquareSqrt(), cache=cache)
        assert cache.stats.lint_misses == 1
        assert cache.stats.lint_hits == 1
        metrics = cache.stats.metrics()
        assert metrics["cache.lint.hits"] == 1
        assert metrics["cache.lint.misses"] == 1
        assert metrics["cache.lint.hit_rate"] == 0.5

    def test_cached_diagnostics_equal_fresh(self):
        cache = CompilationCache()
        first = compile_kernel(EscapeViaLocal(), cache=cache)
        second = compile_kernel(EscapeViaLocal(), cache=cache)
        assert [d.code for d in first.diagnostics] == \
            [d.code for d in second.diagnostics]
        assert cache.stats.lint_hits >= 1
