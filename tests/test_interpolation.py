"""Interpolating (resampling) accessors: nearest / bilinear."""

import numpy as np
import pytest

from repro import (
    Accessor,
    Boundary,
    BoundaryCondition,
    CodegenOptions,
    Image,
    IterationSpace,
    Kernel,
    compile_kernel,
)
from repro.backends import generate
from repro.dsl.interpolate import (
    InterpolatedAccessor,
    Interpolation,
    resize,
)
from repro.errors import CodegenError, DslError
from repro.frontend import parse_kernel
from repro.ir import typecheck_kernel

from .helpers import random_image


class ResampleKernel(Kernel):
    """Identity over a resampling accessor: out[x, y] = in(scaled)."""

    def __init__(self, iteration_space, inp):
        super().__init__(iteration_space)
        self.inp = inp
        self.add_accessor(inp)

    def kernel(self):
        self.output(self.inp(0, 0))


def _resampler(in_w, in_h, out_w, out_h, interp, data,
               mode=Boundary.CLAMP):
    img_in = Image(in_w, in_h).set_data(data)
    img_out = Image(out_w, out_h)
    bc = BoundaryCondition(img_in, 3, 3, mode)
    acc = InterpolatedAccessor(bc, out_w, out_h, interp)
    kernel = ResampleKernel(IterationSpace(img_out), acc)
    return kernel, img_out


class TestSemantics:
    def test_identity_when_sizes_match_nearest(self):
        data = random_image(16, 12, seed=0)
        k, out = _resampler(16, 12, 16, 12, Interpolation.NEAREST, data)
        compile_kernel(k, use_texture=False).execute()
        np.testing.assert_array_equal(out.get_data(), data)

    def test_identity_when_sizes_match_linear(self):
        data = random_image(16, 12, seed=1)
        k, out = _resampler(16, 12, 16, 12, Interpolation.LINEAR, data)
        compile_kernel(k, use_texture=False).execute()
        np.testing.assert_allclose(out.get_data(), data, atol=1e-6)

    def test_downsample_by_two_nearest(self):
        data = random_image(16, 16, seed=2)
        k, out = _resampler(16, 16, 8, 8, Interpolation.NEAREST, data)
        compile_kernel(k, use_texture=False).execute()
        # pixel-centre convention: output (0,0) samples input (0.5, 0.5)
        # -> nearest is input (1, 1)
        assert out.get_data()[0, 0] == data[1, 1]

    def test_upsample_linear_interpolates(self):
        # a horizontal ramp upsampled 2x must stay monotone with
        # intermediate values present
        ramp = np.tile(np.arange(8, dtype=np.float32), (8, 1))
        k, out = _resampler(8, 8, 16, 16, Interpolation.LINEAR, ramp)
        compile_kernel(k, use_texture=False).execute()
        row = out.get_data()[8]
        assert np.all(np.diff(row) >= -1e-6)
        assert np.any((row % 1.0 > 0.2) & (row % 1.0 < 0.8))

    def test_linear_matches_direct_formula(self):
        data = random_image(9, 7, seed=3)
        k, out = _resampler(9, 7, 21, 13, Interpolation.LINEAR, data)
        compile_kernel(k, use_texture=False).execute()
        ref = resize(data, 21, 13, Interpolation.LINEAR, Boundary.CLAMP)
        np.testing.assert_allclose(out.get_data(), ref, atol=1e-6)

    @pytest.mark.parametrize("mode", [Boundary.MIRROR, Boundary.REPEAT,
                                      Boundary.CONSTANT])
    def test_boundary_modes_honoured(self, mode):
        data = random_image(8, 8, seed=4)
        k, out = _resampler(8, 8, 17, 17, Interpolation.LINEAR, data,
                            mode=mode)
        compile_kernel(k, use_texture=False).execute()
        ref = resize(data, 17, 17, Interpolation.LINEAR, mode)
        np.testing.assert_allclose(out.get_data(), ref, atol=1e-6)

    def test_resize_helper_roundtrip_mean(self):
        data = random_image(32, 32, seed=5)
        small = resize(data, 16, 16)
        back = resize(small, 32, 32)
        assert abs(float(back.mean() - data.mean())) < 0.02


class TestValidation:
    def test_requires_boundary_condition_when_resampling(self):
        img = Image(8, 8)
        with pytest.raises(DslError, match="BoundaryCondition"):
            InterpolatedAccessor(img, 16, 16, Interpolation.LINEAR)

    def test_same_size_plain_image_allowed(self):
        acc = InterpolatedAccessor(Image(8, 8), 8, 8,
                                   Interpolation.NEAREST)
        assert acc.scale == (1.0, 1.0)

    def test_bad_geometry(self):
        img = Image(8, 8)
        bc = BoundaryCondition(img, 3, 3, Boundary.CLAMP)
        with pytest.raises(DslError):
            InterpolatedAccessor(bc, 0, 8)

    def test_bad_mode(self):
        with pytest.raises(DslError):
            Interpolation.coerce("cubic")


class TestCodegen:
    def _ir(self, interp):
        data = random_image(8, 8, seed=6)
        k, _ = _resampler(8, 8, 16, 16, interp, data)
        return typecheck_kernel(parse_kernel(k))

    @pytest.mark.parametrize("backend", ["cuda", "opencl"])
    def test_linear_helper_emitted(self, backend):
        src = generate(self._ir(Interpolation.LINEAR),
                       CodegenOptions(backend=backend, use_texture=False),
                       launch_geometry=(16, 16))
        code = src.device_code
        assert "_interp_inp(" in code
        assert "v00" in code and "v11" in code
        assert "(float)width / 16.0f" in code
        assert code.count("{") == code.count("}")

    def test_nearest_helper_emitted(self):
        src = generate(self._ir(Interpolation.NEAREST),
                       CodegenOptions(backend="cuda", use_texture=False),
                       launch_geometry=(16, 16))
        assert "floorf(fx + 0.5f)" in src.device_code

    def test_boundary_adjustment_inside_helper(self):
        src = generate(self._ir(Interpolation.LINEAR),
                       CodegenOptions(backend="cuda", use_texture=False),
                       launch_geometry=(16, 16))
        helper = src.device_code.split("_interp_inp(")[1]
        assert "bh_clamp(" in helper

    def test_texture_path_rejected(self):
        with pytest.raises(CodegenError, match="texture"):
            generate(self._ir(Interpolation.LINEAR),
                     CodegenOptions(backend="cuda", use_texture=True),
                     launch_geometry=(16, 16))

    def test_vectorize_rejected(self):
        with pytest.raises(CodegenError, match="vectorized"):
            generate(self._ir(Interpolation.LINEAR),
                     CodegenOptions(backend="opencl", vectorize=4),
                     launch_geometry=(16, 16))

    def test_resources_account_for_taps(self):
        from repro.hwmodel import estimate_resources, get_device
        plain_ir = self._ir(Interpolation.NEAREST)
        linear_ir = self._ir(Interpolation.LINEAR)
        dev = get_device("tesla")
        nearest = estimate_resources(plain_ir, dev)
        linear = estimate_resources(linear_ir, dev)
        assert linear.instruction_mix.global_reads > \
            nearest.instruction_mix.global_reads
