"""The ``repro lint`` CLI: target execution under the collector,
``--builtin``, output formats and ``--fail-on`` policy."""

from __future__ import annotations

import contextlib
import io
import json
import textwrap

from repro.cli import main


def run_cli(*argv):
    out = io.StringIO()
    with contextlib.redirect_stdout(out):
        code = main(list(argv))
    return code, out.getvalue()


DIRTY_TARGET = textwrap.dedent("""\
    from repro import Accessor, Image, IterationSpace, Kernel
    from repro.runtime.compile import compile_kernel

    class DeadStore(Kernel):
        def __init__(self):
            super().__init__(IterationSpace(Image(16, 16, float)))
            self.inp = Accessor(Image(16, 16, float))
            self.add_accessor(self.inp)

        def kernel(self):
            a = 1.0
            a = 2.0
            self.output(self.inp(0, 0) * a)

    if __name__ == "__main__":
        # compiled twice: identical findings must collapse to one
        compile_kernel(DeadStore())
        compile_kernel(DeadStore())
        print("target stdout must not leak into the report")
""")

CLEAN_TARGET = textwrap.dedent("""\
    from repro import Accessor, Image, IterationSpace, Kernel
    from repro.runtime.compile import compile_kernel

    class Halve(Kernel):
        def __init__(self):
            super().__init__(IterationSpace(Image(16, 16, float)))
            self.inp = Accessor(Image(16, 16, float))
            self.add_accessor(self.inp)

        def kernel(self):
            self.output(self.inp(0, 0) * 0.5)

    if __name__ == "__main__":
        compile_kernel(Halve())
""")


class TestLintCli:
    def test_builtin_filters_are_clean(self):
        code, out = run_cli("lint", "--builtin")
        assert code == 0
        assert "no findings" in out

    def test_dirty_target_text(self, tmp_path):
        target = tmp_path / "dirty.py"
        target.write_text(DIRTY_TARGET)
        code, out = run_cli("lint", str(target), "--fail-on", "warning")
        assert code == 1
        assert out.count("HIP102") == 1    # deduplicated across compiles
        assert "target stdout" not in out  # target prints are silenced

    def test_fail_on_policy(self, tmp_path):
        target = tmp_path / "dirty.py"
        target.write_text(DIRTY_TARGET)
        # warnings don't fail the default (error) policy ...
        code, _ = run_cli("lint", str(target))
        assert code == 0
        # ... nor an explicit --fail-on never
        code, _ = run_cli("lint", str(target), "--fail-on", "never")
        assert code == 0

    def test_clean_target(self, tmp_path):
        target = tmp_path / "clean.py"
        target.write_text(CLEAN_TARGET)
        code, out = run_cli("lint", str(target), "--fail-on", "warning")
        assert code == 0
        assert "no findings" in out

    def test_json_format(self, tmp_path):
        target = tmp_path / "dirty.py"
        target.write_text(DIRTY_TARGET)
        code, out = run_cli("lint", str(target), "--format", "json")
        assert code == 0
        payload = json.loads(out)
        assert payload["summary"]["warnings"] == 1
        assert payload["diagnostics"][0]["code"] == "HIP102"
        assert payload["diagnostics"][0]["kernel"] == "DeadStore"

    def test_sarif_format(self, tmp_path):
        target = tmp_path / "dirty.py"
        target.write_text(DIRTY_TARGET)
        code, out = run_cli("lint", str(target), "--format", "sarif")
        assert code == 0
        sarif = json.loads(out)
        assert sarif["version"] == "2.1.0"
        results = sarif["runs"][0]["results"]
        assert results[0]["ruleId"] == "HIP102"

    def test_no_targets_is_usage_error(self, capsys):
        code, _ = run_cli("lint")
        assert code == 2

    def test_crashing_target_fails(self, tmp_path):
        target = tmp_path / "boom.py"
        target.write_text("raise RuntimeError('boom')\n")
        code, _ = run_cli("lint", str(target))
        assert code == 2

    def test_builtin_and_target_combine(self, tmp_path):
        target = tmp_path / "dirty.py"
        target.write_text(DIRTY_TARGET)
        code, out = run_cli("lint", "--builtin", str(target),
                            "--format", "json")
        assert code == 0
        payload = json.loads(out)
        assert payload["summary"]["warnings"] == 1
