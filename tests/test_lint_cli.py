"""The ``repro lint`` CLI: target execution under the collector,
``--builtin``, output formats and ``--fail-on`` policy."""

from __future__ import annotations

import contextlib
import io
import json
import textwrap

from repro.cli import main


def run_cli(*argv):
    out = io.StringIO()
    with contextlib.redirect_stdout(out):
        code = main(list(argv))
    return code, out.getvalue()


DIRTY_TARGET = textwrap.dedent("""\
    from repro import Accessor, Image, IterationSpace, Kernel
    from repro.runtime.compile import compile_kernel

    class DeadStore(Kernel):
        def __init__(self):
            super().__init__(IterationSpace(Image(16, 16, float)))
            self.inp = Accessor(Image(16, 16, float))
            self.add_accessor(self.inp)

        def kernel(self):
            a = 1.0
            a = 2.0
            self.output(self.inp(0, 0) * a)

    if __name__ == "__main__":
        # compiled twice: identical findings must collapse to one
        compile_kernel(DeadStore())
        compile_kernel(DeadStore())
        print("target stdout must not leak into the report")
""")

CLEAN_TARGET = textwrap.dedent("""\
    from repro import Accessor, Image, IterationSpace, Kernel
    from repro.runtime.compile import compile_kernel

    class Halve(Kernel):
        def __init__(self):
            super().__init__(IterationSpace(Image(16, 16, float)))
            self.inp = Accessor(Image(16, 16, float))
            self.add_accessor(self.inp)

        def kernel(self):
            self.output(self.inp(0, 0) * 0.5)

    if __name__ == "__main__":
        compile_kernel(Halve())
""")


GRAPH_WARNING_TARGET = textwrap.dedent("""\
    import numpy as np

    from repro.dsl import Accessor, Image, IterationSpace
    from repro.filters.point_ops import Scale
    from repro.graph import PipelineGraph, execute_graph

    if __name__ == "__main__":
        src = Image(16, 16, name="src")
        src.set_data(np.full((16, 16), 0.5, dtype=np.float32))
        out = Image(16, 16, name="out")
        dangling = Image(16, 16, name="dangling")
        g = PipelineGraph("t")
        g.add_kernel(Scale(IterationSpace(out), Accessor(src), factor=2.0),
                     name="scale")
        g.add_kernel(Scale(IterationSpace(dangling), Accessor(src),
                           factor=3.0), name="dead")
        g.mark_output(out)
        execute_graph(g)
""")


class TestLintCli:
    def test_builtin_filters_are_clean(self):
        code, out = run_cli("lint", "--builtin")
        assert code == 0
        assert "0 error(s), 0 warning(s)" in out

    def test_builtin_graph_lint_included(self):
        # --builtin also graph-lints the demo pipeline: fusion
        # explanations (HIP302) and footprint facts (HIP501/HIP502)
        # appear in the output ...
        code, out = run_cli("lint", "--builtin")
        assert code == 0
        assert "HIP302" in out
        assert "HIP501" in out
        assert "HIP502" in out

    def test_builtin_notes_do_not_trip_fail_on_warning(self):
        # ... but notes and infos never trip --fail-on warning.
        code, out = run_cli("lint", "--builtin", "--fail-on", "warning")
        assert code == 0
        assert "HIP501" in out

    def test_graph_warning_trips_fail_on_warning(self, tmp_path):
        # A graph-level warning (HIP301 unconsumed output) collected
        # from a file target must reach the --fail-on threshold.
        target = tmp_path / "graphy.py"
        target.write_text(GRAPH_WARNING_TARGET)
        code, out = run_cli("lint", str(target), "--fail-on", "warning")
        assert code == 1
        assert "HIP301" in out
        code, _ = run_cli("lint", str(target), "--fail-on", "error")
        assert code == 0

    def test_dirty_target_text(self, tmp_path):
        target = tmp_path / "dirty.py"
        target.write_text(DIRTY_TARGET)
        code, out = run_cli("lint", str(target), "--fail-on", "warning")
        assert code == 1
        assert out.count("HIP102") == 1    # deduplicated across compiles
        assert "target stdout" not in out  # target prints are silenced

    def test_fail_on_policy(self, tmp_path):
        target = tmp_path / "dirty.py"
        target.write_text(DIRTY_TARGET)
        # warnings don't fail the default (error) policy ...
        code, _ = run_cli("lint", str(target))
        assert code == 0
        # ... nor an explicit --fail-on never
        code, _ = run_cli("lint", str(target), "--fail-on", "never")
        assert code == 0

    def test_clean_target(self, tmp_path):
        target = tmp_path / "clean.py"
        target.write_text(CLEAN_TARGET)
        code, out = run_cli("lint", str(target), "--fail-on", "warning")
        assert code == 0
        assert "no findings" in out

    def test_json_format(self, tmp_path):
        target = tmp_path / "dirty.py"
        target.write_text(DIRTY_TARGET)
        code, out = run_cli("lint", str(target), "--format", "json")
        assert code == 0
        payload = json.loads(out)
        assert payload["summary"]["warnings"] == 1
        assert payload["diagnostics"][0]["code"] == "HIP102"
        assert payload["diagnostics"][0]["kernel"] == "DeadStore"

    def test_sarif_format(self, tmp_path):
        target = tmp_path / "dirty.py"
        target.write_text(DIRTY_TARGET)
        code, out = run_cli("lint", str(target), "--format", "sarif")
        assert code == 0
        sarif = json.loads(out)
        assert sarif["version"] == "2.1.0"
        results = sarif["runs"][0]["results"]
        assert results[0]["ruleId"] == "HIP102"

    def test_no_targets_is_usage_error(self, capsys):
        code, _ = run_cli("lint")
        assert code == 2

    def test_crashing_target_fails(self, tmp_path):
        target = tmp_path / "boom.py"
        target.write_text("raise RuntimeError('boom')\n")
        code, _ = run_cli("lint", str(target))
        assert code == 2

    def test_builtin_and_target_combine(self, tmp_path):
        target = tmp_path / "dirty.py"
        target.write_text(DIRTY_TARGET)
        code, out = run_cli("lint", "--builtin", str(target),
                            "--format", "json")
        assert code == 0
        payload = json.loads(out)
        assert payload["summary"]["warnings"] == 1
