"""Filter library vs golden references (scipy / direct NumPy)."""

import numpy as np
import pytest
from scipy import ndimage

from repro import Boundary, compile_kernel
from repro.data import angiography_image, impulse_noise_image
from repro.filters import (
    make_bilateral,
    make_gaussian,
    make_laplacian,
    make_median,
    make_sobel,
)
from repro.filters.bilateral import bilateral_reference
from repro.filters.gaussian import (
    gaussian_coefficients,
    gaussian_reference,
)
from repro.filters.sobel import SOBEL_X, sobel_reference

from .helpers import random_image

SCIPY_MODE = {
    Boundary.CLAMP: "nearest",
    Boundary.MIRROR: "mirror",      # careful: scipy mirror = reflect_101
    Boundary.REPEAT: "wrap",
    Boundary.CONSTANT: "constant",
}


def _run(kernel, out_image, device="Tesla C2050", backend="cuda"):
    compiled = compile_kernel(kernel, backend=backend, device=device)
    compiled.execute()
    return out_image.get_data()


class TestGaussian:
    @pytest.mark.parametrize("size", [3, 5, 9])
    def test_matches_reference(self, size):
        data = random_image(40, 32, seed=1)
        k, _, out = make_gaussian(40, 32, size=size, data=data)
        got = _run(k, out)
        ref = gaussian_reference(data, size)
        np.testing.assert_allclose(got, ref, atol=1e-5)

    @pytest.mark.parametrize("mode", [Boundary.CLAMP, Boundary.MIRROR,
                                      Boundary.REPEAT, Boundary.CONSTANT])
    def test_boundary_modes(self, mode):
        data = random_image(24, 24, seed=2)
        k, _, out = make_gaussian(24, 24, size=5, boundary=mode,
                                  boundary_constant=0.5, data=data)
        got = _run(k, out)
        ref = gaussian_reference(data, 5, boundary=mode,
                                 boundary_constant=0.5)
        np.testing.assert_allclose(got, ref, atol=1e-5)

    def test_against_scipy_interior(self):
        data = random_image(40, 40, seed=3)
        k, _, out = make_gaussian(40, 40, size=5, data=data)
        got = _run(k, out)
        sigma = 0.3 * ((5 - 1) * 0.5 - 1) + 0.8
        ref = ndimage.gaussian_filter(data, sigma, mode="nearest",
                                      truncate=2 / sigma)
        # interior only: scipy's truncation handling differs slightly
        np.testing.assert_allclose(got[4:-4, 4:-4], ref[4:-4, 4:-4],
                                   atol=5e-3)

    def test_preserves_mean(self):
        data = random_image(32, 32, seed=4)
        k, _, out = make_gaussian(32, 32, size=3,
                                  boundary=Boundary.MIRROR, data=data)
        got = _run(k, out)
        assert abs(float(got.mean() - data.mean())) < 1e-3

    def test_coefficients_normalised(self):
        for size in (3, 5, 7, 13):
            assert gaussian_coefficients(size).sum() == \
                pytest.approx(1.0, abs=1e-6)

    def test_invalid_size(self):
        from repro.errors import DslError
        with pytest.raises(DslError):
            gaussian_coefficients(4)


class TestBilateral:
    @pytest.mark.parametrize("mode", [Boundary.CLAMP, Boundary.MIRROR,
                                      Boundary.CONSTANT])
    def test_matches_reference(self, mode):
        data = random_image(28, 24, seed=5)
        k, _, out = make_bilateral(28, 24, sigma_d=1, sigma_r=0.1,
                                   boundary=mode, data=data)
        got = _run(k, out)
        ref = bilateral_reference(data, 1, 0.1, mode)
        np.testing.assert_allclose(got, ref, atol=1e-4)

    def test_full_and_mask_versions_agree(self):
        data = random_image(24, 24, seed=6)
        k1, _, out1 = make_bilateral(24, 24, sigma_d=1, sigma_r=0.1,
                                     use_mask=True, data=data)
        k2, _, out2 = make_bilateral(24, 24, sigma_d=1, sigma_r=0.1,
                                     use_mask=False, data=data)
        np.testing.assert_allclose(_run(k1, out1), _run(k2, out2),
                                   atol=1e-5)

    def test_edge_preservation(self):
        """The defining property: smoothing without blurring edges."""
        data = np.zeros((32, 32), np.float32)
        data[:, 16:] = 1.0
        rng = np.random.default_rng(0)
        noisy = data + 0.05 * rng.standard_normal((32, 32)) \
            .astype(np.float32)
        k, _, out = make_bilateral(32, 32, sigma_d=1, sigma_r=0.2,
                                   data=noisy)
        got = _run(k, out)
        # noise reduced on the flats
        assert got[:, :12].std() < noisy[:, :12].std() * 0.7
        # edge magnitude preserved
        edge_before = noisy[:, 17].mean() - noisy[:, 14].mean()
        edge_after = got[:, 17].mean() - got[:, 14].mean()
        assert edge_after > 0.8 * edge_before

    def test_reduces_noise_on_angiography(self):
        frame = angiography_image(48, 48, seed=1, noise_sigma=0.05)
        clean = angiography_image(48, 48, seed=1, noise_sigma=0.0)
        k, _, out = make_bilateral(48, 48, sigma_d=1, sigma_r=0.15,
                                   data=frame)
        got = _run(k, out)
        assert np.abs(got - clean).mean() < np.abs(frame - clean).mean()


class TestSobel:
    @pytest.mark.parametrize("axis", ["x", "y"])
    def test_matches_reference(self, axis):
        data = random_image(30, 26, seed=7)
        k, _, out = make_sobel(30, 26, axis=axis, data=data)
        got = _run(k, out)
        ref = sobel_reference(data, axis=axis)
        np.testing.assert_allclose(got, ref, atol=1e-5)

    def test_against_scipy(self):
        data = random_image(30, 30, seed=8)
        k, _, out = make_sobel(30, 30, axis="x", data=data)
        got = _run(k, out)
        ref = ndimage.sobel(data, axis=1, mode="nearest")
        np.testing.assert_allclose(got, ref, atol=1e-4)

    def test_detects_vertical_edge(self):
        data = np.zeros((16, 16), np.float32)
        data[:, 8:] = 1.0
        k, _, out = make_sobel(16, 16, axis="x", data=data)
        got = _run(k, out)
        assert np.abs(got[:, 7:9]).max() > 2.0
        assert np.abs(got[:, 0:4]).max() < 1e-6

    def test_zero_response_on_constant(self):
        data = np.full((16, 16), 0.7, np.float32)
        k, _, out = make_sobel(16, 16, axis="y", data=data)
        got = _run(k, out)
        np.testing.assert_allclose(got, 0.0, atol=1e-5)


class TestLaplacian:
    def test_matches_scipy_laplace(self):
        data = random_image(24, 24, seed=9)
        k, _, out = make_laplacian(24, 24, connectivity=4, data=data)
        got = _run(k, out)
        ref = ndimage.laplace(data, mode="nearest")
        np.testing.assert_allclose(got, ref, atol=1e-5)

    def test_zero_on_linear_ramp_interior(self):
        yy, xx = np.mgrid[0:16, 0:16].astype(np.float32)
        data = 0.3 * xx + 0.1 * yy
        k, _, out = make_laplacian(16, 16, data=data)
        got = _run(k, out)
        np.testing.assert_allclose(got[2:-2, 2:-2], 0.0, atol=1e-4)


class TestMedian:
    def test_matches_scipy_median(self):
        data = random_image(20, 20, seed=10)
        k, _, out = make_median(20, 20, data=data)
        got = _run(k, out)
        ref = ndimage.median_filter(data, size=3, mode="nearest")
        np.testing.assert_allclose(got, ref, atol=1e-6)

    @pytest.mark.parametrize("mode", [Boundary.MIRROR, Boundary.REPEAT])
    def test_boundary_modes(self, mode):
        data = random_image(16, 16, seed=11)
        k, _, out = make_median(16, 16, boundary=mode, data=data)
        got = _run(k, out)
        pad_mode = SCIPY_MODE[mode]
        # build reference via explicit padding
        from repro.dsl.boundary import NUMPY_PAD_MODE
        padded = np.pad(data, 1, mode=NUMPY_PAD_MODE[mode])
        ref = np.zeros_like(data)
        for y in range(16):
            for x in range(16):
                ref[y, x] = np.median(padded[y:y + 3, x:x + 3])
        np.testing.assert_allclose(got, ref, atol=1e-6)

    def test_removes_impulse_noise(self):
        clean = angiography_image(32, 32, seed=2, noise_sigma=0.0)
        noisy = impulse_noise_image(32, 32, seed=2, density=0.05,
                                    base=clean)
        k, _, out = make_median(32, 32, data=noisy)
        got = _run(k, out)
        assert np.abs(got - clean).mean() < np.abs(noisy - clean).mean() \
            * 0.5


class TestPointOps:
    def test_add_scale_threshold_blend(self):
        from repro.dsl import Accessor, Image, IterationSpace
        from repro.filters.point_ops import (
            AbsDiff,
            AddConstant,
            LinearBlend,
            Scale,
            Threshold,
        )

        data_a = random_image(16, 16, seed=12)
        data_b = random_image(16, 16, seed=13)

        def point_run(kernel_cls, *extra, inputs=1):
            img_a = Image(16, 16).set_data(data_a)
            out = Image(16, 16)
            if inputs == 2:
                img_b = Image(16, 16).set_data(data_b)
                k = kernel_cls(IterationSpace(out), Accessor(img_a),
                               Accessor(img_b), *extra)
            else:
                k = kernel_cls(IterationSpace(out), Accessor(img_a),
                               *extra)
            return _run(k, out)

        np.testing.assert_allclose(point_run(AddConstant, 0.5),
                                   data_a + np.float32(0.5), rtol=1e-6)
        np.testing.assert_allclose(point_run(Scale, 2.0, -0.5),
                                   data_a * 2 - 0.5, rtol=1e-5,
                                   atol=1e-6)
        np.testing.assert_allclose(
            point_run(Threshold, 0.5),
            np.where(data_a > 0.5, 1.0, 0.0).astype(np.float32))
        np.testing.assert_allclose(
            point_run(AbsDiff, inputs=2),
            np.abs(data_a - data_b), rtol=1e-6)
        np.testing.assert_allclose(
            point_run(LinearBlend, 0.25, inputs=2),
            (0.25 * data_a + 0.75 * data_b).astype(np.float32),
            atol=1e-6)

    def test_gamma(self):
        from repro.dsl import Accessor, Image, IterationSpace
        from repro.filters.point_ops import GammaCorrection

        data = random_image(8, 8, seed=14) + 0.01
        img = Image(8, 8).set_data(data)
        out = Image(8, 8)
        k = GammaCorrection(IterationSpace(out), Accessor(img), 2.2)
        got = _run(k, out)
        np.testing.assert_allclose(got, data ** np.float32(2.2),
                                   rtol=1e-4)
