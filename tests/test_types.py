"""Scalar type system: coercion and C-style promotion."""

import numpy as np
import pytest

from repro.errors import TypeError_
from repro.types import (
    BOOL,
    CHAR,
    DOUBLE,
    FLOAT,
    INT,
    SCALAR_TYPES,
    SHORT,
    UCHAR,
    UINT,
    USHORT,
    as_scalar_type,
    promote,
)


class TestAsScalarType:
    def test_passthrough(self):
        assert as_scalar_type(FLOAT) is FLOAT

    def test_by_name(self):
        assert as_scalar_type("float") is FLOAT
        assert as_scalar_type("int") is INT
        assert as_scalar_type("uchar") is UCHAR

    def test_numpy_style_names(self):
        assert as_scalar_type("float32") is FLOAT
        assert as_scalar_type("float64") is DOUBLE
        assert as_scalar_type("uint8") is UCHAR
        assert as_scalar_type("int16") is SHORT

    def test_python_builtins(self):
        assert as_scalar_type(float) is FLOAT
        assert as_scalar_type(int) is INT
        assert as_scalar_type(bool) is BOOL

    def test_numpy_dtypes(self):
        assert as_scalar_type(np.float32) is FLOAT
        assert as_scalar_type(np.dtype("uint16")) is USHORT

    def test_unknown_name_raises(self):
        with pytest.raises(TypeError_):
            as_scalar_type("quaternion")

    def test_unknown_object_raises(self):
        with pytest.raises(TypeError_):
            as_scalar_type(object())

    def test_all_registered_names_resolve(self):
        for name, st in SCALAR_TYPES.items():
            assert as_scalar_type(name) is st


class TestScalarTypeProperties:
    def test_sizes(self):
        assert FLOAT.size == 4
        assert DOUBLE.size == 8
        assert UCHAR.size == 1
        assert SHORT.size == 2

    def test_float_flags(self):
        assert FLOAT.is_float and DOUBLE.is_float
        assert not INT.is_float
        assert INT.is_integer and not FLOAT.is_integer

    def test_backend_spellings(self):
        assert UCHAR.cuda_name == "unsigned char"
        assert UCHAR.opencl_name == "uchar"
        assert FLOAT.cuda_name == FLOAT.opencl_name == "float"

    def test_numpy_dtype_roundtrip(self):
        for st in SCALAR_TYPES.values():
            assert np.dtype(st.np_dtype).itemsize == st.size


class TestPromotion:
    def test_same_type_identity(self):
        assert promote(FLOAT, FLOAT) is FLOAT
        assert promote(INT, INT) is INT

    def test_sub_int_promotes_to_int(self):
        assert promote(UCHAR, UCHAR) is INT
        assert promote(CHAR, SHORT) is INT
        assert promote(BOOL, BOOL) is INT

    def test_float_wins_over_int(self):
        assert promote(INT, FLOAT) is FLOAT
        assert promote(FLOAT, INT) is FLOAT
        assert promote(UCHAR, FLOAT) is FLOAT

    def test_double_wins_over_float(self):
        assert promote(FLOAT, DOUBLE) is DOUBLE
        assert promote(DOUBLE, INT) is DOUBLE

    def test_unsigned_wins_at_equal_rank(self):
        assert promote(INT, UINT) is UINT
        assert promote(UINT, INT) is UINT

    def test_commutative(self):
        for a in SCALAR_TYPES.values():
            for b in SCALAR_TYPES.values():
                assert promote(a, b) == promote(b, a)

    def test_result_at_least_int_rank(self):
        small = [BOOL, CHAR, UCHAR, SHORT, USHORT]
        for a in small:
            for b in small:
                result = promote(a, b)
                assert result.size >= 4 or result.is_float
