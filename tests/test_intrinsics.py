"""Intrinsic registry and per-backend function mapping (Section V-A)."""

import math

import numpy as np
import pytest

from repro.errors import UnsupportedFunctionError
from repro.intrinsics import (
    ALIASES,
    INTRINSICS,
    intrinsic_result_type,
    python_value,
    resolve,
)
from repro.types import DOUBLE, FLOAT, INT


class TestRegistry:
    def test_core_functions_present(self):
        for name in ("exp", "log", "sqrt", "sin", "cos", "pow", "fabs",
                     "min", "max", "abs", "atan2", "floor"):
            assert name in INTRINSICS

    def test_suffixed_aliases(self):
        assert ALIASES["expf"] == "exp"
        assert ALIASES["sqrtf"] == "sqrt"
        assert resolve("expf").name == "exp"

    def test_math_module_aliases(self):
        assert resolve("math.exp").name == "exp"
        assert resolve("math.atan2").name == "atan2"

    def test_unknown_raises_with_listing(self):
        """'In case a function is not supported, our compiler emits an
        error message to the user.'"""
        with pytest.raises(UnsupportedFunctionError, match="supported"):
            resolve("erfinv")


class TestBackendMapping:
    def test_cuda_float_suffix(self):
        intr = resolve("exp")
        assert intr.target_name("cuda", FLOAT) == "expf"
        assert intr.target_name("cuda", DOUBLE) == "exp"

    def test_opencl_overloaded(self):
        intr = resolve("exp")
        assert intr.target_name("opencl", FLOAT) == "exp"
        assert intr.target_name("opencl", DOUBLE) == "exp"

    def test_min_max_unsuffixed_everywhere(self):
        for name in ("min", "max", "abs"):
            intr = resolve(name)
            assert intr.target_name("cuda", FLOAT) == name
            assert intr.target_name("opencl", FLOAT) == name

    def test_fast_variants_recorded(self):
        assert resolve("exp").fast_variant == "__expf"
        assert resolve("sin").fast_variant == "__sinf"

    def test_unknown_backend(self):
        with pytest.raises(UnsupportedFunctionError):
            resolve("exp").target_name("metal", FLOAT)


class TestEvaluation:
    def test_python_value(self):
        assert python_value("sqrt", 9.0) == pytest.approx(3.0)
        assert python_value("min", 2.0, 5.0) == 2.0
        assert python_value("exp", 0.0) == pytest.approx(1.0)

    def test_arity_checked(self):
        with pytest.raises(UnsupportedFunctionError):
            python_value("exp", 1.0, 2.0)

    def test_np_funcs_vectorise(self):
        arr = np.array([1.0, 4.0, 9.0])
        out = resolve("sqrt").np_func(arr)
        np.testing.assert_allclose(out, [1, 2, 3])

    def test_matches_python_math(self):
        for name, ref in (("exp", math.exp), ("log", math.log),
                          ("sin", math.sin), ("tanh", math.tanh)):
            assert python_value(name, 0.7) == pytest.approx(ref(0.7))


class TestResultTypes:
    def test_float_intrinsics_return_float(self):
        assert intrinsic_result_type("exp", [INT]) is FLOAT
        assert intrinsic_result_type("sqrt", [FLOAT]) is FLOAT

    def test_double_propagates(self):
        assert intrinsic_result_type("exp", [DOUBLE]) is DOUBLE

    def test_minmax_follow_operands(self):
        assert intrinsic_result_type("min", [INT, INT]) is INT
        assert intrinsic_result_type("max", [FLOAT, INT]) is FLOAT

    def test_costs_assigned(self):
        assert resolve("exp").cost > resolve("fabs").cost
        assert resolve("min").cost <= 2
