"""Command-line interface tests."""

import subprocess
import sys

import pytest

from repro.cli import build_parser, main


def run_cli(*argv):
    """Run the CLI in-process, capturing stdout."""
    import contextlib
    import io

    out = io.StringIO()
    with contextlib.redirect_stdout(out):
        code = main(list(argv))
    return code, out.getvalue()


class TestCli:
    def test_devices(self):
        code, out = run_cli("devices")
        assert code == 0
        for name in ("Tesla C2050", "Radeon HD 5870", "VLIW5"):
            assert name in out

    def test_codegen_cuda(self, capsys):
        code, out = run_cli("codegen", "--filter", "gaussian",
                            "--backend", "cuda", "--size", "256")
        assert code == 0
        assert "__global__" in out
        assert "_constgmask" in out

    def test_codegen_cpu(self):
        code, out = run_cli("codegen", "--filter", "sobel",
                            "--backend", "cpu", "--size", "128")
        assert code == 0
        assert "#pragma omp parallel for" in out

    def test_codegen_host(self):
        code, out = run_cli("codegen", "--filter", "gaussian",
                            "--backend", "opencl", "--size", "128",
                            "--host")
        assert code == 0
        assert "clEnqueueNDRangeKernel" in out

    def test_codegen_vectorized(self):
        code, out = run_cli("codegen", "--filter", "gaussian",
                            "--backend", "opencl", "--size", "256",
                            "--vectorize", "4")
        assert code == 0
        assert "vload4" in out

    def test_demo(self):
        code, out = run_cli("demo", "--filter", "median", "--size", "64")
        assert code == 0
        assert "modelled:" in out
        assert "border variants" in out

    def test_table_bilateral(self):
        code, out = run_cli("table", "2")
        assert code == 0
        assert "Generated+Mask" in out
        assert "crash/crash" in out

    def test_table_gaussian(self):
        code, out = run_cli("table", "8")
        assert code == 0
        assert "OpenCV: PPT=8" in out

    def test_table_unknown(self):
        with pytest.raises(SystemExit):
            run_cli("table", "42")

    def test_figure4(self):
        code, out = run_cli("figure4")
        assert code == 0
        assert "heuristic" in out

    def test_explore(self):
        code, out = run_cli("explore", "--device", "hd6970", "--top", "5")
        assert code == 0
        assert "occupancy" in out

    def test_parser_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_module_invocation(self):
        result = subprocess.run(
            [sys.executable, "-m", "repro", "devices"],
            capture_output=True, text=True, timeout=120)
        assert result.returncode == 0
        assert "Tesla C2050" in result.stdout


class TestTraceCommand:
    def test_trace_chrome_to_stdout_validates(self):
        import json

        from repro.obs import validate_chrome_trace

        code, out = run_cli("trace", "--size", "64")
        assert code == 0
        doc = json.loads(out)
        assert validate_chrome_trace(doc) == []
        names = {e["name"] for e in doc["traceEvents"]
                 if e["ph"] == "X"}
        # fresh compile + cache hit + one simulated launch
        for expected in ("compile", "compile.frontend",
                         "compile.cache_lookup", "compile.store",
                         "exec.launch", "sim.evaluate"):
            assert expected in names, expected
        assert "metrics" in doc["otherData"]

    def test_trace_text_format(self):
        code, out = run_cli("trace", "--size", "64", "--format", "text")
        assert code == 0
        assert out.startswith("trace ")
        assert "compile.codegen_final" in out

    def test_trace_json_format(self):
        import json

        code, out = run_cli("trace", "--size", "64", "--format", "json")
        assert code == 0
        doc = json.loads(out)
        assert doc["spans"][0]["name"] == "compile"

    def test_trace_graph_to_file(self, tmp_path):
        import json

        from repro.obs import validate_chrome_trace

        path = tmp_path / "graph-trace.json"
        code, out = run_cli("trace", "--graph", "--workers", "2",
                            "--size", "64", "--out", str(path))
        assert code == 0
        assert out == ""          # rendering went to the file
        with open(path, "r", encoding="utf-8") as fh:
            doc = json.load(fh)
        assert validate_chrome_trace(doc) == []
        names = {e["name"] for e in doc["traceEvents"]
                 if e["ph"] == "X"}
        for expected in ("graph.run", "graph.compile", "graph.schedule",
                         "graph.node", "pool.bind"):
            assert expected in names, expected

    def test_cache_stats_prints_split_hit_rates(self, capsys):
        code, _ = run_cli("demo", "--filter", "gaussian", "--size",
                          "64", "--cache", "--cache-stats")
        assert code == 0
        err = capsys.readouterr().err
        assert "ir_hit_rate=" in err
        assert "frontend_hit_rate=" in err
