"""Repo-level pytest configuration.

Adds the ``--repro-seed`` determinism knob (see ``tests/helpers.py`` for
the fixture) and pins hypothesis to a derandomized profile so property
failures reproduce bit-for-bit in CI.
"""

import os
import sys

_ROOT = os.path.dirname(os.path.abspath(__file__))
for _p in (os.path.join(_ROOT, "src"), _ROOT):
    if _p not in sys.path:
        sys.path.insert(0, _p)


def pytest_addoption(parser):
    parser.addoption(
        "--repro-seed", type=int, default=20120521,
        help="seed for the randomised tests (numpy + random); the "
             "repro_seed fixture in tests/helpers.py applies it")


def pytest_configure(config):
    config.addinivalue_line(
        "markers",
        "requires_cc: test needs a C compiler on PATH (skipped when "
        "repro.runtime.native.find_c_compiler() finds none)")
    try:
        from hypothesis import settings
    except ImportError:
        return
    settings.register_profile("repro", derandomize=True, deadline=None,
                              print_blob=True)
    settings.load_profile("repro")


def pytest_collection_modifyitems(config, items):
    import pytest

    marked = [it for it in items if it.get_closest_marker("requires_cc")]
    if not marked:
        return
    from repro.runtime.native import find_c_compiler
    if find_c_compiler() is not None:
        return
    skip = pytest.mark.skip(reason="no C compiler on PATH")
    for it in marked:
        it.add_marker(skip)


from tests.helpers import repro_seed  # noqa: E402,F401
