"""Vectorised functional execution of kernel IR.

Evaluates a type-checked kernel body for a *set of pixels at once*: the
iteration-space coordinates are NumPy index arrays and every IR expression
maps onto array operations, so a 512x512 image with a 13x13 window runs in
milliseconds instead of minutes.

Boundary handling is applied per boundary *region* with exactly the
side-limited index adjustments the generated device code uses
(:data:`repro.backends.emitter.BH_HELPERS`): a thread block classified as a
top-left region only guards the low sides.  :func:`sample_accessor` is the
NumPy twin of those C helpers; a property test pins the two to ``np.pad``
semantics.

Arithmetic respects the IR types — float32 kernels compute in float32, and
integer division/modulo follow C (truncate toward zero) semantics, matching
what the CUDA/OpenCL code would produce.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np

from ..dsl.accessor import Accessor
from ..dsl.boundary import Boundary
from ..backends.border import Side
from ..errors import DeviceFault, VerificationError
from ..intrinsics import resolve
from ..ir.nodes import (
    AccessorRead,
    Assign,
    BinOp,
    BoolConst,
    Call,
    Cast,
    Expr,
    FloatConst,
    ForRange,
    GidX,
    GidY,
    If,
    IntConst,
    KernelIR,
    MaskRead,
    OutputWrite,
    Select,
    Stmt,
    UnOp,
    VarDecl,
    VarRef,
)
from ..types import BOOL, INT, ScalarType

_OUTPUT_SLOT = "__output__"


# --------------------------------------------------------------------------
# Side-limited boundary sampling (NumPy twin of the C bh_* helpers)
# --------------------------------------------------------------------------


def _adjust_axis(idx: np.ndarray, n: int, side: Side,
                 mode: Boundary) -> np.ndarray:
    if side == Side.NONE or mode in (Boundary.UNDEFINED, Boundary.CONSTANT):
        return idx
    if mode == Boundary.CLAMP:
        if side == Side.LO:
            return np.maximum(idx, 0)
        if side == Side.HI:
            return np.minimum(idx, n - 1)
        return np.clip(idx, 0, n - 1)
    if mode == Boundary.REPEAT:
        if side == Side.LO:
            return np.where(idx < 0, idx + n, idx)
        if side == Side.HI:
            return np.where(idx >= n, idx - n, idx)
        m = np.mod(idx, n)
        return m
    if mode == Boundary.MIRROR:
        if side == Side.LO:
            return np.where(idx < 0, -1 - idx, idx)
        if side == Side.HI:
            return np.where(idx >= n, 2 * n - 1 - idx, idx)
        m = np.mod(idx, 2 * n)
        return np.where(m < n, m, 2 * n - 1 - m)
    raise VerificationError(f"unhandled boundary mode {mode}")


def sample_accessor(accessor: Accessor, ix: np.ndarray, iy: np.ndarray,
                    side_x: Side, side_y: Side,
                    faults_on_oob: bool) -> np.ndarray:
    """Read pixels at absolute indices with region-limited boundary
    handling — the executor-side equivalent of the generated read lowering.
    """
    from ..dsl.interpolate import InterpolatedAccessor
    from .staging import TileAccessor
    if isinstance(accessor, TileAccessor):
        # scratchpad path: boundary handling happened during staging
        return accessor.sample_tile(ix, iy)
    if isinstance(accessor, InterpolatedAccessor):
        # resampling taps land anywhere: always full boundary handling
        return accessor.sample(ix, iy)
    img = accessor.image
    mode = accessor.boundary_mode
    w, h = img.width, img.height

    if mode == Boundary.UNDEFINED:
        oob = (ix < 0) | (ix >= w) | (iy < 0) | (iy >= h)
        if np.any(oob):
            if faults_on_oob:
                raise DeviceFault(
                    f"out-of-bounds access on image {img.name} with "
                    f"undefined boundary handling")
            # value is unspecified: deterministically return the clamped
            # neighbour (real hardware would return garbage)
            ix = np.clip(ix, 0, w - 1)
            iy = np.clip(iy, 0, h - 1)
        return img.pixels[iy, ix]

    if mode == Boundary.CONSTANT:
        oob_parts = []
        if side_x.needs_lo():
            oob_parts.append(ix < 0)
        if side_x.needs_hi():
            oob_parts.append(ix >= w)
        if side_y.needs_lo():
            oob_parts.append(iy < 0)
        if side_y.needs_hi():
            oob_parts.append(iy >= h)
        cx = _adjust_axis(ix, w, side_x, Boundary.CLAMP)
        cy = _adjust_axis(iy, h, side_y, Boundary.CLAMP)
        values = img.pixels[cy, cx]
        if not oob_parts:
            return values
        oob = oob_parts[0]
        for part in oob_parts[1:]:
            oob = oob | part
        const = img.pixel_type.np_dtype.type(accessor.boundary_constant)
        return np.where(oob, const, values)

    ax = _adjust_axis(ix, w, side_x, mode)
    ay = _adjust_axis(iy, h, side_y, mode)
    return img.pixels[ay, ax]


# --------------------------------------------------------------------------
# Expression evaluation
# --------------------------------------------------------------------------


def _c_int_div(a, b):
    """C integer division: truncation toward zero."""
    q = np.floor_divide(a, b)
    r = np.remainder(a, b)
    correction = (r != 0) & ((a < 0) != (b < 0))
    return q + correction


def _c_int_mod(a, b):
    """C integer remainder: sign follows the dividend."""
    return a - _c_int_div(a, b) * b


def _as_dtype(value, t: Optional[ScalarType]):
    if t is None:
        return value
    if np.isscalar(value) or isinstance(value, np.generic):
        return t.np_dtype.type(value)
    return np.asarray(value).astype(t.np_dtype, copy=False)


class ExecutionContext:
    """Everything one region evaluation needs."""

    def __init__(self, kernel: KernelIR,
                 accessors: Dict[str, Accessor],
                 gx: np.ndarray, gy: np.ndarray,
                 side_x: Side = Side.BOTH, side_y: Side = Side.BOTH,
                 faults_on_oob: bool = False):
        self.kernel = kernel
        self.accessors = accessors
        self.gx = gx
        self.gy = gy
        self.side_x = side_x
        self.side_y = side_y
        self.faults_on_oob = faults_on_oob
        self.masks = {m.name: np.asarray(m.coefficients)
                      for m in kernel.masks if m.coefficients is not None}
        missing = [m.name for m in kernel.masks if m.coefficients is None]
        if missing:
            raise VerificationError(
                f"masks without coefficients: {', '.join(missing)}")
        self.params = {p.name: p.value for p in kernel.params}

    def eval(self, e: Expr, env: Dict[str, object]):
        if isinstance(e, IntConst):
            return _as_dtype(e.value, e.type or INT)
        if isinstance(e, FloatConst):
            return _as_dtype(e.value, e.type)
        if isinstance(e, BoolConst):
            return np.bool_(e.value)
        if isinstance(e, VarRef):
            if e.name in env:
                return env[e.name]
            if e.name in self.params:
                return _as_dtype(self.params[e.name], e.type)
            raise VerificationError(f"unbound variable {e.name!r}")
        if isinstance(e, GidX):
            return self.gx
        if isinstance(e, GidY):
            return self.gy
        if isinstance(e, AccessorRead):
            dx = self.eval(e.dx, env)
            dy = self.eval(e.dy, env)
            ix = self.gx + dx
            iy = self.gy + dy
            acc = self.accessors[e.accessor]
            return sample_accessor(acc, np.asarray(ix), np.asarray(iy),
                                   self.side_x, self.side_y,
                                   self.faults_on_oob)
        if isinstance(e, MaskRead):
            coeffs = self.masks[e.mask]
            h, w = coeffs.shape
            dx = self.eval(e.dx, env)
            dy = self.eval(e.dy, env)
            return coeffs[np.asarray(dy) + h // 2, np.asarray(dx) + w // 2]
        if isinstance(e, UnOp):
            v = self.eval(e.operand, env)
            if e.op == "-":
                return -v
            if e.op == "+":
                return v
            if e.op == "!":
                return ~np.asarray(v, dtype=bool)
            if e.op == "~":
                return ~v
        if isinstance(e, BinOp):
            return self._binop(e, env)
        if isinstance(e, Call):
            intr = resolve(e.func)
            args = [self.eval(a, env) for a in e.args]
            result = intr.np_func(*args)
            return _as_dtype(result, e.type)
        if isinstance(e, Cast):
            v = self.eval(e.operand, env)
            if e.target == BOOL:
                return np.asarray(v, dtype=bool) \
                    if not np.isscalar(v) else np.bool_(bool(v))
            if e.target.is_integer and not e.target == BOOL:
                # C float->int casts truncate toward zero
                v = np.trunc(v) if np.asarray(v).dtype.kind == "f" else v
            return _as_dtype(v, e.target)
        if isinstance(e, Select):
            cond = self.eval(e.cond, env)
            a = self.eval(e.if_true, env)
            b = self.eval(e.if_false, env)
            return _as_dtype(np.where(cond, a, b), e.type)
        raise VerificationError(
            f"cannot evaluate expression {type(e).__name__}")

    def _binop(self, e: BinOp, env: Dict[str, object]):
        lhs = self.eval(e.lhs, env)
        rhs = self.eval(e.rhs, env)
        op = e.op
        is_int = e.type is not None and e.type.is_integer \
            and e.type != BOOL
        with np.errstate(divide="ignore", invalid="ignore",
                         over="ignore"):
            if op == "+":
                return lhs + rhs
            if op == "-":
                return lhs - rhs
            if op == "*":
                return lhs * rhs
            if op == "/":
                if is_int:
                    return _as_dtype(_c_int_div(lhs, rhs), e.type)
                return lhs / rhs
            if op == "%":
                return _as_dtype(_c_int_mod(lhs, rhs), e.type)
            if op == "<<":
                return lhs << rhs
            if op == ">>":
                return lhs >> rhs
            if op == "&":
                return lhs & rhs
            if op == "|":
                return lhs | rhs
            if op == "^":
                return lhs ^ rhs
            if op == "<":
                return lhs < rhs
            if op == "<=":
                return lhs <= rhs
            if op == ">":
                return lhs > rhs
            if op == ">=":
                return lhs >= rhs
            if op == "==":
                return lhs == rhs
            if op == "!=":
                return lhs != rhs
            if op == "&&":
                return np.asarray(lhs, dtype=bool) & np.asarray(rhs,
                                                                dtype=bool)
            if op == "||":
                return np.asarray(lhs, dtype=bool) | np.asarray(rhs,
                                                                dtype=bool)
        raise VerificationError(f"unknown operator {op!r}")

    # -- statements ----------------------------------------------------

    def run_body(self, body, env: Dict[str, object]) -> None:
        for s in body:
            self.run_stmt(s, env)

    def run_stmt(self, s: Stmt, env: Dict[str, object]) -> None:
        if isinstance(s, VarDecl):
            env[s.name] = _as_dtype(self.eval(s.init, env), s.type)
        elif isinstance(s, Assign):
            current = env.get(s.name)
            value = self.eval(s.value, env)
            if current is not None and hasattr(current, "dtype"):
                value = _as_dtype(value, None)
                value = np.asarray(value).astype(
                    np.asarray(current).dtype, copy=False)
            env[s.name] = value
        elif isinstance(s, OutputWrite):
            env[_OUTPUT_SLOT] = _as_dtype(
                self.eval(s.value, env), self.kernel.pixel_type)
        elif isinstance(s, ForRange):
            start = self._scalar(self.eval(s.start, env), "loop start")
            stop = self._scalar(self.eval(s.stop, env), "loop stop")
            step = self._scalar(self.eval(s.step, env), "loop step")
            if step == 0:
                raise VerificationError("loop step must be non-zero")
            for v in range(start, stop, step):
                env[s.var] = np.int32(v)
                self.run_body(s.body, env)
            env.pop(s.var, None)
        elif isinstance(s, If):
            self._run_if(s, env)
        else:
            raise VerificationError(
                f"cannot execute statement {type(s).__name__}")

    @staticmethod
    def _scalar(v, what: str) -> int:
        arr = np.asarray(v)
        if arr.ndim != 0:
            raise VerificationError(
                f"{what} must be uniform across the block, got an array")
        return int(arr)

    def _run_if(self, s: If, env: Dict[str, object]) -> None:
        cond = self.eval(s.cond, env)
        cond_arr = np.asarray(cond)
        if cond_arr.ndim == 0:
            # uniform branch: no divergence
            self.run_body(s.then_body if bool(cond_arr) else s.else_body,
                          env)
            return
        # divergent branch: execute both sides on copies, merge per lane
        then_env = dict(env)
        else_env = dict(env)
        self.run_body(s.then_body, then_env)
        self.run_body(s.else_body, else_env)
        names = set(then_env) | set(else_env)
        for name in names:
            tv = then_env.get(name)
            ev = else_env.get(name)
            if tv is None or ev is None:
                # declared on one side only: dies at the join (block scope)
                continue
            if tv is ev:
                env[name] = tv
            else:
                env[name] = np.where(cond_arr, tv, ev)


def evaluate_body(kernel: KernelIR, accessors: Dict[str, Accessor],
                  gx: np.ndarray, gy: np.ndarray,
                  side_x: Side = Side.BOTH, side_y: Side = Side.BOTH,
                  faults_on_oob: bool = False) -> np.ndarray:
    """Evaluate *kernel* for pixels (gx, gy); returns the output values
    (same shape as gx) in the kernel's pixel type.

    Each evaluation (one border region of one launch) is recorded as a
    ``sim.evaluate`` span, so a trace of ``execute()`` shows where the
    simulated device time actually went region by region.
    """
    from ..obs import span
    with span("sim.evaluate", kernel=kernel.name, pixels=int(gx.size)):
        ctx = ExecutionContext(kernel, accessors, gx, gy, side_x, side_y,
                               faults_on_oob)
        env: Dict[str, object] = {}
        ctx.run_body(kernel.body, env)
    if _OUTPUT_SLOT not in env:
        raise VerificationError(
            f"kernel {kernel.name!r} did not write output()")
    out = env[_OUTPUT_SLOT]
    result = np.broadcast_to(
        np.asarray(out, dtype=kernel.pixel_type.np_dtype), gx.shape)
    return np.array(result, copy=True)


def execute_pixels(kernel: KernelIR, accessors: Dict[str, Accessor],
                   xs: np.ndarray, ys: np.ndarray,
                   sides: Tuple[Side, Side] = (Side.BOTH, Side.BOTH),
                   faults_on_oob: bool = False) -> np.ndarray:
    """Convenience wrapper used by tests: evaluate arbitrary pixel sets."""
    return evaluate_body(kernel, accessors, np.asarray(xs), np.asarray(ys),
                         sides[0], sides[1], faults_on_oob)
