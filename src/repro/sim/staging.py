"""Block-accurate scratchpad-staging simulation (Listing 7).

When a kernel is generated with ``use_smem``, each block first stages its
input tile (block extent + window halo, boundary-adjusted) into scratchpad
memory and the body then reads the tile instead of global memory.  This
module executes exactly those semantics in NumPy, per block:

* :func:`stage_tile` fills the tile with the same index arithmetic the
  emitted staging loops use (``_ix = blockIdx.x * BSX + _sx - HALF_X``
  followed by the region's side-limited adjustment);
* :class:`TileAccessor` redirects the body's reads into the tile, with no
  further boundary handling — mirroring the generated phase-2 reads
  ``_smemIN[threadIdx.y + dy + HALF_Y][threadIdx.x + dx + HALF_X]``.

``simulate_launch`` uses this path for ``use_smem`` kernels, so the test
suite can demand bit-exact agreement between staged and direct execution
for every boundary mode, block shape and region — validating the
Listing-7 lowering the GPU backends emit.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from ..backends.border import BorderRegion
from ..dsl.accessor import Accessor
from ..dsl.boundary import Boundary
from .executor import sample_accessor


def stage_tile(accessor: Accessor, block_origin: Tuple[int, int],
               block: Tuple[int, int], window: Tuple[int, int],
               region: BorderRegion,
               faults_on_oob: bool = False) -> np.ndarray:
    """Phase 1: cooperatively load one block's input tile (with halo).

    *block_origin* is the top-left pixel (x0, y0) the block covers.  The
    returned tile has shape (by + wy - 1, bx + wx - 1); the bank-conflict
    padding column of the generated code holds no data and is omitted.
    """
    bx, by = block
    wx, wy = window
    hx, hy = wx // 2, wy // 2
    x0, y0 = block_origin
    tile_w = bx + wx - 1
    tile_h = by + wy - 1
    sx = np.arange(tile_w)
    sy = np.arange(tile_h)
    ix, iy = np.meshgrid(x0 + sx - hx, y0 + sy - hy)
    # identical to the generated staging: the region's side-limited
    # adjustment applied to the raw tile indices
    return np.asarray(sample_accessor(accessor, ix, iy, region.side_x,
                                      region.side_y, faults_on_oob))


class TileAccessor:
    """Phase 2: reads served from the staged tile.

    Duck-types the subset of :class:`Accessor` the executor touches.  Any
    read outside the staged halo is a staging bug — raise loudly instead
    of silently clamping.
    """

    def __init__(self, accessor: Accessor, tile: np.ndarray,
                 block_origin: Tuple[int, int],
                 window: Tuple[int, int]):
        self._accessor = accessor
        self.image = accessor.image
        self._tile = tile
        self._x0, self._y0 = block_origin
        self._hx, self._hy = window[0] // 2, window[1] // 2

    @property
    def boundary_mode(self) -> Boundary:
        # staging already applied the boundary handling
        return Boundary.UNDEFINED

    @property
    def pixel_type(self):
        return self._accessor.pixel_type

    def sample_tile(self, ix, iy) -> np.ndarray:
        tx = np.asarray(ix) - self._x0 + self._hx
        ty = np.asarray(iy) - self._y0 + self._hy
        th, tw = self._tile.shape
        if np.any((tx < 0) | (tx >= tw) | (ty < 0) | (ty >= th)):
            raise IndexError(
                "kernel read outside the staged scratchpad tile — the "
                "declared window is smaller than the actual access "
                "pattern")
        return self._tile[ty, tx]
