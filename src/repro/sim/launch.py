"""Block-accurate kernel launch simulation.

Drives the functional executor region by region, using the same
:func:`repro.backends.border.classify_regions` decomposition the code
generators emit as the Listing-8 dispatch.  Validates the launch
configuration against the device model first (invalid configurations raise
:class:`~repro.errors.LaunchError`, the paper's "kernel launch error at
run-time") and applies device-specific global-memory padding to the images.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Optional

import numpy as np

from ..backends.base import BorderMode, CodegenOptions
from ..backends.border import RegionLayout, Side, classify_regions
from ..dsl.accessor import Accessor
from ..dsl.iteration_space import IterationSpace
from ..errors import LaunchError, MappingError
from ..hwmodel.device import DeviceSpec
from ..hwmodel.occupancy import Occupancy, compute_occupancy
from ..ir.nodes import KernelIR
from .executor import evaluate_body


@dataclasses.dataclass
class LaunchResult:
    """What a simulated kernel launch reports back."""

    grid: tuple
    block: tuple
    occupancy: Occupancy
    layout: RegionLayout
    regions_executed: int
    pixels_written: int
    estimated_ms: Optional[float] = None


def _max_window(kernel: KernelIR) -> tuple:
    wx = wy = 1
    for acc in kernel.accessors:
        wx = max(wx, acc.window[0])
        wy = max(wy, acc.window[1])
    return (wx, wy)


def padding_alignment(device: DeviceSpec) -> int:
    """Row-stride alignment (in elements) the runtime pads images to on
    *device* — the Section-II global-memory padding for coalescing.  The
    graph runtime's buffer pool pre-pads its arena slices to this so a
    later launch never re-allocates."""
    return max(1, device.memory.coalesce_segment // 4)


def _region_sides(options: CodegenOptions, region) -> tuple:
    """Sides the executed variant guards, mirroring
    ``KernelEmitter._regions_to_emit``."""
    if options.border == BorderMode.SPECIALIZED:
        return (region.side_x, region.side_y)
    if options.border in (BorderMode.INLINE, BorderMode.HARDWARE):
        return (Side.BOTH, Side.BOTH)
    return (Side.NONE, Side.NONE)


def simulate_launch(kernel: KernelIR,
                    accessors: Dict[str, Accessor],
                    iteration_space: IterationSpace,
                    options: CodegenOptions,
                    device: DeviceSpec,
                    regs_per_thread: int = 16,
                    smem_per_block: int = 0) -> LaunchResult:
    """Execute *kernel* over *iteration_space* on the simulated *device*.

    Writes results into the iteration space's image and returns launch
    metadata.  Raises:

    * :class:`LaunchError` — configuration invalid for the device,
    * :class:`~repro.errors.DeviceFault` — undefined-boundary kernel read
      out of bounds on a fault-enforcing device (the paper's "crash" rows).
    """
    options.validate()
    if not device.supports_backend(options.backend):
        raise LaunchError(
            f"{device.name} does not support the {options.backend} backend")
    try:
        occ = compute_occupancy(device, options.block[0], options.block[1],
                                regs_per_thread, smem_per_block)
    except MappingError as exc:
        raise LaunchError(str(exc)) from exc

    # device-specific global memory padding for coalescing (Section II)
    alignment = padding_alignment(device)
    for acc in accessors.values():
        acc.image.apply_padding(alignment)
    iteration_space.image.apply_padding(alignment)

    window = _max_window(kernel)
    is_ = iteration_space
    layout = classify_regions(is_.width, is_.height, options.block, window)

    use_staging = options.use_smem and window != (1, 1)
    out = is_.image.pixels
    total_written = 0
    regions_executed = 0
    for region in layout.regions:
        bx, by = options.block
        x0 = region.bx_lo * bx
        x1 = min(region.bx_hi * bx, is_.width)
        y0 = region.by_lo * by
        y1 = min(region.by_hi * by, is_.height)
        if x1 <= x0 or y1 <= y0:
            continue
        side_x, side_y = _region_sides(options, region)
        if use_staging:
            written = _execute_region_staged(
                kernel, accessors, is_, options, device, region,
                (x0, x1, y0, y1), (side_x, side_y), window, out)
            total_written += written
            regions_executed += 1
            continue
        xs = np.arange(x0, x1) + is_.offset_x
        ys = np.arange(y0, y1) + is_.offset_y
        gx, gy = np.meshgrid(xs, ys)
        values = evaluate_body(kernel, accessors, gx, gy, side_x, side_y,
                               faults_on_oob=device.faults_on_oob)
        out[y0 + is_.offset_y:y1 + is_.offset_y,
            x0 + is_.offset_x:x1 + is_.offset_x] = values
        total_written += values.size
        regions_executed += 1

    return LaunchResult(
        grid=layout.grid,
        block=options.block,
        occupancy=occ,
        layout=layout,
        regions_executed=regions_executed,
        pixels_written=total_written,
    )


def _execute_region_staged(kernel, accessors, is_, options, device,
                           region, pixel_range, sides, window, out) -> int:
    """Block-by-block execution through staged scratchpad tiles —
    Listing 7 semantics (see :mod:`repro.sim.staging`)."""
    from .staging import TileAccessor, stage_tile

    x0, x1, y0, y1 = pixel_range
    side_x, side_y = sides
    bx, by = options.block
    written = 0
    # iterate the region's blocks (block origins in iteration space)
    # region pixel ranges start at block boundaries by construction
    for block_y0 in range(y0, y1, by):
        for block_x0 in range(x0, x1, bx):
            px1 = min(block_x0 + bx, x1)
            py1 = min(block_y0 + by, y1)
            origin = (block_x0 + is_.offset_x, block_y0 + is_.offset_y)
            staged = {}
            for name, acc in accessors.items():
                info_window = kernel.accessor(name).window                     if any(a.name == name for a in kernel.accessors)                     else (1, 1)
                if info_window != (1, 1):
                    tile = stage_tile(acc, origin, (bx, by), window,
                                      region,
                                      faults_on_oob=device.faults_on_oob)
                    staged[name] = TileAccessor(acc, tile, origin, window)
                else:
                    staged[name] = acc
            xs = np.arange(block_x0, px1) + is_.offset_x
            ys = np.arange(block_y0, py1) + is_.offset_y
            gx, gy = np.meshgrid(xs, ys)
            values = evaluate_body(kernel, staged, gx, gy, side_x,
                                   side_y,
                                   faults_on_oob=device.faults_on_oob)
            out[block_y0 + is_.offset_y:py1 + is_.offset_y,
                block_x0 + is_.offset_x:px1 + is_.offset_x] = values
            written += values.size
    return written
