"""Analytical GPU timing model.

Estimates kernel execution time from first-principles mechanisms — the ones
the paper credits for its measured effects — rather than per-table lookup:

* **compute**: the per-pixel instruction mix issued at the device's ALU rate
  (VLIW underutilisation for scalar code on AMD, dual-issue on GT200), with
  transcendental work charged against a separate SFU throughput;
* **boundary conditionals**: per-access adjustment cost depending on the
  boundary mode (clamp is two min/max, repeat a modulo, constant a
  predicated select) — paid by *every* pixel with inline handling, but only
  by the border-region fraction with the paper's nine-region specialisation,
  which is what makes generated code's time constant across modes;
* **memory**: per-pixel global traffic after cache/texture reuse,
  coalescing efficiency of the block shape, the scratchpad-staging
  alternative (less traffic, but a barrier and lost latency hiding —
  Section IV-A explains why staging rarely pays for small windows);
* **constant memory**: broadcast mask reads are ~1 op on NVIDIA; pricier on
  the era's AMD OpenCL stack;
* **occupancy**: latency hiding degrades below a knee;
* **fixed costs**: kernel launch overhead, backend (CUDA vs OpenCL)
  toolchain efficiency, image-object path penalty.

Absolute milliseconds are calibrated per device to land in the paper's
range; every *relative* effect (who wins, by what factor, what stays
constant) is produced by the mechanisms above.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Optional, Tuple

from ..backends.base import BorderMode, CodegenOptions, MaskMemory
from ..backends.border import classify_regions
from ..dsl.boundary import Boundary
from ..errors import LaunchError, MappingError
from ..hwmodel.device import DeviceSpec
from ..hwmodel.occupancy import compute_occupancy
from ..ir.analysis import InstructionMix

#: ALU-op cost of full (both-side, both-axis) boundary adjustment per read,
#: calibrated against the per-mode deltas of the paper's manual rows
#: (Tables II/IV): clamp is min/max (often free via saturating address
#: arithmetic), repeat needs integer modulo, constant predicates every load.
BOUNDARY_ADJUST_COST: Dict[Boundary, float] = {
    Boundary.UNDEFINED: 0.0,
    Boundary.CLAMP: 5.0,
    Boundary.MIRROR: 9.0,
    Boundary.REPEAT: 18.0,
    Boundary.CONSTANT: 45.0,
}

#: Single-side adjustments (specialised border regions) cost roughly half.
_SPECIALIZED_SIDE_FACTOR = 0.55

#: Divergence penalty multiplier applied to inline boundary conditionals
#: (border/interior lanes mixing within a warp; mostly hidden by ILP).
_INLINE_DIVERGENCE = 1.0

#: Overlap imperfection: the shorter of compute/memory still steals issue
#: slots from the longer.
_OVERLAP_TAX = 0.15

#: Occupancy knee: below this, latency hiding degrades linearly.
_OCCUPANCY_KNEE = 0.35

#: Scratchpad staging loses part of the multithreading benefit (the paper's
#: stated reason staging rarely helps local operators with small windows).
_SMEM_HIDING_LOSS = 1.12
_SMEM_BARRIER_OPS = 15.0       # per pixel: barrier + staging loop control

#: Fixed costs every thread pays (index setup, scheduling, guards) and
#: every output pixel pays (output addressing) — dominant for small
#: filters (Tables VIII/IX), negligible for the bilateral (Tables II-VII).
#: Mapping several pixels to one thread (OpenCV's PPT=8) amortises the
#: per-thread share, which is exactly why that variant wins.
_THREAD_FIXED_OPS = 90.0
_PIXEL_FIXED_OPS = 20.0

#: OpenCL image-object access overhead: float4 unpack per read plus the
#: write_imagef path (visible on small kernels, hidden under compute on
#: the bilateral — matches Tables III vs VIII).
_OPENCL_IMAGE_READ_OPS = 1.2
_OPENCL_IMAGE_WRITE_OPS = 30.0


@dataclasses.dataclass
class LaunchSpec:
    """Inputs to the timing model for one kernel variant."""

    device: DeviceSpec
    backend: str
    width: int
    height: int
    block: Tuple[int, int]
    window: Tuple[int, int]
    mix: InstructionMix                  # per output pixel
    boundary_mode: Boundary = Boundary.CLAMP
    border: BorderMode = BorderMode.SPECIALIZED
    use_texture: bool = False
    use_smem: bool = False
    mask_memory: MaskMemory = MaskMemory.CONSTANT
    regs_per_thread: int = 20
    smem_bytes_per_block: int = 0
    pixel_bytes: int = 4
    kernel_launches: int = 1
    #: output pixels computed by one thread (OpenCV's PPT); amortises the
    #: per-thread fixed cost
    pixels_per_thread: int = 1
    #: scale on the per-pixel/per-thread fixed costs; < 1 for hand-tuned
    #: library kernels with leaner prologues (OpenCV)
    fixed_ops_scale: float = 1.0
    #: vector width of the generated code (Section VIII): floatN
    #: arithmetic fills AMD's VLIW lanes that scalar code leaves idle
    vector_width: int = 1
    #: multiplicative inefficiency of the producing framework
    #: (1.0 = hand-tuned / generated; RapidMind ~2)
    framework_overhead: float = 1.0
    #: extra per-pixel ALU ops the framework adds (managed arrays etc.)
    framework_ops_per_read: float = 0.0
    #: per-read boundary-adjustment cost override (frameworks with their
    #: own bounds machinery, e.g. RapidMind's managed arrays)
    boundary_cost_override: Optional[float] = None
    #: full per-mode cost table override (libraries with their own border
    #: interpolation, e.g. OpenCV — whose Mirror is its slowest mode)
    boundary_cost_table: Optional[Dict[Boundary, float]] = None

    @classmethod
    def from_options(cls, device: DeviceSpec, options: CodegenOptions,
                     width: int, height: int, window: Tuple[int, int],
                     mix: InstructionMix,
                     boundary_mode: Boundary = Boundary.CLAMP,
                     regs_per_thread: int = 20,
                     smem_bytes_per_block: int = 0,
                     **overrides) -> "LaunchSpec":
        return cls(
            device=device,
            backend=options.backend,
            width=width,
            height=height,
            block=options.block,
            window=window,
            mix=mix,
            boundary_mode=boundary_mode,
            border=options.border,
            use_texture=options.use_texture,
            use_smem=options.use_smem,
            mask_memory=options.mask_memory,
            regs_per_thread=regs_per_thread,
            smem_bytes_per_block=smem_bytes_per_block,
            vector_width=options.vectorize,
            pixels_per_thread=options.pixels_per_thread,
            **overrides,
        )


@dataclasses.dataclass
class TimingBreakdown:
    """Estimated execution time with its components (milliseconds)."""

    total_ms: float
    compute_ms: float
    memory_ms: float
    boundary_ms: float
    launch_ms: float
    occupancy: float
    hiding_factor: float
    border_thread_fraction: float
    traffic_bytes_per_pixel: float
    notes: Dict[str, float] = dataclasses.field(default_factory=dict)


def _boundary_ops_per_pixel(spec: LaunchSpec) -> Tuple[float, float]:
    """(ops, fraction_of_pixels_paying) for boundary handling."""
    mode = spec.boundary_mode
    per_read = BOUNDARY_ADJUST_COST[mode]
    if spec.boundary_cost_table is not None \
            and mode in spec.boundary_cost_table:
        per_read = spec.boundary_cost_table[mode]
    elif spec.device.flat_boundary_cost is not None \
            and mode != Boundary.UNDEFINED:
        # VLIW predication executes every mode at near-identical cost
        per_read = spec.device.flat_boundary_cost
    if spec.boundary_cost_override is not None \
            and mode != Boundary.UNDEFINED:
        per_read = spec.boundary_cost_override
    reads = spec.mix.global_reads
    if spec.border == BorderMode.HARDWARE:
        return 0.0, 0.0
    if spec.border == BorderMode.NONE or mode == Boundary.UNDEFINED:
        return 0.0, 0.0
    if spec.border == BorderMode.INLINE:
        return per_read * reads * _INLINE_DIVERGENCE, 1.0
    # SPECIALIZED: only border-region blocks pay, at single-side cost,
    # plus a handful of dispatch compares for everyone.  A degenerate
    # layout (image smaller than two border spans) falls back to a single
    # both-sides variant — identical cost to inline handling.
    layout = classify_regions(spec.width, spec.height, spec.block,
                              spec.window)
    if layout.degenerate:
        return per_read * reads * _INLINE_DIVERGENCE, 1.0
    frac = layout.border_block_fraction
    ops = per_read * reads * _SPECIALIZED_SIDE_FACTOR
    return ops, frac


def _coalescing_efficiency(spec: LaunchSpec) -> float:
    dev = spec.device
    bx = spec.block[0]
    seg_elems = max(1, dev.memory.coalesce_segment // spec.pixel_bytes)
    contiguous = min(bx, dev.simd_width)
    eff = min(1.0, contiguous / min(dev.simd_width, seg_elems))
    if spec.use_texture:
        eff = max(eff, 0.85)     # texture cache absorbs misalignment
    return max(eff, 0.125)


def _traffic_bytes_per_pixel(spec: LaunchSpec) -> float:
    """Global DRAM traffic per output pixel (reads + the output write)."""
    dev = spec.device
    reads = max(spec.mix.global_reads, 1.0)
    b = spec.pixel_bytes
    windowed = spec.window != (1, 1)

    if spec.use_smem:
        bx, by = spec.block
        wx, wy = spec.window
        tile = (bx + wx - 1) * (by + wy - 1)
        read_traffic = b * tile / float(bx * by)
    elif spec.use_texture and dev.memory.texture_cache:
        reuse = dev.memory.tex_window_reuse
        read_traffic = b * max(1.0, reads * (1.0 - reuse))
    elif dev.memory.has_l1_cache:
        reuse = dev.memory.l1_window_reuse
        read_traffic = b * max(1.0, reads * (1.0 - reuse))
    else:
        # uncached global loads: every read goes to DRAM, but windowed
        # accesses from neighbouring warps hit open DRAM row buffers and
        # overlapping segments, costing roughly half a dedicated fetch
        read_traffic = b * reads
        if windowed:
            read_traffic *= 0.5
    return read_traffic + b      # + output write


def estimate_time(spec: LaunchSpec) -> TimingBreakdown:
    """Estimate one kernel launch (see module docstring).

    Recorded as a ``sim.estimate`` span when tracing is enabled; the
    model itself keeps no timing state of its own (the old ad-hoc
    perf-counter dicts are gone — :mod:`repro.obs` is the one clock).
    """
    from ..obs import span as _span
    with _span("sim.estimate", device=spec.device.name,
               backend=spec.backend):
        return _estimate_time(spec)


def _estimate_time(spec: LaunchSpec) -> TimingBreakdown:
    dev = spec.device
    if not dev.supports_backend(spec.backend):
        raise LaunchError(
            f"{dev.name} does not support backend {spec.backend!r}")
    try:
        occ = compute_occupancy(dev, spec.block[0], spec.block[1],
                                spec.regs_per_thread,
                                spec.smem_bytes_per_block)
    except MappingError as exc:
        raise LaunchError(str(exc)) from exc

    pixels = float(spec.width * spec.height)

    # ---- compute ---------------------------------------------------------
    be_alu = dev.backend_efficiency.get(spec.backend, 1.0)
    be_sfu = dev.backend_sfu_efficiency.get(spec.backend, 1.0)
    # vectorised code fills VLIW lanes scalar code leaves idle (Section
    # VIII: "First manual vectorization shows that the performance
    # improves significantly on graphics cards from AMD"); on scalar
    # (SIMT) architectures the width is already implicit in the warp
    vliw_util = dev.vliw_scalar_utilization
    if spec.vector_width > 1 and dev.vliw_width > 1:
        vliw_util = min(1.0, vliw_util * spec.vector_width * 0.85)
    alu_rate = (dev.total_alus * dev.clock_ghz * 1e9
                * dev.issue_efficiency * vliw_util
                * be_alu)
    sfu_rate = (dev.total_alus * dev.clock_ghz * 1e9
                * dev.sfu_throughput_ratio * dev.issue_efficiency
                * be_sfu)

    alu_ops = spec.mix.alu
    sfu_ops = spec.mix.sfu
    # each thread produces pixels_per_thread * vector_width outputs;
    # per-thread fixed cost amortises over all of them
    outputs_per_thread = max(1, spec.pixels_per_thread) \
        * max(1, spec.vector_width)
    alu_ops += _PIXEL_FIXED_OPS * spec.fixed_ops_scale
    alu_ops += (_THREAD_FIXED_OPS * spec.fixed_ops_scale
                / outputs_per_thread)
    if spec.backend == "opencl" and spec.use_texture:
        alu_ops += (_OPENCL_IMAGE_READ_OPS * spec.mix.global_reads
                    + _OPENCL_IMAGE_WRITE_OPS)
    # constant-memory mask reads: broadcast on NVIDIA, pricier on AMD
    if spec.mask_memory == MaskMemory.CONSTANT:
        alu_ops += spec.mix.mask_reads * dev.constant_mem_read_cost
    elif spec.mask_memory == MaskMemory.GLOBAL:
        alu_ops += spec.mix.mask_reads * 4.0
    if spec.use_smem:
        alu_ops += _SMEM_BARRIER_OPS
    alu_ops += spec.framework_ops_per_read * spec.mix.global_reads

    bh_ops, bh_frac = _boundary_ops_per_pixel(spec)

    t_compute = pixels * (alu_ops / alu_rate + sfu_ops / sfu_rate)
    t_boundary = pixels * bh_frac * bh_ops / alu_rate

    # ---- memory ----------------------------------------------------------
    traffic = _traffic_bytes_per_pixel(spec)
    eff = _coalescing_efficiency(spec)
    bw = dev.memory.bandwidth_gbps * 1e9 * eff
    t_memory = pixels * traffic / bw
    if spec.backend == "opencl" and spec.use_texture:
        t_memory *= dev.image_path_penalty

    # ---- latency hiding ---------------------------------------------------
    hiding = 1.0
    occupancy = occ.occupancy
    if occupancy < _OCCUPANCY_KNEE:
        hiding = _OCCUPANCY_KNEE / max(occupancy, 0.02)
    if spec.use_smem:
        hiding *= _SMEM_HIDING_LOSS

    t_exec = (max(t_compute + t_boundary, t_memory)
              + _OVERLAP_TAX * min(t_compute + t_boundary, t_memory))
    t_exec *= hiding

    # ---- toolchain & fixed costs -----------------------------------------
    # (backend efficiency is already folded into the issue rates above;
    # memory-side toolchain differences ride on the image-path penalty)
    backend_eff = dev.backend_efficiency.get(spec.backend, 1.0)
    t_exec *= spec.framework_overhead
    t_launch = spec.kernel_launches * dev.kernel_launch_overhead_us * 1e-6
    t_exec = t_exec * spec.kernel_launches + t_launch

    return TimingBreakdown(
        total_ms=t_exec * 1e3,
        compute_ms=t_compute * 1e3,
        memory_ms=t_memory * 1e3,
        boundary_ms=t_boundary * 1e3,
        launch_ms=t_launch * 1e3,
        occupancy=occupancy,
        hiding_factor=hiding,
        border_thread_fraction=bh_frac,
        traffic_bytes_per_pixel=traffic,
        notes={
            "alu_ops_per_pixel": alu_ops,
            "sfu_ops_per_pixel": sfu_ops,
            "boundary_ops_per_pixel": bh_ops,
            "coalesce_efficiency": eff,
            "backend_efficiency": backend_eff,
        },
    )


def estimate_ms(spec: LaunchSpec) -> float:
    """Shorthand: total estimated milliseconds."""
    return estimate_time(spec).total_ms
