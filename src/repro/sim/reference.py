"""Scalar reference interpreter.

Executes a kernel one pixel at a time with plain Python floats/ints and the
full (both-side) boundary handling — deliberately the dumbest possible
implementation, used to cross-validate the vectorised executor and the
region-specialised launch path on small images.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from ..dsl.accessor import Accessor
from ..backends.border import Side
from ..ir.nodes import KernelIR
from .executor import evaluate_body


def execute_reference(kernel: KernelIR, accessors: Dict[str, Accessor],
                      width: int, height: int,
                      offset_x: int = 0, offset_y: int = 0,
                      faults_on_oob: bool = False) -> np.ndarray:
    """Run *kernel* over a width x height iteration space pixel-by-pixel.

    Returns the output array (height x width).  Quadratic in image size —
    only use on small images in tests.
    """
    out = np.zeros((height, width), dtype=kernel.pixel_type.np_dtype)
    for y in range(height):
        for x in range(width):
            gx = np.array([x + offset_x])
            gy = np.array([y + offset_y])
            value = evaluate_body(kernel, accessors, gx, gy,
                                  Side.BOTH, Side.BOTH, faults_on_oob)
            out[y, x] = value[0]
    return out
