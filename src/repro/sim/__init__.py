"""Simulated GPU substrate.

The evaluation hardware of the paper (Tesla C2050, Quadro FX 5800, Radeon
HD 5870/6970) is not available here, so this package provides:

* a **functional executor** (:mod:`repro.sim.executor`) that evaluates the
  kernel IR over the iteration space exactly as the generated device code
  would — including the nine-region boundary specialisation, which
  :mod:`repro.sim.launch` drives block-accurately from the same
  :mod:`repro.backends.border` region math the code generators use;
* a **scalar reference interpreter** (:mod:`repro.sim.reference`) used to
  cross-validate the vectorised executor;
* an **analytical timing model** (:mod:`repro.sim.timing`) expressing the
  mechanisms the paper credits for its results: memory coalescing, texture
  cache reuse, constant-memory broadcast, per-access boundary conditionals
  vs. region specialisation, occupancy-based latency hiding, and kernel
  launch overhead.
"""

from .executor import evaluate_body, execute_pixels  # noqa: F401
from .launch import LaunchResult, simulate_launch  # noqa: F401
from .reference import execute_reference  # noqa: F401
from .timing import LaunchSpec, TimingBreakdown, estimate_time  # noqa: F401
