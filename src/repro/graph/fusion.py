"""Point-operator fusion: merge adjacent point-op nodes into one kernel.

"Point operators are applied to the pixels of the image and solely the
pixel the point operator is applied to contributes to the operation" —
which makes a producer/consumer pair of them trivially fusable: the
consumer's read of the intermediate pixel *is* the producer's output
expression.  Fusing saves a kernel launch, the intermediate image's
global-memory round trip, and (through the scheduler's pool accounting)
its allocation outright.

The pass works on typechecked :class:`~repro.ir.nodes.KernelIR`:

1. eligibility — a node is a *point op* when it has no masks, the
   abstract interpreter proves a pointwise footprint (every
   ``AccessorRead`` offset hull is exactly ``[0..0]x[0..0]`` — see
   :mod:`repro.lint.footprint`), and the body ends in its single
   top-level ``OutputWrite``;
2. a producer fuses into its consumer when both are point ops with the
   same full-image iteration space and compile options, and the
   intermediate has exactly one consumer and is not a pipeline output;
3. the merged IR is the producer's renamed body with its ``OutputWrite``
   demoted to a local (cast to the intermediate's pixel type, so the
   store/reload rounding of the unfused chain is reproduced *exactly*),
   followed by the consumer's renamed body with reads of the fused
   accessor replaced by that local.  The result is re-typechecked and
   content-addressed like any other kernel.

Numerical equivalence to the unfused graph is pinned by differential
tests (randomized chains under hypothesis) — byte-identical, not just
allclose, because the only value that ever crossed the intermediate is
re-materialised through the same cast.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Tuple

from ..errors import GraphError
from ..frontend.parser import parse_kernel
from ..ir.nodes import (
    AccessorRead,
    Assign,
    Cast,
    Expr,
    ForRange,
    If,
    KernelIR,
    OutputWrite,
    Stmt,
    VarDecl,
    VarRef,
)
from ..ir.typecheck import typecheck_kernel
from ..ir.visitors import map_exprs, walk_stmts
from .builder import GraphNode, PipelineGraph


@dataclasses.dataclass
class FusionStats:
    """What the fusion pass did to a graph."""

    nodes_before: int = 0
    nodes_after: int = 0
    pairs_fused: int = 0
    #: bytes of intermediate images eliminated from the dataflow
    intermediate_bytes_eliminated: int = 0

    @property
    def launches_saved(self) -> int:
        return self.nodes_before - self.nodes_after

    def summary(self) -> str:
        return (f"{self.nodes_before} -> {self.nodes_after} nodes "
                f"({self.pairs_fused} fusions, "
                f"{self.intermediate_bytes_eliminated / 1024:.1f} KiB of "
                f"intermediates eliminated)")


# --------------------------------------------------------------------------
# Eligibility
# --------------------------------------------------------------------------


def is_point_op(ir: KernelIR) -> bool:
    """True when the abstract interpreter proves *ir* reads only the
    centre pixel of every accessor and the kernel ends in its single
    top-level OutputWrite.

    The footprint proof subsumes the old syntactic check (1x1 windows
    with literal ``(0, 0)`` offsets) and additionally admits kernels
    whose offsets are provably zero through arithmetic — any widening
    here is sound because fusion substitutes the producer expression at
    the centre pixel, which is exactly what a pointwise footprint
    licenses."""
    if ir.masks:
        return False
    writes = [s for s in walk_stmts(ir.body) if isinstance(s, OutputWrite)]
    if len(writes) != 1:
        return False
    if not (bool(ir.body) and ir.body[-1] is writes[0]):
        return False
    return ir.footprint().is_pointwise()


def node_ir(node: GraphNode) -> KernelIR:
    """The typechecked IR of a graph node (parsed on demand for DSL
    nodes, stored directly on fused ones)."""
    if node.ir is not None:
        return node.ir
    ir = typecheck_kernel(parse_kernel(node.kernel))
    node.ir = ir
    return ir


def _full_cover(node: GraphNode) -> bool:
    is_ = node.iteration_space
    return (is_.offset_x == 0 and is_.offset_y == 0
            and is_.width == is_.image.width
            and is_.height == is_.image.height)


def _same_geometry(a: GraphNode, b: GraphNode) -> bool:
    return (a.iteration_space.width == b.iteration_space.width
            and a.iteration_space.height == b.iteration_space.height
            and a.iteration_space.offset_x == b.iteration_space.offset_x
            and a.iteration_space.offset_y == b.iteration_space.offset_y)


# --------------------------------------------------------------------------
# IR renaming
# --------------------------------------------------------------------------


def _rename_body(body: List[Stmt], var_map: Dict[str, str],
                 acc_map: Dict[str, str]) -> List[Stmt]:
    def rename_expr(e: Expr) -> Expr:
        if isinstance(e, VarRef) and e.name in var_map:
            return dataclasses.replace(e, name=var_map[e.name])
        if isinstance(e, AccessorRead) and e.accessor in acc_map:
            return dataclasses.replace(e, accessor=acc_map[e.accessor])
        return e

    def rename_stmt(s: Stmt) -> Stmt:
        if isinstance(s, VarDecl) and s.name in var_map:
            return dataclasses.replace(s, name=var_map[s.name])
        if isinstance(s, Assign) and s.name in var_map:
            return dataclasses.replace(s, name=var_map[s.name])
        if isinstance(s, ForRange):
            return dataclasses.replace(
                s, var=var_map.get(s.var, s.var),
                body=[rename_stmt(b) for b in s.body])
        if isinstance(s, If):
            return dataclasses.replace(
                s, then_body=[rename_stmt(b) for b in s.then_body],
                else_body=[rename_stmt(b) for b in s.else_body])
        return s

    renamed = map_exprs(body, rename_expr)
    return [rename_stmt(s) for s in renamed]


def _collect_locals(body: List[Stmt]) -> List[str]:
    names = []
    for s in walk_stmts(body):
        if isinstance(s, VarDecl) and s.name not in names:
            names.append(s.name)
        if isinstance(s, ForRange) and s.var not in names:
            names.append(s.var)
    return names


def _renamed_ir(ir: KernelIR, prefix: str
                ) -> Tuple[KernelIR, Dict[str, str]]:
    """Prefix every local, accessor and param of *ir*; returns the new IR
    and the accessor name map (old -> new)."""
    var_map = {n: prefix + n for n in _collect_locals(ir.body)}
    var_map.update({p.name: prefix + p.name for p in ir.params})
    acc_map = {a.name: prefix + a.name for a in ir.accessors}
    body = _rename_body(ir.body, var_map, acc_map)
    accessors = [dataclasses.replace(a, name=acc_map[a.name])
                 for a in ir.accessors]
    params = [dataclasses.replace(p, name=var_map[p.name])
              for p in ir.params]
    return (dataclasses.replace(ir, body=body, accessors=accessors,
                                params=params, masks=list(ir.masks)),
            acc_map)


# --------------------------------------------------------------------------
# The merge
# --------------------------------------------------------------------------


def fuse_pair(producer: GraphNode, consumer: GraphNode,
              intermediate, counter: int) -> GraphNode:
    """Build the fused node replacing ``producer -> consumer``."""
    p_ir = node_ir(producer)
    c_ir = node_ir(consumer)
    p_prefix = f"f{counter}p_"
    c_prefix = f"f{counter}c_"
    p_renamed, p_acc_map = _renamed_ir(p_ir, p_prefix)
    c_renamed, c_acc_map = _renamed_ir(c_ir, c_prefix)

    # which of the consumer's accessors read the intermediate?
    fused_accs = {c_acc_map[attr] for attr, acc
                  in consumer.accessor_objs.items()
                  if acc.image is intermediate}
    if not fused_accs:
        raise GraphError(
            f"fusion: {consumer.name!r} has no accessor on the "
            f"intermediate image {intermediate.name!r}")

    # producer body: OutputWrite -> local, cast through the intermediate's
    # pixel type so the unfused chain's store/reload rounding is preserved
    tmp = f"f{counter}_px"
    inter_type = intermediate.pixel_type
    *p_head, p_write = p_renamed.body
    assert isinstance(p_write, OutputWrite)
    fused_body: List[Stmt] = list(p_head)
    fused_body.append(VarDecl(
        tmp, Cast(inter_type, p_write.value, type=inter_type), inter_type))

    def replace_read(e: Expr) -> Expr:
        if isinstance(e, AccessorRead) and e.accessor in fused_accs:
            return VarRef(tmp, type=inter_type)
        return e

    fused_body.extend(map_exprs(c_renamed.body, replace_read))

    accessors = list(p_renamed.accessors) + [
        a for a in c_renamed.accessors if a.name not in fused_accs]
    merged = KernelIR(
        name=f"{p_ir.name}_{c_ir.name}_fused",
        pixel_type=c_ir.pixel_type,
        body=fused_body,
        accessors=accessors,
        masks=[],
        params=list(p_renamed.params) + list(c_renamed.params),
    )
    merged = typecheck_kernel(merged)

    accessor_objs: Dict[str, object] = {}
    for attr, acc in producer.accessor_objs.items():
        accessor_objs[p_acc_map[attr]] = acc
    for attr, acc in consumer.accessor_objs.items():
        if c_acc_map[attr] not in fused_accs:
            accessor_objs[c_acc_map[attr]] = acc

    fused_from = (producer.fused_from or (producer.name,)) \
        + (consumer.fused_from or (consumer.name,))
    return GraphNode(
        name=f"fused_{counter}_{producer.name}_{consumer.name}",
        iteration_space=consumer.iteration_space,
        accessor_objs=accessor_objs,
        options=dict(consumer.options),
        ir=merged,
        fused_from=fused_from,
    )


def _find_fusable(graph: PipelineGraph
                  ) -> Optional[Tuple[GraphNode, GraphNode, object]]:
    outputs = graph.outputs()
    for producer in graph.nodes:
        inter = producer.output
        if any(inter is o for o in outputs):
            continue
        consumers = graph.consumers_of(inter)
        if len(consumers) != 1:
            continue
        consumer = consumers[0]
        if consumer is producer:
            continue
        if producer.options != consumer.options:
            continue
        if not (_full_cover(producer) and _full_cover(consumer)
                and _same_geometry(producer, consumer)):
            continue
        try:
            if not (is_point_op(node_ir(producer))
                    and is_point_op(node_ir(consumer))):
                continue
        except Exception:
            continue             # unparsable node: leave it alone
        return producer, consumer, inter
    return None


def fuse_point_ops(graph: PipelineGraph) -> FusionStats:
    """Repeatedly merge fusable producer/consumer point-op pairs in
    *graph* (in place) until a fixpoint; returns what happened.  Chains
    collapse fully: ``a -> b -> c`` becomes one node because the fused
    ``a+b`` is itself a point op."""
    stats = FusionStats(nodes_before=len(graph.nodes))
    counter = 0
    while True:
        found = _find_fusable(graph)
        if found is None:
            break
        producer, consumer, inter = found
        fused = fuse_pair(producer, consumer, inter, counter)
        graph.replace_nodes([producer, consumer], fused)
        stats.pairs_fused += 1
        stats.intermediate_bytes_eliminated += inter.bytes
        counter += 1
    stats.nodes_after = len(graph.nodes)
    return stats
