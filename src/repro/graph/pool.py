"""Size-bucketed arena pool for intermediate images.

A naive pipeline materialises one fresh NumPy buffer per intermediate
image and keeps all of them alive to the end — exactly what the hand
chained examples did.  The graph scheduler instead computes the last use
of every intermediate and services its allocation from this pool: a
buffer released after its final consumer is handed to the next
intermediate of a compatible size, so peak footprint tracks the *live
set* of the schedule, not the total number of edges.

Buckets are rounded up to a quantum so images of slightly different
padded sizes share a free list; slices are re-viewed at the image's
dtype and padded row stride (pre-padded to the device alignment via
:func:`repro.sim.launch.padding_alignment`, so the launch-time
``apply_padding`` becomes a no-op and never silently swaps a pooled
buffer for a fresh allocation).
"""

from __future__ import annotations

import dataclasses
import threading
from typing import Dict, List, Tuple

import numpy as np

from ..dsl.image import Image
from ..obs import span


@dataclasses.dataclass
class PoolStats:
    """Accounting for one scheduled execution."""

    #: bytes a naive executor would allocate (every intermediate its own
    #: buffer, all live simultaneously)
    naive_bytes: int = 0
    #: high-water mark of live pooled bytes during execution
    peak_bytes: int = 0
    current_bytes: int = 0
    #: fresh arena allocations
    allocs: int = 0
    #: allocations served by recycling a released buffer
    reuses: int = 0
    releases: int = 0

    @property
    def saved_bytes(self) -> int:
        return max(0, self.naive_bytes - self.peak_bytes)

    def metrics(self) -> Dict[str, int]:
        """The canonical ``pool.*`` metrics namespace
        (:mod:`repro.obs.metrics`)."""
        return {
            "pool.naive_bytes": self.naive_bytes,
            "pool.peak_bytes": self.peak_bytes,
            "pool.current_bytes": self.current_bytes,
            "pool.allocs": self.allocs,
            "pool.reuses": self.reuses,
            "pool.releases": self.releases,
        }

    def summary(self) -> str:
        return (f"naive {self.naive_bytes / 1024:.1f} KiB -> peak "
                f"{self.peak_bytes / 1024:.1f} KiB "
                f"({self.saved_bytes / 1024:.1f} KiB saved), "
                f"{self.allocs} allocs, {self.reuses} reuses")


def first_fit_layout(requests: List[Tuple[int, int, int]]
                     ) -> Tuple[List[int], int, int, int]:
    """Static first-fit offset assignment over lifetime intervals.

    *requests* is a list of ``(start, end, nbytes)`` tuples (inclusive
    interval of schedule indices during which the buffer is live).
    Returns ``(offsets, high_water, allocs, reuses)`` where *offsets*
    parallels *requests* — the compile-time analogue of
    :class:`BufferPool`'s runtime recycling, used by the native graph
    tier to lower the whole arena into one slab.
    """
    offsets: List[int] = []
    high_water = 0
    allocs = reuses = 0
    placed: List[Tuple[int, int, int, int]] = []  # (off, size, start, end)
    for start, end, nbytes in requests:
        active = sorted((off, size) for off, size, s, e in placed
                        if s <= end and start <= e)
        pos = 0
        for off, size in active:
            if off - pos >= nbytes:
                break
            pos = max(pos, off + size)
        if pos + nbytes <= high_water:
            reuses += 1
        else:
            allocs += 1
        placed.append((pos, nbytes, start, end))
        offsets.append(pos)
        high_water = max(high_water, pos + nbytes)
    return offsets, high_water, allocs, reuses


class BufferPool:
    """Arena of byte buffers bucketed by rounded size.

    ``bind(image, alignment)`` installs a pooled, pre-padded backing
    array into *image* (zeroed — identical to a fresh
    :class:`~repro.dsl.image.Image`); ``release(image)`` returns the
    backing to the free list once the scheduler proves the image dead.
    Released images keep a readable view until the buffer is recycled,
    which is why pipeline *outputs* are never pooled.
    """

    def __init__(self, bucket_quantum: int = 4096):
        if bucket_quantum < 1:
            raise ValueError("bucket quantum must be positive")
        self.quantum = bucket_quantum
        self.stats = PoolStats()
        # one lock guards the free lists, the live map and the stats:
        # the scheduler binds/releases from parallel branch workers
        self._lock = threading.Lock()
        self._free: Dict[int, List[np.ndarray]] = {}
        # id(image) -> (raw byte buffer, bucket size)
        self._live: Dict[int, Tuple[np.ndarray, int]] = {}

    def _bucket(self, nbytes: int) -> int:
        return -(-nbytes // self.quantum) * self.quantum

    @staticmethod
    def padded_stride(width: int, alignment: int) -> int:
        return -(-width // alignment) * alignment

    def bind(self, image: Image, alignment: int = 1) -> None:
        """Back *image* with a pooled buffer padded to *alignment*."""
        with span("pool.bind", image=image.name) as sp:
            with self._lock:
                if id(image) in self._live:
                    return
                stride = self.padded_stride(image.width, alignment)
                nbytes = (image.height * stride
                          * image.pixel_type.np_dtype.itemsize)
                bucket = self._bucket(nbytes)
                free = self._free.get(bucket)
                if free:
                    raw = free.pop()
                    self.stats.reuses += 1
                else:
                    raw = np.empty(bucket, dtype=np.uint8)
                    self.stats.allocs += 1
                self._live[id(image)] = (raw, bucket)
                self.stats.current_bytes += bucket
                self.stats.peak_bytes = max(self.stats.peak_bytes,
                                            self.stats.current_bytes)
                sp.attrs["bytes"] = bucket
            view = raw[:nbytes].view(image.pixel_type.np_dtype)
            view = view.reshape(image.height, stride)
            view.fill(0)                      # fresh-Image semantics
            image._data = view
            image._stride = stride

    def release(self, image: Image) -> None:
        """Return *image*'s pooled backing to the free list.

        Idempotent by construction: the second release of an image (and
        a release of one this pool never bound — graph inputs/outputs)
        is a no-op that touches neither the free lists nor the stats,
        so ``current_bytes``/``releases`` cannot drift negative.
        """
        with span("pool.release", image=image.name) as sp:
            with self._lock:
                entry = self._live.pop(id(image), None)
                if entry is None:
                    return
                raw, bucket = entry
                self._free.setdefault(bucket, []).append(raw)
                self.stats.current_bytes -= bucket
                self.stats.releases += 1
                sp.attrs["bytes"] = bucket

    def release_all(self) -> int:
        """Release every live binding; returns how many were released.

        The scheduler's error path runs this so an execution that dies
        mid-schedule still returns ``current_bytes`` to zero instead of
        leaking the not-yet-consumed intermediates.
        """
        with self._lock:
            live = list(self._live.values())
            self._live.clear()
            for raw, bucket in live:
                self._free.setdefault(bucket, []).append(raw)
                self.stats.current_bytes -= bucket
                self.stats.releases += 1
        return len(live)

    def reset(self) -> int:
        """Prepare the arena for the next independent run (``repro
        serve`` resets each worker's pool between requests).

        Every live binding returns to the free lists and the *per-run*
        accounting (``naive_bytes``/``peak_bytes``/``current_bytes``)
        zeroes, but the allocated arenas themselves are kept: a warm
        request whose intermediates fit the existing buckets binds
        entirely through ``reuses`` and allocates nothing.  The
        cumulative counters (``allocs``/``reuses``/``releases``) are
        left running so callers can assert "no new allocations since
        the last reset" by diffing ``allocs``.  Idempotent: a second
        reset is a no-op.  Returns how many live bindings were dropped.
        """
        released = self.release_all()
        with self._lock:
            self.stats.naive_bytes = 0
            self.stats.peak_bytes = 0
            self.stats.current_bytes = 0
        return released

    @property
    def live_count(self) -> int:
        with self._lock:
            return len(self._live)
