"""Size-bucketed arena pool for intermediate images.

A naive pipeline materialises one fresh NumPy buffer per intermediate
image and keeps all of them alive to the end — exactly what the hand
chained examples did.  The graph scheduler instead computes the last use
of every intermediate and services its allocation from this pool: a
buffer released after its final consumer is handed to the next
intermediate of a compatible size, so peak footprint tracks the *live
set* of the schedule, not the total number of edges.

Buckets are rounded up to a quantum so images of slightly different
padded sizes share a free list; slices are re-viewed at the image's
dtype and padded row stride (pre-padded to the device alignment via
:func:`repro.sim.launch.padding_alignment`, so the launch-time
``apply_padding`` becomes a no-op and never silently swaps a pooled
buffer for a fresh allocation).
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Tuple

import numpy as np

from ..dsl.image import Image


@dataclasses.dataclass
class PoolStats:
    """Accounting for one scheduled execution."""

    #: bytes a naive executor would allocate (every intermediate its own
    #: buffer, all live simultaneously)
    naive_bytes: int = 0
    #: high-water mark of live pooled bytes during execution
    peak_bytes: int = 0
    current_bytes: int = 0
    #: fresh arena allocations
    allocs: int = 0
    #: allocations served by recycling a released buffer
    reuses: int = 0
    releases: int = 0

    @property
    def saved_bytes(self) -> int:
        return max(0, self.naive_bytes - self.peak_bytes)

    def summary(self) -> str:
        return (f"naive {self.naive_bytes / 1024:.1f} KiB -> peak "
                f"{self.peak_bytes / 1024:.1f} KiB "
                f"({self.saved_bytes / 1024:.1f} KiB saved), "
                f"{self.allocs} allocs, {self.reuses} reuses")


class BufferPool:
    """Arena of byte buffers bucketed by rounded size.

    ``bind(image, alignment)`` installs a pooled, pre-padded backing
    array into *image* (zeroed — identical to a fresh
    :class:`~repro.dsl.image.Image`); ``release(image)`` returns the
    backing to the free list once the scheduler proves the image dead.
    Released images keep a readable view until the buffer is recycled,
    which is why pipeline *outputs* are never pooled.
    """

    def __init__(self, bucket_quantum: int = 4096):
        if bucket_quantum < 1:
            raise ValueError("bucket quantum must be positive")
        self.quantum = bucket_quantum
        self.stats = PoolStats()
        self._free: Dict[int, List[np.ndarray]] = {}
        # id(image) -> (raw byte buffer, bucket size)
        self._live: Dict[int, Tuple[np.ndarray, int]] = {}

    def _bucket(self, nbytes: int) -> int:
        return -(-nbytes // self.quantum) * self.quantum

    @staticmethod
    def padded_stride(width: int, alignment: int) -> int:
        return -(-width // alignment) * alignment

    def bind(self, image: Image, alignment: int = 1) -> None:
        """Back *image* with a pooled buffer padded to *alignment*."""
        if id(image) in self._live:
            return
        stride = self.padded_stride(image.width, alignment)
        nbytes = image.height * stride * image.pixel_type.np_dtype.itemsize
        bucket = self._bucket(nbytes)
        free = self._free.get(bucket)
        if free:
            raw = free.pop()
            self.stats.reuses += 1
        else:
            raw = np.empty(bucket, dtype=np.uint8)
            self.stats.allocs += 1
        view = raw[:nbytes].view(image.pixel_type.np_dtype)
        view = view.reshape(image.height, stride)
        view.fill(0)                      # fresh-Image semantics
        image._data = view
        image._stride = stride
        self._live[id(image)] = (raw, bucket)
        self.stats.current_bytes += bucket
        self.stats.peak_bytes = max(self.stats.peak_bytes,
                                    self.stats.current_bytes)

    def release(self, image: Image) -> None:
        """Return *image*'s pooled backing to the free list (no-op for
        images this pool never bound, e.g. graph inputs/outputs)."""
        entry = self._live.pop(id(image), None)
        if entry is None:
            return
        raw, bucket = entry
        self._free.setdefault(bucket, []).append(raw)
        self.stats.current_bytes -= bucket
        self.stats.releases += 1

    @property
    def live_count(self) -> int:
        return len(self._live)
