"""Aggregated results of one pipeline-graph execution.

Per-node the scheduler records the modelled :class:`TimingBreakdown`,
the compile wall time and whether the artifact came out of the
compilation cache; graph-wide it folds in the launch count, fusion and
buffer-pool accounting and a snapshot of the shared cache's counters.
``repro graph`` prints :meth:`GraphReport.summary`.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Tuple

from ..sim.timing import TimingBreakdown
from .fusion import FusionStats
from .pool import PoolStats


@dataclasses.dataclass
class NodeReport:
    """One node's launch, as scheduled."""

    name: str
    kernel: str
    device: str
    backend: str
    block: Tuple[int, int]
    #: modelled device time of the launch (timing.total_ms)
    time_ms: float
    timing: TimingBreakdown
    #: wall-clock compile time (0-ish on a cache hit)
    compile_ms: float
    from_cache: bool
    fused_from: Tuple[str, ...] = ()
    #: wall-clock ms of the node's ``graph.node`` span (bind + simulate
    #: + release) — host time, distinct from the modelled ``time_ms``
    wall_ms: float = 0.0
    #: the compile's per-stage wall-clock view
    #: (:data:`repro.obs.schema.TIMING_KEYS` schema — identical key set
    #: on fresh and cached compiles)
    stage_timings: Dict[str, float] = dataclasses.field(
        default_factory=dict)
    #: which tier ran this node: "sim" (Python simulator) or "native"
    #: (compiled graph segment) — per node because a hybrid native run
    #: keeps ineligible nodes on the simulator
    engine: str = "sim"
    #: the node's access footprint as derived by the abstract
    #: interpreter (``KernelIR.footprint().to_dict()`` — per-accessor
    #: read-offset hulls plus the union halo); ``None`` when the node's
    #: kernel could not be analyzed
    footprint: Optional[Dict] = None

    def row(self) -> str:
        origin = "cache" if self.from_cache else "fresh"
        label = self.kernel if not self.fused_from \
            else "+".join(self.fused_from)
        return (f"{self.name:<34} {label:<28} {self.backend:<7}"
                f"{self.block[0]}x{self.block[1]:<4} "
                f"{self.time_ms:>9.4f} ms   compile {self.compile_ms:>8.2f}"
                f" ms ({origin}, {self.engine})")


@dataclasses.dataclass
class GraphReport:
    """Everything one :func:`~repro.graph.scheduler.execute_graph` did."""

    graph_name: str
    nodes: List[NodeReport]
    fusion: FusionStats
    pool: PoolStats
    #: wall-clock ms to compile all nodes (concurrent, shared cache)
    compile_wall_ms: float
    #: wall-clock ms to execute the schedule
    execute_wall_ms: float
    cache_stats: Optional[Dict[str, float]] = None
    #: HIP3xx graph-lint findings (:mod:`repro.lint`), recorded after
    #: fusion so missed-fusion explanations refer to the final schedule
    diagnostics: List = dataclasses.field(default_factory=list)
    #: engine the caller requested: "sim" | "native" | "auto"
    engine: str = "sim"
    #: engine that actually executed — "native" only when the native
    #: tier compiled and ran at least one segment; otherwise "sim"
    #: (transparent fallback)
    engine_used: str = "sim"
    #: why a native/auto request fell back to the simulator (None when
    #: it didn't)
    fallback_reason: Optional[str] = None

    @property
    def launches(self) -> int:
        return len(self.nodes)

    @property
    def native_nodes(self) -> int:
        """How many nodes executed through compiled segments."""
        return sum(1 for n in self.nodes if n.engine == "native")

    @property
    def total_device_ms(self) -> float:
        """Sum of modelled per-launch device times (serial device cost)."""
        return sum(n.time_ms for n in self.nodes)

    @property
    def cache_hits(self) -> int:
        return sum(1 for n in self.nodes if n.from_cache)

    def metrics(self) -> Dict[str, float]:
        """The canonical ``graph.*`` metrics namespace, folded together
        with the run's ``pool.*`` and ``cache.*`` counters — one flat
        dict under the documented schema (docs/OBSERVABILITY.md)."""
        out: Dict[str, float] = {
            "graph.launches": self.launches,
            "graph.fused_away": self.fusion.launches_saved,
            "graph.cache_hits": self.cache_hits,
            "graph.compile_wall_ms": self.compile_wall_ms,
            "graph.execute_wall_ms": self.execute_wall_ms,
            "graph.device_ms": self.total_device_ms,
            "graph.native_nodes": self.native_nodes,
        }
        out.update(self.pool.metrics())
        if self.cache_stats is not None:
            out.update({
                "cache.ir.hits": self.cache_stats.get("hits", 0),
                "cache.ir.disk_hits": self.cache_stats.get("disk_hits", 0),
                "cache.ir.misses": self.cache_stats.get("misses", 0),
                "cache.ir.stores": self.cache_stats.get("stores", 0),
                "cache.ir.hit_rate":
                    self.cache_stats.get("ir_hit_rate", 0.0),
                "cache.frontend.hits":
                    self.cache_stats.get("frontend_hits", 0),
                "cache.frontend.hit_rate":
                    self.cache_stats.get("frontend_hit_rate", 0.0),
            })
        return out

    def node(self, name: str) -> NodeReport:
        for n in self.nodes:
            if n.name == name:
                return n
        raise KeyError(name)

    def summary(self) -> str:
        engine_line = f"  engine:  {self.engine_used}"
        if self.engine_used == "native":
            engine_line += (f" ({self.native_nodes}/{self.launches} "
                            "nodes in compiled segments)")
        elif self.engine != "sim":
            engine_line += f" (requested {self.engine}"
            if self.fallback_reason:
                engine_line += f"; fallback: {self.fallback_reason}"
            engine_line += ")"
        lines = [
            f"pipeline {self.graph_name!r}: {self.launches} launches "
            f"({self.fusion.launches_saved} saved by fusion), "
            f"modelled device time {self.total_device_ms:.4f} ms",
            engine_line,
            f"  compile: {self.compile_wall_ms:.1f} ms wall, "
            f"{self.cache_hits}/{self.launches} nodes from cache",
            f"  execute: {self.execute_wall_ms:.1f} ms wall",
            f"  fusion:  {self.fusion.summary()}",
            f"  pool:    {self.pool.summary()}",
        ]
        if self.cache_stats is not None:
            cs = self.cache_stats
            lines.append(
                f"  cache:   hits={cs.get('hits', 0)} "
                f"misses={cs.get('misses', 0)} "
                f"stores={cs.get('stores', 0)} "
                f"ir_hit_rate={cs.get('ir_hit_rate', 0.0):.1%} "
                f"frontend_hits={cs.get('frontend_hits', 0)} "
                f"frontend_hit_rate="
                f"{cs.get('frontend_hit_rate', 0.0):.1%}")
        if self.diagnostics:
            lines.append(f"  lint:    {len(self.diagnostics)} finding(s)")
            for d in self.diagnostics:
                lines.append("    " + d.format().splitlines()[0])
        lines.append("  nodes:")
        for n in self.nodes:
            lines.append("    " + n.row())
        return "\n".join(lines)
