"""Declarative multi-kernel pipeline graphs.

The paper's applications are *chains* of compiled kernels (Section VI:
median -> Sobel-x/Sobel-y -> gradient magnitude; the multiresolution
filter), but the base runtime only knows single launches.
:class:`PipelineGraph` captures a whole chain declaratively: nodes are
DSL :class:`~repro.dsl.kernel.Kernel` instances (or synthesized fused
IR), edges are :class:`~repro.dsl.image.Image` dataflow — a node that
reads the image another node's iteration space writes depends on it.

Build-time validation catches what would otherwise surface as a launch
fault or silent corruption mid-pipeline: dataflow cycles, two kernels
writing the same image, and undefined-boundary reads that must go out of
bounds because the producer image is smaller than the consumer's
iteration space.

:func:`pipe` is the functional spelling for linear chains — it
allocates the intermediate images and wires accessors so application
code only names the stages.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..dsl.accessor import Accessor
from ..dsl.boundary import Boundary, BoundaryCondition
from ..dsl.image import Image
from ..dsl.iteration_space import IterationSpace
from ..dsl.kernel import Kernel
from ..errors import GraphError
from ..frontend.parser import accessor_objects
from ..ir.nodes import KernelIR


@dataclasses.dataclass
class GraphNode:
    """One kernel launch in a pipeline.

    Regular nodes hold the DSL *kernel* instance; fused nodes (built by
    :mod:`repro.graph.fusion`) hold a synthesized *ir* plus the accessor
    bindings instead.  After execution the scheduler attaches the
    compiled artifact and the per-launch report.
    """

    name: str
    iteration_space: IterationSpace
    accessor_objs: Dict[str, Accessor]
    options: Dict[str, object]
    kernel: Optional[Kernel] = None
    ir: Optional[KernelIR] = None
    #: names of the original nodes a fused node replaces (empty otherwise)
    fused_from: Tuple[str, ...] = ()
    compiled: Optional[object] = None
    report: Optional[object] = None

    @property
    def output(self) -> Image:
        return self.iteration_space.image

    @property
    def inputs(self) -> List[Image]:
        seen: List[Image] = []
        for acc in self.accessor_objs.values():
            if not any(acc.image is img for img in seen):
                seen.append(acc.image)
        return seen

    @property
    def is_fused(self) -> bool:
        return self.ir is not None and self.kernel is None

    def label(self) -> str:
        if self.is_fused:
            return "+".join(self.fused_from) or self.name
        return type(self.kernel).__name__


class PipelineGraph:
    """A DAG of kernel launches over shared images.

    Usage::

        g = PipelineGraph("edge")
        g.add_kernel(median, device="Tesla C2050")
        g.add_kernel(sobel_x)
        g.add_kernel(sobel_y)
        g.add_kernel(magnitude)
        report = g.run(workers=2, cache=True)

    ``add_kernel`` infers the node's inputs from the kernel's Accessor
    attributes and its output from the iteration space; dependencies
    follow from image identity.  Compile options (``device``,
    ``backend``, ``block``...) are per node, so heterogeneous pipelines
    (e.g. one vectorized OpenCL stage on the AMD device) are a node
    argument away.
    """

    def __init__(self, name: str = "pipeline"):
        self.name = name
        self.nodes: List[GraphNode] = []
        self._marked_outputs: List[Image] = []
        self._counter = 0

    # -- construction -------------------------------------------------------

    def add_kernel(self, kernel: Kernel, name: Optional[str] = None,
                   **options) -> GraphNode:
        """Add a DSL kernel as a node; *options* are forwarded to
        :func:`~repro.runtime.compile.compile_kernel` (``backend``,
        ``device``, ``block``, ``vectorize``...)."""
        if not isinstance(kernel, Kernel):
            raise GraphError("add_kernel expects a Kernel instance")
        if name is None:
            name = f"{type(kernel).__name__}_{self._counter}"
        if any(n.name == name for n in self.nodes):
            raise GraphError(f"duplicate node name {name!r}")
        self._counter += 1
        node = GraphNode(
            name=name,
            iteration_space=kernel.iteration_space,
            accessor_objs=accessor_objects(kernel),
            options=dict(options),
            kernel=kernel,
        )
        self._check_single_writer(node)
        self.nodes.append(node)
        return node

    def _check_single_writer(self, node: GraphNode) -> None:
        for other in self.nodes:
            if other.output is node.output:
                raise GraphError(
                    f"image {node.output.name!r} written by both "
                    f"{other.name!r} and {node.name!r}")

    def replace_nodes(self, removed: Sequence[GraphNode],
                      added: GraphNode) -> None:
        """Swap *removed* nodes for one *added* node (fusion), keeping
        schedule-relevant order stable."""
        indices = [self.nodes.index(n) for n in removed]
        insert_at = min(indices)
        for n in removed:
            self.nodes.remove(n)
        self.nodes.insert(insert_at, added)

    def mark_output(self, image: Image) -> None:
        """Pin *image* as a pipeline output: never pooled away and never
        eliminated by fusion, even if some node also consumes it."""
        if not any(image is img for img in self._marked_outputs):
            self._marked_outputs.append(image)

    # -- structure queries ---------------------------------------------------

    def producer_of(self, image: Image) -> Optional[GraphNode]:
        for n in self.nodes:
            if n.output is image:
                return n
        return None

    def consumers_of(self, image: Image) -> List[GraphNode]:
        return [n for n in self.nodes
                if any(inp is image for inp in n.inputs)]

    def dependencies(self, node: GraphNode) -> List[GraphNode]:
        deps = []
        for img in node.inputs:
            p = self.producer_of(img)
            if p is not None and p is not node and p not in deps:
                deps.append(p)
        return deps

    def inputs(self) -> List[Image]:
        """Images read by some node but produced by none."""
        out: List[Image] = []
        for n in self.nodes:
            for img in n.inputs:
                if self.producer_of(img) is None \
                        and not any(img is o for o in out):
                    out.append(img)
        return out

    def outputs(self) -> List[Image]:
        """Marked outputs plus sinks (written but never read)."""
        out = list(self._marked_outputs)
        for n in self.nodes:
            img = n.output
            if not self.consumers_of(img) \
                    and not any(img is o for o in out):
                out.append(img)
        return out

    def intermediates(self) -> List[Image]:
        """Images both produced and consumed inside the graph and not
        marked as outputs — the buffer pool's domain."""
        outs = self.outputs()
        result = []
        for n in self.nodes:
            img = n.output
            if self.consumers_of(img) and not any(img is o for o in outs):
                result.append(img)
        return result

    # -- validation ----------------------------------------------------------

    def validate(self) -> None:
        """Raise :class:`GraphError` on cycles or shape-unsafe edges."""
        if not self.nodes:
            raise GraphError(f"pipeline {self.name!r} has no nodes")
        self.topological_order()         # raises on cycles
        for node in self.nodes:
            self._validate_shapes(node)

    def _validate_shapes(self, node: GraphNode) -> None:
        is_ = node.iteration_space
        for attr, acc in node.accessor_objs.items():
            from ..dsl.interpolate import InterpolatedAccessor
            if isinstance(acc, InterpolatedAccessor):
                continue             # resampling adapts any geometry
            img = acc.image
            if acc.boundary_mode == Boundary.UNDEFINED:
                wx, wy = acc.window
                if (is_.offset_x + is_.width + wx // 2 > img.width
                        or is_.offset_y + is_.height + wy // 2 > img.height):
                    raise GraphError(
                        f"node {node.name!r}: accessor {attr!r} reads "
                        f"{img.width}x{img.height} image {img.name!r} "
                        f"with undefined boundary handling but the "
                        f"iteration space needs "
                        f"{is_.offset_x + is_.width + wx // 2}x"
                        f"{is_.offset_y + is_.height + wy // 2} — add a "
                        f"BoundaryCondition or shrink the space")
            if img.pixel_type != acc.pixel_type:
                raise GraphError(
                    f"node {node.name!r}: accessor {attr!r} pixel type "
                    f"{acc.pixel_type.name} does not match image "
                    f"{img.name!r} ({img.pixel_type.name})")

    def topological_order(self) -> List[GraphNode]:
        """Kahn's algorithm over image dataflow; deterministic (insertion
        order breaks ties) and raising :class:`GraphError` on cycles."""
        indegree = {n.name: 0 for n in self.nodes}
        dependents: Dict[str, List[GraphNode]] = {n.name: []
                                                  for n in self.nodes}
        for n in self.nodes:
            for dep in self.dependencies(n):
                indegree[n.name] += 1
                dependents[dep.name].append(n)
        ready = [n for n in self.nodes if indegree[n.name] == 0]
        order: List[GraphNode] = []
        while ready:
            n = ready.pop(0)
            order.append(n)
            for m in dependents[n.name]:
                indegree[m.name] -= 1
                if indegree[m.name] == 0:
                    ready.append(m)
        if len(order) != len(self.nodes):
            stuck = sorted(name for name, d in indegree.items() if d > 0)
            raise GraphError(
                f"pipeline {self.name!r} has a dataflow cycle through "
                f"{', '.join(stuck)}")
        return order

    # -- execution (delegates to the scheduler) ------------------------------

    def run(self, **kwargs):
        """Validate, optionally fuse, compile and execute the graph; see
        :func:`repro.graph.scheduler.execute_graph`."""
        from .scheduler import execute_graph
        return execute_graph(self, **kwargs)

    # -- export --------------------------------------------------------------

    def to_dot(self) -> str:
        """Graphviz rendering: kernels as boxes (fused ones doubled),
        images as ellipses, pipeline outputs bold."""
        outs = self.outputs()
        lines = [f'digraph "{self.name}" {{',
                 "  rankdir=LR;",
                 '  node [fontname="Helvetica"];']
        img_ids: Dict[int, str] = {}

        def img_id(img: Image) -> str:
            if id(img) not in img_ids:
                img_ids[id(img)] = f"img_{len(img_ids)}"
                shape_attr = "penwidth=2" \
                    if any(img is o for o in outs) else "penwidth=1"
                lines.append(
                    f'  {img_ids[id(img)]} [label="{img.name}\\n'
                    f'{img.width}x{img.height} {img.pixel_type.name}" '
                    f'shape=ellipse {shape_attr}];')
            return img_ids[id(img)]

        for i, n in enumerate(self.nodes):
            shape = "doubleoctagon" if n.is_fused else "box"
            lines.append(
                f'  k_{i} [label="{n.label()}" shape={shape}];')
            for img in n.inputs:
                lines.append(f"  {img_id(img)} -> k_{i};")
            lines.append(f"  k_{i} -> {img_id(n.output)};")
        lines.append("}")
        return "\n".join(lines)

    def __len__(self) -> int:
        return len(self.nodes)

    def __repr__(self) -> str:   # pragma: no cover - debugging aid
        return (f"PipelineGraph({self.name!r}, {len(self.nodes)} nodes, "
                f"{len(self.intermediates())} intermediates)")


# --------------------------------------------------------------------------
# Functional chain builder
# --------------------------------------------------------------------------


@dataclasses.dataclass
class Stage:
    """One step of a :func:`pipe` chain.

    *factory* receives ``(iteration_space, accessor)`` and returns the
    Kernel; *window*/*boundary* describe the accessor the stage wants
    (``(1, 1)`` point stages get a plain Accessor)."""

    factory: Callable[[IterationSpace, Accessor], Kernel]
    window: Tuple[int, int] = (1, 1)
    boundary: Boundary = Boundary.CLAMP
    constant: float = 0.0
    name: Optional[str] = None


def stage(factory, window: Tuple[int, int] = (1, 1),
          boundary: Boundary = Boundary.CLAMP, constant: float = 0.0,
          name: Optional[str] = None) -> Stage:
    """Describe a :func:`pipe` stage: a local operator with its window and
    boundary mode, or (the default window) a point operator."""
    return Stage(factory, tuple(window), Boundary.coerce(boundary),
                 float(constant), name)


def pipe(source: Image, *stages, graph: Optional[PipelineGraph] = None,
         name: str = "pipe") -> Tuple[PipelineGraph, Image]:
    """Build a linear chain ``source -> stage1 -> ... -> stageN``.

    Each element of *stages* is a :func:`stage` descriptor or a bare
    factory callable (treated as a point stage).  Intermediate images are
    allocated automatically with the source's geometry and pixel type;
    the final image is marked as the pipeline output.  Returns
    ``(graph, output_image)``.
    """
    if not stages:
        raise GraphError("pipe() needs at least one stage")
    g = graph if graph is not None else PipelineGraph(name)
    current = source
    for i, st in enumerate(stages):
        if not isinstance(st, Stage):
            st = Stage(st)
        out = Image(current.width, current.height, current.pixel_type)
        wx, wy = st.window
        if (wx, wy) == (1, 1):
            acc = Accessor(current)
        else:
            acc = Accessor(BoundaryCondition(current, wx, wy,
                                             st.boundary,
                                             constant=st.constant))
        kernel = st.factory(IterationSpace(out), acc)
        g.add_kernel(kernel, name=st.name)
        current = out
    g.mark_output(current)
    return g, current
