"""Declarative multi-kernel pipeline graphs (PR-2 subsystem).

Build a :class:`PipelineGraph` from DSL kernels (or a linear chain with
:func:`pipe`), then :meth:`~PipelineGraph.run` it: the scheduler fuses
adjacent point operators, compiles every node concurrently through one
shared compilation cache, executes independent branches in parallel and
services intermediate images from a lifetime-aware buffer pool.  See
docs/PIPELINES.md.
"""

from .builder import GraphNode, PipelineGraph, Stage, pipe, stage  # noqa: F401
from .fusion import FusionStats, fuse_point_ops, is_point_op  # noqa: F401
from .pool import BufferPool, PoolStats  # noqa: F401
from .report import GraphReport, NodeReport  # noqa: F401
from .scheduler import compile_graph, execute_graph  # noqa: F401
