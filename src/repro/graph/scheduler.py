"""Compile and execute a :class:`~repro.graph.builder.PipelineGraph`.

The scheduler turns the declarative graph into launches:

* **fusion** (optional) — adjacent point operators collapse into single
  synthesized kernels first (:mod:`repro.graph.fusion`), so the chain
  ships fewer launches and fewer intermediates;
* **concurrent compilation** — every node compiles on a thread pool
  through one shared PR-1 :class:`~repro.cache.CompilationCache`, so
  identical kernels (Sobel-x vs Sobel-y share a frontend, repeated
  pyramid levels share everything) are paid for once;
* **parallel execution** — nodes dispatch in dependency order with
  independent branches (e.g. Sobel-x ∥ Sobel-y) running concurrently on
  a thread pool; outputs are deterministic because every node writes its
  own image and dependencies impose the only ordering that matters;
* **buffer lifetimes** — each intermediate image is backed by the arena
  pool (:mod:`repro.graph.pool`) when its producer launches and released
  after its last consumer finishes, so peak footprint follows the live
  set of the schedule instead of the edge count.

Every phase runs under a :mod:`repro.obs` span (``graph.validate`` →
``graph.fuse`` → ``graph.lint`` → ``graph.compile`` → ``graph.schedule``
with one ``graph.node`` per launch); work submitted to the thread pools
carries the submitting span's id so worker-thread spans stitch back
under the scheduler in the exported trace.  The returned
:class:`~repro.graph.report.GraphReport` aggregates the per-node timing
breakdowns, cache hits, launch counts and pool/fusion stats that the
``repro graph`` CLI prints.
"""

from __future__ import annotations

import threading
from concurrent.futures import FIRST_COMPLETED, ThreadPoolExecutor, wait
from typing import Dict, Optional, Union

from ..cache.store import CompilationCache, get_default_cache
from ..errors import CodegenError, GraphError
from ..obs import child_of, current_id, get_registry, span
from ..obs.hist import observe
from ..runtime.compile import compile_ir, compile_kernel
from ..sim.launch import padding_alignment
from .builder import GraphNode, PipelineGraph
from .fusion import FusionStats, fuse_point_ops
from .pool import BufferPool, PoolStats
from .report import GraphReport, NodeReport

ENGINES = ("sim", "native", "auto")


def _resolve_cache(cache: Union[None, bool, CompilationCache]
                   ) -> Optional[CompilationCache]:
    if cache is None or cache is False:
        return None
    if cache is True:
        return get_default_cache()
    return cache


def _resolve_pool(pool: Union[bool, BufferPool]) -> Optional[BufferPool]:
    """``True`` = fresh arena, ``False`` = unpooled, or bring your own
    (tests inspect a passed-in pool's stats after error paths)."""
    if pool is True:
        return BufferPool()
    if pool is False:
        return None
    return pool


def _compile_node(node: GraphNode,
                  store: Optional[CompilationCache],
                  tuned_engine: str = "sim") -> None:
    options = dict(node.options)
    # tuned-database winners are engine-specific (docs/TUNING.md): tell
    # the compile which tier this graph run targets unless the node
    # pinned its own
    options.setdefault("tuned_engine", tuned_engine)
    with span("graph.node_compile", node=node.name):
        if node.is_fused:
            node.compiled = compile_ir(
                node.ir, node.accessor_objs, node.iteration_space,
                cache=store, **options)
        else:
            node.compiled = compile_kernel(node.kernel, cache=store,
                                           **options)


def compile_graph(graph: PipelineGraph,
                  cache: Union[None, bool, CompilationCache] = None,
                  workers: Optional[int] = None,
                  tuned_engine: str = "sim") -> float:
    """Compile every node (concurrently for ``workers != 1``) through one
    shared compilation cache; returns wall-clock milliseconds."""
    store = _resolve_cache(cache)
    with span("graph.compile", graph=graph.name) as sp:
        pending = [n for n in graph.nodes if n.compiled is None]
        if workers == 1 or len(pending) <= 1:
            for node in pending:
                _compile_node(node, store, tuned_engine)
        else:
            token = current_id()
            with ThreadPoolExecutor(max_workers=workers) as pool:
                futures = [pool.submit(_run_stitched, token,
                                       _compile_node, n, store,
                                       tuned_engine)
                           for n in pending]
                for f in futures:
                    f.result()       # surface the first compile error
    return sp.duration_ms


def _node_footprint(node: GraphNode) -> Optional[Dict]:
    """The node's analyzed access footprint for its
    :class:`~repro.graph.report.NodeReport` (``None`` when the kernel
    cannot be parsed/typechecked — the compile already reported why)."""
    try:
        from .fusion import node_ir
        return node_ir(node).footprint().to_dict()
    except Exception:
        return None


def _run_stitched(token, fn, *args):
    """Run *fn* in a worker thread with its spans parented to *token*."""
    with child_of(token):
        return fn(*args)


def execute_graph(graph: PipelineGraph,
                  cache: Union[None, bool, CompilationCache] = None,
                  workers: Optional[int] = None,
                  fuse: bool = True,
                  pool: Union[bool, BufferPool] = True,
                  engine: str = "sim",
                  register_metrics: bool = True,
                  lint: bool = True) -> GraphReport:
    """Validate, fuse, compile and run *graph*; returns the
    :class:`GraphReport`.

    *workers* sizes both the compile pool and the execution pool
    (``1`` forces fully serial operation — useful as the determinism
    baseline; single-node graphs always run serially, no executor is
    spun up for them); *fuse* toggles point-operator fusion; *pool*
    toggles the intermediate buffer arena (or accepts a
    :class:`~repro.graph.pool.BufferPool` to use).  *cache* is shared
    by every node compile (``True`` = process default).

    *engine* selects the execution tier: ``"sim"`` (Python simulator,
    the default and the oracle), ``"native"`` (compiled graph segments
    via :mod:`repro.runtime.native_graph`, simulator fallback per
    ineligible node), or ``"auto"`` (native when a C compiler is on
    PATH, simulator otherwise).  Native/auto fall back transparently to
    the simulator when native compilation is impossible; the report's
    ``engine_used``/``fallback_reason`` say what actually ran.

    *register_metrics* controls whether this run's pool/cache stats are
    installed as the process-wide registry's ``pool``/``cache`` sources.
    Long-running hosts that execute many graphs concurrently over
    per-worker arenas (``repro serve``) pass ``False`` and register one
    aggregate source of their own instead, so parallel requests do not
    race to overwrite the global slots.

    *lint* toggles the HIP3xx graph-lint pass.  It is advisory (it
    never changes what executes), so hosts that run the *same* graph
    structure over and over (``repro serve`` replaying a fingerprinted
    pipeline) can skip re-deriving identical diagnostics on the hot
    path; interactive and CI runs keep it on.
    """
    if engine not in ENGINES:
        raise GraphError(
            f"unknown engine {engine!r}; expected one of {ENGINES}")
    with span("graph.run", graph=graph.name, engine=engine) as run_span:
        return _execute_graph(graph, cache, workers, fuse, pool,
                              engine, run_span, register_metrics, lint)


def _execute_graph(graph, cache, workers, fuse, pool, engine,
                   run_span, register_metrics=True,
                   lint=True) -> GraphReport:
    with span("graph.validate", graph=graph.name):
        graph.validate()

    fusion_stats = FusionStats(nodes_before=len(graph.nodes),
                               nodes_after=len(graph.nodes))
    if fuse:
        with span("graph.fuse"):
            fusion_stats = fuse_point_ops(graph)
            graph.validate()     # a bad merge must fail loudly, not run

    # graph lint runs after fusion so HIP302 explains exactly the pairs
    # the fuser declined, not ones it was about to merge anyway
    graph_diags = []
    if lint:
        from ..lint import lint_graph
        from ..lint.collect import emit
        with span("graph.lint"):
            graph_diags = lint_graph(graph)
            emit(graph_diags)

    store = _resolve_cache(cache)
    compile_wall_ms = compile_graph(
        graph, cache=store, workers=workers,
        tuned_engine="native" if engine in ("native", "auto") else "sim")
    observe("graph.hist.compile_ms", compile_wall_ms)

    order = graph.topological_order()

    # -- engine selection ---------------------------------------------------
    native_module = None
    fallback_reason = None
    if engine in ("native", "auto"):
        from ..runtime.native_graph import compile_native_graph
        try:
            native_module = compile_native_graph(graph, order,
                                                 cache=store)
        except CodegenError as exc:
            # transparent fallback: no C compiler, or nothing eligible
            fallback_reason = str(exc)

    # -- buffer lifetimes ---------------------------------------------------
    # the native tier replaces the runtime arena with its compile-time
    # slab; only the simulator engine pools buffers at runtime
    arena = _resolve_pool(pool) if native_module is None else None
    pool_stats = arena.stats if arena is not None else PoolStats()
    if register_metrics:
        registry = get_registry()
        registry.register_source("pool", pool_stats.metrics)
        if store is not None:
            registry.register_source("cache", store.stats.metrics)
    intermediates = graph.intermediates()
    for img in intermediates:
        # naive baseline: every intermediate individually allocated at
        # its launch padding, all simultaneously live
        producer = graph.producer_of(img)
        align = padding_alignment(producer.compiled.device)
        stride = BufferPool.padded_stride(img.width, align)
        pool_stats.naive_bytes += (img.height * stride
                                   * img.pixel_type.np_dtype.itemsize)
    if native_module is not None:
        # slab high-water plus any intermediates left external (touched
        # by simulator-fallback nodes — individually materialised)
        plan = native_module.plan
        ext_inter = [img for img in intermediates
                     if plan.bindings.get(id(img)) is None
                     or plan.bindings[id(img)].kind == "ext"]
        ext_bytes = 0
        for img in ext_inter:
            producer = graph.producer_of(img)
            align = padding_alignment(producer.compiled.device)
            stride = BufferPool.padded_stride(img.width, align)
            ext_bytes += (img.height * stride
                          * img.pixel_type.np_dtype.itemsize)
        pool_stats.peak_bytes = plan.slab_bytes + ext_bytes
        pool_stats.allocs = plan.slab_allocs + len(ext_inter)
        pool_stats.reuses = plan.slab_reuses
    elif arena is None:
        # unpooled execution allocates every intermediate for the whole
        # run — peak IS the naive footprint
        pool_stats.peak_bytes = pool_stats.naive_bytes
    remaining_consumers: Dict[int, int] = {
        id(img): len(graph.consumers_of(img)) for img in intermediates}
    # the decrement below is a read-modify-write racing across branch
    # workers; without the lock two consumers finishing at once could
    # both read the same count and either double-release a buffer or
    # leak it (current_bytes drift)
    consumers_lock = threading.Lock()

    node_wall_ms: Dict[str, float] = {}
    node_engine: Dict[str, str] = {}
    native_timing: Dict[str, object] = {}

    def run_node(node: GraphNode) -> None:
        with span("graph.node", node=node.name) as sp:
            if arena is not None and any(node.output is img
                                         for img in intermediates):
                arena.bind(node.output,
                           padding_alignment(node.compiled.device))
            node.report = node.compiled.execute()
            if arena is not None:
                for img in node.inputs:
                    key = id(img)
                    with consumers_lock:
                        left = remaining_consumers.get(key)
                        if left is None:
                            continue
                        left -= 1
                        remaining_consumers[key] = left
                    if left == 0:
                        arena.release(img)
        node_wall_ms[node.name] = sp.duration_ms

    def run_native_schedule() -> None:
        """Walk the interleaved plan serially: compiled segments via
        ctypes, ineligible nodes through the simulator."""
        plan = native_module.plan
        executor = native_module.executor()
        for kind, idx in plan.schedule:
            if kind == "native":
                seg = plan.segments[idx]
                with span("native.exec", segment=idx,
                          nodes=len(seg)) as seg_sp:
                    executor.run_segment(idx)
                # the segment is one call; attribute its wall clock
                # evenly and keep the *modelled* device time per node
                per_node = seg_sp.duration_ms / len(seg)
                for node_idx in seg:
                    node = order[node_idx]
                    node_wall_ms[node.name] = per_node
                    node_engine[node.name] = "native"
                    native_timing[node.name] = \
                        node.compiled.estimate_time()
            else:
                node = order[idx]
                with span("graph.node", node=node.name) as nsp:
                    node.report = node.compiled.execute()
                node_wall_ms[node.name] = nsp.duration_ms
                node_engine[node.name] = "sim"

    with span("graph.schedule", workers=workers or 0) as sp:
        try:
            if native_module is not None:
                sp.attrs["engine"] = "native"
                run_native_schedule()
            # match compile_graph's short-circuit: a single-node graph
            # (or workers=1) runs serially — no executor for one launch
            elif workers == 1 or len(order) <= 1:
                for node in order:
                    run_node(node)
            else:
                _run_parallel(graph, order, run_node, workers)
        finally:
            if arena is not None:
                # normal completion has already released everything via
                # consumer counting; after a mid-schedule fault this is
                # what returns current_bytes to zero
                arena.release_all()
    exec_wall_ms = sp.duration_ms
    observe("graph.hist.execute_ms", exec_wall_ms)
    for wall in node_wall_ms.values():
        observe("graph.hist.node_wall_ms", wall)

    node_reports = []
    for n in order:
        eng = node_engine.get(n.name, "sim")
        if eng == "native":
            # native segments run for real; device time stays the
            # *modelled* estimate so reports are engine-comparable
            timing = native_timing[n.name]
            time_ms = timing.total_ms
        else:
            timing = n.report.timing
            time_ms = n.report.time_ms
        node_reports.append(NodeReport(
            name=n.name,
            kernel=n.label(),
            device=n.compiled.device.name,
            backend=n.compiled.options.backend,
            block=tuple(n.compiled.options.block),
            time_ms=time_ms,
            timing=timing,
            compile_ms=n.compiled.compile_ms,
            from_cache=n.compiled.from_cache,
            fused_from=n.fused_from,
            wall_ms=node_wall_ms.get(n.name, 0.0),
            stage_timings=dict(n.compiled.stage_timings),
            engine=eng,
            footprint=_node_footprint(n),
        ))
    report = GraphReport(
        graph_name=graph.name,
        nodes=node_reports,
        fusion=fusion_stats,
        pool=pool_stats,
        compile_wall_ms=compile_wall_ms,
        execute_wall_ms=exec_wall_ms,
        cache_stats=(store.stats.as_dict() if store is not None else None),
        diagnostics=graph_diags,
        engine=engine,
        engine_used="native" if native_module is not None else "sim",
        fallback_reason=fallback_reason,
    )
    run_span.attrs["launches"] = report.launches
    run_span.attrs["engine_used"] = report.engine_used
    return report


def _run_parallel(graph: PipelineGraph, order, run_node,
                  workers: Optional[int]) -> None:
    """Dependency-counting dispatch: a node is submitted the moment its
    producers finish, so independent branches overlap."""
    deps = {n.name: {d.name for d in graph.dependencies(n)} for n in order}
    dependents: Dict[str, list] = {n.name: [] for n in order}
    by_name = {n.name: n for n in order}
    for n in order:
        for d in deps[n.name]:
            dependents[d].append(n.name)
    token = current_id()
    with ThreadPoolExecutor(max_workers=workers) as pool:
        running = {}

        def submit(node):
            fut = pool.submit(_run_stitched, token, run_node, node)
            running[fut] = node.name

        for n in order:
            if not deps[n.name]:
                submit(n)
        while running:
            done, _ = wait(running, return_when=FIRST_COMPLETED)
            for fut in done:
                finished = running.pop(fut)
                fut.result()     # propagate launch faults
                for dep_name in dependents[finished]:
                    deps[dep_name].discard(finished)
                    if not deps[dep_name]:
                        submit(by_name[dep_name])
