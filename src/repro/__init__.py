"""hipacc-py: a Python reproduction of *Generating Device-specific GPU Code
for Local Operators in Medical Imaging* (Membarth et al., IPDPS 2012).

The package provides the paper's full pipeline:

* an embedded DSL for image-processing kernels
  (:class:`Image`, :class:`IterationSpace`, :class:`Accessor`,
  :class:`BoundaryCondition`, :class:`Mask`, :class:`Kernel`),
* a source-to-source compiler emitting device-specific CUDA and OpenCL
  (:func:`compile_kernel`), including nine-region boundary-handling
  specialisation, texture/scratchpad/constant-memory lowering and the
  occupancy-driven configuration heuristic (Algorithm 2),
* an abstract GPU hardware model with the paper's four evaluation devices,
* a simulated GPU substrate (functional executor + analytical timing model)
  standing in for the silicon, and
* the baselines of the evaluation section (manual variants, a
  RapidMind-like framework, OpenCV-like separable filters).

Quickstart::

    import numpy as np
    from repro import (Image, IterationSpace, Accessor, BoundaryCondition,
                       Boundary, Mask, Kernel, compile_kernel)

    class Blur(Kernel):
        def __init__(self, IS, inp, mask):
            super().__init__(IS)
            self.inp = inp
            self.mask = mask
            self.add_accessor(inp)

        def kernel(self):
            s = 0.0
            for dy in range(-1, 2):
                for dx in range(-1, 2):
                    s += self.mask(dx, dy) * self.inp(dx, dy)
            self.output(s)

    src = Image(512, 512); dst = Image(512, 512)
    src.set_data(np.random.rand(512, 512))
    acc = Accessor(BoundaryCondition(src, 3, 3, Boundary.CLAMP))
    blur = Blur(IterationSpace(dst), acc, Mask(3, 3).set(np.full((3, 3), 1/9)))
    compiled = compile_kernel(blur, backend="cuda", device="Tesla C2050")
    print(compiled.device_code)          # generated CUDA
    report = compiled.execute()          # simulated run
    print(report.time_ms, dst.get_data().mean())
"""

__version__ = "1.0.0"

from .errors import (  # noqa: F401
    CodegenError,
    DeviceFault,
    DslError,
    FrontendError,
    GraphError,
    HipaccError,
    LaunchError,
    MappingError,
)
from .dsl import (  # noqa: F401
    Accessor,
    Domain,
    Boundary,
    BoundaryCondition,
    Image,
    IterationSpace,
    Kernel,
    Mask,
    Reduce,
    Uniform,
)
from .backends.base import BorderMode, CodegenOptions, MaskMemory  # noqa: F401
from .cache import (  # noqa: F401
    CacheStats,
    CompilationCache,
    get_default_cache,
    set_default_cache,
)
from .hwmodel import (  # noqa: F401
    DEVICES,
    DeviceSpec,
    EVALUATION_DEVICES,
    get_device,
    list_devices,
)
from .dsl.reduction import (  # noqa: F401
    AbsMaxReduction,
    GlobalReduction,
    MaxReduction,
    MinReduction,
    SumReduction,
)
from .runtime import CompiledKernel, compile_ir, compile_kernel  # noqa: F401
from .runtime.reduce import CompiledReduction, compile_reduction  # noqa: F401
from .graph import (  # noqa: F401
    BufferPool,
    GraphReport,
    PipelineGraph,
    execute_graph,
    fuse_point_ops,
    pipe,
    stage,
)

__all__ = [
    "Accessor",
    "Boundary",
    "BoundaryCondition",
    "BorderMode",
    "CacheStats",
    "CodegenError",
    "CodegenOptions",
    "CompilationCache",
    "CompiledKernel",
    "DEVICES",
    "DeviceFault",
    "DeviceSpec",
    "DslError",
    "EVALUATION_DEVICES",
    "FrontendError",
    "HipaccError",
    "Image",
    "IterationSpace",
    "Kernel",
    "LaunchError",
    "MappingError",
    "Mask",
    "MaskMemory",
    "Reduce",
    "Uniform",
    "BufferPool",
    "GraphError",
    "GraphReport",
    "PipelineGraph",
    "CompiledReduction",
    "GlobalReduction",
    "MaxReduction",
    "MinReduction",
    "SumReduction",
    "AbsMaxReduction",
    "compile_ir",
    "compile_kernel",
    "compile_reduction",
    "execute_graph",
    "fuse_point_ops",
    "pipe",
    "stage",
    "get_default_cache",
    "get_device",
    "list_devices",
    "set_default_cache",
]
