"""Kernel resource-usage estimation — the stand-in for ``nvcc``.

The paper passes generated code "to the nvcc compiler and a tool invoking
the OpenCL run-time ... these generate machine-specific assembly code and
provide the resource usage information of kernels" (Section V-C).  Without a
native toolchain we estimate the same quantities statically from the kernel
IR: registers per thread, statically-declared shared memory, and the
instruction mix (which also feeds the timing model).
"""

from __future__ import annotations

import dataclasses
from typing import Optional, Tuple

from ..ir.analysis import InstructionMix, count_instruction_mix
from ..ir.nodes import Expr, KernelIR, VarDecl
from ..ir.visitors import walk_stmts
from .device import DeviceSpec


@dataclasses.dataclass(frozen=True)
class ResourceUsage:
    """Per-thread/per-block resource usage of one compiled kernel variant."""

    registers_per_thread: int
    smem_bytes_per_block: int
    instruction_mix: InstructionMix
    local_vars: int
    max_expr_depth: int

    def fits(self, device: DeviceSpec) -> bool:
        return (self.registers_per_thread <= device.max_registers_per_thread
                and self.smem_bytes_per_block <= device.shared_mem_per_simd)


def _expr_depth(e: Expr) -> int:
    kids = e.children()
    if not kids:
        return 1
    return 1 + max(_expr_depth(c) for c in kids)


def _max_stmt_expr_depth(body) -> int:
    from ..ir.visitors import stmt_exprs
    depth = 0
    for s in walk_stmts(body):
        for e in stmt_exprs(s):
            depth = max(depth, _expr_depth(e))
    return depth


#: Extra columns appended to every staged shared-memory tile row so
#: consecutive rows start in different banks (Listing 7's ``+ 1``).  The
#: emitter, the resource estimator and the lint bank-conflict pass all
#: read this one constant — they can never disagree.
BANK_CONFLICT_PAD = 1


def smem_tile_geometry(block: Tuple[int, int], window: Tuple[int, int],
                       bank_pad: int = BANK_CONFLICT_PAD
                       ) -> Tuple[int, int]:
    """(tile_w, tile_h) in elements of the staged input tile for *block*
    and *window*: the block plus the window's apron, rows padded by
    *bank_pad* columns."""
    bx, by = block
    wx, wy = window
    sx, sy = wx - 1, wy - 1
    return (bx + sx + bank_pad, by + sy)


def smem_tile_bytes(block: Tuple[int, int], window: Tuple[int, int],
                    elem_size: int, bank_pad: int = BANK_CONFLICT_PAD) -> int:
    """Scratchpad bytes for staging a block's input tile.

    Matches Listing 7: ``__shared__ float smem[SY + BSY][SX + BSX + 1]``
    where SX/SY are the extra pixels the window needs beyond the block and
    the ``+ 1`` avoids bank conflicts for row-based filters.
    """
    tile_w, tile_h = smem_tile_geometry(block, window, bank_pad)
    return tile_h * tile_w * elem_size


def estimate_resources(kernel: KernelIR,
                       device: Optional[DeviceSpec] = None,
                       use_texture: bool = False,
                       use_smem: bool = False,
                       border_variants: int = 1,
                       smem_bytes: int = 0,
                       unrolled: bool = False) -> ResourceUsage:
    """Estimate resource usage for one codegen variant of *kernel*.

    The register model is a calibrated heuristic: a fixed base for index
    arithmetic and launch bookkeeping, one register per live local (capped —
    real compilers spill), small adders for the texture path, shared-memory
    staging pointers and the region-dispatch of border handling, and a
    pressure term from expression depth (temporaries).  Fully unrolled
    kernels keep more values live at once.
    """
    n_locals = sum(1 for s in walk_stmts(kernel.body)
                   if isinstance(s, VarDecl))
    depth = _max_stmt_expr_depth(kernel.body)
    # the device compiler (nvcc / OpenCL runtime) CSEs repeated reads and
    # hoists loop invariants before scheduling; count what actually issues
    from ..ir.optimize import optimize_for_device
    optimized = optimize_for_device(kernel)
    mix = count_instruction_mix(optimized.body)
    # resampling accessors: bilinear = 4 taps + lerps, nearest = rounding
    for acc in kernel.accessors:
        if acc.interpolation is None:
            continue
        reads = mix.reads_by_accessor.get(acc.name, 0.0)
        if acc.interpolation == "linear":
            mix.global_reads += 3.0 * reads
            mix.alu += 12.0 * reads
        else:
            mix.alu += 4.0 * reads

    regs = 11                      # gid computation, stride, output address
    regs += min(n_locals, 20)
    regs += min(depth, 8) // 2
    if use_texture:
        regs += 2
    if use_smem:
        regs += 4
    if border_variants > 1:
        regs += 3                  # region bounds held across the dispatch
    if unrolled:
        regs += min(6, int(mix.global_reads) // 16)
    # non-baked scalar parameters live in registers too
    regs += sum(1 for p in kernel.params if not p.baked)

    max_regs = device.max_registers_per_thread if device else 128
    regs = max(10, min(regs, max_regs))

    return ResourceUsage(
        registers_per_thread=regs,
        smem_bytes_per_block=smem_bytes,
        instruction_mix=mix,
        local_vars=n_locals,
        max_expr_depth=depth,
    )
