"""Abstract graphics-card hardware model (paper Section V).

"An abstract hardware model of graphics card architectures allows to model
GPUs of multiple vendors like AMD and NVIDIA, and to generate device-specific
code for multiple targets."  The model captures: a) the SIMD width, b) the
maximal thread configuration, c) the maximal threads per SIMD unit, and
d) registers/shared memory and their allocation strategies — plus the
throughput figures the analytical timing model needs.
"""

from .device import DeviceSpec, MemorySpec  # noqa: F401
from .database import (  # noqa: F401
    DEVICES,
    get_device,
    list_devices,
    EVALUATION_DEVICES,
)
from .occupancy import Occupancy, compute_occupancy  # noqa: F401
from .resources import ResourceUsage, estimate_resources  # noqa: F401
