"""Device database.

"Currently, the compiler database contains information about all available
CUDA-capable graphics cards as specified by the compute capability and AMD
GPUs of the Radeon HD 6900 and HD 5800 series (VLIW4 and VLIW5
architecture)" — Section V-B.  The four evaluation GPUs are modelled with
their published specifications; further NVIDIA cards are included per
compute capability so the configuration heuristic can target them.
"""

from __future__ import annotations

from typing import Dict, List

from ..errors import MappingError
from .device import DeviceSpec, MemorySpec

_GT200_MEM = MemorySpec(
    bandwidth_gbps=102.0,
    coalesce_segment=64,
    has_l1_cache=False,
    texture_cache=True,
    l1_window_reuse=0.0,
    tex_window_reuse=0.82,
)

_FERMI_MEM = MemorySpec(
    bandwidth_gbps=144.0,
    coalesce_segment=128,
    has_l1_cache=True,
    l1_window_reuse=0.80,
    tex_window_reuse=0.88,
)

_CYPRESS_MEM = MemorySpec(
    bandwidth_gbps=153.6,
    coalesce_segment=64,
    has_l1_cache=True,          # R/O L1 per SIMD
    l1_window_reuse=0.70,
    tex_window_reuse=0.80,
)

_CAYMAN_MEM = MemorySpec(
    bandwidth_gbps=176.0,
    coalesce_segment=64,
    has_l1_cache=True,
    l1_window_reuse=0.72,
    tex_window_reuse=0.80,
)


TESLA_C2050 = DeviceSpec(
    name="Tesla C2050",
    vendor="NVIDIA",
    architecture="Fermi",
    compute_capability=(2, 0),
    simd_width=32,
    num_simd_units=14,
    max_threads_per_block=1024,
    max_threads_per_simd=1536,
    max_blocks_per_simd=8,
    max_warps_per_simd=48,
    registers_per_simd=32768,
    register_alloc_unit=64,
    register_alloc_scope="warp",
    max_registers_per_thread=63,
    shared_mem_per_simd=48 * 1024,
    shared_mem_alloc_unit=128,
    warp_alloc_granularity=1,
    clock_ghz=1.15,
    alu_per_simd=32,
    vliw_width=1,
    vliw_scalar_utilization=1.0,
    memory=_FERMI_MEM,
    issue_efficiency=0.85,
    sfu_throughput_ratio=1.0,
    image_path_penalty=1.04,
    backend_sfu_efficiency={"cuda": 1.0, "opencl": 0.49},
    faults_on_oob=True,          # paper: manual Undefined rows "crash"
    kernel_launch_overhead_us=6.0,
    backend_efficiency={"cuda": 1.0, "opencl": 0.78},
)

QUADRO_FX_5800 = DeviceSpec(
    name="Quadro FX 5800",
    vendor="NVIDIA",
    architecture="GT200",
    compute_capability=(1, 3),
    simd_width=32,
    num_simd_units=30,
    max_threads_per_block=512,
    max_threads_per_simd=1024,
    max_blocks_per_simd=8,
    max_warps_per_simd=32,
    registers_per_simd=16384,
    register_alloc_unit=512,
    register_alloc_scope="block",
    max_registers_per_thread=124,
    shared_mem_per_simd=16 * 1024,
    shared_mem_alloc_unit=512,
    warp_alloc_granularity=2,
    clock_ghz=1.296,
    alu_per_simd=8,
    vliw_width=1,
    vliw_scalar_utilization=1.0,
    memory=_GT200_MEM,
    issue_efficiency=1.23,
    sfu_throughput_ratio=1.05,
    image_path_penalty=1.06,
    backend_sfu_efficiency={"cuda": 1.0, "opencl": 0.60},
    faults_on_oob=False,
    kernel_launch_overhead_us=10.0,
    backend_efficiency={"cuda": 1.0, "opencl": 0.66},
)

RADEON_HD_5870 = DeviceSpec(
    name="Radeon HD 5870",
    vendor="AMD",
    architecture="VLIW5",
    compute_capability=(0, 0),
    simd_width=64,
    num_simd_units=20,
    max_threads_per_block=256,
    max_threads_per_simd=1024,   # resident work-items (wavefront slots)
    max_blocks_per_simd=8,
    max_warps_per_simd=16,       # wavefronts per SIMD (typical occupancy cap)
    registers_per_simd=16384,
    register_alloc_unit=64,
    register_alloc_scope="warp",
    max_registers_per_thread=128,
    shared_mem_per_simd=32 * 1024,
    shared_mem_alloc_unit=256,
    warp_alloc_granularity=1,
    clock_ghz=0.85,
    alu_per_simd=80,             # 16 stream cores x 5 VLIW lanes
    vliw_width=5,
    vliw_scalar_utilization=0.25,
    memory=_CYPRESS_MEM,
    issue_efficiency=1.0,
    sfu_throughput_ratio=0.33,
    constant_mem_read_cost=8.0,
    image_path_penalty=1.03,
    flat_boundary_cost=7.0,
    faults_on_oob=False,
    kernel_launch_overhead_us=14.0,
    backend_efficiency={"opencl": 1.0},
)

RADEON_HD_6970 = DeviceSpec(
    name="Radeon HD 6970",
    vendor="AMD",
    architecture="VLIW4",
    compute_capability=(0, 0),
    simd_width=64,
    num_simd_units=24,
    max_threads_per_block=256,
    max_threads_per_simd=1024,
    max_blocks_per_simd=8,
    max_warps_per_simd=16,
    registers_per_simd=16384,
    register_alloc_unit=64,
    register_alloc_scope="warp",
    max_registers_per_thread=128,
    shared_mem_per_simd=32 * 1024,
    shared_mem_alloc_unit=256,
    warp_alloc_granularity=1,
    clock_ghz=0.88,
    alu_per_simd=64,             # 16 stream cores x 4 VLIW lanes
    vliw_width=4,
    vliw_scalar_utilization=0.30,
    memory=_CAYMAN_MEM,
    issue_efficiency=1.0,
    sfu_throughput_ratio=0.38,
    constant_mem_read_cost=7.0,
    image_path_penalty=1.03,
    flat_boundary_cost=7.0,
    faults_on_oob=False,
    kernel_launch_overhead_us=14.0,
    backend_efficiency={"opencl": 1.0},
)

# Additional CUDA-capable cards (per compute capability) so the mapping
# layer covers "all available CUDA-capable graphics cards".
GEFORCE_GTX_280 = DeviceSpec(
    name="GeForce GTX 280",
    vendor="NVIDIA",
    architecture="GT200",
    compute_capability=(1, 3),
    simd_width=32,
    num_simd_units=30,
    max_threads_per_block=512,
    max_threads_per_simd=1024,
    max_blocks_per_simd=8,
    max_warps_per_simd=32,
    registers_per_simd=16384,
    register_alloc_unit=512,
    register_alloc_scope="block",
    max_registers_per_thread=124,
    shared_mem_per_simd=16 * 1024,
    shared_mem_alloc_unit=512,
    warp_alloc_granularity=2,
    clock_ghz=1.296,
    alu_per_simd=8,
    vliw_width=1,
    vliw_scalar_utilization=1.0,
    memory=MemorySpec(bandwidth_gbps=141.7, coalesce_segment=64,
                      has_l1_cache=False, tex_window_reuse=0.82),
    issue_efficiency=1.23,
    sfu_throughput_ratio=1.05,
    image_path_penalty=1.06,
    backend_sfu_efficiency={"cuda": 1.0, "opencl": 0.60},
    kernel_launch_overhead_us=10.0,
    backend_efficiency={"cuda": 1.0, "opencl": 0.66},
)

GEFORCE_GTX_480 = DeviceSpec(
    name="GeForce GTX 480",
    vendor="NVIDIA",
    architecture="Fermi",
    compute_capability=(2, 0),
    simd_width=32,
    num_simd_units=15,
    max_threads_per_block=1024,
    max_threads_per_simd=1536,
    max_blocks_per_simd=8,
    max_warps_per_simd=48,
    registers_per_simd=32768,
    register_alloc_unit=64,
    register_alloc_scope="warp",
    max_registers_per_thread=63,
    shared_mem_per_simd=48 * 1024,
    shared_mem_alloc_unit=128,
    warp_alloc_granularity=1,
    clock_ghz=1.401,
    alu_per_simd=32,
    vliw_width=1,
    vliw_scalar_utilization=1.0,
    memory=MemorySpec(bandwidth_gbps=177.4, coalesce_segment=128,
                      has_l1_cache=True, l1_window_reuse=0.80,
                      tex_window_reuse=0.88),
    issue_efficiency=0.85,
    sfu_throughput_ratio=1.0,
    image_path_penalty=1.04,
    backend_sfu_efficiency={"cuda": 1.0, "opencl": 0.49},
    kernel_launch_overhead_us=6.0,
    backend_efficiency={"cuda": 1.0, "opencl": 0.78},
)

GEFORCE_8800_GTX = DeviceSpec(
    name="GeForce 8800 GTX",
    vendor="NVIDIA",
    architecture="G80",
    compute_capability=(1, 0),
    simd_width=32,
    num_simd_units=16,
    max_threads_per_block=512,
    max_threads_per_simd=768,
    max_blocks_per_simd=8,
    max_warps_per_simd=24,
    registers_per_simd=8192,
    register_alloc_unit=256,
    register_alloc_scope="block",
    max_registers_per_thread=124,
    shared_mem_per_simd=16 * 1024,
    shared_mem_alloc_unit=512,
    warp_alloc_granularity=2,
    clock_ghz=1.35,
    alu_per_simd=8,
    vliw_width=1,
    vliw_scalar_utilization=1.0,
    memory=MemorySpec(bandwidth_gbps=86.4, coalesce_segment=64,
                      has_l1_cache=False, tex_window_reuse=0.8),
    issue_efficiency=1.4,
    sfu_throughput_ratio=1.1,
    image_path_penalty=1.06,
    kernel_launch_overhead_us=12.0,
    backend_efficiency={"cuda": 1.0, "opencl": 0.7},
)

DEVICES: Dict[str, DeviceSpec] = {
    d.name: d
    for d in (
        TESLA_C2050,
        QUADRO_FX_5800,
        RADEON_HD_5870,
        RADEON_HD_6970,
        GEFORCE_GTX_280,
        GEFORCE_GTX_480,
        GEFORCE_8800_GTX,
    )
}

#: The four GPUs of the paper's evaluation section.
EVALUATION_DEVICES: List[str] = [
    "Tesla C2050",
    "Quadro FX 5800",
    "Radeon HD 5870",
    "Radeon HD 6970",
]

_ALIASES = {
    "tesla": "Tesla C2050",
    "c2050": "Tesla C2050",
    "quadro": "Quadro FX 5800",
    "fx5800": "Quadro FX 5800",
    "hd5870": "Radeon HD 5870",
    "hd6970": "Radeon HD 6970",
}


def get_device(name: str) -> DeviceSpec:
    """Look up a device by exact name or short alias (case-insensitive)."""
    if name in DEVICES:
        return DEVICES[name]
    key = name.lower().replace(" ", "")
    if key in _ALIASES:
        return DEVICES[_ALIASES[key]]
    for dev_name, spec in DEVICES.items():
        if dev_name.lower().replace(" ", "") == key:
            return spec
    raise MappingError(
        f"unknown device {name!r}; available: {', '.join(DEVICES)}")


def list_devices() -> List[str]:
    return list(DEVICES)
