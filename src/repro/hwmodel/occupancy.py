"""Occupancy calculator.

Reimplements the CUDA occupancy calculation the paper's heuristic feeds on:
given a block configuration and a kernel's resource usage, how many blocks
are resident per SIMD unit and what fraction of the maximum warps is active.
Handles the two register-allocation strategies of the modelled
architectures: per-warp granularity (Fermi, AMD) and per-block granularity
(G80/GT200), as well as warp-pair allocation on GT200.
"""

from __future__ import annotations

import dataclasses
import math

from ..errors import MappingError
from .device import DeviceSpec


def _ceil_to(value: int, unit: int) -> int:
    if unit <= 1:
        return value
    return ((value + unit - 1) // unit) * unit


@dataclasses.dataclass(frozen=True)
class Occupancy:
    """Result of an occupancy computation for one configuration."""

    device: str
    threads_per_block: int
    warps_per_block: int
    blocks_per_simd: int
    active_warps: int
    max_warps: int
    limited_by: str               # "blocks" | "warps" | "registers" | "smem"

    @property
    def occupancy(self) -> float:
        return self.active_warps / self.max_warps if self.max_warps else 0.0

    @property
    def active_threads(self) -> int:
        return self.blocks_per_simd * self.threads_per_block


def compute_occupancy(device: DeviceSpec, block_x: int, block_y: int,
                      regs_per_thread: int,
                      smem_per_block: int) -> Occupancy:
    """Occupancy of ``block_x x block_y`` blocks with the given resource
    usage on *device*.

    Raises :class:`~repro.errors.MappingError` when the configuration cannot
    run at all (zero resident blocks) — the condition the paper describes as
    "a kernel launch error at run-time".
    """
    threads = block_x * block_y
    if not device.valid_block(block_x, block_y):
        raise MappingError(
            f"block {block_x}x{block_y} exceeds limits of {device.name} "
            f"(max {device.max_threads_per_block} threads/block)")
    if regs_per_thread > device.max_registers_per_thread:
        raise MappingError(
            f"kernel needs {regs_per_thread} registers/thread; "
            f"{device.name} provides {device.max_registers_per_thread}")

    warps_per_block = _ceil_to(math.ceil(threads / device.simd_width),
                               device.warp_alloc_granularity)

    # limit 1: hardware block slots
    by_blocks = device.max_blocks_per_simd
    # limit 2: resident warps
    by_warps = device.max_warps_per_simd // warps_per_block
    # limit 3: registers
    if regs_per_thread > 0:
        if device.register_alloc_scope == "warp":
            regs_per_warp = _ceil_to(regs_per_thread * device.simd_width,
                                     device.register_alloc_unit)
            warp_budget = device.registers_per_simd // regs_per_warp
            by_regs = warp_budget // warps_per_block
        else:  # block-granular (G80/GT200)
            regs_per_block = _ceil_to(
                regs_per_thread * warps_per_block * device.simd_width,
                device.register_alloc_unit)
            by_regs = device.registers_per_simd // regs_per_block
    else:
        by_regs = by_blocks
    # limit 4: shared memory
    if smem_per_block > 0:
        smem_alloc = _ceil_to(smem_per_block, device.shared_mem_alloc_unit)
        if smem_alloc > device.shared_mem_per_simd:
            raise MappingError(
                f"kernel needs {smem_alloc} bytes of shared memory/block; "
                f"{device.name} provides {device.shared_mem_per_simd}")
        by_smem = device.shared_mem_per_simd // smem_alloc
    else:
        by_smem = by_blocks

    limits = {
        "blocks": by_blocks,
        "warps": by_warps,
        "registers": by_regs,
        "smem": by_smem,
    }
    limiter = min(limits, key=lambda k: limits[k])
    blocks = limits[limiter]
    if blocks < 1:
        raise MappingError(
            f"configuration {block_x}x{block_y} cannot launch on "
            f"{device.name}: zero resident blocks (limited by {limiter})")

    # also respect the resident-thread ceiling
    while blocks * threads > device.max_threads_per_simd and blocks > 1:
        blocks -= 1
        limiter = "warps"
    if blocks * threads > device.max_threads_per_simd:
        raise MappingError(
            f"block of {threads} threads exceeds resident-thread limit of "
            f"{device.name}")

    active_warps = min(blocks * warps_per_block, device.max_warps_per_simd)
    return Occupancy(
        device=device.name,
        threads_per_block=threads,
        warps_per_block=warps_per_block,
        blocks_per_simd=blocks,
        active_warps=active_warps,
        max_warps=device.max_warps_per_simd,
        limited_by=limiter,
    )
