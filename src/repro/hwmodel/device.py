"""DeviceSpec: one GPU in the abstract hardware model."""

from __future__ import annotations

import dataclasses
from typing import Dict, Tuple


@dataclasses.dataclass(frozen=True)
class MemorySpec:
    """Memory-system characteristics used by the timing model."""

    bandwidth_gbps: float          # peak global-memory bandwidth, GB/s
    coalesce_segment: int          # bytes per coalesced transaction segment
    has_l1_cache: bool             # Fermi caches global loads in L1
    l1_line_bytes: int = 128
    texture_cache: bool = True     # texture path available
    texture_hit_latency_factor: float = 1.0
    constant_broadcast: bool = True
    #: effective reuse captured by the cache for a local-operator window:
    #: fraction of redundant neighbour reads served on-chip (0..1)
    l1_window_reuse: float = 0.0
    tex_window_reuse: float = 0.9


@dataclasses.dataclass(frozen=True)
class DeviceSpec:
    """Abstract model of one graphics card.

    Field groups:

    * identification: ``name``, ``vendor``, ``architecture``,
      ``compute_capability`` (NVIDIA only, e.g. ``(2, 0)``),
    * execution-model limits — the model inputs the paper enumerates in
      Section V-C: ``simd_width``, ``max_threads_per_block``,
      ``max_threads_per_simd``, register/shared-memory sizes and their
      allocation granularities,
    * throughput figures consumed by :mod:`repro.sim.timing`.
    """

    name: str
    vendor: str                    # "NVIDIA" | "AMD"
    architecture: str              # "Fermi", "GT200", "VLIW5", "VLIW4", ...
    compute_capability: Tuple[int, int]

    # -- execution model (occupancy inputs) --------------------------------
    simd_width: int                # warp (32) / wavefront (64) size
    num_simd_units: int            # SMs / SIMD engines
    max_threads_per_block: int
    max_threads_per_simd: int      # resident threads per SM
    max_blocks_per_simd: int
    max_warps_per_simd: int
    registers_per_simd: int        # 32-bit registers per SM
    register_alloc_unit: int       # allocation granularity, registers
    register_alloc_scope: str      # "warp" (Fermi) or "block" (GT200)
    max_registers_per_thread: int
    shared_mem_per_simd: int       # bytes
    shared_mem_alloc_unit: int     # bytes granularity
    warp_alloc_granularity: int    # warps, GT200 allocates in pairs

    # -- throughput ---------------------------------------------------------
    clock_ghz: float
    alu_per_simd: int              # scalar ALUs ("CUDA cores") per SM
    vliw_width: int                # 1 for NVIDIA scalar, 4/5 for AMD VLIW
    #: fraction of VLIW lanes a scalar (non-vectorised) kernel fills; 1.0
    #: on scalar architectures.  The paper attributes the erratic AMD
    #: results to exactly this (Section VI-A.1 / VIII).
    vliw_scalar_utilization: float
    memory: MemorySpec = None  # type: ignore[assignment]

    # -- issue-rate details (timing model) -----------------------------------
    #: effective instructions issued per ALU per cycle relative to 1.0
    #: (GT200 dual-issues MAD+MUL/SFU, modelled as > 1)
    issue_efficiency: float = 1.0
    #: throughput of transcendental (SFU) work relative to ALU throughput,
    #: applied to the SFU portion of the instruction mix
    sfu_throughput_ratio: float = 1.0
    #: ALU-op cost of one constant-memory broadcast read (filter-mask
    #: coefficients); ~1 on NVIDIA, higher on the 2011-era AMD OpenCL stack
    constant_mem_read_cost: float = 1.0
    #: multiplicative time penalty of the image-object path relative to
    #: buffers (OpenCL on NVIDIA has no linear-memory images, Section VI-A)
    image_path_penalty: float = 1.0
    #: SFU throughput factor per backend: the era's OpenCL toolchain on
    #: NVIDIA did not map transcendentals onto the fast SFU path, which is
    #: where most of the CUDA-vs-OpenCL gap of Tables II vs III comes from
    backend_sfu_efficiency: Dict[str, float] = dataclasses.field(
        default_factory=lambda: {"cuda": 1.0, "opencl": 1.0})
    #: flat per-read boundary-adjustment cost overriding the per-mode
    #: table (AMD VLIW predication executes all modes at similar cost)
    flat_boundary_cost: float = None  # type: ignore[assignment]

    # -- behavioural quirks --------------------------------------------------
    #: device faults on out-of-bounds global reads (paper: manual kernels
    #: with undefined boundary handling *crash* on the Tesla C2050)
    faults_on_oob: bool = False
    kernel_launch_overhead_us: float = 8.0
    #: per-backend efficiency of the toolchain on this device; the paper's
    #: Tables II vs III show OpenCL clearly slower than CUDA on NVIDIA
    #: hardware of the era (no linear-memory images, immature compiler).
    backend_efficiency: Dict[str, float] = dataclasses.field(
        default_factory=lambda: {"cuda": 1.0, "opencl": 1.0})

    # -- derived helpers -----------------------------------------------------

    @property
    def total_alus(self) -> int:
        return self.num_simd_units * self.alu_per_simd

    @property
    def peak_gflops(self) -> float:
        return self.total_alus * self.clock_ghz

    def supports_backend(self, backend: str) -> bool:
        if backend == "cuda":
            return self.vendor == "NVIDIA"
        return backend == "opencl"

    def valid_block(self, block_x: int, block_y: int) -> bool:
        """Is ``block_x x block_y`` within this device's hard limits?"""
        threads = block_x * block_y
        return (1 <= block_x and 1 <= block_y
                and threads <= self.max_threads_per_block
                and threads <= self.max_threads_per_simd)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.name
