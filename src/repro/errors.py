"""Exception hierarchy for hipacc-py.

Every error raised by the framework derives from :class:`HipaccError` so that
callers can catch framework failures without masking programming errors in
their own code.  The hierarchy mirrors the pipeline stages: DSL construction,
frontend parsing, IR verification, code generation, device mapping, and the
simulated GPU runtime.
"""

from __future__ import annotations


class HipaccError(Exception):
    """Base class for every error raised by the framework."""


class DslError(HipaccError):
    """Invalid use of the DSL objects (Image/Accessor/Mask/Kernel...)."""


class FrontendError(HipaccError):
    """The kernel body uses Python constructs outside the supported subset.

    Carries an optional source location so diagnostics can point at the
    offending line of the user's ``kernel()`` method.
    """

    def __init__(self, message: str, lineno: int | None = None,
                 source_line: str | None = None):
        self.lineno = lineno
        self.source_line = source_line
        loc = f" (line {lineno})" if lineno is not None else ""
        snippet = f"\n    {source_line.strip()}" if source_line else ""
        super().__init__(f"{message}{loc}{snippet}")


class TypeError_(HipaccError):
    """Kernel IR failed type checking (named with a trailing underscore to
    avoid shadowing the builtin)."""


class VerificationError(HipaccError):
    """The IR violates a structural invariant (use before def, bad loop...)."""


class UnsupportedFunctionError(HipaccError):
    """A function called inside a kernel has no mapping on the target backend.

    Mirrors the paper's behaviour: "In case a function is not supported, our
    compiler emits an error message to the user" (Section V-A).
    """


class CodegenError(HipaccError):
    """The backend could not lower the kernel IR to target source."""


class MappingError(HipaccError):
    """Device-specific mapping failed (no legal kernel configuration...)."""


class GraphError(HipaccError):
    """A multi-kernel pipeline graph is malformed.

    Raised at build/validation time by :mod:`repro.graph` — dataflow
    cycles, two kernels writing the same image, or shape-incompatible
    edges that would fault at launch.
    """


class LaunchError(HipaccError):
    """The simulated runtime rejected a kernel launch.

    Equivalent to a CUDA/OpenCL launch failure, e.g. requesting more threads
    or shared memory per block than the device provides ("Selecting a
    configuration that allocates more resources than available results in a
    kernel launch error at run-time", Section V-C).
    """


class DeviceFault(HipaccError):
    """The simulated device faulted during execution.

    Raised when a kernel with *undefined* boundary handling dereferences
    memory outside every allocation on a device that enforces memory
    protection (the paper's Tesla C2050 rows marked "crash").
    """
