"""Exception hierarchy for hipacc-py.

Every error raised by the framework derives from :class:`HipaccError` so that
callers can catch framework failures without masking programming errors in
their own code.  The hierarchy mirrors the pipeline stages: DSL construction,
frontend parsing, IR verification, code generation, device mapping, and the
simulated GPU runtime.
"""

from __future__ import annotations


class HipaccError(Exception):
    """Base class for every error raised by the framework."""


class DslError(HipaccError):
    """Invalid use of the DSL objects (Image/Accessor/Mask/Kernel...)."""


class LocatedError(HipaccError):
    """A framework error that can point at a line of the user's
    ``kernel()`` method.

    *lineno* is relative to the start of the kernel-method source (the
    same numbering the frontend records on IR statements); *source_line*
    is the offending line's text.  Both are optional so call sites
    without location context keep working.
    """

    def __init__(self, message: str, lineno: int | None = None,
                 source_line: str | None = None):
        self.bare_message = message
        self.lineno = lineno
        self.source_line = source_line
        loc = f" (line {lineno})" if lineno is not None else ""
        snippet = f"\n    {source_line.strip()}" if source_line else ""
        super().__init__(f"{message}{loc}{snippet}")


class FrontendError(LocatedError):
    """The kernel body uses Python constructs outside the supported
    subset."""


class TypeError_(LocatedError):
    """Kernel IR failed type checking (named with a trailing underscore to
    avoid shadowing the builtin)."""


class VerificationError(LocatedError):
    """The IR violates a structural invariant (use before def, bad loop...)."""


class LintError(HipaccError):
    """Strict-mode compilation rejected a kernel on lint diagnostics.

    Raised by :func:`repro.runtime.compile_kernel` /
    :func:`~repro.runtime.compile.compile_ir` with ``strict=True`` when
    the always-on verify passes report warnings or errors.  Carries the
    structured :class:`repro.lint.Diagnostic` list on ``diagnostics``.
    """

    def __init__(self, message: str, diagnostics=()):
        self.diagnostics = list(diagnostics)
        super().__init__(message)


class UnsupportedFunctionError(HipaccError):
    """A function called inside a kernel has no mapping on the target backend.

    Mirrors the paper's behaviour: "In case a function is not supported, our
    compiler emits an error message to the user" (Section V-A).
    """


class CodegenError(HipaccError):
    """The backend could not lower the kernel IR to target source."""


class MappingError(HipaccError):
    """Device-specific mapping failed (no legal kernel configuration...)."""


class GraphError(HipaccError):
    """A multi-kernel pipeline graph is malformed.

    Raised at build/validation time by :mod:`repro.graph` — dataflow
    cycles, two kernels writing the same image, or shape-incompatible
    edges that would fault at launch.
    """


class LaunchError(HipaccError):
    """The simulated runtime rejected a kernel launch.

    Equivalent to a CUDA/OpenCL launch failure, e.g. requesting more threads
    or shared memory per block than the device provides ("Selecting a
    configuration that allocates more resources than available results in a
    kernel launch error at run-time", Section V-C).
    """


class DeviceFault(HipaccError):
    """The simulated device faulted during execution.

    Raised when a kernel with *undefined* boundary handling dereferences
    memory outside every allocation on a device that enforces memory
    protection (the paper's Tesla C2050 rows marked "crash").
    """
