"""Performance passes (HIP2xx) over a single :class:`KernelIR`.

Findings here never make a kernel wrong — they predict the memory-system
behaviour the paper measures: divergence from gid-dependent branches
(Section V-B's configuration discussion), shared-memory staging that
divergent control defeats, and bank conflicts on staged tiles (the
Listing-7 ``+1`` padding exists precisely to break them).
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from ..hwmodel.resources import BANK_CONFLICT_PAD, smem_tile_geometry
from ..ir.analysis import analyze_accesses
from ..ir.nodes import (
    AccessorRead,
    If,
    IntConst,
    KernelIR,
    Stmt,
)
from ..ir.visitors import stmt_exprs, walk_exprs, walk_stmts
from .correctness import _diag, _first_stmt_reading
from .dataflow import gid_dependent_names, is_gid_dependent
from .diagnostics import Diagnostic

#: shared-memory banks on every modelled device generation (Tesla/Fermi)
SMEM_BANKS = 32


def _gid_branches(ir: KernelIR) -> List[If]:
    tainted = gid_dependent_names(ir.body)
    return [s for s in walk_stmts(ir.body)
            if isinstance(s, If) and is_gid_dependent(s.cond, tainted)]


def check_divergence(ir: KernelIR) -> List[Diagnostic]:
    """HIP201: branches whose condition depends on the thread index
    diverge within a warp — both arms execute serially."""
    out: List[Diagnostic] = []
    for s in _gid_branches(ir):
        out.append(_diag(
            ir, "HIP201",
            "branch condition depends on self.x()/self.y(); threads of a "
            "warp take both arms serially",
            s, hint="prefer a branch-free select "
                    "(a if cond else b) or hoist the branch out of the "
                    "kernel via the iteration space"))
    return out


def _windowed_reads(body: Sequence[Stmt]):
    for s in body:
        for top in stmt_exprs(s):
            for e in walk_exprs(top):
                if isinstance(e, AccessorRead) and not (
                        isinstance(e.dx, IntConst) and e.dx.value == 0
                        and isinstance(e.dy, IntConst) and e.dy.value == 0):
                    yield s, e
        if isinstance(s, If):
            yield from _windowed_reads(s.then_body)
            yield from _windowed_reads(s.else_body)
        elif hasattr(s, "body"):
            yield from _windowed_reads(s.body)


def check_staging_hazards(ir: KernelIR) -> List[Diagnostic]:
    """HIP202: windowed reads nested under a gid-dependent branch.

    Scratchpad staging (Listing 7) loads the block's tile cooperatively
    — every thread must reach the staging barrier.  Reads that only some
    threads execute can't be staged without hoisting, so they fall back
    to global memory."""
    out: List[Diagnostic] = []
    for branch in _gid_branches(ir):
        seen = set()
        for s, e in _windowed_reads(branch.then_body + branch.else_body):
            if e.accessor in seen:
                continue
            seen.add(e.accessor)
            out.append(_diag(
                ir, "HIP202",
                f"windowed read of {e.accessor!r} only executes on one "
                f"side of a thread-index-dependent branch; it cannot be "
                f"staged through shared memory",
                s, hint="hoist the reads above the branch and select "
                        "between the loaded values"))
    return out


def check_bank_conflicts(ir: KernelIR,
                         block: Optional[Tuple[int, int]] = None
                         ) -> List[Diagnostic]:
    """HIP203: staged-tile row stride that is a multiple of the bank
    count.  Column-neighbour accesses (``dy`` varying) then hit one bank
    ``SMEM_BANKS`` ways.  Only meaningful when the block shape is known —
    the compile-time verify passes the resolved configuration."""
    if block is None:
        return []
    out: List[Diagnostic] = []
    for acc in ir.accessors:
        if acc.window == (1, 1) or acc.interpolation is not None:
            continue
        tile_w, _ = smem_tile_geometry(block, acc.window,
                                       bank_pad=BANK_CONFLICT_PAD)
        elem_size = acc.pixel_type.np_dtype.itemsize
        row_words = max(1, tile_w * elem_size // 4)
        if row_words % SMEM_BANKS != 0:
            continue
        out.append(_diag(
            ir, "HIP203",
            f"staged tile rows for {acc.name!r} are {row_words} words "
            f"({tile_w} elements) — a multiple of the {SMEM_BANKS} "
            f"shared-memory banks, so vertically adjacent threads "
            f"conflict",
            _first_stmt_reading(ir, accessor=acc.name),
            hint="change the block width so the padded row length is not "
                 f"a multiple of {SMEM_BANKS}"))
    return out


def check_unbounded_offsets(ir: KernelIR) -> List[Diagnostic]:
    """HIP204: accessor offsets the analysis cannot bound.  The compiler
    then cannot size a staging tile or prove border safety, so the read
    takes the slowest (global, border-checked) path."""
    out: List[Diagnostic] = []
    infos = analyze_accesses(ir)
    for acc in ir.accessors:
        if acc.interpolation is not None:
            continue
        info = infos.get(acc.name)
        if info is None or not info.is_read:
            continue
        if None not in (info.min_dx, info.max_dx, info.min_dy, info.max_dy):
            continue
        out.append(_diag(
            ir, "HIP204",
            f"offsets of accessor {acc.name!r} cannot be bounded "
            f"statically; shared-memory staging and border analysis are "
            f"disabled for it",
            _first_stmt_reading(ir, accessor=acc.name),
            hint="index with constants or loop variables with constant "
                 "range(...) bounds"))
    return out


def performance_passes(ir: KernelIR,
                       block: Optional[Tuple[int, int]] = None,
                       use_smem: bool = False) -> List[Diagnostic]:
    """All HIP2xx passes over one kernel.  *block*/*use_smem* come from a
    resolved codegen configuration when linting at compile time; the
    bank-conflict pass needs them and is skipped otherwise."""
    out: List[Diagnostic] = []
    out += check_divergence(ir)
    out += check_staging_hazards(ir)
    if use_smem:
        out += check_bank_conflicts(ir, block=block)
    out += check_unbounded_offsets(ir)
    return out
