"""Access-footprint domain derived from the abstract interpreter.

A *footprint* is, per accessor, the interval hull of every read offset
relative to the output pixel — the exact halo a node needs from its
producer.  It is computed from the :class:`~repro.lint.absint.ReadFact`
set of a fixpoint run, so masks, separable loop offsets and derived
index arithmetic are all covered by the same interval reasoning.

Consumers:

* ``KernelIR.footprint()`` exposes it as the stable per-kernel API
  (cached on the IR instance);
* :mod:`repro.graph.fusion` uses footprints to decide point-op fusion
  and to explain refusals (HIP302/HIP502);
* :mod:`repro.lint.graphlint` emits the HIP501 halo-extent notes;
* :mod:`repro.runtime.native_graph` requires a *proven* footprint
  inside the declared window before admitting a node to the native
  tier.
"""

from __future__ import annotations

import dataclasses
import math
from typing import Dict, Optional, Tuple

from ..ir.nodes import KernelIR
from ..obs import span
from .absint import AbsintResult, interpret


@dataclasses.dataclass(frozen=True)
class AccessorFootprint:
    """The read window of one accessor, relative to the output pixel.

    ``lo_dx .. hi_dx`` × ``lo_dy .. hi_dy`` is the inclusive offset
    hull; any ``None`` bound means the analysis could not bound that
    side (interpolated access, data-dependent index).  ``proven`` is
    True only when every read of this accessor had a bounded integer
    offset interval — the footprint is then an over-approximation of
    the true read set that is safe to build proofs on.
    """

    accessor: str
    window: Tuple[int, int]
    boundary_mode: str
    lo_dx: Optional[int]
    hi_dx: Optional[int]
    lo_dy: Optional[int]
    hi_dy: Optional[int]
    proven: bool

    @property
    def halo(self) -> Optional[Tuple[int, int]]:
        """Maximum reach from the centre pixel per axis, or ``None``
        when unbounded."""
        if not self.proven:
            return None
        return (max(abs(self.lo_dx), abs(self.hi_dx)),
                max(abs(self.lo_dy), abs(self.hi_dy)))

    def in_window(self) -> Optional[bool]:
        """Whether every read stays inside the declared window."""
        if not self.proven:
            return None
        hx = (self.window[0] - 1) // 2
        hy = (self.window[1] - 1) // 2
        return (self.lo_dx >= -hx and self.hi_dx <= hx
                and self.lo_dy >= -hy and self.hi_dy <= hy)

    def is_pointwise(self) -> bool:
        return self.proven and self.lo_dx == self.hi_dx == 0 \
            and self.lo_dy == self.hi_dy == 0

    def describe(self) -> str:
        if not self.proven:
            return f"{self.accessor}: unbounded"
        return (f"{self.accessor}: dx [{self.lo_dx}..{self.hi_dx}], "
                f"dy [{self.lo_dy}..{self.hi_dy}]")

    def to_dict(self) -> Dict[str, object]:
        return {
            "accessor": self.accessor,
            "window": list(self.window),
            "boundary_mode": self.boundary_mode,
            "dx": None if not self.proven else [self.lo_dx, self.hi_dx],
            "dy": None if not self.proven else [self.lo_dy, self.hi_dy],
            "proven": self.proven,
        }


@dataclasses.dataclass(frozen=True)
class KernelFootprint:
    """All accessor footprints of one kernel."""

    kernel: str
    accessors: Tuple[AccessorFootprint, ...]

    def accessor(self, name: str) -> Optional[AccessorFootprint]:
        for fp in self.accessors:
            if fp.accessor == name:
                return fp
        return None

    @property
    def proven(self) -> bool:
        return all(fp.proven for fp in self.accessors)

    def is_pointwise(self) -> bool:
        """True when every read provably hits only the centre pixel."""
        return all(fp.is_pointwise() for fp in self.accessors)

    def halo(self) -> Optional[Tuple[int, int]]:
        """Union halo across all accessors, or ``None`` if any accessor
        is unbounded."""
        hx = hy = 0
        for fp in self.accessors:
            h = fp.halo
            if h is None:
                return None
            hx, hy = max(hx, h[0]), max(hy, h[1])
        return (hx, hy)

    def describe(self) -> str:
        if not self.accessors:
            return "no accessor reads"
        return "; ".join(fp.describe() for fp in self.accessors)

    def to_dict(self) -> Dict[str, object]:
        halo = self.halo()
        return {
            "kernel": self.kernel,
            "halo": None if halo is None else list(halo),
            "pointwise": self.is_pointwise(),
            "accessors": [fp.to_dict() for fp in self.accessors],
        }


def _int_bound(v: float, toward: int) -> Optional[int]:
    if not math.isfinite(v):
        return None
    # offsets are integers; the interval endpoints of integer-typed
    # values are exact, so round toward the safe (outer) side
    return int(math.floor(v)) if toward < 0 else int(math.ceil(v))


def footprint_from_result(ir: KernelIR, result: AbsintResult
                          ) -> KernelFootprint:
    """Fold one fixpoint run's read facts into per-accessor hulls."""
    hulls: Dict[str, Optional[Tuple[int, int, int, int]]] = {}
    read_accessors = set()
    for r in result.reads:
        read_accessors.add(r.accessor)
        lo_dx = _int_bound(r.dx.lo, -1)
        hi_dx = _int_bound(r.dx.hi, +1)
        lo_dy = _int_bound(r.dy.lo, -1)
        hi_dy = _int_bound(r.dy.hi, +1)
        if None in (lo_dx, hi_dx, lo_dy, hi_dy):
            hulls[r.accessor] = None
            continue
        if r.accessor in hulls:
            prev = hulls[r.accessor]
            if prev is None:
                continue
            hulls[r.accessor] = (min(prev[0], lo_dx),
                                 max(prev[1], hi_dx),
                                 min(prev[2], lo_dy),
                                 max(prev[3], hi_dy))
        else:
            hulls[r.accessor] = (lo_dx, hi_dx, lo_dy, hi_dy)

    accessors = []
    for acc in ir.accessors:
        # acc.is_read is only filled in by backend emission, so the read
        # facts themselves decide which accessors carry a footprint
        if acc.interpolation is not None:
            # interpolated sampling reads data-dependent coordinates:
            # never a provable footprint
            accessors.append(AccessorFootprint(
                acc.name, acc.window, acc.boundary_mode,
                None, None, None, None, proven=False))
            continue
        hull = hulls.get(acc.name)
        if acc.name not in read_accessors:
            # declared but never read: empty footprint, trivially proven
            accessors.append(AccessorFootprint(
                acc.name, acc.window, acc.boundary_mode,
                0, 0, 0, 0, proven=True))
        elif hull is None:
            accessors.append(AccessorFootprint(
                acc.name, acc.window, acc.boundary_mode,
                None, None, None, None, proven=False))
        else:
            accessors.append(AccessorFootprint(
                acc.name, acc.window, acc.boundary_mode,
                hull[0], hull[1], hull[2], hull[3], proven=True))
    return KernelFootprint(kernel=ir.name, accessors=tuple(accessors))


def compute_footprint(ir: KernelIR) -> KernelFootprint:
    """Run the abstract interpreter and derive *ir*'s footprint."""
    with span("absint.footprint", kernel=ir.name):
        return footprint_from_result(ir, interpret(ir))
