"""CFG dataflow analyses backing the correctness passes.

Two classic analyses over :func:`repro.ir.cfg.build_cfg`:

* **definite assignment** (forward, must/intersection at joins) — a
  variable is *definitely assigned* at a program point when every path
  from the entry assigns it first.  A use at a point where the variable
  is not definitely assigned is a potential use-before-def (HIP101).
* **liveness** (backward, may/union at joins) — a store whose value can
  never reach a later use before being overwritten is dead (HIP102).

Both iterate to a fixpoint; kernels are tiny (tens of blocks), so a
worklist is unnecessary — a few passes over :meth:`CFG.reverse_postorder`
converge.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Sequence, Set, Tuple

from ..ir.cfg import CFG
from ..ir.nodes import (
    Assign,
    ForRange,
    If,
    Stmt,
    VarDecl,
    VarRef,
)
from ..ir.visitors import stmt_exprs, walk_exprs


def stmt_uses(s: Stmt) -> Set[str]:
    """Variable names read by *s*'s own expressions (If: the condition;
    ForRange: the bounds — nested bodies are separate CFG blocks)."""
    return {e.name for expr in stmt_exprs(s)
            for e in walk_exprs(expr) if isinstance(e, VarRef)}


def stmt_defs(s: Stmt) -> Set[str]:
    """Variable names *s* assigns (a ForRange header defines its loop
    variable for the body blocks that succeed it)."""
    if isinstance(s, (VarDecl, Assign)):
        return {s.name}
    if isinstance(s, ForRange):
        return {s.var}
    return set()


def _all_names(cfg: CFG) -> Set[str]:
    names: Set[str] = set()
    for block in cfg.blocks.values():
        for s in block.stmts:
            names |= stmt_defs(s)
    return names


def definite_assignment(
        cfg: CFG, initial: Sequence[str] = ()
) -> Iterator[Tuple[Stmt, Set[str]]]:
    """Yield ``(stmt, undefined_uses)`` for every statement whose uses are
    not definitely assigned at that point.

    *initial* names variables defined before the body runs (non-baked
    kernel parameters).
    """
    universe = _all_names(cfg) | set(initial)
    # OUT starts at the full universe ("assigned on every path so far")
    # except the entry, so the intersection at joins only shrinks.
    out_sets: Dict[int, Set[str]] = {
        i: set(universe) for i in cfg.blocks}
    entry_in = set(initial)
    order = cfg.reverse_postorder()

    changed = True
    while changed:
        changed = False
        for idx in order:
            preds = cfg.predecessors(idx)
            if idx == cfg.entry:
                live_in = set(entry_in)
            else:
                live_in = set(universe)
                for p in preds:
                    live_in &= out_sets[p]
                if not preds:
                    live_in = set(entry_in)   # unreachable: be conservative
            assigned = live_in
            for s in cfg.blocks[idx].stmts:
                assigned = assigned | stmt_defs(s)
            if assigned != out_sets[idx]:
                out_sets[idx] = assigned
                changed = True

    for idx in order:
        preds = cfg.predecessors(idx)
        if idx == cfg.entry or not preds:
            assigned = set(entry_in)
        else:
            assigned = set(universe)
            for p in preds:
                assigned &= out_sets[p]
        for s in cfg.blocks[idx].stmts:
            undefined = stmt_uses(s) - assigned
            if undefined:
                yield s, undefined
            assigned |= stmt_defs(s)


def dead_stores(cfg: CFG, live_out_names: Sequence[str] = ()
                ) -> List[Stmt]:
    """Statements (VarDecl/Assign) whose stored value is never read.

    *live_out_names* are treated as live at kernel exit (none, normally —
    locals die with the work-item).  Loop variables are never reported:
    a loop that ignores its index is idiomatic repetition, not a bug.
    """
    live_in: Dict[int, Set[str]] = {i: set() for i in cfg.blocks}
    order = cfg.reverse_postorder()

    def block_live_in(idx: int, live: Set[str]) -> Set[str]:
        for s in reversed(cfg.blocks[idx].stmts):
            live = (live - stmt_defs(s)) | stmt_uses(s)
        return live

    changed = True
    while changed:
        changed = False
        for idx in reversed(order):
            live = set(live_out_names) if idx == cfg.exit else set()
            for succ in cfg.blocks[idx].successors:
                live |= live_in[succ]
            new_in = block_live_in(idx, live)
            if new_in != live_in[idx]:
                live_in[idx] = new_in
                changed = True

    dead: List[Stmt] = []
    for idx in order:
        live = set(live_out_names) if idx == cfg.exit else set()
        for succ in cfg.blocks[idx].successors:
            live |= live_in[succ]
        for s in reversed(cfg.blocks[idx].stmts):
            if isinstance(s, (VarDecl, Assign)) and s.name not in live:
                dead.append(s)
            live = (live - stmt_defs(s)) | stmt_uses(s)
    dead.reverse()
    return dead


def gid_dependent_names(body: Sequence[Stmt]) -> Set[str]:
    """Transitive closure of locals whose value depends on the thread
    index (``self.x()``/``self.y()``) — feeds the divergence passes."""
    from ..ir.nodes import GidX, GidY
    from ..ir.visitors import walk_stmts

    tainted: Set[str] = set()
    changed = True
    while changed:
        changed = False
        for s in walk_stmts(body):
            if not isinstance(s, (VarDecl, Assign)):
                continue
            expr = s.init if isinstance(s, VarDecl) else s.value
            if s.name in tainted:
                continue
            for e in walk_exprs(expr):
                if isinstance(e, (GidX, GidY)) or (
                        isinstance(e, VarRef) and e.name in tainted):
                    tainted.add(s.name)
                    changed = True
                    break
    return tainted


def is_gid_dependent(expr, tainted: Set[str]) -> bool:
    from ..ir.nodes import GidX, GidY

    return any(isinstance(e, (GidX, GidY))
               or (isinstance(e, VarRef) and e.name in tainted)
               for e in walk_exprs(expr))
