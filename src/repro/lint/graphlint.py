"""Pipeline-graph passes (HIP3xx) over a :class:`PipelineGraph`.

These explain graph-level behaviour that is invisible from any single
kernel: outputs nobody reads (HIP301) and — the question every user of
the fusion pass eventually asks — *why* two adjacent nodes were not
merged (HIP302).  The scheduler runs them after fusion, so the remaining
producer/consumer pairs are exactly the ones fusion declined.
"""

from __future__ import annotations

from typing import List, Optional

from ..graph.builder import GraphNode, PipelineGraph
from ..graph.fusion import (
    _full_cover,
    _same_geometry,
    is_point_op,
    node_ir,
)
from .diagnostics import Diagnostic


def _node_diag(code: str, message: str, node: GraphNode,
               hint: Optional[str] = None) -> Diagnostic:
    return Diagnostic(code=code, message=message, kernel=node.name,
                      hint=hint)


def check_unconsumed_outputs(graph: PipelineGraph) -> List[Diagnostic]:
    """HIP301: a node's output image is a sink the user did not mark.

    Only fires when the graph marks outputs at all — a graph built
    without :meth:`PipelineGraph.mark_output` treats every sink as an
    implicit output, and flagging those would punish the common case."""
    if not graph._marked_outputs:
        return []
    out: List[Diagnostic] = []
    for node in graph.nodes:
        img = node.output
        if graph.consumers_of(img):
            continue
        if any(img is o for o in graph._marked_outputs):
            continue
        out.append(_node_diag(
            "HIP301",
            f"output image {img.name!r} of node {node.name!r} is never "
            f"consumed and is not a marked pipeline output",
            node,
            hint=f"mark_output() the image if it is a result, or remove "
                 f"the node"))
    return out


def _point_op_safe(node: GraphNode) -> Optional[bool]:
    try:
        return is_point_op(node_ir(node))
    except Exception:
        return None


def explain_missed_fusion(graph: PipelineGraph) -> List[Diagnostic]:
    """HIP302: for every remaining producer -> consumer edge where fusion
    was plausible (at least one side is a point operator), say exactly
    which precondition failed."""
    out: List[Diagnostic] = []
    outputs = graph.outputs()
    for producer in graph.nodes:
        inter = producer.output
        consumers = graph.consumers_of(inter)
        if not consumers:
            continue
        p_point = _point_op_safe(producer)
        for consumer in consumers:
            if consumer is producer:
                continue
            c_point = _point_op_safe(consumer)
            if not (p_point or c_point):
                continue       # two local operators: fusion never applies
            reasons = []
            if p_point is False:
                reasons.append(
                    f"{producer.name!r} is not a point operator")
            if c_point is False:
                reasons.append(
                    f"{consumer.name!r} is not a point operator")
            if None in (p_point, c_point):
                reasons.append("a node's kernel could not be analyzed")
            if len(consumers) > 1:
                reasons.append(
                    f"intermediate {inter.name!r} has "
                    f"{len(consumers)} consumers")
            if any(inter is o for o in outputs):
                reasons.append(
                    f"intermediate {inter.name!r} is a pipeline output")
            if producer.options != consumer.options:
                reasons.append("the nodes use different compile options")
            if not (_full_cover(producer) and _full_cover(consumer)
                    and _same_geometry(producer, consumer)):
                reasons.append(
                    "the nodes' iteration spaces differ or do not cover "
                    "their images")
            if not reasons:
                continue       # fusable — the fusion pass will take it
            out.append(_node_diag(
                "HIP302",
                f"nodes {producer.name!r} -> {consumer.name!r} were not "
                f"fused: " + "; ".join(reasons),
                producer,
                hint="point-operator fusion needs a single-consumer "
                     "intermediate, matching options and full-cover "
                     "iteration spaces"))
    return out


def graph_passes(graph: PipelineGraph) -> List[Diagnostic]:
    """All HIP3xx passes over one pipeline graph."""
    return check_unconsumed_outputs(graph) + explain_missed_fusion(graph)
