"""Pipeline-graph passes (HIP3xx/HIP5xx) over a :class:`PipelineGraph`.

These explain graph-level behaviour that is invisible from any single
kernel: outputs nobody reads (HIP301), — the question every user of
the fusion pass eventually asks — *why* two adjacent nodes were not
merged (HIP302), and the abstract interpreter's per-node footprint
facts (HIP501 halo extents, HIP502 footprint-incompatibility notes
riding along with HIP302 refusals).  The scheduler runs them after
fusion, so the remaining producer/consumer pairs are exactly the ones
fusion declined.
"""

from __future__ import annotations

from typing import List, Optional

from ..graph.builder import GraphNode, PipelineGraph
from ..graph.fusion import (
    _full_cover,
    _same_geometry,
    is_point_op,
    node_ir,
)
from .diagnostics import Diagnostic
from .footprint import KernelFootprint


def _node_diag(code: str, message: str, node: GraphNode,
               hint: Optional[str] = None) -> Diagnostic:
    return Diagnostic(code=code, message=message, kernel=node.name,
                      hint=hint)


def check_unconsumed_outputs(graph: PipelineGraph) -> List[Diagnostic]:
    """HIP301: a node's output image is a sink the user did not mark.

    Only fires when the graph marks outputs at all — a graph built
    without :meth:`PipelineGraph.mark_output` treats every sink as an
    implicit output, and flagging those would punish the common case."""
    if not graph._marked_outputs:
        return []
    out: List[Diagnostic] = []
    for node in graph.nodes:
        img = node.output
        if graph.consumers_of(img):
            continue
        if any(img is o for o in graph._marked_outputs):
            continue
        out.append(_node_diag(
            "HIP301",
            f"output image {img.name!r} of node {node.name!r} is never "
            f"consumed and is not a marked pipeline output",
            node,
            hint=f"mark_output() the image if it is a result, or remove "
                 f"the node"))
    return out


def _point_op_safe(node: GraphNode) -> Optional[bool]:
    try:
        return is_point_op(node_ir(node))
    except Exception:
        return None


def _footprint_safe(node: GraphNode) -> Optional[KernelFootprint]:
    try:
        return node_ir(node).footprint()
    except Exception:
        return None


def describe_footprints(graph: PipelineGraph) -> List[Diagnostic]:
    """HIP501: one note per analyzable node stating its access footprint
    and halo extent — the facts halo-aware fusion and tiled execution
    consume, surfaced so ``repro lint`` output documents them."""
    out: List[Diagnostic] = []
    for node in graph.nodes:
        fp = _footprint_safe(node)
        if fp is None:
            continue
        halo = fp.halo()
        if halo is None:
            message = (f"node {node.name!r} has an unbounded access "
                       f"footprint ({fp.describe()})")
        elif fp.is_pointwise():
            message = f"node {node.name!r} is pointwise (halo 0x0)"
        else:
            message = (f"node {node.name!r} needs a halo of "
                       f"{halo[0]}x{halo[1]} ({fp.describe()})")
        out.append(_node_diag("HIP501", message, node))
    return out


def explain_missed_fusion(graph: PipelineGraph,
                          notes: bool = False) -> List[Diagnostic]:
    """HIP302: for every remaining producer -> consumer edge where fusion
    was plausible (at least one side is a point operator), say exactly
    which precondition failed.  With ``notes=True`` each
    footprint-caused refusal also carries its HIP502 companion note."""
    out: List[Diagnostic] = []
    outputs = graph.outputs()
    for producer in graph.nodes:
        inter = producer.output
        consumers = graph.consumers_of(inter)
        if not consumers:
            continue
        p_point = _point_op_safe(producer)
        for consumer in consumers:
            if consumer is producer:
                continue
            c_point = _point_op_safe(consumer)
            if not (p_point or c_point):
                continue       # two local operators: fusion never applies
            reasons = []
            if p_point is False:
                reasons.append(
                    f"{producer.name!r} is not a point operator")
            if c_point is False:
                reasons.append(
                    f"{consumer.name!r} is not a point operator")
            if None in (p_point, c_point):
                reasons.append("a node's kernel could not be analyzed")
            if len(consumers) > 1:
                reasons.append(
                    f"intermediate {inter.name!r} has "
                    f"{len(consumers)} consumers")
            if any(inter is o for o in outputs):
                reasons.append(
                    f"intermediate {inter.name!r} is a pipeline output")
            if producer.options != consumer.options:
                reasons.append("the nodes use different compile options")
            if not (_full_cover(producer) and _full_cover(consumer)
                    and _same_geometry(producer, consumer)):
                reasons.append(
                    "the nodes' iteration spaces differ or do not cover "
                    "their images")
            if not reasons:
                continue       # fusable — the fusion pass will take it
            out.append(_node_diag(
                "HIP302",
                f"nodes {producer.name!r} -> {consumer.name!r} were not "
                f"fused: " + "; ".join(reasons),
                producer,
                hint="point-operator fusion needs a single-consumer "
                     "intermediate, matching options and full-cover "
                     "iteration spaces"))
            if notes:
                note = _footprint_incompatibility(producer, consumer,
                                                  p_point, c_point)
                if note is not None:
                    out.append(note)
    return out


def _footprint_incompatibility(producer: GraphNode, consumer: GraphNode,
                               p_point: Optional[bool],
                               c_point: Optional[bool]
                               ) -> Optional[Diagnostic]:
    """HIP502: when an HIP302 refusal is footprint-caused, attach the
    analysis-backed explanation (which side reads beyond the centre
    pixel, and by how much)."""
    culprits = []
    for node, point in ((producer, p_point), (consumer, c_point)):
        if point is not False:
            continue
        fp = _footprint_safe(node)
        if fp is None:
            continue
        halo = fp.halo()
        if halo is None:
            culprits.append(f"{node.name!r} has an unbounded footprint "
                            f"({fp.describe()})")
        elif not fp.is_pointwise():
            culprits.append(f"{node.name!r} reads a "
                            f"{2 * halo[0] + 1}x{2 * halo[1] + 1} "
                            f"footprint ({fp.describe()})")
    if not culprits:
        return None
    return _node_diag(
        "HIP502",
        f"footprints block fusing {producer.name!r} -> "
        f"{consumer.name!r}: " + "; ".join(culprits),
        producer,
        hint="only nodes with a proven 1x1 (pointwise) footprint can "
             "be substituted into their consumer")


def graph_passes(graph: PipelineGraph,
                 notes: bool = False) -> List[Diagnostic]:
    """All graph-level passes.  ``notes=False`` (the scheduler's mode)
    emits findings only (HIP3xx); ``notes=True`` (``repro lint``) adds
    the HIP5xx footprint facts."""
    out = check_unconsumed_outputs(graph)
    out += explain_missed_fusion(graph, notes=notes)
    if notes:
        out += describe_footprints(graph)
    return out


