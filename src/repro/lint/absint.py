"""Fixpoint abstract interpretation over the kernel CFG (HIP4xx).

The correctness passes bound *syntactic* facts (constant offsets, write
counts); this module runs a classic abstract interpreter over the same
CFG (:func:`repro.ir.cfg.build_cfg`) with an **interval domain extended
with gid-affine terms**:

    value  ∈  ax·gid_x + ay·gid_y + [lo, hi]

* constants are singleton intervals, ``self.x()``/``self.y()`` are the
  affine generators (with the concrete range ``[0, ∞)`` — iteration
  space extents are not known statically);
* every arithmetic operator, cast, select and math intrinsic has a
  sound transfer function (interval arithmetic; non-affine operators
  drop to the concrete interval hull);
* loop variables with constant bounds get their exact trip range;
  everything else converges through **widening at loop headers** (a
  bound that grows between fixpoint iterations is widened to ±∞), so
  the analysis terminates on any CFG.

The fixpoint result feeds three consumers:

1. the HIP4xx range-hazard passes in :func:`range_passes` (provable
   out-of-window reads, division by a possibly-zero interval,
   overflowing narrowing casts, ``sqrt``/``log`` of possibly-negative
   ranges);
2. the access-footprint domain in :mod:`repro.lint.footprint` (per
   accessor, the interval hull of every read offset);
3. the prove-based native-tier gate in
   :mod:`repro.runtime.native_graph` (all reads proven in-window, all
   intrinsics proven inside their bit-exact range).

**Noise policy** — image pixels, runtime uniforms and dynamic masks are
unknown data (⊤ = ``[-∞, ∞]``).  A hazard that only exists because some
input *might* be anything is the runtime checker's job, not a static
finding; the HIP4xx passes therefore only fire when the offending bound
is *finite*, i.e. when the analysis actually derived a range that
includes the hazard.  ``docs/DIAGNOSTICS.md`` documents the lattice and
this policy per code.
"""

from __future__ import annotations

import dataclasses
import math
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..intrinsics import resolve
from ..ir.analysis import _loop_var_ranges, _offset_bounds
from ..ir.cfg import CFG, build_cfg
from ..ir.nodes import (
    AccessorRead,
    Assign,
    BinOp,
    BoolConst,
    Call,
    Cast,
    Expr,
    FloatConst,
    ForRange,
    GidX,
    GidY,
    If,
    IntConst,
    KernelIR,
    MaskRead,
    OutputWrite,
    Select,
    Stmt,
    UnOp,
    VarDecl,
    VarRef,
    const_int_value,
)
from ..ir.visitors import walk_exprs
from ..obs import span
from ..obs.metrics import get_registry
from .diagnostics import Diagnostic, Severity

_INF = float("inf")

#: fixpoint iteration cap — kernels are tiny, widening converges in a
#: handful of passes; the cap only guards against analysis bugs
_MAX_ITERATIONS = 64


# --------------------------------------------------------------------------
# The abstract domain
# --------------------------------------------------------------------------


@dataclasses.dataclass(frozen=True)
class AbstractValue:
    """One lattice element: ``ax·gid_x + ay·gid_y + [lo, hi]``.

    ``lo``/``hi`` are inclusive real bounds (±∞ allowed).  The affine
    coefficients are only ever non-zero for integer-valued expressions;
    ``maybe_nan`` tracks whether a float value can be NaN (unknown image
    data, or a domain-violating intrinsic).
    """

    lo: float
    hi: float
    ax: int = 0
    ay: int = 0
    is_int: bool = False
    maybe_nan: bool = False

    # -- structure ---------------------------------------------------------

    @property
    def is_affine(self) -> bool:
        return self.ax != 0 or self.ay != 0

    def concrete(self) -> "AbstractValue":
        """Drop the affine part: the concrete interval hull given
        ``gid_x, gid_y ∈ [0, ∞)``."""
        if not self.is_affine:
            return self
        lo, hi = self.lo, self.hi
        if self.ax > 0 or self.ay > 0:
            hi = _INF
        if self.ax < 0 or self.ay < 0:
            lo = -_INF
        return AbstractValue(lo, hi, is_int=self.is_int,
                             maybe_nan=self.maybe_nan)

    @property
    def is_singleton(self) -> bool:
        return not self.is_affine and self.lo == self.hi \
            and not self.maybe_nan and math.isfinite(self.lo)

    def singleton(self) -> Optional[float]:
        return self.lo if self.is_singleton else None

    def bounded(self) -> bool:
        c = self.concrete()
        return math.isfinite(c.lo) and math.isfinite(c.hi)

    def contains(self, v: float) -> bool:
        c = self.concrete()
        return c.lo <= v <= c.hi

    # -- lattice operations ------------------------------------------------

    def join(self, other: "AbstractValue") -> "AbstractValue":
        if self.ax == other.ax and self.ay == other.ay:
            return AbstractValue(
                min(self.lo, other.lo), max(self.hi, other.hi),
                self.ax, self.ay,
                is_int=self.is_int and other.is_int,
                maybe_nan=self.maybe_nan or other.maybe_nan)
        a, b = self.concrete(), other.concrete()
        return AbstractValue(
            min(a.lo, b.lo), max(a.hi, b.hi),
            is_int=a.is_int and b.is_int,
            maybe_nan=a.maybe_nan or b.maybe_nan)

    def widen(self, newer: "AbstractValue") -> "AbstractValue":
        """Standard interval widening: a bound that moved since the last
        iteration jumps to ±∞ (applied at loop headers only)."""
        if self.ax == newer.ax and self.ay == newer.ay:
            lo = self.lo if newer.lo >= self.lo else -_INF
            hi = self.hi if newer.hi <= self.hi else _INF
            return AbstractValue(
                lo, hi, self.ax, self.ay,
                is_int=self.is_int and newer.is_int,
                maybe_nan=self.maybe_nan or newer.maybe_nan)
        return self.join(newer).widen(self.join(newer))

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        affine = ""
        if self.ax:
            affine += f"{self.ax:+d}·gx"
        if self.ay:
            affine += f"{self.ay:+d}·gy"
        return f"{affine}[{self.lo}, {self.hi}]" + \
            ("?nan" if self.maybe_nan else "")


def top(is_int: bool = False, maybe_nan: bool = False) -> AbstractValue:
    return AbstractValue(-_INF, _INF, is_int=is_int, maybe_nan=maybe_nan)


def const(v: float, is_int: bool = False) -> AbstractValue:
    return AbstractValue(float(v), float(v), is_int=is_int)


Env = Dict[str, AbstractValue]


def _join_envs(a: Env, b: Env) -> Env:
    out: Env = {}
    for name in a.keys() & b.keys():
        out[name] = a[name].join(b[name])
    return out


def _widen_env(old: Env, new: Env) -> Env:
    out: Env = {}
    for name in old.keys() & new.keys():
        out[name] = old[name].widen(new[name])
    return out


def _envs_equal(a: Env, b: Env) -> bool:
    return a == b


# --------------------------------------------------------------------------
# Transfer functions
# --------------------------------------------------------------------------


def _mul_bound(x: float, y: float) -> float:
    # real-interval endpoint product; 0·∞ resolves to 0 (the limit the
    # interval hull needs: the other endpoints carry the unbounded side)
    if (x == 0.0 and math.isinf(y)) or (y == 0.0 and math.isinf(x)):
        return 0.0
    return x * y


def _interval_mul(a: AbstractValue, b: AbstractValue) -> AbstractValue:
    a, b = a.concrete(), b.concrete()
    cands = [_mul_bound(x, y) for x in (a.lo, a.hi) for y in (b.lo, b.hi)]
    return AbstractValue(min(cands), max(cands),
                         is_int=a.is_int and b.is_int,
                         maybe_nan=a.maybe_nan or b.maybe_nan)


def _interval_div(a: AbstractValue, b: AbstractValue,
                  int_div: bool) -> AbstractValue:
    a, b = a.concrete(), b.concrete()
    nan = a.maybe_nan or b.maybe_nan
    if b.contains(0.0):
        # division by a possibly-zero interval: the value is unbounded
        # (float: ±inf/NaN; int: undefined behaviour)
        return top(is_int=int_div and a.is_int and b.is_int,
                   maybe_nan=not int_div)
    cands = []
    for x in (a.lo, a.hi):
        for y in (b.lo, b.hi):
            if math.isinf(x) and math.isinf(y):
                return top(is_int=int_div, maybe_nan=nan)
            q = x / y if not math.isinf(x) else (
                x if (y > 0) else -x)
            if math.isinf(y):
                q = 0.0
            cands.append(float(math.trunc(q)) if int_div and
                         math.isfinite(q) else q)
    return AbstractValue(min(cands), max(cands),
                         is_int=int_div and a.is_int and b.is_int,
                         maybe_nan=nan)


def _interval_mod(a: AbstractValue, b: AbstractValue,
                  int_mod: bool) -> AbstractValue:
    a, b = a.concrete(), b.concrete()
    nan = a.maybe_nan or b.maybe_nan or (not int_mod and b.contains(0.0))
    mag = max(abs(b.lo), abs(b.hi))
    if not math.isfinite(mag) or b.contains(0.0) and int_mod:
        return top(is_int=int_mod, maybe_nan=nan)
    # C semantics: result sign follows the dividend, |result| < |divisor|
    limit = mag - 1 if int_mod else mag
    lo = -limit if a.lo < 0 else 0.0
    hi = limit if a.hi > 0 else 0.0
    return AbstractValue(lo, hi, is_int=int_mod, maybe_nan=nan)


def _monotone(fn: Callable[[float], float], lo: float, hi: float
              ) -> Tuple[float, float]:
    """Apply a monotone-increasing real function to both endpoints,
    mapping range errors to the appropriate infinity/limit."""
    def safe(v: float, toward: float) -> float:
        if math.isinf(v):
            try:
                return fn(math.copysign(1e308, v))
            except (OverflowError, ValueError):
                return toward
        try:
            return fn(v)
        except OverflowError:
            return _INF
        except ValueError:
            return toward
    return safe(lo, -_INF), safe(hi, _INF)


class Interpreter:
    """Evaluates expressions over :class:`AbstractValue` environments."""

    def __init__(self, ir: KernelIR):
        self.ir = ir
        self._accessors = {a.name: a for a in ir.accessors}
        self._masks = {m.name: m for m in ir.masks}

    # -- entry environment -------------------------------------------------

    def entry_env(self) -> Env:
        env: Env = {}
        for p in self.ir.params:
            is_int = p.type is not None and p.type.is_integer
            if p.baked and isinstance(p.value, (int, float, bool)) \
                    and not (isinstance(p.value, float)
                             and math.isnan(p.value)):
                env[p.name] = const(float(p.value), is_int=is_int)
            else:
                env[p.name] = top(is_int=is_int, maybe_nan=not is_int)
        return env

    # -- expressions -------------------------------------------------------

    def eval(self, e: Expr, env: Env) -> AbstractValue:
        if isinstance(e, IntConst):
            return const(e.value, is_int=True)
        if isinstance(e, FloatConst):
            if math.isnan(e.value):
                return top(maybe_nan=True)
            return const(e.value)
        if isinstance(e, BoolConst):
            return const(int(e.value), is_int=True)
        if isinstance(e, VarRef):
            v = env.get(e.name)
            if v is not None:
                return v
            is_int = e.type is not None and e.type.is_integer
            return top(is_int=is_int, maybe_nan=not is_int)
        if isinstance(e, GidX):
            return AbstractValue(0.0, 0.0, ax=1, is_int=True)
        if isinstance(e, GidY):
            return AbstractValue(0.0, 0.0, ay=1, is_int=True)
        if isinstance(e, BinOp):
            return self._eval_binop(e, env)
        if isinstance(e, UnOp):
            return self._eval_unop(e, env)
        if isinstance(e, Call):
            return self._eval_call(e, env)
        if isinstance(e, Cast):
            return self._eval_cast(e, env)
        if isinstance(e, Select):
            self.eval(e.cond, env)
            return self.eval(e.if_true, env).join(
                self.eval(e.if_false, env))
        if isinstance(e, AccessorRead):
            return self._accessor_value(e.accessor)
        if isinstance(e, MaskRead):
            return self._mask_value(e.mask)
        return top(maybe_nan=True)

    def _accessor_value(self, name: str) -> AbstractValue:
        acc = self._accessors.get(name)
        if acc is not None and acc.pixel_type.is_integer:
            info = np.iinfo(acc.pixel_type.np_dtype)
            return AbstractValue(float(info.min), float(info.max),
                                 is_int=True)
        return top(maybe_nan=True)

    def _mask_value(self, name: str) -> AbstractValue:
        m = self._masks.get(name)
        if m is not None and m.compile_time_constant \
                and m.coefficients is not None:
            coeffs = np.asarray(m.coefficients, dtype=np.float64)
            if coeffs.size and np.isfinite(coeffs).all():
                return AbstractValue(float(coeffs.min()),
                                     float(coeffs.max()),
                                     is_int=m.pixel_type.is_integer)
        return top(maybe_nan=True)

    def _eval_binop(self, e: BinOp, env: Env) -> AbstractValue:
        a = self.eval(e.lhs, env)
        b = self.eval(e.rhs, env)
        op = e.op
        int_op = a.is_int and b.is_int
        if op == "+":
            return AbstractValue(a.lo + b.lo, a.hi + b.hi,
                                 a.ax + b.ax, a.ay + b.ay,
                                 is_int=int_op,
                                 maybe_nan=a.maybe_nan or b.maybe_nan)
        if op == "-":
            return AbstractValue(a.lo - b.hi, a.hi - b.lo,
                                 a.ax - b.ax, a.ay - b.ay,
                                 is_int=int_op,
                                 maybe_nan=a.maybe_nan or b.maybe_nan)
        if op == "*":
            # scaling an affine value by an integer constant keeps the
            # affine form; everything else drops to the concrete hull
            for affine, k in ((a, b), (b, a)):
                s = k.singleton()
                if affine.is_affine and s is not None and k.is_int \
                        and float(s).is_integer():
                    s = int(s)
                    lo, hi = sorted((affine.lo * s, affine.hi * s))
                    return AbstractValue(lo, hi, affine.ax * s,
                                         affine.ay * s, is_int=int_op,
                                         maybe_nan=affine.maybe_nan)
            # x * x is a square: never negative regardless of sign
            if _same_expr(e.lhs, e.rhs):
                c = _interval_mul(a, b)
                return dataclasses.replace(c, lo=max(c.lo, 0.0))
            return _interval_mul(a, b)
        if op == "/":
            return _interval_div(a, b, int_div=int_op)
        if op == "%":
            return _interval_mod(a, b, int_mod=int_op)
        if op in ("<", "<=", ">", ">=", "==", "!="):
            return self._compare(op, a, b)
        if op in ("&&", "||"):
            return AbstractValue(0.0, 1.0, is_int=True)
        if op in ("<<", ">>", "&", "|", "^"):
            sa, sb = a.singleton(), b.singleton()
            if sa is not None and sb is not None \
                    and float(sa).is_integer() and float(sb).is_integer():
                ia, ib = int(sa), int(sb)
                try:
                    v = {"<<": ia << ib, ">>": ia >> ib, "&": ia & ib,
                         "|": ia | ib, "^": ia ^ ib}[op]
                    return const(v, is_int=True)
                except (ValueError, OverflowError):
                    pass
            return top(is_int=True)
        return top(maybe_nan=True)

    @staticmethod
    def _compare(op: str, a: AbstractValue, b: AbstractValue
                 ) -> AbstractValue:
        ca, cb = a.concrete(), b.concrete()
        if not (ca.maybe_nan or cb.maybe_nan):
            decided = {
                "<": (ca.hi < cb.lo, ca.lo >= cb.hi),
                "<=": (ca.hi <= cb.lo, ca.lo > cb.hi),
                ">": (ca.lo > cb.hi, ca.hi <= cb.lo),
                ">=": (ca.lo >= cb.hi, ca.hi < cb.lo),
                "==": (ca.is_singleton and cb.is_singleton
                       and ca.lo == cb.lo,
                       ca.hi < cb.lo or ca.lo > cb.hi),
                "!=": (ca.hi < cb.lo or ca.lo > cb.hi,
                       ca.is_singleton and cb.is_singleton
                       and ca.lo == cb.lo),
            }[op]
            if decided[0]:
                return const(1, is_int=True)
            if decided[1]:
                return const(0, is_int=True)
        return AbstractValue(0.0, 1.0, is_int=True)

    def _eval_unop(self, e: UnOp, env: Env) -> AbstractValue:
        v = self.eval(e.operand, env)
        if e.op == "-":
            return AbstractValue(-v.hi, -v.lo, -v.ax, -v.ay,
                                 is_int=v.is_int, maybe_nan=v.maybe_nan)
        if e.op == "+":
            return v
        if e.op == "!":
            return AbstractValue(0.0, 1.0, is_int=True)
        if e.op == "~":
            s = v.singleton()
            if s is not None and float(s).is_integer():
                return const(~int(s), is_int=True)
            return top(is_int=True)
        return top(maybe_nan=True)

    def _eval_cast(self, e: Cast, env: Env) -> AbstractValue:
        v = self.eval(e.operand, env).concrete()
        if e.target is None:
            return v
        if e.target.is_integer:
            lo, hi = v.lo, v.hi
            if not v.is_int:
                # the operand bounds were computed in double precision;
                # pad by one unit before truncating so a float32 result
                # landing ULPs past an integer boundary stays covered
                lo = lo - 1.0 if math.isfinite(lo) else lo
                hi = hi + 1.0 if math.isfinite(hi) else hi
            lo = float(math.trunc(lo)) if math.isfinite(lo) else lo
            hi = float(math.trunc(hi)) if math.isfinite(hi) else hi
            info = np.iinfo(e.target.np_dtype)
            if lo < info.min or hi > info.max:
                # overflow wraps (C): the result can be anything in-type
                return AbstractValue(float(info.min), float(info.max),
                                     is_int=True)
            return AbstractValue(lo, hi, is_int=True)
        return AbstractValue(v.lo, v.hi, is_int=False,
                             maybe_nan=v.maybe_nan)

    def _eval_call(self, e: Call, env: Env) -> AbstractValue:
        args = [self.eval(a, env).concrete() for a in e.args]
        try:
            name = resolve(e.func).name
        except Exception:
            return top(maybe_nan=True)
        return _intrinsic_transfer(name, args)


def _same_expr(a: Expr, b: Expr) -> bool:
    """Structural equality restricted to the pure-read forms where
    ``a*a`` squares are common (variable refs and centre-pixel reads)."""
    if isinstance(a, VarRef) and isinstance(b, VarRef):
        return a.name == b.name
    if isinstance(a, AccessorRead) and isinstance(b, AccessorRead):
        return (a.accessor == b.accessor
                and const_int_value(a.dx) == const_int_value(b.dx)
                and const_int_value(a.dx) is not None
                and const_int_value(a.dy) == const_int_value(b.dy)
                and const_int_value(a.dy) is not None)
    return False


def _intrinsic_transfer(name: str, args: List[AbstractValue]
                        ) -> AbstractValue:
    nan = any(a.maybe_nan for a in args)
    a = args[0] if args else top(maybe_nan=True)
    if name == "sqrt":
        lo, hi = _monotone(math.sqrt, max(a.lo, 0.0), max(a.hi, 0.0))
        return AbstractValue(max(lo, 0.0), max(hi, 0.0),
                             maybe_nan=nan or a.lo < 0)
    if name in ("fabs", "abs"):
        lo = 0.0 if a.lo <= 0.0 <= a.hi else min(abs(a.lo), abs(a.hi))
        return AbstractValue(lo, max(abs(a.lo), abs(a.hi)),
                             is_int=a.is_int and name == "abs",
                             maybe_nan=nan)
    if name == "exp":
        lo, hi = _monotone(math.exp, a.lo, a.hi)
        return AbstractValue(max(lo, 0.0), hi, maybe_nan=nan)
    if name in ("log", "log2", "log10"):
        fn = {"log": math.log, "log2": math.log2,
              "log10": math.log10}[name]
        lo, hi = _monotone(fn, max(a.lo, 0.0), max(a.hi, 0.0))
        return AbstractValue(lo, hi, maybe_nan=nan or a.lo <= 0)
    if name in ("sin", "cos"):
        return AbstractValue(-1.0, 1.0, maybe_nan=nan)
    if name == "atan":
        return AbstractValue(-math.pi / 2, math.pi / 2, maybe_nan=nan)
    if name == "atan2":
        return AbstractValue(-math.pi, math.pi, maybe_nan=nan)
    if name in ("floor", "trunc", "round", "ceil"):
        fn = {"floor": math.floor, "trunc": math.trunc,
              "round": round, "ceil": math.ceil}[name]
        lo = float(fn(a.lo)) if math.isfinite(a.lo) else a.lo
        hi = float(fn(a.hi)) if math.isfinite(a.hi) else a.hi
        return AbstractValue(lo, hi, maybe_nan=nan)
    if name in ("fmin", "min") and len(args) == 2:
        b = args[1]
        return AbstractValue(min(a.lo, b.lo), min(a.hi, b.hi),
                             is_int=a.is_int and b.is_int, maybe_nan=nan)
    if name in ("fmax", "max") and len(args) == 2:
        b = args[1]
        return AbstractValue(max(a.lo, b.lo), max(a.hi, b.hi),
                             is_int=a.is_int and b.is_int, maybe_nan=nan)
    if name == "clamp" and len(args) == 3:
        lo_b, hi_b = args[1], args[2]
        return AbstractValue(max(a.lo, lo_b.lo), min(a.hi, hi_b.hi),
                             maybe_nan=nan)
    if name == "fmod" and len(args) == 2:
        return _interval_mod(a, args[1], int_mod=False)
    if name == "pow" and len(args) == 2:
        exp_v = args[1].singleton()
        if exp_v == 2.0:
            sq = _interval_mul(a, a)
            return dataclasses.replace(sq, lo=max(sq.lo, 0.0),
                                       maybe_nan=nan)
        if exp_v == 1.0:
            return a
        if exp_v == 0.0:
            return const(1.0)
        if exp_v == 0.5:
            return _intrinsic_transfer("sqrt", [a])
        if a.lo >= 0.0:
            return AbstractValue(0.0, _INF, maybe_nan=nan)
        return top(maybe_nan=True)
    if name == "rsqrt":
        return AbstractValue(0.0, _INF, maybe_nan=nan or a.lo < 0)
    return top(maybe_nan=True)


# --------------------------------------------------------------------------
# Fixpoint engine
# --------------------------------------------------------------------------


@dataclasses.dataclass
class ReadFact:
    """The interval hull of one ``AccessorRead``'s offsets."""

    accessor: str
    dx: AbstractValue
    dy: AbstractValue
    stmt: Optional[Stmt]
    window: Tuple[int, int]
    boundary_mode: str

    @property
    def in_window(self) -> Optional[bool]:
        """True = proven inside the declared window on every execution,
        False = some execution provably reads outside, None = unknown."""
        hx = (self.window[0] - 1) // 2
        hy = (self.window[1] - 1) // 2
        dx, dy = self.dx.concrete(), self.dy.concrete()
        if dx.lo >= -hx and dx.hi <= hx and dy.lo >= -hy and dy.hi <= hy:
            return True
        if dx.lo > hx or dx.hi < -hx or dy.lo > hy or dy.hi < -hy:
            return False
        if dx.bounded() and dy.bounded():
            return False       # bounded hull that sticks out: some read
        return None            # escapes the window


@dataclasses.dataclass
class CallFact:
    """One intrinsic call with the abstract values of its arguments."""

    func: str
    args: List[AbstractValue]
    stmt: Optional[Stmt]
    #: the Call expression itself, so transforms can match facts back
    #: to IR nodes by identity
    expr: Optional[Call] = None

    def singleton_arg(self, index: int) -> Optional[float]:
        if index < len(self.args):
            return self.args[index].singleton()
        return None


@dataclasses.dataclass
class AbsintResult:
    """Everything one fixpoint run learned about a kernel."""

    kernel: str
    cfg: CFG
    env_in: Dict[int, Env]
    reads: List[ReadFact]
    calls: List[CallFact]
    iterations: int

    def proven_in_window(self) -> bool:
        return all(r.in_window is True for r in self.reads)

    def first_unproven_read(self) -> Optional[ReadFact]:
        for r in self.reads:
            if r.in_window is not True:
                return r
        return None


def _loop_var_value(interp: Interpreter, s: ForRange, env: Env
                    ) -> AbstractValue:
    start = const_int_value(s.start)
    stop = const_int_value(s.stop)
    step = const_int_value(s.step)
    if None not in (start, stop, step) and step != 0:
        n = max(0, (stop - start + (step - (1 if step > 0 else -1)))
                // step)
        if n == 0:
            return const(start, is_int=True)
        last = start + (n - 1) * step
        return AbstractValue(float(min(start, last)),
                             float(max(start, last)), is_int=True)
    # non-constant bounds: the hull of [start, stop) in either direction
    a = interp.eval(s.start, env).concrete()
    b = interp.eval(s.stop, env).concrete()
    return AbstractValue(min(a.lo, b.lo), max(a.hi, b.hi), is_int=True)


def _transfer_block(interp: Interpreter, stmts: Sequence[Stmt],
                    env: Env) -> Env:
    env = dict(env)
    for s in stmts:
        if isinstance(s, (VarDecl, Assign)):
            value = s.init if isinstance(s, VarDecl) else s.value
            env[s.name] = interp.eval(value, env)
        elif isinstance(s, ForRange):
            env[s.var] = _loop_var_value(interp, s, env)
        # If conditions and OutputWrites don't bind names
    return env


def interpret(ir: KernelIR) -> AbsintResult:
    """Run the interval fixpoint over *ir*'s CFG and collect read and
    call facts with the converged environments."""
    with span("absint.fixpoint", kernel=ir.name):
        interp = Interpreter(ir)
        cfg = build_cfg(ir.body)
        order = cfg.reverse_postorder()
        entry = interp.entry_env()
        env_in: Dict[int, Optional[Env]] = {i: None for i in cfg.blocks}
        env_in[cfg.entry] = entry
        env_out: Dict[int, Optional[Env]] = {i: None for i in cfg.blocks}

        iterations = 0
        changed = True
        while changed and iterations < _MAX_ITERATIONS:
            changed = False
            iterations += 1
            for idx in order:
                block = cfg.blocks[idx]
                if idx == cfg.entry:
                    new_in: Optional[Env] = dict(entry)
                else:
                    new_in = None
                    for p in cfg.predecessors(idx):
                        if env_out[p] is None:
                            continue
                        new_in = dict(env_out[p]) if new_in is None \
                            else _join_envs(new_in, env_out[p])
                    if new_in is None:
                        continue        # unreachable so far
                if block.label == "loop-header" \
                        and env_in[idx] is not None \
                        and not _envs_equal(env_in[idx], new_in):
                    new_in = _widen_env(env_in[idx], new_in)
                if env_in[idx] is None or not _envs_equal(
                        env_in[idx], new_in):
                    env_in[idx] = new_in
                    changed = True
                new_out = _transfer_block(interp, block.stmts, new_in)
                if env_out[idx] is None or not _envs_equal(
                        env_out[idx], new_out):
                    env_out[idx] = new_out
                    changed = True

        # reporting pass: evaluate every expression once more against the
        # converged per-statement environments, collecting facts
        reads: List[ReadFact] = []
        calls: List[CallFact] = []
        accessors = {a.name: a for a in ir.accessors}
        for idx in order:
            env = env_in[idx]
            if env is None:
                continue
            env = dict(env)
            for s in cfg.blocks[idx].stmts:
                for topmost in _stmt_exprs(s):
                    for e in walk_exprs(topmost):
                        if isinstance(e, AccessorRead):
                            acc = accessors.get(e.accessor)
                            if acc is None or acc.interpolation \
                                    is not None:
                                continue
                            reads.append(ReadFact(
                                accessor=e.accessor,
                                dx=interp.eval(e.dx, env).concrete(),
                                dy=interp.eval(e.dy, env).concrete(),
                                stmt=s, window=acc.window,
                                boundary_mode=acc.boundary_mode))
                        elif isinstance(e, Call):
                            try:
                                name = resolve(e.func).name
                            except Exception:
                                continue
                            calls.append(CallFact(
                                func=name,
                                args=[interp.eval(a, env).concrete()
                                      for a in e.args],
                                stmt=s, expr=e))
                env = _transfer_block(interp, [s], env)

        get_registry().count("lint.absint.runs")
        result = AbsintResult(kernel=ir.name, cfg=cfg,
                              env_in={i: v for i, v in env_in.items()
                                      if v is not None},
                              reads=reads, calls=calls,
                              iterations=iterations)
        proved = sum(1 for r in reads if r.in_window is True)
        get_registry().count("lint.absint.reads_proved", proved)
        get_registry().count("lint.absint.reads_unproved",
                             len(reads) - proved)
        return result


def _stmt_exprs(s: Stmt) -> List[Expr]:
    if isinstance(s, VarDecl):
        return [s.init]
    if isinstance(s, Assign):
        return [s.value]
    if isinstance(s, If):
        return [s.cond]
    if isinstance(s, ForRange):
        return [s.start, s.stop, s.step]
    if isinstance(s, OutputWrite):
        return [s.value]
    return []


# --------------------------------------------------------------------------
# HIP4xx passes
# --------------------------------------------------------------------------


def _loc(ir: KernelIR, stmt: Optional[Stmt]
         ) -> Tuple[Optional[int], Optional[str]]:
    lineno = getattr(stmt, "lineno", None)
    if lineno is None:
        return None, None
    line = None
    if 0 < lineno <= len(ir.source_lines):
        line = ir.source_lines[lineno - 1]
    return lineno, line


def _diag(ir: KernelIR, code: str, message: str,
          stmt: Optional[Stmt] = None, hint: Optional[str] = None,
          severity: Optional[Severity] = None) -> Diagnostic:
    lineno, line = _loc(ir, stmt)
    return Diagnostic(code=code, message=message, severity=severity,
                      kernel=ir.name, lineno=lineno, source_line=line,
                      hint=hint)


def _fmt(v: AbstractValue) -> str:
    def b(x: float) -> str:
        if math.isinf(x):
            return "-inf" if x < 0 else "inf"
        return f"{int(x)}" if float(x).is_integer() else f"{x:g}"
    return f"[{b(v.lo)}..{b(v.hi)}]"


def _check_window_reads(ir: KernelIR, result: AbsintResult
                        ) -> List[Diagnostic]:
    """HIP401 — reads whose *derived* offset interval escapes the
    declared window.  Constant-offset reads are HIP107's territory (the
    access analysis bounds them directly); this pass covers offsets the
    syntactic analysis gives up on."""
    out: List[Diagnostic] = []
    ranges_by_read: Dict[int, Dict[str, Tuple[int, int]]] = {}
    _loop_var_ranges(ir.body, {}, ranges_by_read)
    syntactic = set()
    for topmost in _iter_top_exprs(ir.body):
        for e in walk_exprs(topmost):
            if isinstance(e, AccessorRead):
                ranges = ranges_by_read.get(id(e), {})
                if _offset_bounds(e.dx, ranges) is not None \
                        and _offset_bounds(e.dy, ranges) is not None:
                    syntactic.add(_read_key(e))

    seen = set()
    for r in result.reads:
        if r.in_window is not False:
            continue
        key = (r.accessor, getattr(r.stmt, "lineno", None),
               _fmt(r.dx), _fmt(r.dy))
        if key in seen:
            continue
        seen.add(key)
        stmt_reads = {_read_key(e) for top_e in _stmt_exprs(r.stmt or
                                                           OutputWrite(
                                                               IntConst(0)))
                      for e in walk_exprs(top_e)
                      if isinstance(e, AccessorRead)
                      and e.accessor == r.accessor}
        if stmt_reads and stmt_reads <= syntactic:
            continue       # every read here is constant-bounded: HIP107
        undefined = r.boundary_mode == "undefined"
        message = (
            f"accessor {r.accessor!r} is read at derived offsets "
            f"{_fmt(r.dx)}x{_fmt(r.dy)} which escape its declared "
            f"{r.window[0]}x{r.window[1]} window")
        if undefined:
            message += ("; with undefined boundary handling this reads "
                        "out of bounds at the image border")
        out.append(_diag(
            ir, "HIP401", message, r.stmt,
            hint="shrink the offset computation or declare a "
                 "BoundaryCondition window covering the derived range",
            severity=Severity.ERROR if undefined else Severity.WARNING))
    return out


def _read_key(e: AccessorRead) -> Tuple[str, int]:
    return (e.accessor, id(e))


def _iter_top_exprs(body: Sequence[Stmt]):
    from ..ir.visitors import walk_stmts
    for s in walk_stmts(body):
        yield from _stmt_exprs(s)


def _is_div(e: Expr) -> bool:
    return isinstance(e, BinOp) and e.op in ("/", "%")


def _check_hazards(ir: KernelIR, result: AbsintResult,
                   interp: Interpreter) -> List[Diagnostic]:
    """HIP402/HIP403/HIP404 — expression-level range hazards, evaluated
    against the converged environments."""
    out: List[Diagnostic] = []
    for idx in result.cfg.reverse_postorder():
        env = result.env_in.get(idx)
        if env is None:
            continue
        env = dict(env)
        for s in result.cfg.blocks[idx].stmts:
            for topmost in _stmt_exprs(s):
                for e in walk_exprs(topmost):
                    out.extend(_expr_hazards(ir, interp, e, env, s))
            env = _transfer_block(interp, [s], env)
    # deduplicate by (code, lineno, message): the reporting walk can
    # visit a loop body's statements once per enclosing block revisit
    seen = set()
    unique = []
    for d in out:
        key = (d.code, d.lineno, d.message)
        if key not in seen:
            seen.add(key)
            unique.append(d)
    return unique


def _expr_hazards(ir: KernelIR, interp: Interpreter, e: Expr,
                  env: Env, s: Stmt) -> List[Diagnostic]:
    out: List[Diagnostic] = []
    if _is_div(e):
        divisor = interp.eval(e.rhs, env).concrete()
        if divisor.is_singleton and divisor.lo == 0.0:
            out.append(_diag(
                ir, "HIP402",
                f"the divisor of this {e.op!r} is always zero",
                s, hint="the result is undefined (int) or inf/NaN "
                        "(float) on every execution",
                severity=Severity.ERROR))
        elif divisor.contains(0.0) and divisor.bounded() \
                and not divisor.is_singleton:
            out.append(_diag(
                ir, "HIP402",
                f"the divisor of this {e.op!r} has derived range "
                f"{_fmt(divisor)}, which includes zero",
                s, hint="guard the division, or shift the divisor's "
                        "range away from zero"))
    elif isinstance(e, Cast) and e.target is not None \
            and e.target.is_integer:
        operand = interp.eval(e.operand, env).concrete()
        if not operand.is_int or operand.bounded():
            info = np.iinfo(e.target.np_dtype)
            over_hi = math.isfinite(operand.hi) and operand.hi > info.max
            under_lo = math.isfinite(operand.lo) and operand.lo < info.min
            if over_hi or under_lo:
                always = (math.isfinite(operand.lo)
                          and operand.lo > info.max) or \
                         (math.isfinite(operand.hi)
                          and operand.hi < info.min)
                out.append(_diag(
                    ir, "HIP403",
                    f"narrowing cast to {e.target.name} of a value with "
                    f"derived range {_fmt(operand)} "
                    f"{'always' if always else 'can'} overflow "
                    f"[{info.min}..{info.max}]",
                    s, hint=f"clamp the value into the {e.target.name} "
                            f"range before converting",
                    severity=Severity.ERROR if always
                    else Severity.WARNING))
    elif isinstance(e, Call):
        try:
            name = resolve(e.func).name
        except Exception:
            return out
        if name in ("sqrt", "rsqrt", "log", "log2", "log10") and e.args:
            arg = interp.eval(e.args[0], env).concrete()
            if arg.hi < 0:
                out.append(_diag(
                    ir, "HIP404",
                    f"{name}() argument has derived range {_fmt(arg)} "
                    f"— always negative, the result is NaN on every "
                    f"execution", s,
                    hint="fix the sign of the argument, or take "
                         "fabs() first", severity=Severity.ERROR))
            elif arg.lo < 0 and math.isfinite(arg.lo):
                out.append(_diag(
                    ir, "HIP404",
                    f"{name}() argument has derived range {_fmt(arg)}, "
                    f"which includes negative values (NaN result)", s,
                    hint="clamp the argument with fmax(x, 0.0) if "
                         "negative inputs are expected"))
    return out


def range_passes(ir: KernelIR) -> List[Diagnostic]:
    """All HIP4xx passes over one (preferably typed) kernel IR."""
    result = interpret(ir)
    interp = Interpreter(ir)
    diags = _check_window_reads(ir, result)
    diags += _check_hazards(ir, result, interp)
    for d in diags:
        get_registry().count(f"lint.findings.{d.code.lower()}")
    return diags
