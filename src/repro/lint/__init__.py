"""Static-analysis subsystem: kernel and pipeline diagnostics.

The paper's compiler builds a CFG and analyzes kernels to *generate*
code (Section IV-A); this package turns the same analyses around to
*check* kernels, emitting structured :class:`Diagnostic` findings with
stable ``HIPxxx`` codes:

* ``HIP1xx`` correctness — use-before-def, dead stores, unused
  accessors/masks, missing output writes, reads outside the declared
  boundary window, implicit narrowing;
* ``HIP2xx`` performance — gid-dependent divergence, staging hazards,
  bank conflicts, statically-unbounded offsets;
* ``HIP3xx`` pipeline graphs — unconsumed outputs, missed fusion;
* ``HIP4xx`` value-range hazards — interval abstract interpretation
  over the CFG (derived out-of-window reads, possibly-zero divisors,
  overflowing narrowing casts, negative ``sqrt``/``log`` arguments);
* ``HIP5xx`` footprint facts — per-node halo extents and
  footprint-incompatibility notes on fusion refusals.

Entry points: :func:`lint_kernel` (a DSL kernel), :func:`lint_ir`
(already-parsed IR), :func:`lint_graph` (a pipeline graph), and the
:func:`collecting` context manager that captures every diagnostic the
runtime emits while executing arbitrary code.  The catalogue lives in
``docs/DIAGNOSTICS.md``; the ``repro lint`` CLI fronts all of this.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..errors import FrontendError, TypeError_, VerificationError
from ..ir.nodes import KernelIR
from .absint import AbsintResult, interpret, range_passes
from .collect import collecting, emit
from .correctness import check_narrowing, correctness_passes
from .diagnostics import CODES, Diagnostic, LintReport, Severity
from .footprint import AccessorFootprint, KernelFootprint, compute_footprint
from .graphlint import graph_passes
from .performance import performance_passes

__all__ = [
    "CODES",
    "AbsintResult",
    "AccessorFootprint",
    "Diagnostic",
    "KernelFootprint",
    "LintReport",
    "Severity",
    "collecting",
    "compute_footprint",
    "emit",
    "interpret",
    "lint_graph",
    "lint_ir",
    "lint_kernel",
    "range_passes",
]


def _error_diag(exc, kernel_name: str) -> Diagnostic:
    return Diagnostic(
        code="HIP100",
        message=getattr(exc, "bare_message", str(exc)),
        kernel=kernel_name,
        lineno=getattr(exc, "lineno", None),
        source_line=getattr(exc, "source_line", None),
        hint="fix this before any other finding; later passes assume a "
             "well-formed kernel")


def lint_ir(ir: KernelIR, typed: Optional[KernelIR] = None,
            block: Optional[Tuple[int, int]] = None,
            use_smem: bool = False) -> List[Diagnostic]:
    """Run every kernel-level pass over *ir* (unchecked IR from the
    frontend).  When the typed counterpart is unknown, it is computed
    here; a typecheck failure becomes a ``HIP100`` finding and the
    type-dependent passes are skipped."""
    diags = correctness_passes(ir)
    if typed is None:
        from ..ir.typecheck import typecheck_kernel
        try:
            typed = typecheck_kernel(ir)
        except (TypeError_, VerificationError) as exc:
            # HIP101/HIP105 already explain use-before-def and missing
            # output writes; don't restate them as the typechecker's
            # rejection on top
            if not any(d.code in ("HIP101", "HIP105") for d in diags):
                diags.append(_error_diag(exc, ir.name))
    if typed is not None:
        diags += check_narrowing(ir, typed)
        diags += performance_passes(typed, block=block, use_smem=use_smem)
        diags += range_passes(typed)
    return diags


def lint_kernel(kernel) -> List[Diagnostic]:
    """Parse and lint a DSL :class:`~repro.dsl.kernel.Kernel` instance.
    A frontend rejection becomes a single ``HIP100`` finding."""
    from ..frontend.parser import parse_kernel

    try:
        ir = parse_kernel(kernel)
    except FrontendError as exc:
        return [_error_diag(exc, type(kernel).__name__)]
    return lint_ir(ir)


def lint_graph(graph, notes: bool = False) -> List[Diagnostic]:
    """Run the HIP3xx (and, with ``notes=True``, HIP5xx) passes over a
    :class:`~repro.graph.builder.PipelineGraph`."""
    return graph_passes(graph, notes=notes)
