"""Correctness passes (HIP1xx) over a single :class:`KernelIR`.

These run on *unchecked* IR (straight out of the frontend) so that the
CLI can collect every finding instead of stopping at the typechecker's
first exception; the always-on compile-time verify runs them on the same
unchecked IR before typechecking.  See ``docs/DIAGNOSTICS.md`` for the
catalogue with minimal triggering kernels.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Set, Tuple

from ..ir.analysis import analyze_accesses
from ..ir.cfg import build_cfg
from ..ir.nodes import (
    AccessorRead,
    Assign,
    Cast,
    ForRange,
    If,
    KernelIR,
    MaskRead,
    OutputWrite,
    Stmt,
    VarDecl,
)
from ..ir.visitors import iter_all_exprs, stmt_exprs, walk_exprs, walk_stmts
from .dataflow import dead_stores, definite_assignment
from .diagnostics import Diagnostic, Severity


def _loc(ir: KernelIR, stmt: Optional[Stmt]) -> Tuple[Optional[int],
                                                      Optional[str]]:
    """(lineno, source_line) of *stmt* within *ir*'s kernel method."""
    lineno = getattr(stmt, "lineno", None)
    if lineno is None:
        return None, None
    line = None
    if 0 < lineno <= len(ir.source_lines):
        line = ir.source_lines[lineno - 1]
    return lineno, line


def _diag(ir: KernelIR, code: str, message: str,
          stmt: Optional[Stmt] = None, hint: Optional[str] = None,
          severity: Optional[Severity] = None) -> Diagnostic:
    lineno, line = _loc(ir, stmt)
    return Diagnostic(code=code, message=message, severity=severity,
                      kernel=ir.name, lineno=lineno, source_line=line,
                      hint=hint)


def _first_stmt_reading(ir: KernelIR, accessor: Optional[str] = None,
                        mask: Optional[str] = None) -> Optional[Stmt]:
    for s in walk_stmts(ir.body):
        for top in stmt_exprs(s):
            for e in walk_exprs(top):
                if accessor is not None and isinstance(e, AccessorRead) \
                        and e.accessor == accessor:
                    return s
                if mask is not None and isinstance(e, MaskRead) \
                        and e.mask == mask:
                    return s
    return None


# -- HIP101 / HIP102: CFG dataflow -----------------------------------------


def check_dataflow(ir: KernelIR) -> List[Diagnostic]:
    cfg = build_cfg(ir.body)
    initial = [p.name for p in ir.params if not p.baked]
    out: List[Diagnostic] = []
    for stmt, names in definite_assignment(cfg, initial):
        for name in sorted(names):
            out.append(_diag(
                ir, "HIP101",
                f"variable {name!r} may be read before it is assigned",
                stmt, hint=f"assign {name!r} on every path before this "
                           f"statement, or give it an initial value"))
    for stmt in dead_stores(cfg):
        verb = ("initialisation of" if isinstance(stmt, VarDecl)
                else "assignment to")
        out.append(_diag(
            ir, "HIP102",
            f"{verb} {stmt.name!r} is never read",
            stmt, hint=f"remove the store, or use {stmt.name!r} before it "
                       f"is overwritten"))
    return out


# -- HIP103 / HIP104: declared-but-unused metadata -------------------------


def check_unused(ir: KernelIR) -> List[Diagnostic]:
    read_accessors: Set[str] = set()
    read_masks: Set[str] = set()
    for e in iter_all_exprs(ir.body):
        if isinstance(e, AccessorRead):
            read_accessors.add(e.accessor)
        elif isinstance(e, MaskRead):
            read_masks.add(e.mask)
    out: List[Diagnostic] = []
    for a in ir.accessors:
        if a.name not in read_accessors:
            out.append(_diag(
                ir, "HIP103",
                f"accessor {a.name!r} is never read by the kernel body",
                hint=f"drop the accessor, or read it with "
                     f"self.{a.name}(dx, dy)"))
    for m in ir.masks:
        if m.name not in read_masks:
            out.append(_diag(
                ir, "HIP104",
                f"mask {m.name!r} is never read by the kernel body",
                hint=f"drop the mask, or read it with "
                     f"self.{m.name}(dx, dy) or convolve()"))
    return out


# -- HIP105 / HIP106: output-write structure -------------------------------


def _write_bounds(body: Sequence[Stmt]) -> Tuple[int, int]:
    """(min, max) number of output writes over all paths through *body*.
    A write inside a loop counts as 2 on the max side (i.e. "more than
    once") and 0 on the min side (zero-trip loops)."""
    lo = hi = 0
    for s in body:
        if isinstance(s, OutputWrite):
            lo += 1
            hi += 1
        elif isinstance(s, If):
            tlo, thi = _write_bounds(s.then_body)
            elo, ehi = _write_bounds(s.else_body)
            lo += min(tlo, elo)
            hi += max(thi, ehi)
        elif isinstance(s, ForRange):
            _, bhi = _write_bounds(s.body)
            if bhi:
                hi += 2 * bhi
    return lo, hi


def _first_write(body: Sequence[Stmt]) -> Optional[Stmt]:
    for s in walk_stmts(body):
        if isinstance(s, OutputWrite):
            return s
    return None


def check_output_paths(ir: KernelIR) -> List[Diagnostic]:
    out: List[Diagnostic] = []
    lo, hi = _write_bounds(ir.body)
    if lo < 1:
        out.append(_diag(
            ir, "HIP105",
            "some control path through the kernel never calls "
            "self.output(...)" if hi else
            "the kernel never calls self.output(...)",
            hint="every work-item must write its pixel exactly once; add "
                 "an else branch or a write after the conditional"))
    if hi > 1:
        for s in walk_stmts(ir.body):
            if isinstance(s, ForRange) and _first_write(s.body) is not None:
                out.append(_diag(
                    ir, "HIP106",
                    "self.output(...) is called inside a loop",
                    _first_write(s.body),
                    hint="accumulate into a local and write it once after "
                         "the loop"))
                break
        else:
            out.append(_diag(
                ir, "HIP106",
                "some control path calls self.output(...) more than once; "
                "the last write wins",
                _first_write(ir.body),
                hint="merge the writes into one self.output(...) of a "
                     "selected value"))
    return out


# -- HIP107: reads outside the declared boundary window --------------------


def check_window_bounds(ir: KernelIR) -> List[Diagnostic]:
    out: List[Diagnostic] = []
    infos = analyze_accesses(ir)
    for acc in ir.accessors:
        if acc.interpolation is not None:
            continue    # resampling accessors use absolute coordinates
        info = infos.get(acc.name)
        if info is None or not info.is_read:
            continue
        if None in (info.min_dx, info.max_dx, info.min_dy, info.max_dy):
            continue    # statically unbounded: HIP204's job
        hx = (acc.window[0] - 1) // 2
        hy = (acc.window[1] - 1) // 2
        over_x = max(-info.min_dx - hx, info.max_dx - hx, 0)
        over_y = max(-info.min_dy - hy, info.max_dy - hy, 0)
        if not over_x and not over_y:
            continue
        undefined = acc.boundary_mode == "undefined"
        need_w = 2 * max(hx + over_x, hx) + 1
        need_h = 2 * max(hy + over_y, hy) + 1
        message = (
            f"accessor {acc.name!r} is read at offsets up to "
            f"[{info.min_dx}..{info.max_dx}]x[{info.min_dy}..{info.max_dy}] "
            f"but declares a {acc.window[0]}x{acc.window[1]} window")
        if undefined:
            message += ("; with undefined boundary handling this reads "
                        "out of bounds at the image border")
        out.append(_diag(
            ir, "HIP107", message,
            _first_stmt_reading(ir, accessor=acc.name),
            hint=f"declare a BoundaryCondition of size "
                 f"{need_w}x{need_h} for {acc.name!r}",
            severity=Severity.ERROR if undefined else Severity.WARNING))
    return out


# -- HIP108: implicit float-to-int narrowing -------------------------------


def _paired_stmts(unchecked: Sequence[Stmt], typed: Sequence[Stmt]):
    """Walk structurally-identical bodies in parallel (typecheck preserves
    statement structure)."""
    for u, t in zip(unchecked, typed):
        yield u, t
        if isinstance(u, If) and isinstance(t, If):
            yield from _paired_stmts(u.then_body, t.then_body)
            yield from _paired_stmts(u.else_body, t.else_body)
        elif isinstance(u, ForRange) and isinstance(t, ForRange):
            yield from _paired_stmts(u.body, t.body)


def check_narrowing(ir: KernelIR, typed: KernelIR) -> List[Diagnostic]:
    """Flag stores where the typechecker inserted a float→int cast the
    user did not write.  Needs both the unchecked IR (*ir*) and its typed
    counterpart, so the explicit-``int(...)`` case is not reported."""
    out: List[Diagnostic] = []
    for u, t in _paired_stmts(ir.body, typed.body):
        if isinstance(t, (VarDecl, Assign)):
            value = t.init if isinstance(t, VarDecl) else t.value
            u_value = u.init if isinstance(u, VarDecl) else u.value
        elif isinstance(t, OutputWrite):
            value, u_value = t.value, u.value
        else:
            continue
        if not (isinstance(value, Cast) and value.target is not None
                and value.target.is_integer
                and value.operand.type is not None
                and value.operand.type.is_float):
            continue
        if isinstance(u_value, Cast) and not u_value.target.is_float:
            continue    # user wrote int(...) — explicit, not a finding
        if isinstance(t, OutputWrite):
            # float results stored to integer images are idiomatic in
            # imaging (saturating stores); note it, don't warn
            out.append(_diag(
                ir, "HIP108",
                f"float result is implicitly converted to "
                f"{t.value.target.name} at the output write",
                u, hint="wrap the value in int(...) to make the truncation "
                        "explicit", severity=Severity.INFO))
        else:
            name = t.name
            out.append(_diag(
                ir, "HIP108",
                f"float value is implicitly truncated storing to "
                f"integer variable {name!r}",
                u, hint=f"declare {name!r} as float, or write "
                        f"int(...) explicitly"))
    return out


def correctness_passes(ir: KernelIR,
                       typed: Optional[KernelIR] = None
                       ) -> List[Diagnostic]:
    """All HIP1xx passes over one kernel.  *typed* (when available)
    additionally enables the narrowing pass."""
    out: List[Diagnostic] = []
    out += check_dataflow(ir)
    out += check_unused(ir)
    out += check_output_paths(ir)
    out += check_window_bounds(ir)
    if typed is not None:
        out += check_narrowing(ir, typed)
    return out
