"""Diagnostic collection across compile/execute calls.

Examples and applications build kernels dynamically, so "lint this
file" cannot work purely syntactically.  Instead the runtime *emits*
every diagnostic it produces (compile-time verify, graph lint) into any
active collectors; ``repro lint some_example.py`` runs the file under
:func:`collecting` and reports whatever the execution compiled.

Collectors nest and are thread-safe: the graph scheduler compiles nodes
on a thread pool, and every worker's findings must land in the
collector that was active when the pool was entered.  A plain
thread-local would lose them, so registration is global with a lock.
"""

from __future__ import annotations

import contextlib
import threading
from typing import Iterator, List, Sequence

from .diagnostics import Diagnostic

_lock = threading.Lock()
_active: List[List[Diagnostic]] = []


def emit(diags: Sequence[Diagnostic]) -> None:
    """Deliver *diags* to every active collector (no-op when none)."""
    if not diags:
        return
    with _lock:
        for sink in _active:
            sink.extend(diags)


@contextlib.contextmanager
def collecting() -> Iterator[List[Diagnostic]]:
    """Collect every diagnostic the runtime emits inside the block::

        with collecting() as diags:
            compile_kernel(k).execute()
        report = LintReport(diags)
    """
    sink: List[Diagnostic] = []
    with _lock:
        _active.append(sink)
    try:
        yield sink
    finally:
        with _lock:
            _active.remove(sink)
