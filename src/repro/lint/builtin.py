"""Instantiation registry of the built-in filters for ``repro lint``.

The built-in filters are classes, not kernels — linting needs a live
instance with bound accessors and masks.  Each entry here wires one
representative configuration (small geometry; clamp boundaries, so the
window declarations are honest) and returns the Kernel instances to
lint.  The CI job runs ``repro lint --builtin --fail-on error`` over
exactly this set.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from ..dsl import (
    Accessor,
    Boundary,
    BoundaryCondition,
    Image,
    IterationSpace,
    Kernel,
)

_W, _H = 64, 48


def _img(pixel_type=float) -> Image:
    return Image(_W, _H, pixel_type)


def _point_acc() -> Accessor:
    return Accessor(_img())


def _make_bilateral() -> List[Kernel]:
    from ..filters.bilateral import make_bilateral
    kernels = []
    for use_mask in (True, False):
        k, _, _ = make_bilateral(_W, _H, sigma_d=2, sigma_r=0.1,
                                 boundary=Boundary.CLAMP,
                                 use_mask=use_mask)
        kernels.append(k)
    return kernels


def _make_gaussian() -> List[Kernel]:
    from ..filters.gaussian import (
        SeparableGaussianCol,
        SeparableGaussianRow,
        col_mask,
        make_gaussian,
        row_mask,
    )
    k, _, _ = make_gaussian(_W, _H, size=5, boundary=Boundary.CLAMP)
    row = SeparableGaussianRow(
        IterationSpace(_img()),
        Accessor(BoundaryCondition(_img(), 5, 1, Boundary.CLAMP)),
        row_mask(5), 2)
    col = SeparableGaussianCol(
        IterationSpace(_img()),
        Accessor(BoundaryCondition(_img(), 1, 5, Boundary.CLAMP)),
        col_mask(5), 2)
    return [k, row, col]


def _make_sobel() -> List[Kernel]:
    from ..filters.sobel import GradientMagnitude, make_sobel
    kx, _, _ = make_sobel(_W, _H, axis="x", boundary=Boundary.CLAMP)
    ky, _, _ = make_sobel(_W, _H, axis="y", boundary=Boundary.CLAMP)
    mag = GradientMagnitude(IterationSpace(_img()), _point_acc(),
                            _point_acc())
    return [kx, ky, mag]


def _make_laplacian() -> List[Kernel]:
    from ..filters.laplacian import make_laplacian
    return [make_laplacian(_W, _H, boundary=Boundary.CLAMP)[0]]


def _make_median() -> List[Kernel]:
    from ..filters.median import make_median
    return [make_median(_W, _H, boundary=Boundary.CLAMP)[0]]


def _make_point_ops() -> List[Kernel]:
    from ..filters.point_ops import (
        AbsDiff,
        AddConstant,
        GammaCorrection,
        LinearBlend,
        Scale,
        Threshold,
    )
    space = IterationSpace(_img())
    return [
        AddConstant(space, _point_acc(), 0.5),
        Scale(space, _point_acc(), 2.0),
        AbsDiff(space, _point_acc(), _point_acc()),
        Threshold(space, _point_acc(), 0.5),
        LinearBlend(space, _point_acc(), _point_acc(), 0.25),
        GammaCorrection(space, _point_acc(), 2.2),
    ]


def _make_harris() -> List[Kernel]:
    from ..filters.harris import HarrisResponse, Multiply, _Smooth
    from ..filters.gaussian import gaussian_mask_2d
    space = IterationSpace(_img())
    smooth = _Smooth(
        IterationSpace(_img()),
        Accessor(BoundaryCondition(_img(), 3, 3, Boundary.CLAMP)),
        gaussian_mask_2d(3), 1)
    return [
        Multiply(space, _point_acc(), _point_acc()),
        smooth,
        HarrisResponse(IterationSpace(_img()), _point_acc(), _point_acc(),
                       _point_acc(), 0.04),
    ]


def _make_diffusion() -> List[Kernel]:
    from ..filters.diffusion import make_diffusion_step
    return [make_diffusion_step(_W, _H, kappa=0.1)[0]]


def _make_morphology() -> List[Kernel]:
    from ..filters.morphology import make_morphology
    return [make_morphology(_W, _H, operation=op)[0]
            for op in ("erode", "dilate")]


#: name -> factory returning the Kernel instances to lint
BUILTIN_FACTORIES: Dict[str, Callable[[], List[Kernel]]] = {
    "bilateral": _make_bilateral,
    "gaussian": _make_gaussian,
    "sobel": _make_sobel,
    "laplacian": _make_laplacian,
    "median": _make_median,
    "point_ops": _make_point_ops,
    "harris": _make_harris,
    "diffusion": _make_diffusion,
    "morphology": _make_morphology,
}


def builtin_kernels() -> List[Kernel]:
    """Every registered built-in filter kernel, instantiated."""
    kernels: List[Kernel] = []
    for factory in BUILTIN_FACTORIES.values():
        kernels.extend(factory())
    return kernels
