"""Structured diagnostics: codes, severities, and report rendering.

Every finding the analysis passes produce is a :class:`Diagnostic` with a
stable ``HIPxxx`` code (``HIP1xx`` correctness, ``HIP2xx`` performance,
``HIP3xx`` pipeline graph, ``HIP4xx`` value-range hazards from the
abstract interpreter, ``HIP5xx`` footprint facts), a :class:`Severity`,
a human message, an
optional fix-it hint, and — when the frontend recorded one — the line of
the user's ``kernel()`` method that produced the offending IR.

:class:`LintReport` aggregates diagnostics from many kernels/graphs and
renders them as compiler-style text, JSON, or SARIF 2.1.0 (the format CI
systems ingest for code-scanning annotations).

The full catalogue with minimal triggering kernels lives in
``docs/DIAGNOSTICS.md``.
"""

from __future__ import annotations

import enum
import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence


class Severity(enum.IntEnum):
    """Ordered so ``max()`` over a report gives the worst finding.

    ``NOTE`` sits between ``INFO`` and ``WARNING``: it marks analysis
    *facts* (footprints, halos) rather than findings, and — like
    ``INFO`` — never trips a ``--fail-on`` threshold.  The numeric
    values are internal ordering only; persist the names, not the ints.
    """

    INFO = 0
    NOTE = 1
    WARNING = 2
    ERROR = 3

    def __str__(self) -> str:
        return self.name.lower()


#: code -> (short title, default severity).  Codes are append-only: once
#: shipped, a code keeps its meaning forever (CI configs reference them).
CODES: Dict[str, tuple] = {
    # -- correctness (HIP1xx) ------------------------------------------------
    "HIP100": ("kernel rejected by frontend/typechecker", Severity.ERROR),
    "HIP101": ("variable may be used before assignment", Severity.ERROR),
    "HIP102": ("dead store: value is never read", Severity.WARNING),
    "HIP103": ("accessor is declared but never read", Severity.WARNING),
    "HIP104": ("mask is declared but never read", Severity.WARNING),
    "HIP105": ("a control path never writes output()", Severity.ERROR),
    "HIP106": ("a control path writes output() more than once",
               Severity.WARNING),
    "HIP107": ("accessor read outside the declared boundary window",
               Severity.ERROR),
    "HIP108": ("implicit float-to-int narrowing", Severity.WARNING),
    # -- performance (HIP2xx) ------------------------------------------------
    "HIP201": ("branch condition depends on the thread index "
               "(divergence)", Severity.WARNING),
    "HIP202": ("windowed reads under divergent control defeat "
               "shared-memory staging", Severity.WARNING),
    "HIP203": ("staged tile row stride maps all rows to one memory bank",
               Severity.WARNING),
    "HIP204": ("accessor offsets cannot be bounded statically",
               Severity.WARNING),
    # -- pipeline graph (HIP3xx) ---------------------------------------------
    "HIP301": ("node output is neither consumed nor marked as a graph "
               "output", Severity.WARNING),
    "HIP302": ("adjacent nodes were not fused", Severity.INFO),
    # -- value-range hazards, abstract interpretation (HIP4xx) ---------------
    "HIP401": ("derived accessor offsets escape the declared window",
               Severity.WARNING),
    "HIP402": ("division by a possibly-zero interval", Severity.WARNING),
    "HIP403": ("narrowing cast can overflow the target range",
               Severity.WARNING),
    "HIP404": ("sqrt/log argument range includes negative values",
               Severity.WARNING),
    # -- footprint facts, abstract interpretation (HIP5xx) -------------------
    "HIP501": ("kernel access footprint and halo extent", Severity.NOTE),
    "HIP502": ("footprints are incompatible with fusion", Severity.NOTE),
}

#: where SARIF ``helpUri`` anchors point; each code has a matching
#: ``<a id="hipxxx">`` anchor in the catalogue
DIAGNOSTICS_DOC_URL = ("https://github.com/hipacc/hipacc/blob/main/"
                       "docs/DIAGNOSTICS.md")


@dataclass
class Diagnostic:
    """One finding of one analysis pass."""

    code: str
    message: str
    severity: Severity = None
    kernel: Optional[str] = None       # kernel or graph-node name
    lineno: Optional[int] = None       # 1-based, within the kernel() method
    source_line: Optional[str] = None  # text of that line
    hint: Optional[str] = None         # fix-it suggestion

    def __post_init__(self):
        if self.code not in CODES:
            raise ValueError(f"unknown diagnostic code {self.code!r}")
        if self.severity is None:
            self.severity = CODES[self.code][1]

    @property
    def title(self) -> str:
        return CODES[self.code][0]

    def format(self) -> str:
        """Compiler-style one-finding rendering."""
        where = self.kernel or "<ir>"
        if self.lineno is not None:
            where += f":{self.lineno}"
        text = f"{where}: {self.severity}: {self.code}: {self.message}"
        if self.source_line:
            text += f"\n    {self.source_line.strip()}"
        if self.hint:
            text += f"\n    hint: {self.hint}"
        return text

    def to_dict(self) -> Dict:
        return {
            "code": self.code,
            "severity": str(self.severity),
            "message": self.message,
            "kernel": self.kernel,
            "lineno": self.lineno,
            "source_line": self.source_line,
            "hint": self.hint,
        }


@dataclass
class LintReport:
    """Aggregated findings over any number of kernels and graphs."""

    diagnostics: List[Diagnostic] = field(default_factory=list)

    def extend(self, diags: Sequence[Diagnostic]) -> None:
        self.diagnostics.extend(diags)

    def count(self, severity: Severity) -> int:
        return sum(1 for d in self.diagnostics if d.severity == severity)

    @property
    def errors(self) -> int:
        return self.count(Severity.ERROR)

    @property
    def warnings(self) -> int:
        return self.count(Severity.WARNING)

    @property
    def notes(self) -> int:
        """Sub-warning findings (``INFO`` + ``NOTE``)."""
        return self.count(Severity.INFO) + self.count(Severity.NOTE)

    def worst(self) -> Optional[Severity]:
        if not self.diagnostics:
            return None
        return max(d.severity for d in self.diagnostics)

    def exceeds(self, fail_on: str) -> bool:
        """Whether the report should fail CI under a ``--fail-on`` policy
        (``"error"``, ``"warning"``, or ``"never"``)."""
        if fail_on == "never":
            return False
        threshold = Severity.ERROR if fail_on == "error" else Severity.WARNING
        return any(d.severity >= threshold for d in self.diagnostics)

    # -- renderers ---------------------------------------------------------

    def to_text(self) -> str:
        if not self.diagnostics:
            return "no findings"
        lines = [d.format() for d in self.diagnostics]
        lines.append(f"{self.errors} error(s), {self.warnings} warning(s), "
                     f"{self.notes} note(s)")
        return "\n".join(lines)

    def to_json(self) -> str:
        return json.dumps({
            "diagnostics": [d.to_dict() for d in self.diagnostics],
            "summary": {
                "errors": self.errors,
                "warnings": self.warnings,
                "notes": self.notes,
            },
        }, indent=2)

    def to_sarif(self) -> str:
        """SARIF 2.1.0 document (one run, one rule per code).

        Rules carry ``helpUri`` anchors into ``docs/DIAGNOSTICS.md`` and
        results carry full column regions, so code-scanning UIs can
        link findings back to the catalogue and underline the exact
        source span.
        """
        levels = {Severity.INFO: "note", Severity.NOTE: "note",
                  Severity.WARNING: "warning", Severity.ERROR: "error"}
        used = sorted({d.code for d in self.diagnostics})
        rules = [{
            "id": code,
            "name": code,
            "shortDescription": {"text": CODES[code][0]},
            "helpUri": f"{DIAGNOSTICS_DOC_URL}#{code.lower()}",
            "defaultConfiguration": {
                "level": levels[CODES[code][1]],
            },
        } for code in used]
        rule_index = {code: i for i, code in enumerate(used)}
        results = []
        for d in self.diagnostics:
            result = {
                "ruleId": d.code,
                "ruleIndex": rule_index[d.code],
                "level": levels[d.severity],
                "message": {"text": d.message},
            }
            location = {}
            if d.kernel:
                location["logicalLocations"] = [
                    {"name": d.kernel, "kind": "function"}]
            if d.lineno is not None:
                region = {"startLine": d.lineno, "startColumn": 1,
                          "endLine": d.lineno}
                if d.source_line:
                    region["endColumn"] = len(d.source_line) + 1
                location["physicalLocation"] = {
                    "artifactLocation": {"uri": f"{d.kernel or 'kernel'}"},
                    "region": region,
                }
            if location:
                result["locations"] = [location]
            results.append(result)
        doc = {
            "$schema": ("https://raw.githubusercontent.com/oasis-tcs/"
                        "sarif-spec/master/Schemata/sarif-schema-2.1.0.json"),
            "version": "2.1.0",
            "runs": [{
                "tool": {"driver": {
                    "name": "repro-lint",
                    "informationUri":
                        "https://github.com/hipacc/hipacc",
                    "rules": rules,
                }},
                "results": results,
            }],
        }
        return json.dumps(doc, indent=2)
