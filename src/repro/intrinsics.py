"""Math-intrinsic registry with per-backend name mapping.

The paper (Section V-A, "Function Mapping") notes that CUDA keeps typed
suffixes on math functions (``expf`` for float) while OpenCL overloads one
name (``exp``), and that HIPAcc keeps the mapping in a table, emitting an
error for unsupported functions.  ``fast_variant`` records the
hardware-accelerated intrinsic (``__expf``) the compiler *could* select; like
the paper we do not enable it by default.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Dict, Optional

import numpy as np

from .errors import UnsupportedFunctionError
from .types import FLOAT, INT, DOUBLE, ScalarType


@dataclasses.dataclass(frozen=True)
class Intrinsic:
    """One portable math function available inside kernels."""

    name: str                     # canonical DSL name
    arity: int
    cuda_f32: str                 # CUDA spelling for float operands
    cuda_f64: str                 # CUDA spelling for double operands
    opencl: str                   # OpenCL spelling (overloaded)
    np_func: Callable             # simulator implementation
    fast_variant: Optional[str] = None   # CUDA hardware-accelerated form
    result_type: Optional[ScalarType] = None  # None => follows operand type
    cost: int = 1                 # relative instruction cost (timing model)

    def target_name(self, backend: str, t: ScalarType) -> str:
        """Spelling of this intrinsic on *backend* for operand type *t*."""
        if backend == "cuda":
            return self.cuda_f64 if t == DOUBLE else self.cuda_f32
        if backend == "opencl":
            return self.opencl
        raise UnsupportedFunctionError(
            f"no mapping for {self.name!r} on backend {backend!r}")


def _i(name, arity, np_func, fast=None, result_type=None, cost=1,
       cuda_f32=None, cuda_f64=None, opencl=None) -> Intrinsic:
    return Intrinsic(
        name=name,
        arity=arity,
        cuda_f32=cuda_f32 or (name + "f"),
        cuda_f64=cuda_f64 or name,
        opencl=opencl or name,
        np_func=np_func,
        fast_variant=fast,
        result_type=result_type,
        cost=cost,
    )


def _clamp(x, lo, hi):
    return np.minimum(np.maximum(x, lo), hi)


#: Transcendental functions cost ~12 ALU-op equivalents on the SFU; this is
#: the constant the timing model charges (see repro/sim/timing.py),
#: calibrated against the paper's bilateral-filter mask/no-mask ratio.
_SFU_COST = 12

INTRINSICS: Dict[str, Intrinsic] = {
    i.name: i
    for i in [
        _i("exp", 1, np.exp, fast="__expf", cost=_SFU_COST),
        _i("exp2", 1, np.exp2, fast="__exp2f", cost=_SFU_COST),
        _i("log", 1, np.log, fast="__logf", cost=_SFU_COST),
        _i("log2", 1, np.log2, fast="__log2f", cost=_SFU_COST),
        _i("log10", 1, np.log10, cost=_SFU_COST),
        _i("sqrt", 1, np.sqrt, fast="__fsqrt_rn", cost=8),
        _i("rsqrt", 1, lambda x: 1.0 / np.sqrt(x), fast="__frsqrt_rn",
           cost=8),
        _i("sin", 1, np.sin, fast="__sinf", cost=_SFU_COST),
        _i("cos", 1, np.cos, fast="__cosf", cost=_SFU_COST),
        _i("tan", 1, np.tan, fast="__tanf", cost=_SFU_COST + 4),
        _i("asin", 1, np.arcsin, cost=_SFU_COST + 4),
        _i("acos", 1, np.arccos, cost=_SFU_COST + 4),
        _i("atan", 1, np.arctan, cost=_SFU_COST + 4),
        _i("atan2", 2, np.arctan2, cost=_SFU_COST + 8),
        _i("sinh", 1, np.sinh, cost=_SFU_COST + 4),
        _i("cosh", 1, np.cosh, cost=_SFU_COST + 4),
        _i("tanh", 1, np.tanh, cost=_SFU_COST + 4),
        _i("pow", 2, np.power, fast="__powf", cost=2 * _SFU_COST),
        _i("fabs", 1, np.abs, cost=1),
        _i("floor", 1, np.floor, cost=2),
        _i("ceil", 1, np.ceil, cost=2),
        _i("round", 1, np.round, cost=2),
        _i("trunc", 1, np.trunc, cost=2),
        _i("fmod", 2, np.fmod, cost=12),
        _i("fmin", 2, np.minimum, cost=1),
        _i("fmax", 2, np.maximum, cost=1),
        # Integer / generic helpers.  ``abs``/``min``/``max`` keep one name
        # on both backends.
        _i("abs", 1, np.abs, result_type=None, cost=1,
           cuda_f32="abs", cuda_f64="abs", opencl="abs"),
        _i("min", 2, np.minimum, cost=1,
           cuda_f32="min", cuda_f64="min", opencl="min"),
        _i("max", 2, np.maximum, cost=1,
           cuda_f32="max", cuda_f64="max", opencl="max"),
        _i("clamp", 3, _clamp, cost=2,
           cuda_f32="__hipacc_clamp", cuda_f64="__hipacc_clamp",
           opencl="clamp"),
    ]
}

#: DSL-level aliases: the user may write CUDA-style suffixed names
#: (``expf``) or Python ``math`` names; both resolve to the canonical entry.
ALIASES: Dict[str, str] = {}
for _name in list(INTRINSICS):
    ALIASES[_name + "f"] = _name
ALIASES.update({
    "absf": "fabs",
    "math.exp": "exp",
    "math.sqrt": "sqrt",
    "math.sin": "sin",
    "math.cos": "cos",
    "math.tan": "tan",
    "math.log": "log",
    "math.pow": "pow",
    "math.fabs": "fabs",
    "math.floor": "floor",
    "math.ceil": "ceil",
    "math.atan2": "atan2",
    "math.fmod": "fmod",
})


def resolve(name: str) -> Intrinsic:
    """Look up *name* (canonical or alias); raise like the paper's compiler
    on anything unknown."""
    canonical = ALIASES.get(name, name)
    try:
        return INTRINSICS[canonical]
    except KeyError:
        raise UnsupportedFunctionError(
            f"function {name!r} is not supported inside kernels; "
            f"supported: {', '.join(sorted(INTRINSICS))}") from None


def python_value(name: str, *args):
    """Evaluate an intrinsic at compile time (for constant folding)."""
    intr = resolve(name)
    if len(args) != intr.arity:
        raise UnsupportedFunctionError(
            f"{name} expects {intr.arity} argument(s), got {len(args)}")
    result = intr.np_func(*args)
    if isinstance(result, np.generic):
        result = result.item()
    return result


def intrinsic_result_type(name: str, arg_types) -> ScalarType:
    """Result type of intrinsic *name* given operand types."""
    intr = resolve(name)
    if intr.result_type is not None:
        return intr.result_type
    # Float-only intrinsics promote integer operands to float; min/max/abs
    # follow their operands.
    if intr.name in ("abs", "min", "max", "clamp"):
        t = arg_types[0]
        for other in arg_types[1:]:
            from .types import promote
            t = promote(t, other)
        return t
    for t in arg_types:
        if t == DOUBLE:
            return DOUBLE
    if all(t.is_integer for t in arg_types):
        return FLOAT
    return FLOAT if FLOAT in arg_types or any(t.is_float for t in arg_types) \
        else INT


__all__ = [
    "Intrinsic",
    "INTRINSICS",
    "ALIASES",
    "resolve",
    "python_value",
    "intrinsic_result_type",
]
