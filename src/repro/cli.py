"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``devices``  — the modelled GPU database (the abstract hardware model);
* ``codegen``  — emit CUDA/OpenCL/CPU source for a built-in filter;
* ``table``    — regenerate one of the paper's tables (II-IX) with the
  published numbers side by side;
* ``figure4``  — the configuration-space exploration;
* ``explore``  — Algorithm 2 vs exhaustive exploration on any device;
* ``tune``     — measurement-driven auto-tuning: search block
  configurations by measured signal and persist winners in the tuned
  database consulted by later compiles (see docs/TUNING.md);
* ``demo``     — compile + simulate a filter on a synthetic angiography
  frame and report timing/configuration;
* ``graph``    — run the edge-detection pipeline as a declarative
  multi-kernel graph (fusion, buffer pool, parallel branches) and print
  the graph report, or export the DAG with ``--dot``;
* ``lint``     — static-analyse kernels: run example files under the
  diagnostic collector and/or lint the built-in filters, reporting
  ``HIPxxx`` findings as text, JSON or SARIF (see docs/DIAGNOSTICS.md);
* ``cache``    — inspect or clear the on-disk compilation cache;
* ``trace``    — run a builtin filter (or the graph pipeline with
  ``--graph``) under the :mod:`repro.obs` tracer and export the spans
  as Chrome-trace/Perfetto JSON, structured JSON or a text tree (see
  docs/OBSERVABILITY.md).

``codegen`` and ``demo`` accept ``--cache`` (content-addressed compile
cache, optionally persisted with ``--cache-dir``) and ``--cache-stats``
(hit/miss/eviction counters and per-stage timings on stderr);
``figure4`` and ``explore`` accept ``--workers`` to parallelise the
configuration walk.  See docs/CACHING.md.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

import numpy as np


def _build_filter(name: str, size: int, boundary: str, data):
    from .dsl.boundary import Boundary
    from .filters.bilateral import make_bilateral
    from .filters.gaussian import make_gaussian
    from .filters.laplacian import make_laplacian
    from .filters.median import make_median
    from .filters.sobel import make_sobel

    mode = Boundary.coerce(boundary)
    h, w = data.shape
    if name == "bilateral":
        return make_bilateral(w, h, sigma_d=2, sigma_r=0.1,
                              boundary=mode, data=data)
    if name == "gaussian":
        return make_gaussian(w, h, size=5, boundary=mode, data=data)
    if name == "sobel":
        return make_sobel(w, h, axis="x", boundary=mode, data=data)
    if name == "laplacian":
        return make_laplacian(w, h, boundary=mode, data=data)
    if name == "median":
        return make_median(w, h, boundary=mode, data=data)
    raise SystemExit(f"unknown filter {name!r}")


FILTERS = ["bilateral", "gaussian", "sobel", "laplacian", "median"]


def _cache_from_args(args):
    """Build the CompilationCache requested by --cache/--cache-dir."""
    cache_dir = getattr(args, "cache_dir", None)
    if cache_dir:
        from .cache import CompilationCache

        return CompilationCache(directory=cache_dir)
    if getattr(args, "cache", False):
        # the process-wide default honors REPRO_CACHE_DIR / _CAPACITY,
        # so `--cache` can persist across one-shot CLI invocations
        from .cache import get_default_cache

        return get_default_cache()
    return None


def _print_cache_stats(cache, compiled=None) -> None:
    if cache is None:
        print("cache: disabled (pass --cache or --cache-dir)",
              file=sys.stderr)
        return
    print(f"cache: {cache.stats.summary()}", file=sys.stderr)
    if compiled is not None and compiled.stage_timings:
        stages = ", ".join(f"{name[:-3]} {ms:.3f}ms"
                           for name, ms in
                           compiled.stage_timings.items())
        origin = "cache hit" if compiled.from_cache else "full pipeline"
        print(f"compile ({origin}): {stages}", file=sys.stderr)
        if compiled.cache_key:
            print(f"key: {compiled.cache_key}", file=sys.stderr)


def cmd_devices(args) -> int:
    from .hwmodel import DEVICES

    print(f"{'device':<18}{'vendor':<8}{'arch':<7}{'SIMDs':>6}"
          f"{'ALUs':>6}{'clock':>7}{'BW GB/s':>9}{'max blk':>9}")
    for dev in DEVICES.values():
        print(f"{dev.name:<18}{dev.vendor:<8}{dev.architecture:<7}"
              f"{dev.num_simd_units:>6}{dev.total_alus:>6}"
              f"{dev.clock_ghz:>6.2f}G"
              f"{dev.memory.bandwidth_gbps:>9.1f}"
              f"{dev.max_threads_per_block:>9}")
    return 0


def cmd_codegen(args) -> int:
    rng = np.random.default_rng(0)
    data = rng.random((args.size, args.size)).astype(np.float32)
    kernel, _, _ = _build_filter(args.filter, args.size, args.boundary,
                                 data)
    if args.backend == "cpu":
        # the CPU target has no device model; generate directly
        from .backends.base import CodegenOptions, generate
        from .frontend.parser import parse_kernel
        from .ir.typecheck import typecheck_kernel

        ir = typecheck_kernel(parse_kernel(kernel))
        source = generate(ir, CodegenOptions(backend="cpu"),
                          launch_geometry=(args.size, args.size))
        print(source.host_code if args.host else source.device_code)
        print(f"// {source.num_variants} loop nests, "
              f"{source.device_lines} lines", file=sys.stderr)
        return 0
    from .runtime.compile import compile_kernel

    cache = _cache_from_args(args)
    compiled = compile_kernel(kernel, backend=args.backend,
                              device=args.device,
                              vectorize=args.vectorize,
                              pixels_per_thread=args.ppt,
                              cache=cache)
    if args.host:
        print(compiled.host_code)
    else:
        print(compiled.device_code)
    print(f"// block {compiled.options.block}, "
          f"{compiled.resources.registers_per_thread} regs/thread, "
          f"{compiled.source.num_variants} border variants, "
          f"{compiled.source.device_lines} lines", file=sys.stderr)
    if args.cache_stats:
        _print_cache_stats(cache, compiled)
    return 0


def cmd_demo(args) -> int:
    from .data.synthetic import angiography_image
    from .runtime.compile import compile_kernel

    frame = angiography_image(args.size, args.size, seed=0)
    kernel, _, out_img = _build_filter(args.filter, args.size,
                                       args.boundary, frame)
    cache = _cache_from_args(args)
    compiled = compile_kernel(kernel, backend=args.backend,
                              device=args.device, cache=cache)
    report = compiled.execute()
    out = out_img.get_data()
    print(f"{args.filter} on {args.size}x{args.size} angiography frame")
    print(f"  device:    {compiled.device.name} ({args.backend})")
    print(f"  config:    {compiled.options.block[0]}x"
          f"{compiled.options.block[1]} "
          f"(occupancy {report.timing.occupancy:.0%})")
    print(f"  generated: {compiled.source.device_lines} lines, "
          f"{compiled.source.num_variants} border variants")
    print(f"  modelled:  {report.time_ms:.3f} ms "
          f"(compute {report.timing.compute_ms:.3f}, "
          f"memory {report.timing.memory_ms:.3f})")
    print(f"  output:    mean {out.mean():.4f}, std {out.std():.4f}")
    if args.cache_stats:
        _print_cache_stats(cache, compiled)
    return 0


def build_edge_pipeline(size: int, device: str, backend: str):
    """The edge-detection demo pipeline (median → sobel ×2 → magnitude
    → scale → gamma) over a synthetic angiography frame.

    Shared by ``repro graph`` and ``repro trace --graph``; returns the
    graph and its output image.
    """
    from .data.synthetic import angiography_image
    from .dsl import (Accessor, Boundary, BoundaryCondition, Image,
                      IterationSpace, Mask)
    from .filters.median import Median3x3
    from .filters.point_ops import GammaCorrection, Scale
    from .filters.sobel import (SOBEL_X, SOBEL_Y, GradientMagnitude,
                                SobelX, SobelY)
    from .graph import PipelineGraph

    n = size
    frame = angiography_image(n, n, seed=0)
    src = Image(n, n, name="src")
    src.set_data(frame)
    den = Image(n, n, name="denoised")
    gx = Image(n, n, name="grad_x")
    gy = Image(n, n, name="grad_y")
    mag = Image(n, n, name="magnitude")
    scaled = Image(n, n, name="scaled")
    out = Image(n, n, name="edges")

    opts = dict(device=device, backend=backend)
    g = PipelineGraph("edge-detection")
    g.add_kernel(Median3x3(IterationSpace(den), Accessor(
        BoundaryCondition(src, 3, 3, Boundary.CLAMP))), name="median",
        **opts)
    den_bc = BoundaryCondition(den, 3, 3, Boundary.CLAMP)
    g.add_kernel(SobelX(IterationSpace(gx), Accessor(den_bc),
                        Mask(3, 3).set(SOBEL_X)), name="sobel_x", **opts)
    g.add_kernel(SobelY(IterationSpace(gy), Accessor(den_bc),
                        Mask(3, 3).set(SOBEL_Y)), name="sobel_y", **opts)
    g.add_kernel(GradientMagnitude(IterationSpace(mag), Accessor(gx),
                                   Accessor(gy)), name="magnitude", **opts)
    g.add_kernel(Scale(IterationSpace(scaled), Accessor(mag), factor=0.25),
                 name="scale", **opts)
    g.add_kernel(GammaCorrection(IterationSpace(out), Accessor(scaled),
                                 gamma=0.8), name="gamma", **opts)
    g.mark_output(out)
    return g, out


def cmd_graph(args) -> int:
    from .graph import execute_graph

    g, out = build_edge_pipeline(args.size, args.device, args.backend)

    if args.dot:
        print(g.to_dot())
        return 0

    cache = _cache_from_args(args)
    report = execute_graph(g, cache=cache, workers=args.workers,
                           fuse=not args.no_fuse, pool=not args.no_pool,
                           engine=args.engine)
    print(report.summary())
    edges = out.get_data()
    print(f"  output:  mean {edges.mean():.4f}, max {edges.max():.4f}")
    if args.cache_stats:
        _print_cache_stats(cache)
    return 0


def cmd_trace(args) -> int:
    from .cache import CompilationCache
    from .obs import get_tracer, render, tracing

    cache = _cache_from_args(args) or CompilationCache()
    with tracing() as tracer:
        if args.graph:
            from .graph import execute_graph

            g, _ = build_edge_pipeline(args.size, args.device,
                                       args.backend)
            report = execute_graph(g, cache=cache, workers=args.workers)
            print(report.summary(), file=sys.stderr)
        else:
            from .data.synthetic import angiography_image
            from .runtime.compile import compile_kernel

            frame = angiography_image(args.size, args.size, seed=0)
            kernel, _, _ = _build_filter(args.filter, args.size, "clamp",
                                         frame)
            # compile twice so the trace shows both the fresh pipeline
            # and the cache-hit path, then one simulated launch
            compile_kernel(kernel, backend=args.backend,
                           device=args.device, cache=cache)
            compiled = compile_kernel(kernel, backend=args.backend,
                                      device=args.device, cache=cache)
            compiled.execute()
        assert tracer is get_tracer()
        text = render(tracer, args.format)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as fh:
            fh.write(text)
            if not text.endswith("\n"):
                fh.write("\n")
        print(f"trace ({args.format}, {len(tracer)} spans) written to "
              f"{args.out}", file=sys.stderr)
    else:
        print(text)
    return 0


def cmd_cache(args) -> int:
    import json as _json
    import os

    from .cache import CompilationCache

    directory = args.cache_dir or os.environ.get("REPRO_CACHE_DIR")
    if not directory:
        print("no cache directory (pass --cache-dir or set "
              "REPRO_CACHE_DIR)", file=sys.stderr)
        return 1
    if args.clear:
        CompilationCache(directory=directory).clear(disk=True)
        print(f"cleared on-disk cache at {directory}")
        return 0
    entries = 0
    total_bytes = 0
    kinds = {}
    if os.path.isdir(directory):
        for shard in sorted(os.listdir(directory)):
            shard_dir = os.path.join(directory, shard)
            if not os.path.isdir(shard_dir):
                continue
            for name in sorted(os.listdir(shard_dir)):
                if not name.endswith(".json"):
                    continue
                path = os.path.join(shard_dir, name)
                entries += 1
                total_bytes += os.path.getsize(path)
                try:
                    with open(path, "r", encoding="utf-8") as fh:
                        kind = _json.load(fh).get("kind", "?")
                except (OSError, ValueError):
                    kind = "corrupt"
                kinds[kind] = kinds.get(kind, 0) + 1
    print(f"cache dir: {directory}")
    print(f"entries:   {entries} ({total_bytes / 1024:.1f} KiB)")
    for kind in sorted(kinds):
        print(f"  {kind}: {kinds[kind]}")
    return 0


def cmd_lint(args) -> int:
    import contextlib
    import os
    import runpy

    from .lint import LintReport, collecting, lint_graph, lint_kernel

    if not args.targets and not args.builtin:
        print("nothing to lint: pass file targets and/or --builtin",
              file=sys.stderr)
        return 2

    report = LintReport()
    if args.builtin:
        from .lint.builtin import builtin_kernels

        for kernel in builtin_kernels():
            report.extend(lint_kernel(kernel))
        # Graph-level passes over the builtin demo pipeline: HIP3xx
        # findings count toward --fail-on, HIP5xx footprint facts are
        # notes and never trip the threshold.
        g, _ = build_edge_pipeline(64, "Tesla C2050", "cuda")
        report.extend(lint_graph(g, notes=True))

    for target in args.targets:
        # Kernels are built dynamically, so "lint this file" means "run
        # it and collect everything the compile/graph verify emits".
        # The target's own stdout is silenced — it would corrupt the
        # json/sarif output streams.
        with collecting() as sink:
            try:
                with open(os.devnull, "w") as devnull, \
                        contextlib.redirect_stdout(devnull):
                    runpy.run_path(target, run_name="__main__")
            except Exception as exc:   # noqa: BLE001 - arbitrary user code
                print(f"lint: executing {target} failed: "
                      f"{type(exc).__name__}: {exc}", file=sys.stderr)
                return 2
        # one kernel often compiles many times (explorations, both cache
        # paths); identical findings collapse to one
        seen = set()
        for d in sink:
            key = (d.code, d.kernel, d.lineno, d.message)
            if key not in seen:
                seen.add(key)
                report.diagnostics.append(d)

    if args.format == "json":
        print(report.to_json())
    elif args.format == "sarif":
        print(report.to_sarif())
    else:
        print(report.to_text())
    return 1 if report.exceeds(args.fail_on) else 0


def cmd_table(args) -> int:
    from .evaluation import paper_data
    from .evaluation.opencv_cmp import gaussian_table
    from .evaluation.variants import bilateral_table
    from .reporting.tables import format_comparison_table

    mapping = {
        "2": ("Tesla C2050", "cuda"), "3": ("Tesla C2050", "opencl"),
        "4": ("Quadro FX 5800", "cuda"),
        "5": ("Quadro FX 5800", "opencl"),
        "6": ("Radeon HD 5870", "opencl"),
        "7": ("Radeon HD 6970", "opencl"),
    }
    key = args.number
    if key in mapping:
        device, backend = mapping[key]
        model = bilateral_table(device, backend)
        paper = paper_data.ALL_BILATERAL_TABLES[(device, backend)]
        print(format_comparison_table(
            model, paper, paper_data.MODE_ORDER,
            title=f"Table {key}: bilateral 13x13, {device}, {backend}"))
        return 0
    if key in ("8", "9"):
        device = "Tesla C2050" if key == "8" else "Quadro FX 5800"
        for size in (3, 5):
            model = gaussian_table(device, size)
            paper = paper_data.ALL_GAUSSIAN_TABLES[device][size]
            aligned = dict(model)
            if "OpenCL(+Tex)" in paper:
                aligned["OpenCL(+Tex)"] = aligned["OpenCL(+Img)"]
            print(format_comparison_table(
                aligned, paper, paper_data.GAUSSIAN_MODE_ORDER,
                title=f"Table {key}: Gaussian {size}x{size}, {device}"))
            print()
        return 0
    raise SystemExit(f"unknown table {key!r} (expected 2-9)")


def cmd_figure4(args) -> int:
    from .evaluation.figure4 import figure4_exploration

    result = figure4_exploration(workers=args.workers)
    worst = max(p.time_ms for p in result.points)
    print(f"Figure 4: {len(result.points)} configurations explored")
    print(f"  optimum   {result.best.block[0]}x{result.best.block[1]} "
          f"at {result.best.time_ms:.2f} ms")
    print(f"  heuristic {result.heuristic_block[0]}x"
          f"{result.heuristic_block[1]} at {result.heuristic_ms:.2f} ms "
          f"({result.heuristic_within:.3f}x of optimum)")
    print(f"  spread    {worst / result.best.time_ms:.2f}x")
    return 0


def cmd_serve(args) -> int:
    from .serve.server import run_server
    from .serve.service import ServeConfig

    config = ServeConfig(
        workers=args.workers,
        batch_window_ms=args.batch_window_ms,
        queue_limit=args.queue_limit,
        default_timeout_ms=args.timeout_ms,
        engine=args.engine,
    )
    cache = _cache_from_args(args)
    code = run_server(host=args.host, port=args.port, config=config,
                      cache=cache, drain_timeout=args.drain_timeout,
                      trace_out=args.trace_out)
    return code


def cmd_perf(args) -> int:
    from .obs.compare import DEFAULT_BENCHMARKS, run_compare

    return run_compare(
        baseline_dir=args.baseline_dir,
        current_dir=args.current_dir,
        names=tuple(args.benches) if args.benches else DEFAULT_BENCHMARKS,
        threshold=args.threshold,
        noise_floor_ms=args.noise_floor_ms,
        stage_threshold=args.stage_threshold,
        json_out=args.json_out,
        allow_missing=args.allow_missing,
    )


def cmd_tune(args) -> int:
    """Run the measurement-driven auto-tuner over builtin filters and
    persist the winners (docs/TUNING.md)."""
    import json as _json
    import os

    from .data.synthetic import angiography_image
    from .mapping.optdb import TunedDatabase, default_tuned_database
    from .mapping.tuner import tune_kernel

    names = FILTERS if args.all else [args.filter]
    if args.db:
        db = TunedDatabase(path=args.db)
    else:
        db = default_tuned_database()
        if db.path is None and not args.dry_run:
            print("note: no on-disk store (--db or REPRO_OPTDB_PATH); "
                  "winners live only in this process", file=sys.stderr)
    cache = _cache_from_args(args)
    frame = angiography_image(args.size, args.size, seed=0)

    rows = []
    for name in names:
        kernel, _, _ = _build_filter(name, args.size, args.boundary,
                                     frame)
        result = tune_kernel(
            kernel, backend=args.backend, device=args.device,
            engine=args.engine, signal=args.signal, budget=args.budget,
            seed_top=args.seed_top, repeats=args.repeats,
            db=False if args.dry_run else db, cache=cache)
        rows.append((name, result))

    if args.json:
        doc = [{
            "filter": name,
            "kernel": r.kernel,
            "fingerprint": r.fingerprint,
            "device": r.device,
            "backend": r.backend,
            "engine": r.engine,
            "signal": r.signal,
            "best_block": list(r.best_block),
            "best_ms": r.best_ms,
            "heuristic_block": list(r.heuristic_block),
            "heuristic_ms": r.heuristic_ms,
            "speedup_over_heuristic": r.speedup_over_heuristic,
            "trials": r.trials,
            "pruned": r.pruned,
            "candidates": r.candidates,
            "wall_ms": r.wall_ms,
        } for name, r in rows]
        print(_json.dumps(doc, indent=2, sort_keys=True))
    else:
        print(f"auto-tune on {args.device} ({args.backend}), "
              f"engine={args.engine}, budget={args.budget}")
        print(f"{'filter':<11}{'heuristic':>11}{'tuned':>9}"
              f"{'gain':>8}{'trials':>8}{'pruned':>8}")
        for name, r in rows:
            print(f"{name:<11}"
                  f"{r.heuristic_block[0]:>6}x{r.heuristic_block[1]:<4}"
                  f"{r.best_block[0]:>4}x{r.best_block[1]:<4}"
                  f"{(r.speedup_over_heuristic - 1) * 100:>+7.1f}%"
                  f"{r.trials:>8}{r.pruned:>8}")
        if not args.dry_run:
            where = db.path or "in-memory store"
            print(f"{len(rows)} winner(s) recorded in {where}")
    return 0


def cmd_explore(args) -> int:
    from .evaluation.figure4 import figure4_exploration
    from .hwmodel import get_device

    dev = get_device(args.device)
    backend = "cuda" if dev.vendor == "NVIDIA" else "opencl"
    result = figure4_exploration(device=dev, backend=backend,
                                 workers=args.workers)
    print(f"{'block':>10}{'time ms':>10}{'occupancy':>11}")
    for p in sorted(result.points, key=lambda p: p.time_ms)[:args.top]:
        print(f"{p.block[0]:>5}x{p.block[1]:<4}{p.time_ms:>10.2f}"
              f"{p.occupancy:>10.0%}")
    print(f"heuristic: {result.heuristic_block[0]}x"
          f"{result.heuristic_block[1]} "
          f"({result.heuristic_within:.3f}x of optimum)")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="hipacc-py: device-specific GPU code generation for "
                    "local operators (IPDPS 2012 reproduction)")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("devices", help="list the modelled GPUs")

    def add_cache_flags(p):
        p.add_argument("--cache", action="store_true",
                       help="use the content-addressed compilation cache")
        p.add_argument("--cache-dir", default=None,
                       help="persist cache entries under this directory "
                            "(implies --cache)")
        p.add_argument("--cache-stats", action="store_true",
                       help="print cache counters and per-stage compile "
                            "timings to stderr")

    p = sub.add_parser("codegen", help="emit source for a built-in filter")
    p.add_argument("--filter", choices=FILTERS, default="bilateral")
    p.add_argument("--backend", choices=["cuda", "opencl", "cpu"],
                   default="cuda")
    p.add_argument("--device", default="Tesla C2050")
    p.add_argument("--boundary", default="clamp")
    p.add_argument("--size", type=int, default=2048)
    p.add_argument("--vectorize", type=int, default=1)
    p.add_argument("--ppt", type=int, default=1)
    p.add_argument("--host", action="store_true",
                   help="print the host code instead of the kernel")
    add_cache_flags(p)

    p = sub.add_parser("demo", help="compile + simulate on synthetic data")
    p.add_argument("--filter", choices=FILTERS, default="bilateral")
    p.add_argument("--backend", choices=["cuda", "opencl"],
                   default="cuda")
    p.add_argument("--device", default="Tesla C2050")
    p.add_argument("--boundary", default="mirror")
    p.add_argument("--size", type=int, default=256)
    add_cache_flags(p)

    p = sub.add_parser("graph",
                       help="run the edge pipeline as a kernel graph")
    p.add_argument("--size", type=int, default=256)
    p.add_argument("--backend", choices=["cuda", "opencl"],
                   default="cuda")
    p.add_argument("--device", default="Tesla C2050")
    p.add_argument("--workers", type=int, default=None,
                   help="thread count for compile + branch execution "
                        "(1 = serial)")
    p.add_argument("--no-fuse", action="store_true",
                   help="disable point-operator fusion")
    p.add_argument("--no-pool", action="store_true",
                   help="disable the intermediate buffer pool")
    p.add_argument("--engine", choices=["sim", "native", "auto"],
                   default="sim",
                   help="execution tier: Python simulator (oracle), "
                        "compiled native graph segments, or native-"
                        "when-possible (see docs/NATIVE.md)")
    p.add_argument("--dot", action="store_true",
                   help="print the pipeline DAG as Graphviz and exit")
    add_cache_flags(p)

    p = sub.add_parser(
        "lint", help="static-analyse kernels (HIPxxx diagnostics)")
    p.add_argument("targets", nargs="*",
                   help="python files to execute under the diagnostic "
                        "collector (examples, applications)")
    p.add_argument("--builtin", action="store_true",
                   help="lint every built-in filter kernel")
    p.add_argument("--format", choices=["text", "json", "sarif"],
                   default="text",
                   help="report rendering (sarif for CI code scanning)")
    p.add_argument("--fail-on", choices=["error", "warning", "never"],
                   default="error", dest="fail_on",
                   help="lowest severity that makes the exit status "
                        "non-zero")

    p = sub.add_parser("table", help="regenerate a paper table (2-9)")
    p.add_argument("number")

    p = sub.add_parser("figure4", help="the Figure 4 exploration")
    p.add_argument("--workers", type=int, default=None,
                   help="parallelise the configuration walk over N "
                        "workers")

    p = sub.add_parser(
        "tune",
        help="measure-and-persist winning block configurations "
             "(docs/TUNING.md)")
    p.add_argument("--filter", choices=FILTERS, default="bilateral")
    p.add_argument("--all", action="store_true",
                   help="tune every builtin filter")
    p.add_argument("--backend", choices=["cuda", "opencl"],
                   default="cuda")
    p.add_argument("--device", default="Tesla C2050")
    p.add_argument("--boundary", default="clamp")
    p.add_argument("--size", type=int, default=512)
    p.add_argument("--engine", choices=["sim", "native"], default="sim",
                   help="execution tier the winner is tuned for (keys "
                        "the database record)")
    p.add_argument("--signal", choices=["model", "sim", "native"],
                   default=None,
                   help="measurement that scores trials (default: the "
                        "engine's natural signal; model = deterministic "
                        "timing model)")
    p.add_argument("--budget", type=int, default=16,
                   help="maximum configurations measured per kernel")
    p.add_argument("--seed-top", type=int, default=4, dest="seed_top",
                   help="best-modelled candidates measured besides the "
                        "heuristic's choice")
    p.add_argument("--repeats", type=int, default=3,
                   help="executions per trial (wall-clock signals take "
                        "the best)")
    p.add_argument("--db", default=None,
                   help="tuned-database JSON path (default: "
                        "$REPRO_OPTDB_PATH or in-memory)")
    p.add_argument("--dry-run", action="store_true", dest="dry_run",
                   help="search but record nothing")
    p.add_argument("--json", action="store_true",
                   help="print results as JSON instead of a table")
    add_cache_flags(p)

    p = sub.add_parser("explore",
                       help="configuration exploration on any device")
    p.add_argument("--device", default="Tesla C2050")
    p.add_argument("--top", type=int, default=10)
    p.add_argument("--workers", type=int, default=None,
                   help="parallelise the configuration walk over N "
                        "workers")

    p = sub.add_parser(
        "serve",
        help="run the persistent compile-and-execute HTTP service")
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=8077,
                   help="TCP port (0 = ephemeral; the bound port is "
                        "printed on the first stdout line)")
    p.add_argument("--workers", type=int, default=2,
                   help="request-executing worker threads")
    p.add_argument("--batch-window-ms", type=float, default=4.0,
                   dest="batch_window_ms",
                   help="how long to keep collecting requests after "
                        "the first one arrives so identical concurrent "
                        "requests share one execution")
    p.add_argument("--queue-limit", type=int, default=64,
                   dest="queue_limit",
                   help="shed requests (HTTP 429) beyond this many "
                        "queued")
    p.add_argument("--timeout-ms", type=float, default=30000.0,
                   dest="timeout_ms",
                   help="default per-request deadline")
    p.add_argument("--engine", choices=["sim", "native", "auto"],
                   default="auto",
                   help="execution tier for requests that do not name "
                        "one")
    p.add_argument("--drain-timeout", type=float, default=30.0,
                   dest="drain_timeout",
                   help="seconds to wait for in-flight requests on "
                        "SIGTERM before giving up (non-zero exit)")
    p.add_argument("--trace-out", default=None, dest="trace_out",
                   help="run under the tracer and write the Chrome-"
                        "trace export here after the drain")
    add_cache_flags(p)

    p = sub.add_parser(
        "perf",
        help="compare fresh BENCH_*.json against committed baselines "
             "(the perf-regression sentinel; docs/OBSERVABILITY.md)")
    p.add_argument("--baseline-dir", default=".", dest="baseline_dir",
                   help="directory with committed BENCH_*.json")
    p.add_argument("--current-dir", required=True, dest="current_dir",
                   help="directory with freshly generated BENCH_*.json")
    p.add_argument("--bench", action="append", dest="benches",
                   metavar="NAME",
                   help="benchmark name (repeatable; default: all "
                        "committed baselines)")
    p.add_argument("--threshold", type=float, default=0.25,
                   help="relative regression gate (0.25 = 25%% worse)")
    p.add_argument("--stage-threshold", type=float, default=None,
                   dest="stage_threshold",
                   help="per-stage gate (default: same as --threshold)")
    p.add_argument("--noise-floor-ms", type=float, default=5.0,
                   dest="noise_floor_ms",
                   help="absolute delta below which *_ms changes are "
                        "noise")
    p.add_argument("--json-out", default=None, dest="json_out",
                   help="also write the machine-readable report here")
    p.add_argument("--allow-missing", action="store_true",
                   dest="allow_missing",
                   help="skip absent documents instead of failing")

    p = sub.add_parser("cache",
                       help="inspect or clear the on-disk compile cache")
    p.add_argument("--cache-dir", default=None,
                   help="cache directory (default: $REPRO_CACHE_DIR)")
    p.add_argument("--clear", action="store_true",
                   help="delete every stored entry")

    p = sub.add_parser(
        "trace",
        help="run a workload under the tracer and export the spans")
    p.add_argument("--filter", choices=FILTERS, default="gaussian",
                   help="builtin filter to compile (twice: fresh + "
                        "cache hit) and simulate")
    p.add_argument("--graph", action="store_true",
                   help="trace the edge-detection pipeline graph "
                        "instead of a single filter")
    p.add_argument("--backend", choices=["cuda", "opencl"],
                   default="cuda")
    p.add_argument("--device", default="Tesla C2050")
    p.add_argument("--size", type=int, default=256)
    p.add_argument("--workers", type=int, default=None,
                   help="graph compile/execute thread count "
                        "(with --graph)")
    p.add_argument("--format", choices=["chrome", "text", "json"],
                   default="chrome",
                   help="chrome = Chrome-trace/Perfetto JSON (default)")
    p.add_argument("--out", default=None,
                   help="write the rendering here instead of stdout")
    add_cache_flags(p)
    return parser


COMMANDS = {
    "devices": cmd_devices,
    "codegen": cmd_codegen,
    "demo": cmd_demo,
    "graph": cmd_graph,
    "lint": cmd_lint,
    "table": cmd_table,
    "figure4": cmd_figure4,
    "explore": cmd_explore,
    "tune": cmd_tune,
    "cache": cmd_cache,
    "serve": cmd_serve,
    "trace": cmd_trace,
    "perf": cmd_perf,
}


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return COMMANDS[args.command](args)


if __name__ == "__main__":
    raise SystemExit(main())
