"""Content-addressed compilation cache (see ROADMAP: caching/batching).

The pipeline behind :func:`repro.runtime.compile_kernel` is deterministic
in (kernel IR, codegen options, device, backend, package version), so its
artifacts are content-addressable.  This package provides:

* :mod:`repro.cache.key` — canonical IR serialisation and sha256 key
  composition (stable across processes: no ``id()``/``hash()``);
* :mod:`repro.cache.store` — :class:`CompilationCache`, a thread-safe
  in-memory LRU front with an optional atomic on-disk JSON store, plus
  the process-wide default cache;
* :mod:`repro.cache.serialize` — round-tripping of generated sources,
  options and resource estimates through JSON-able dicts.

See ``docs/CACHING.md`` for key composition and invalidation rules.
"""

from .key import (  # noqa: F401
    canonical_ir,
    compute_key,
    device_signature,
    ir_digest,
    kernel_fingerprint,
)
from .serialize import entry_from_dict, entry_to_dict  # noqa: F401
from .store import (  # noqa: F401
    CacheStats,
    CompilationCache,
    get_default_cache,
    set_default_cache,
)

__all__ = [
    "CacheStats",
    "CompilationCache",
    "canonical_ir",
    "compute_key",
    "device_signature",
    "entry_from_dict",
    "entry_to_dict",
    "get_default_cache",
    "ir_digest",
    "kernel_fingerprint",
    "set_default_cache",
]
