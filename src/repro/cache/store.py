"""The compilation cache: an in-memory LRU front over an optional
on-disk content-addressed store.

Design points:

* **Thread safety** — every structure is guarded by one re-entrant lock;
  payloads enter the cache only as complete dicts, so a concurrent
  reader can never observe a partially-written entry.
* **Atomic disk writes** — entries are serialised to a temporary file in
  the same directory and ``os.replace``d into place, which is atomic on
  POSIX and Windows; a crashed writer leaves at most a ``*.tmp`` file,
  never a torn JSON document.
* **Content addressing** — keys are sha256 hex digests produced by
  :mod:`repro.cache.key`; the disk layout shards by the first two hex
  characters (``<dir>/ab/abcdef....json``) to keep directories small.
* **Statistics** — hits/misses/evictions/stores plus disk counters,
  exposed through :class:`CacheStats` and the CLI's ``--cache-stats``.

The cache also hosts the *frontend memo* — an in-memory-only map from a
pre-parse kernel fingerprint to the type-checked IR and its digest, which
is what lets a warm ``compile_kernel`` skip the Python-AST frontend.  IR
objects are treated as immutable by the whole pipeline (transforms
rebuild nodes), so sharing them across compiles is safe.
"""

from __future__ import annotations

import base64
import binascii
import collections
import contextlib
import dataclasses
import json
import os
import tempfile
import threading
import time
from typing import Any, Dict, Iterator, List, Optional, Tuple

from ..obs.hist import observe


@dataclasses.dataclass
class CacheStats:
    """Counters for one :class:`CompilationCache`."""

    hits: int = 0                # in-memory hits
    misses: int = 0              # not found anywhere
    evictions: int = 0           # LRU evictions from the memory front
    stores: int = 0              # new entries written
    disk_hits: int = 0           # found on disk (after a memory miss)
    disk_writes: int = 0
    frontend_hits: int = 0       # pre-parse fingerprint memo hits
    frontend_misses: int = 0
    lint_hits: int = 0           # lint-result memo hits (per canonical IR)
    lint_misses: int = 0

    @property
    def lookups(self) -> int:
        """IR-level (artifact store) lookups only."""
        return self.hits + self.disk_hits + self.misses

    @property
    def frontend_lookups(self) -> int:
        return self.frontend_hits + self.frontend_misses

    @property
    def lint_lookups(self) -> int:
        return self.lint_hits + self.lint_misses

    @property
    def lint_hit_rate(self) -> float:
        """Hit rate of the lint-result memo alone."""
        total = self.lint_lookups
        return self.lint_hits / total if total else 0.0

    @property
    def ir_hit_rate(self) -> float:
        """Hit rate of the content-addressed artifact store alone."""
        total = self.lookups
        return (self.hits + self.disk_hits) / total if total else 0.0

    @property
    def frontend_hit_rate(self) -> float:
        """Hit rate of the pre-parse fingerprint memo alone."""
        total = self.frontend_lookups
        return self.frontend_hits / total if total else 0.0

    @property
    def hit_rate(self) -> float:
        """Deprecated alias for :attr:`ir_hit_rate`.

        The old single number excluded the frontend memo entirely, so
        it misrepresented effectiveness whenever the memo was doing the
        work — report :attr:`ir_hit_rate` and :attr:`frontend_hit_rate`
        separately instead.
        """
        return self.ir_hit_rate

    def as_dict(self) -> Dict[str, float]:
        out: Dict[str, float] = dataclasses.asdict(self)
        out["ir_hit_rate"] = self.ir_hit_rate
        out["frontend_hit_rate"] = self.frontend_hit_rate
        out["lint_hit_rate"] = self.lint_hit_rate
        return out

    def metrics(self) -> Dict[str, float]:
        """The canonical ``cache.*`` metrics namespace
        (:mod:`repro.obs.metrics`)."""
        return {
            "cache.ir.hits": self.hits,
            "cache.ir.disk_hits": self.disk_hits,
            "cache.ir.misses": self.misses,
            "cache.ir.stores": self.stores,
            "cache.ir.evictions": self.evictions,
            "cache.ir.disk_writes": self.disk_writes,
            "cache.ir.hit_rate": self.ir_hit_rate,
            "cache.frontend.hits": self.frontend_hits,
            "cache.frontend.misses": self.frontend_misses,
            "cache.frontend.hit_rate": self.frontend_hit_rate,
            "cache.lint.hits": self.lint_hits,
            "cache.lint.misses": self.lint_misses,
            "cache.lint.hit_rate": self.lint_hit_rate,
        }

    def summary(self) -> str:
        return (f"hits={self.hits} disk_hits={self.disk_hits} "
                f"misses={self.misses} stores={self.stores} "
                f"evictions={self.evictions} "
                f"ir_hit_rate={self.ir_hit_rate:.1%} "
                f"frontend_hits={self.frontend_hits} "
                f"frontend_misses={self.frontend_misses} "
                f"frontend_hit_rate={self.frontend_hit_rate:.1%} "
                f"lint_hits={self.lint_hits} "
                f"lint_misses={self.lint_misses}")


class CompilationCache:
    """Content-addressed store for compilation artifacts.

    :param capacity: maximum in-memory entries (LRU eviction beyond it).
    :param directory: optional on-disk store; created on first write.
        Entries evicted from memory remain retrievable from disk, and a
        fresh process pointed at the same directory sees prior results.
    """

    def __init__(self, capacity: int = 512,
                 directory: Optional[str] = None):
        if capacity < 1:
            raise ValueError("cache capacity must be >= 1")
        self.capacity = capacity
        self.directory = os.path.abspath(directory) if directory else None
        self.stats = CacheStats()
        self._lock = threading.RLock()
        self._entries: "collections.OrderedDict[str, Dict[str, Any]]" = \
            collections.OrderedDict()
        # fingerprint -> (ir_digest, typechecked KernelIR); memory only
        self._frontend: "collections.OrderedDict[str, Tuple[str, Any]]" = \
            collections.OrderedDict()
        # lint key (canonical-IR digest + lint config) -> diagnostics;
        # memory only, so cached compiles skip re-running the pipeline
        self._lint: "collections.OrderedDict[str, List[Any]]" = \
            collections.OrderedDict()
        # key -> [lock, refcount]: the single-flight table behind
        # locked(); entries exist only while some thread holds or waits
        # on the key, so the table cannot grow with the key space
        self._key_locks: Dict[str, List[Any]] = {}

    # -- main entry store ---------------------------------------------------

    def get(self, key: str) -> Optional[Dict[str, Any]]:
        """Return the payload for *key*, consulting memory then disk.

        Service time lands in the ``cache.hist.hit_ms`` /
        ``cache.hist.miss_ms`` histograms (a miss here is only the
        lookup cost — the compile it triggers is timed by its own
        spans), so a disk tier gone slow shows up as a fat hit tail.
        """
        started = time.perf_counter()
        with self._lock:
            payload = self._entries.get(key)
            if payload is not None:
                self._entries.move_to_end(key)
                self.stats.hits += 1
                observe("cache.hist.hit_ms",
                        (time.perf_counter() - started) * 1e3)
                return payload
        payload = self._disk_read(key)
        with self._lock:
            if payload is not None:
                self.stats.disk_hits += 1
                self._insert(key, payload)
            else:
                self.stats.misses += 1
        observe("cache.hist.hit_ms" if payload is not None
                else "cache.hist.miss_ms",
                (time.perf_counter() - started) * 1e3)
        return payload

    def put(self, key: str, payload: Dict[str, Any]) -> None:
        """Store *payload* (a complete JSON-able dict) under *key*."""
        # content addressing makes re-stores of an existing key no-ops:
        # an entry evicted from memory but still on disk is neither a new
        # store (stats) nor worth rewriting (the bytes cannot differ)
        path = self._disk_path(key)
        on_disk = path is not None and os.path.exists(path)
        with self._lock:
            fresh = key not in self._entries and not on_disk
            self._insert(key, payload)
            if fresh:
                self.stats.stores += 1
        if path is not None and not on_disk:
            self._disk_write(key, payload)

    @contextlib.contextmanager
    def locked(self, key: str) -> Iterator[None]:
        """Serialise the miss-compile-store window for one *key*.

        A shared cache instance makes reads and writes individually
        safe, but the *compose* of a miss followed by a fresh compile is
        not: N server threads asking for the same kernel at once all
        miss, then all pay the full compile (a cache stampede) and race
        to store.  The compile driver wraps its lookup+compile+store in
        ``with store.locked(key)``, so the first thread compiles and
        every racer re-reads the stored entry as a hit.  Per-key, so
        distinct kernels still compile concurrently; re-entrant-free
        (one thread must not nest two ``locked`` calls on one key).
        """
        with self._lock:
            entry = self._key_locks.get(key)
            if entry is None:
                entry = [threading.Lock(), 0]
                self._key_locks[key] = entry
            entry[1] += 1
        entry[0].acquire()
        try:
            yield
        finally:
            entry[0].release()
            with self._lock:
                entry[1] -= 1
                if entry[1] == 0:
                    self._key_locks.pop(key, None)

    def invalidate(self, key: str) -> None:
        """Drop *key* everywhere — memory and disk.  For callers that find
        a stored payload undecodable; the next put() re-stores it."""
        with self._lock:
            self._entries.pop(key, None)
        path = self._disk_path(key)
        if path is not None:
            try:
                os.unlink(path)
            except OSError:
                pass

    def _insert(self, key: str, payload: Dict[str, Any]) -> None:
        self._entries[key] = payload
        self._entries.move_to_end(key)
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self.stats.evictions += 1

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: str) -> bool:
        with self._lock:
            if key in self._entries:
                return True
        return self._disk_path(key) is not None \
            and os.path.exists(self._disk_path(key))

    def clear(self, disk: bool = False) -> None:
        """Drop every in-memory entry; with *disk*, delete stored files."""
        with self._lock:
            self._entries.clear()
            self._frontend.clear()
            self._lint.clear()
        if disk and self.directory and os.path.isdir(self.directory):
            for shard in os.listdir(self.directory):
                shard_dir = os.path.join(self.directory, shard)
                if not os.path.isdir(shard_dir):
                    continue
                for name in os.listdir(shard_dir):
                    if name.endswith(".json"):
                        try:
                            os.unlink(os.path.join(shard_dir, name))
                        except OSError:
                            pass

    # -- binary artifacts ---------------------------------------------------

    def put_artifact(self, key: str, payload: Dict[str, Any],
                     blob: bytes) -> None:
        """Store *payload* plus a binary *blob* (base64-embedded) under
        *key*.  Used for native shared objects, whose bytes cannot ride
        in a JSON document directly."""
        entry = dict(payload)
        entry["blob_b64"] = base64.b64encode(blob).decode("ascii")
        self.put(key, entry)

    def get_artifact(self, key: str
                     ) -> Optional[Tuple[Dict[str, Any], bytes]]:
        """(payload, blob) for *key*, or None on a miss **or** an entry
        whose embedded blob fails to decode — undecodable entries are
        invalidated so the next store heals them."""
        entry = self.get(key)
        if entry is None:
            return None
        encoded = entry.get("blob_b64")
        if not isinstance(encoded, str):
            self.invalidate(key)
            return None
        try:
            blob = base64.b64decode(encoded.encode("ascii"),
                                    validate=True)
        except (binascii.Error, ValueError):
            self.invalidate(key)
            return None
        payload = {k: v for k, v in entry.items() if k != "blob_b64"}
        return payload, blob

    # -- frontend memo ------------------------------------------------------

    def frontend_get(self, fingerprint: str) -> Optional[Tuple[str, Any]]:
        """(ir_digest, typechecked IR) for a kernel fingerprint, if known."""
        with self._lock:
            hit = self._frontend.get(fingerprint)
            if hit is not None:
                self._frontend.move_to_end(fingerprint)
                self.stats.frontend_hits += 1
            else:
                self.stats.frontend_misses += 1
            return hit

    def frontend_put(self, fingerprint: str, ir_dig: str, ir: Any) -> None:
        with self._lock:
            self._frontend[fingerprint] = (ir_dig, ir)
            self._frontend.move_to_end(fingerprint)
            while len(self._frontend) > self.capacity:
                self._frontend.popitem(last=False)

    # -- lint memo ----------------------------------------------------------

    def lint_get(self, key: str) -> Optional[List[Any]]:
        """The memoised diagnostics for one lint *key* (canonical-IR
        digest plus lint configuration), or None.  Returns a copy: the
        compile driver re-emits the list to active collectors and
        callers must not mutate the memo."""
        with self._lock:
            hit = self._lint.get(key)
            if hit is not None:
                self._lint.move_to_end(key)
                self.stats.lint_hits += 1
                return list(hit)
            self.stats.lint_misses += 1
            return None

    def lint_put(self, key: str, diagnostics: List[Any]) -> None:
        with self._lock:
            self._lint[key] = list(diagnostics)
            self._lint.move_to_end(key)
            while len(self._lint) > self.capacity:
                self._lint.popitem(last=False)

    # -- disk layer ---------------------------------------------------------

    def _disk_path(self, key: str) -> Optional[str]:
        if self.directory is None:
            return None
        return os.path.join(self.directory, key[:2], f"{key}.json")

    def _disk_read(self, key: str) -> Optional[Dict[str, Any]]:
        path = self._disk_path(key)
        if path is None or not os.path.exists(path):
            return None
        try:
            with open(path, "r", encoding="utf-8") as fh:
                return json.load(fh)
        except ValueError:
            # corrupt file: a miss — and since put() skips writes for
            # existing files, unlink it so the re-store can heal it
            try:
                os.unlink(path)
            except OSError:
                pass
            return None
        except OSError:
            return None

    def _disk_write(self, key: str, payload: Dict[str, Any]) -> None:
        path = self._disk_path(key)
        shard_dir = os.path.dirname(path)
        try:
            os.makedirs(shard_dir, exist_ok=True)
            fd, tmp = tempfile.mkstemp(suffix=".tmp", dir=shard_dir)
            try:
                with os.fdopen(fd, "w", encoding="utf-8") as fh:
                    json.dump(payload, fh, separators=(",", ":"))
                os.replace(tmp, path)     # atomic: readers never see a
            except BaseException:         # partially-written entry
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
                raise
            with self._lock:
                self.stats.disk_writes += 1
        except OSError:
            pass               # disk store is best-effort


# --------------------------------------------------------------------------
# Process-wide default cache
# --------------------------------------------------------------------------

_default_cache: Optional[CompilationCache] = None
_default_lock = threading.Lock()


def get_default_cache() -> CompilationCache:
    """The process-wide cache used by ``compile_kernel(..., cache=True)``.

    Honors ``REPRO_CACHE_DIR`` (on-disk store location) and
    ``REPRO_CACHE_CAPACITY`` (in-memory entry limit) at first use.
    """
    global _default_cache
    with _default_lock:
        if _default_cache is None:
            directory = os.environ.get("REPRO_CACHE_DIR") or None
            capacity = int(os.environ.get("REPRO_CACHE_CAPACITY", "512"))
            _default_cache = CompilationCache(capacity=capacity,
                                              directory=directory)
        return _default_cache


def set_default_cache(cache: Optional[CompilationCache]) -> None:
    """Replace (or with ``None``, reset) the process-wide default cache."""
    global _default_cache
    with _default_lock:
        _default_cache = cache
