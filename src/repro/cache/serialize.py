"""(De)serialisation of compilation artifacts for the cache.

A cache entry captures everything :func:`repro.runtime.compile_kernel`
produces downstream of the frontend: the generated
:class:`~repro.backends.base.KernelSource`, the resolved
:class:`~repro.backends.base.CodegenOptions` (including the Algorithm-2
block selection), the estimated
:class:`~repro.hwmodel.resources.ResourceUsage`, and the selected
occupancy.  Entries round-trip through plain JSON-able dicts so the
on-disk store needs no pickle and stays inspectable with a text editor.
"""

from __future__ import annotations

from typing import Any, Dict

from ..backends.base import BorderMode, CodegenOptions, KernelSource, MaskMemory
from ..hwmodel.resources import ResourceUsage
from ..ir.analysis import InstructionMix

#: bump when the entry layout changes; readers reject other versions
ENTRY_FORMAT = 1


def options_to_dict(options: CodegenOptions) -> Dict[str, Any]:
    return {
        "backend": options.backend,
        "use_texture": options.use_texture,
        "border": options.border.value,
        "use_smem": options.use_smem,
        "mask_memory": options.mask_memory.value,
        "block": list(options.block),
        "unroll": options.unroll,
        "fold_constants": options.fold_constants,
        "fast_math": options.fast_math,
        "emit_config_macros": options.emit_config_macros,
        "pixels_per_thread": options.pixels_per_thread,
        "vectorize": options.vectorize,
    }


def options_from_dict(data: Dict[str, Any]) -> CodegenOptions:
    return CodegenOptions(
        backend=data["backend"],
        use_texture=data["use_texture"],
        border=BorderMode(data["border"]),
        use_smem=data["use_smem"],
        mask_memory=MaskMemory(data["mask_memory"]),
        block=tuple(data["block"]),
        unroll=data["unroll"],
        fold_constants=data["fold_constants"],
        fast_math=data["fast_math"],
        emit_config_macros=data["emit_config_macros"],
        pixels_per_thread=data["pixels_per_thread"],
        vectorize=data["vectorize"],
    )


def source_to_dict(source: KernelSource) -> Dict[str, Any]:
    return {
        "entry": source.entry,
        "device_code": source.device_code,
        "host_code": source.host_code,
        "backend": source.backend,
        "smem_bytes": source.smem_bytes,
        "texture_refs": list(source.texture_refs),
        "constant_symbols": list(source.constant_symbols),
        "num_variants": source.num_variants,
    }


def source_from_dict(data: Dict[str, Any],
                     options: CodegenOptions) -> KernelSource:
    return KernelSource(
        entry=data["entry"],
        device_code=data["device_code"],
        host_code=data["host_code"],
        backend=data["backend"],
        options=options,
        smem_bytes=data["smem_bytes"],
        texture_refs=tuple(data["texture_refs"]),
        constant_symbols=tuple(data["constant_symbols"]),
        num_variants=data["num_variants"],
    )


def mix_to_dict(mix: InstructionMix) -> Dict[str, Any]:
    return {
        "alu": mix.alu,
        "sfu": mix.sfu,
        "global_reads": mix.global_reads,
        "mask_reads": mix.mask_reads,
        "branches": mix.branches,
        "reads_by_accessor": dict(sorted(mix.reads_by_accessor.items())),
    }


def mix_from_dict(data: Dict[str, Any]) -> InstructionMix:
    return InstructionMix(
        alu=data["alu"],
        sfu=data["sfu"],
        global_reads=data["global_reads"],
        mask_reads=data["mask_reads"],
        branches=data["branches"],
        reads_by_accessor=dict(data["reads_by_accessor"]),
    )


def resources_to_dict(res: ResourceUsage) -> Dict[str, Any]:
    return {
        "registers_per_thread": res.registers_per_thread,
        "smem_bytes_per_block": res.smem_bytes_per_block,
        "instruction_mix": mix_to_dict(res.instruction_mix),
        "local_vars": res.local_vars,
        "max_expr_depth": res.max_expr_depth,
    }


def resources_from_dict(data: Dict[str, Any]) -> ResourceUsage:
    return ResourceUsage(
        registers_per_thread=data["registers_per_thread"],
        smem_bytes_per_block=data["smem_bytes_per_block"],
        instruction_mix=mix_from_dict(data["instruction_mix"]),
        local_vars=data["local_vars"],
        max_expr_depth=data["max_expr_depth"],
    )


def entry_to_dict(source: KernelSource, resources: ResourceUsage,
                  selected_occupancy: float) -> Dict[str, Any]:
    """One complete compile artifact, ready for the store."""
    return {
        "format": ENTRY_FORMAT,
        "kind": "compile",
        "options": options_to_dict(source.options),
        "source": source_to_dict(source),
        "resources": resources_to_dict(resources),
        "selected_occupancy": selected_occupancy,
    }


def entry_from_dict(data: Dict[str, Any]):
    """Rebuild (source, options, resources, selected_occupancy).

    Every reconstruction builds *fresh* objects — cached payloads are
    never handed out by reference, so a caller mutating its
    ``CompiledKernel`` cannot corrupt the cache.
    """
    if data.get("format") != ENTRY_FORMAT or data.get("kind") != "compile":
        raise ValueError("unrecognised cache entry format")
    options = options_from_dict(data["options"])
    source = source_from_dict(data["source"], options)
    resources = resources_from_dict(data["resources"])
    return source, options, resources, data["selected_occupancy"]
