"""Content-addressed cache keys (paper Sections IV-V).

The compilation pipeline is a pure function of (kernel IR, codegen
options, device, backend, package version): the same inputs always
produce byte-identical generated sources and the same Algorithm-2
configuration.  That makes its results content-addressable.  This module
produces the addresses:

* :func:`canonical_ir` — a deterministic, process-independent nested-list
  rendering of a :class:`~repro.ir.nodes.KernelIR` (floats via
  ``float.hex()``, numpy coefficient arrays via a digest of their raw
  bytes, types by name — never ``id()`` or ``hash()``, which are
  randomised per process);
* :func:`ir_digest` / :func:`device_signature` / :func:`compute_key` —
  the sha256 composition used by the compilation cache;
* :func:`kernel_fingerprint` — a *pre-parse* fingerprint of a DSL
  :class:`~repro.dsl.kernel.Kernel` instance covering everything the
  frontend consumes (kernel-method source, scalar attributes, accessor /
  mask / domain metadata, the iteration-space output pixel type, numeric
  module globals).  It front-ends an
  in-memory memo so a warm compile skips re-parsing entirely; when an
  attribute cannot be fingerprinted soundly the function returns ``None``
  and the caller falls back to a full parse (correct, just slower).

Non-baked (:class:`~repro.dsl.kernel.Uniform`) parameter *values* are
excluded from the IR digest: they become kernel arguments, never code
bytes, so two compiles differing only in a uniform value share one cache
entry.  Everything that can reach the generated source — baked constants,
mask coefficients, boundary constants, window shapes — is included.
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
import inspect
import json
from typing import Any, Dict, List, Mapping, Optional

import numpy as np

from ..hwmodel.device import DeviceSpec
from .serialize import ENTRY_FORMAT
from ..ir.nodes import (
    AccessorInfo,
    Assign,
    Expr,
    ForRange,
    If,
    KernelIR,
    MaskInfo,
    OutputWrite,
    ParamInfo,
    Stmt,
    VarDecl,
)

#: bump to invalidate every existing cache entry on a format change
KEY_SCHEMA_VERSION = 1


def _scalar(value: Any) -> Any:
    """Canonical JSON-able form of one scalar leaf value."""
    if isinstance(value, bool) or value is None or isinstance(value, str):
        return value
    if isinstance(value, float):
        return float(value).hex()
    if isinstance(value, (int, np.integer)):
        return int(value)
    if isinstance(value, np.floating):
        return float(value).hex()
    if isinstance(value, enum.Enum):
        return value.value
    raise TypeError(f"cannot canonicalise scalar {type(value).__name__}")


def array_digest(arr: np.ndarray) -> str:
    """Digest of a numpy array: shape, dtype and raw element bytes."""
    arr = np.ascontiguousarray(arr)
    h = hashlib.sha256()
    h.update(str(arr.shape).encode())
    h.update(str(arr.dtype).encode())
    h.update(arr.tobytes())
    return h.hexdigest()


def canonical_expr(e: Expr) -> List[Any]:
    """Nested-list rendering of an expression, stable across processes."""
    fields: List[Any] = [type(e).__name__]
    for f in dataclasses.fields(e):
        value = getattr(e, f.name)
        if isinstance(value, Expr):
            fields.append(canonical_expr(value))
        elif isinstance(value, (tuple, list)):
            fields.append([canonical_expr(v) if isinstance(v, Expr)
                           else _scalar(v) for v in value])
        elif value is not None and f.name in ("type", "target"):
            fields.append([f.name, value.name])       # ScalarType by name
        else:
            fields.append(_scalar(value) if not isinstance(value, Expr)
                          else canonical_expr(value))
    return fields


def canonical_stmt(s: Stmt) -> List[Any]:
    if isinstance(s, VarDecl):
        return ["VarDecl", s.name, canonical_expr(s.init),
                s.type.name if s.type else None]
    if isinstance(s, Assign):
        return ["Assign", s.name, canonical_expr(s.value)]
    if isinstance(s, If):
        return ["If", canonical_expr(s.cond),
                [canonical_stmt(b) for b in s.then_body],
                [canonical_stmt(b) for b in s.else_body]]
    if isinstance(s, ForRange):
        return ["ForRange", s.var, canonical_expr(s.start),
                canonical_expr(s.stop), canonical_expr(s.step),
                [canonical_stmt(b) for b in s.body]]
    if isinstance(s, OutputWrite):
        return ["OutputWrite", canonical_expr(s.value)]
    raise TypeError(f"cannot canonicalise statement {type(s).__name__}")


def _canonical_accessor(a: AccessorInfo) -> List[Any]:
    return ["accessor", a.name, a.pixel_type.name, a.boundary_mode,
            float(a.boundary_constant).hex(), list(a.window),
            bool(a.is_read), bool(a.is_written), a.interpolation,
            list(a.out_size) if a.out_size else None]


def _canonical_mask(m: MaskInfo) -> List[Any]:
    coeff = (array_digest(np.asarray(m.coefficients))
             if m.coefficients is not None else None)
    return ["mask", m.name, m.pixel_type.name, list(m.size), coeff,
            bool(m.compile_time_constant)]


def _canonical_param(p: ParamInfo) -> List[Any]:
    # non-baked params are kernel *arguments*: their value never reaches
    # the generated source, so it must not split cache entries
    value = _scalar(p.value) if p.baked else None
    return ["param", p.name, p.type.name, value, bool(p.baked)]


def canonical_ir(ir: KernelIR) -> List[Any]:
    """Deterministic nested-list rendering of a whole kernel IR."""
    return [
        "KernelIR", ir.name, ir.pixel_type.name,
        [_canonical_accessor(a) for a in ir.accessors],
        [_canonical_mask(m) for m in ir.masks],
        [_canonical_param(p) for p in ir.params],
        [canonical_stmt(s) for s in ir.body],
    ]


def ir_digest(ir: KernelIR) -> str:
    """sha256 of the canonicalised IR."""
    blob = json.dumps(canonical_ir(ir), separators=(",", ":"),
                      sort_keys=True)
    return hashlib.sha256(blob.encode()).hexdigest()


def pristine_ir_digest(ir: KernelIR) -> str:
    """:func:`ir_digest` over the pre-analysis form of *ir*.

    Codegen fills ``AccessorInfo.is_read``/``is_written`` in place, so
    the digest of an IR object depends on whether it has been through a
    backend yet.  Normalising the usage flags back to their defaults
    gives every consumer — the compile drivers, the auto-tuner's
    persistent :class:`~repro.mapping.optdb.TunedDatabase` keys — one
    stable fingerprint per kernel, identical before and after
    compilation and across processes.
    """
    pristine = dataclasses.replace(ir, accessors=[
        dataclasses.replace(a, is_read=False, is_written=False)
        for a in ir.accessors])
    return ir_digest(pristine)


def device_signature(device: DeviceSpec) -> Dict[str, Any]:
    """JSON-able rendering of a DeviceSpec (all model fields)."""
    raw = dataclasses.asdict(device)

    def scrub(value):
        if isinstance(value, dict):
            return {k: scrub(v) for k, v in sorted(value.items())}
        if isinstance(value, (tuple, list)):
            return [scrub(v) for v in value]
        if isinstance(value, float):
            return float(value).hex()
        return value

    return scrub(raw)


def compute_key(ir_dig: str, device: DeviceSpec, backend: str,
                request: Mapping[str, Any], version: str) -> str:
    """The content address of one (kernel, device, options) compile.

    *request* holds every codegen knob as resolved before the expensive
    pipeline stages run, with ``"auto"`` marking decisions delegated to
    Algorithm 2 (the block configuration).  Geometry belongs in *request*
    too — the region-dispatch constants in the generated source depend on
    the iteration-space size.
    """
    payload = {
        "schema": KEY_SCHEMA_VERSION,
        # entries of another layout must never be looked up: folding the
        # format into the key turns an ENTRY_FORMAT bump into a cache miss
        # for pre-existing on-disk stores instead of a decode error
        "entry_format": ENTRY_FORMAT,
        "version": version,
        "backend": backend,
        "ir": ir_dig,
        "device": device_signature(device),
        "request": {k: _scalar(v) if not isinstance(v, (list, tuple))
                    else [_scalar(x) for x in v]
                    for k, v in sorted(request.items())},
    }
    blob = json.dumps(payload, separators=(",", ":"), sort_keys=True)
    return hashlib.sha256(blob.encode()).hexdigest()


# --------------------------------------------------------------------------
# Pre-parse kernel fingerprinting (warm-path frontend memo)
# --------------------------------------------------------------------------

_CLASS_SOURCE_CACHE: Dict[type, Optional[str]] = {}


def _class_kernel_source(cls: type) -> Optional[str]:
    """Source of ``cls.kernel`` (what the frontend parses), memoised."""
    if cls not in _CLASS_SOURCE_CACHE:
        try:
            src = inspect.getsource(cls.kernel)
        except (OSError, TypeError):
            src = None
        _CLASS_SOURCE_CACHE[cls] = src
    return _CLASS_SOURCE_CACHE[cls]


def kernel_fingerprint(kernel, bake_params: bool = True) -> Optional[str]:
    """Fingerprint of everything :func:`repro.frontend.parser.parse_kernel`
    consumes from *kernel*, computed without parsing.

    Returns ``None`` when any input cannot be fingerprinted soundly
    (kernel source unavailable, unexpected attribute kinds) — the caller
    must then run the real frontend.
    """
    from ..dsl.accessor import Accessor
    from ..dsl.domain import Domain
    from ..dsl.kernel import Uniform
    from ..dsl.mask import Mask

    cls = type(kernel)
    source = _class_kernel_source(cls)
    if source is None:
        return None

    h = hashlib.sha256()
    h.update(f"{cls.__module__}.{cls.__qualname__}\n".encode())
    h.update(source.encode())
    h.update(b"baked" if bake_params else b"uniform")

    try:
        # the parser reads the output pixel type off the iteration space
        # (KernelIR.pixel_type); geometry stays out — it never reaches the
        # IR, and compute_key() hashes it separately via the request
        h.update(json.dumps(
            ["iteration_space",
             kernel.iteration_space.pixel_type.name]).encode())
        for name in sorted(vars(kernel)):
            if name.startswith("_") or name == "iteration_space":
                continue
            value = vars(kernel)[name]
            if isinstance(value, Accessor):
                from ..dsl.interpolate import InterpolatedAccessor
                part = ["acc", name, value.pixel_type.name,
                        value.boundary_mode.value,
                        float(value.boundary_constant or 0.0).hex(),
                        list(value.window)]
                if isinstance(value, InterpolatedAccessor):
                    part += [value.interpolation.value,
                             value.out_width, value.out_height]
                h.update(json.dumps(part).encode())
            elif isinstance(value, Mask):
                coeff = (array_digest(np.asarray(value.coefficients))
                         if value.is_set else "unset")
                h.update(json.dumps(
                    ["mask", name, value.pixel_type.name,
                     list(value.size), coeff,
                     bool(value.compile_time_constant)]).encode())
            elif isinstance(value, Domain):
                h.update(json.dumps(
                    ["domain", name, list(value.size),
                     array_digest(np.asarray(value._enabled))]).encode())
            elif isinstance(value, Uniform):
                h.update(json.dumps(
                    ["uniform", name, value.type.name,
                     _scalar(value.value)]).encode())
            elif isinstance(value, (bool, int, float, np.integer,
                                    np.floating)):
                h.update(json.dumps(
                    ["scalar", name, _scalar(value)]).encode())
            elif isinstance(value, (str, type(None))):
                continue              # invisible to the frontend
            else:
                return None           # unknown kind: don't guess
    except (TypeError, AttributeError):
        return None

    # free numeric names in the kernel method's module are baked into the
    # IR (paper: "Free module-level numeric names are baked too")
    fn_globals = getattr(cls.kernel, "__globals__", {})
    numeric = {k: _scalar(v) for k, v in fn_globals.items()
               if isinstance(v, (bool, int, float))
               and not k.startswith("__")}
    h.update(json.dumps(sorted(numeric.items())).encode())
    return h.hexdigest()
