"""Table rendering for paper-vs-model comparison reports."""

from .tables import (  # noqa: F401
    format_cell,
    format_comparison_table,
    format_table,
    shape_check,
)
