"""Render evaluation tables, optionally side-by-side with paper values."""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence, Union

Cell = Union[float, str]


def format_cell(value: Cell, digits: int = 2) -> str:
    if isinstance(value, (int, float)):
        return f"{value:.{digits}f}"
    return str(value)


def format_table(table: Dict[str, Dict[str, Cell]],
                 modes: Sequence[str],
                 title: str = "",
                 digits: int = 2) -> str:
    """Render {variant -> {mode -> cell}} as an aligned text table."""
    name_w = max([len(n) for n in table] + [10])
    col_w = max([len(m) for m in modes] + [10]) + 2
    lines: List[str] = []
    if title:
        lines.append(title)
    header = " " * name_w + "".join(f"{m:>{col_w}}" for m in modes)
    lines.append(header)
    lines.append("-" * len(header))
    for name, row in table.items():
        cells = "".join(f"{format_cell(row.get(m, ''), digits):>{col_w}}"
                        for m in modes)
        lines.append(f"{name:<{name_w}}{cells}")
    return "\n".join(lines)


def format_comparison_table(model: Dict[str, Dict[str, Cell]],
                            paper: Dict[str, List[Cell]],
                            modes: Sequence[str],
                            title: str = "") -> str:
    """Side-by-side "model/paper" table (rows restricted to paper rows)."""
    name_w = max([len(n) for n in paper] + [10])
    col_w = max([len(m) for m in modes] + [8]) + 10
    lines: List[str] = []
    if title:
        lines.append(title)
    header = " " * name_w + "".join(f"{m:>{col_w}}" for m in modes)
    lines.append(header)
    lines.append("-" * len(header))
    for name, paper_cells in paper.items():
        row = model.get(name)
        cells = []
        for i, mode in enumerate(modes):
            mv = row.get(mode, "?") if row else "?"
            pv = paper_cells[i] if i < len(paper_cells) else "?"
            cells.append(f"{format_cell(mv, 0)}/{format_cell(pv, 0)}")
        lines.append(f"{name:<{name_w}}"
                     + "".join(f"{c:>{col_w}}" for c in cells))
    lines.append("(each cell: modelled ms / paper ms; markers as published)")
    return "\n".join(lines)


def shape_check(name: str, condition: bool,
                detail: str = "") -> str:
    """One-line pass/fail record for a qualitative shape claim."""
    status = "PASS" if condition else "FAIL"
    suffix = f" — {detail}" if detail else ""
    return f"[{status}] {name}{suffix}"


def relative_errors(model: Dict[str, Dict[str, Cell]],
                    paper: Dict[str, List[Cell]],
                    modes: Sequence[str]) -> List[float]:
    """Per-cell |model-paper|/paper for numeric cells present in both."""
    errs: List[float] = []
    for name, cells in paper.items():
        row = model.get(name)
        if row is None:
            continue
        for i, mode in enumerate(modes):
            mv = row.get(mode)
            pv = cells[i] if i < len(cells) else None
            if isinstance(mv, (int, float)) and isinstance(pv, (int, float)):
                errs.append(abs(mv - pv) / pv)
    return errs


def marker_agreement(model: Dict[str, Dict[str, Cell]],
                     paper: Dict[str, List[Cell]],
                     modes: Sequence[str]) -> Iterable[str]:
    """Yield mismatch descriptions where crash/n-a markers disagree."""
    for name, cells in paper.items():
        row = model.get(name)
        if row is None:
            continue
        for i, mode in enumerate(modes):
            mv = row.get(mode)
            pv = cells[i] if i < len(cells) else None
            m_marker = mv if isinstance(mv, str) else None
            p_marker = pv if isinstance(pv, str) else None
            if m_marker != p_marker:
                yield (f"{name}/{mode}: model={mv!r} paper={pv!r}")
