"""Turn a decoded serve request into an executable pipeline graph.

Two request shapes plan into a :class:`~repro.graph.PipelineGraph`:

* ``"pipeline": <name>`` — a named application pipeline from
  :data:`PIPELINES` (currently the paper's edge-detection chain and a
  denoise chain), parameterised only by the request image;
* ``"chain": [{"op": ...}, ...]`` — an inline linear chain built from
  the :data:`OPS` vocabulary via :func:`repro.graph.builder.pipe`; each
  element names an operator and its parameters, e.g.
  ``{"op": "gaussian", "size": 5}`` or ``{"op": "scale", "factor": 2}``.

Planning is **pure construction**: nothing compiles or executes here,
so a plan is cheap enough to build per request and a malformed spec
fails fast with :class:`PlanError` (HTTP 400) before touching the
worker pool.  Two requests with equal fingerprints plan into
structurally identical graphs, which is what lets the service share one
execution between them and lets every compile hit the shared cache.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Callable, Dict, List

import numpy as np

from ..dsl import (Accessor, Boundary, BoundaryCondition, Image,
                   IterationSpace, Mask)
from ..graph import PipelineGraph
from ..graph.builder import stage
from .protocol import ProtocolError

#: engines the scheduler accepts; re-validated here so a planner used
#: without the protocol layer still rejects bad values early
ENGINES = ("sim", "native", "auto")


class PlanError(ProtocolError):
    """A structurally valid request naming impossible work (unknown
    pipeline/op, bad parameter) — still the client's fault."""


@dataclasses.dataclass
class Plan:
    """An executable unit: the graph, its output image, and the
    scheduler options the request selected."""

    graph: PipelineGraph
    output: Image
    engine: str
    device: str
    backend: str


def _f(spec: Dict[str, Any], field: str, default: float = None) -> float:
    value = spec.get(field, default)
    if not isinstance(value, (int, float)) or isinstance(value, bool):
        raise PlanError(f"op {spec.get('op')!r}: {field!r} must be a "
                        f"number, got {value!r}")
    return float(value)


def _boundary(spec: Dict[str, Any]) -> Boundary:
    try:
        return Boundary.coerce(spec.get("boundary", "clamp"))
    except Exception as exc:    # noqa: BLE001 - coerce raises DslError
        raise PlanError(f"op {spec.get('op')!r}: {exc}") from None


def _gaussian_stage(spec):
    from ..filters.gaussian import GaussianFilter, gaussian_mask_2d

    size = int(_f(spec, "size", 3))
    if size < 1 or size % 2 == 0 or size > 31:
        raise PlanError(f"gaussian size must be odd and <= 31, got {size}")
    sigma = spec.get("sigma")
    if sigma is not None:
        sigma = _f(spec, "sigma")
    mask = gaussian_mask_2d(size, sigma)
    return stage(lambda IS, acc: GaussianFilter(IS, acc, mask, size // 2),
                 window=(size, size), boundary=_boundary(spec),
                 constant=_f(spec, "constant", 0.0))


def _median_stage(spec):
    from ..filters.median import Median3x3

    return stage(Median3x3, window=(3, 3), boundary=_boundary(spec),
                 constant=_f(spec, "constant", 0.0))


def _sobel_stage(spec):
    from ..filters.sobel import SOBEL_X, SOBEL_Y, SobelX, SobelY

    axis = spec.get("axis", "x")
    if axis not in ("x", "y"):
        raise PlanError(f"sobel axis must be 'x' or 'y', got {axis!r}")
    cls, coeffs = ((SobelX, SOBEL_X) if axis == "x"
                   else (SobelY, SOBEL_Y))
    return stage(lambda IS, acc: cls(IS, acc, Mask(3, 3).set(coeffs)),
                 window=(3, 3), boundary=_boundary(spec))


def _laplacian_stage(spec):
    from ..filters.laplacian import (LAPLACIAN_4, LAPLACIAN_8,
                                     LaplacianFilter)

    connectivity = int(_f(spec, "connectivity", 4))
    if connectivity not in (4, 8):
        raise PlanError(
            f"laplacian connectivity must be 4 or 8, got {connectivity}")
    coeffs = LAPLACIAN_4 if connectivity == 4 else LAPLACIAN_8
    return stage(lambda IS, acc: LaplacianFilter(
        IS, acc, Mask(3, 3).set(coeffs)),
        window=(3, 3), boundary=_boundary(spec))


def _scale_stage(spec):
    from ..filters.point_ops import Scale

    factor = _f(spec, "factor")
    return stage(lambda IS, acc: Scale(IS, acc, factor))


def _gamma_stage(spec):
    from ..filters.point_ops import GammaCorrection

    gamma = _f(spec, "gamma")
    if gamma <= 0:
        raise PlanError(f"gamma must be positive, got {gamma}")
    return stage(lambda IS, acc: GammaCorrection(IS, acc, gamma))


def _threshold_stage(spec):
    from ..filters.point_ops import Threshold

    value = _f(spec, "value")
    return stage(lambda IS, acc: Threshold(IS, acc, value))


def _add_stage(spec):
    from ..filters.point_ops import AddConstant

    value = _f(spec, "value")
    return stage(lambda IS, acc: AddConstant(IS, acc, value))


#: op name -> builder(spec) -> pipe() stage descriptor
OPS: Dict[str, Callable[[Dict[str, Any]], Any]] = {
    "gaussian": _gaussian_stage,
    "median": _median_stage,
    "sobel": _sobel_stage,
    "laplacian": _laplacian_stage,
    "scale": _scale_stage,
    "gamma": _gamma_stage,
    "threshold": _threshold_stage,
    "add": _add_stage,
}


def _plan_chain(chain: List[Any], src: Image, opts: Dict[str, Any]
                ) -> PipelineGraph:
    from ..graph.builder import pipe

    stages = []
    for i, spec in enumerate(chain):
        if not isinstance(spec, dict) or "op" not in spec:
            raise PlanError(f"chain[{i}] must be an object with an 'op'")
        op = spec["op"]
        builder = OPS.get(op)
        if builder is None:
            raise PlanError(
                f"chain[{i}]: unknown op {op!r}; known: "
                f"{sorted(OPS)}")
        st = builder(spec)
        st.name = f"{op}_{i}"
        stages.append(st)
    graph, out = pipe(src, *stages, name="chain")
    for node in graph.nodes:
        node.options.update(opts)
    return graph


def _plan_edge(src: Image, opts: Dict[str, Any]) -> PipelineGraph:
    """The paper's Section-VI edge chain: median -> sobel-x || sobel-y
    -> gradient magnitude -> scale -> gamma (matches the ``repro
    graph`` CLI pipeline, so serve output is differentially testable
    against it)."""
    from ..filters.median import Median3x3
    from ..filters.point_ops import GammaCorrection, Scale
    from ..filters.sobel import (SOBEL_X, SOBEL_Y, GradientMagnitude,
                                 SobelX, SobelY)

    w, h = src.width, src.height
    den = Image(w, h, float, name="denoised")
    gx = Image(w, h, float, name="grad_x")
    gy = Image(w, h, float, name="grad_y")
    mag = Image(w, h, float, name="magnitude")
    scaled = Image(w, h, float, name="scaled")
    out = Image(w, h, float, name="edges")

    g = PipelineGraph("edge")
    g.add_kernel(Median3x3(IterationSpace(den), Accessor(
        BoundaryCondition(src, 3, 3, Boundary.CLAMP))), name="median",
        **opts)
    bc = BoundaryCondition(den, 3, 3, Boundary.CLAMP)
    g.add_kernel(SobelX(IterationSpace(gx), Accessor(bc),
                        Mask(3, 3).set(SOBEL_X)), name="sobel_x", **opts)
    g.add_kernel(SobelY(IterationSpace(gy), Accessor(bc),
                        Mask(3, 3).set(SOBEL_Y)), name="sobel_y", **opts)
    g.add_kernel(GradientMagnitude(IterationSpace(mag), Accessor(gx),
                                   Accessor(gy)), name="magnitude",
                 **opts)
    g.add_kernel(Scale(IterationSpace(scaled), Accessor(mag), 0.25),
                 name="scale", **opts)
    g.add_kernel(GammaCorrection(IterationSpace(out), Accessor(scaled),
                                 0.8), name="gamma", **opts)
    g.mark_output(out)
    return g


def _plan_denoise(src: Image, opts: Dict[str, Any]) -> PipelineGraph:
    """Impulse + gaussian denoise: median -> gaussian 5x5."""
    return _plan_chain([{"op": "median", "boundary": "mirror"},
                        {"op": "gaussian", "size": 5}], src, opts)


def _plan_enhance(src: Image, opts: Dict[str, Any]) -> PipelineGraph:
    """Contrast enhancement: scale into range, then a square-law gamma.
    Every stage is a point op with an exactly-reducible intrinsic
    (``pow(x, 2.0)`` lowers to ``x*x``), so the whole chain is provable
    for the native tier."""
    return _plan_chain([{"op": "scale", "factor": 0.5},
                        {"op": "gamma", "gamma": 2.0}], src, opts)


#: named application pipelines: name -> builder(src_image, node_opts)
PIPELINES: Dict[str, Callable[[Image, Dict[str, Any]], PipelineGraph]] = {
    "edge": _plan_edge,
    "denoise": _plan_denoise,
    "enhance": _plan_enhance,
}


def plan_request(body: Dict[str, Any], data: np.ndarray) -> Plan:
    """Build the graph for *body* over the decoded image *data*.

    Raises :class:`PlanError`/:class:`ProtocolError` for anything the
    client got wrong; never executes or compiles.
    """
    from ..errors import MappingError
    from ..hwmodel.database import get_device

    device = body.get("device", "Tesla C2050")
    backend = body.get("backend", "cuda")
    engine = body.get("engine", "auto")
    if engine not in ENGINES:
        raise PlanError(f"engine {engine!r} must be one of {ENGINES}")
    try:
        dev = get_device(device)
    except MappingError as exc:
        raise PlanError(str(exc)) from None
    if not dev.supports_backend(backend):
        raise PlanError(
            f"{device} does not support the {backend} backend")

    h, w = data.shape
    if data.dtype != np.float32:
        # the DSL's default pixel type; other dtypes are accepted on
        # the wire but normalised here so every plan is float32-exact
        data = data.astype(np.float32)
    src = Image(w, h, float, name="request_src")
    src.set_data(data)
    opts = {"device": device, "backend": backend}

    pipeline = body.get("pipeline")
    if pipeline is not None:
        builder = PIPELINES.get(pipeline)
        if builder is None:
            raise PlanError(f"unknown pipeline {pipeline!r}; known: "
                            f"{sorted(PIPELINES)}")
        graph = builder(src, opts)
    else:
        chain = body.get("chain")
        if not isinstance(chain, list) or not chain:
            raise PlanError("'chain' must be a non-empty list")
        graph = _plan_chain(chain, src, opts)

    outputs = graph.outputs()
    if len(outputs) != 1:
        raise PlanError(
            f"pipeline produced {len(outputs)} outputs, expected 1")
    return Plan(graph=graph, output=outputs[0], engine=engine,
                device=device, backend=backend)
