"""The serve request engine: queue, batching window, dedup, workers.

Lifecycle of one request::

    handle() -> submit() -> [bounded queue] -> dispatcher thread
        -> batching window -> group by fingerprint -> worker pool
        -> plan + execute (once per group) -> wake every waiter

The **dispatcher** is a single thread that sleeps until work arrives,
keeps collecting for ``batch_window_ms`` so concurrent identical
requests land in the same batch, then groups the drained batch by
:func:`~repro.serve.protocol.request_fingerprint`.  Each group is
handed to the worker pool as *one* unit: it plans once, executes once,
and every member request receives the same response document
(``serve.dedup_hits`` counts the members that got an answer without an
execution of their own).

Every worker thread owns a :class:`~repro.graph.pool.BufferPool` arena
(thread-local) that is :meth:`~repro.graph.pool.BufferPool.reset`
between requests — buffers go back to the free lists but the arenas
stay allocated, so a warm worker executes without touching the
allocator.  All workers share one process-wide
:class:`~repro.cache.CompilationCache`; the cache's per-key
single-flight locking guarantees N concurrent misses of the same kernel
compile exactly once.

Robustness is explicit state, not best effort:

* the queue is bounded — :meth:`ServeService.submit` raises
  :class:`QueueFull` (HTTP 429 + Retry-After) instead of buffering
  without limit;
* every request carries a deadline — waiters that hit it get
  :class:`RequestTimedOut` (HTTP 504); a group whose waiters have *all*
  given up before execution starts is cancelled without executing;
* :meth:`ServeService.drain` (SIGTERM) stops intake, rejects whatever
  is still queued as retriable (HTTP 503), waits for in-flight groups
  to finish, and leaves the cache/arenas intact for inspection.
"""

from __future__ import annotations

import collections
import dataclasses
import threading
import time
from typing import Any, Deque, Dict, List, Optional, Tuple

from ..cache import CompilationCache
from ..graph.pool import BufferPool
from ..graph.scheduler import execute_graph
from ..obs import get_registry, span
from ..obs.hist import get_histograms, observe
from ..obs.log import log_event, new_request_id
from .planner import plan_request
from .protocol import (PROTOCOL_VERSION, ProtocolError, decode_image,
                       encode_image, error_response, request_fingerprint)


class ServeRejected(RuntimeError):
    """Base for submissions the service refused; carries the HTTP
    status and response document the front door should send."""

    http_status = 500
    code = "rejected"

    def __init__(self, message: str, **extra: Any):
        super().__init__(message)
        self.doc = error_response(self.code, message, **extra)


class QueueFull(ServeRejected):
    """Load shed: the bounded queue is at capacity (HTTP 429)."""

    http_status = 429
    code = "queue_full"


class Draining(ServeRejected):
    """The service is shutting down; retry against a healthy instance
    (HTTP 503, retriable)."""

    http_status = 503
    code = "draining"


class RequestTimedOut(ServeRejected):
    """The per-request deadline expired before a result was ready
    (HTTP 504).  The shared execution may still complete for other
    waiters; this waiter just stopped caring."""

    http_status = 504
    code = "timeout"


@dataclasses.dataclass
class ServeConfig:
    """Tunables for one :class:`ServeService` instance."""

    #: worker threads executing request groups
    workers: int = 2
    #: how long the dispatcher keeps collecting after the first request
    #: of a batch arrives; 0 disables coalescing (every request is its
    #: own group unless already queued together)
    batch_window_ms: float = 4.0
    #: submissions beyond this many pending requests — awaiting
    #: dispatch or awaiting a worker — are shed (429)
    queue_limit: int = 64
    #: deadline for requests that do not carry ``timeout_ms``
    default_timeout_ms: float = 30000.0
    #: engine for requests that do not name one
    engine: str = "auto"
    #: intra-graph scheduler workers; 1 keeps each request serial and
    #: leaves concurrency to the request-level worker pool
    graph_workers: int = 1
    #: Retry-After seconds advertised on 429/503
    retry_after_s: float = 1.0
    #: largest fingerprint-group batch one dispatch drains (backstop so
    #: one window cannot monopolise the pool)
    max_batch: int = 256


class ServeStats:
    """Thread-safe counters for the ``serve.*`` metrics namespace."""

    _FIELDS = ("requests", "batched", "dedup_hits", "shed", "completed",
               "errors", "timeouts", "cancelled", "executions",
               "drained")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        for field in self._FIELDS:
            setattr(self, field, 0)

    def bump(self, field: str, by: int = 1) -> None:
        with self._lock:
            setattr(self, field, getattr(self, field) + by)

    def as_dict(self) -> Dict[str, int]:
        with self._lock:
            return {field: getattr(self, field)
                    for field in self._FIELDS}


@dataclasses.dataclass
class _Pending:
    """One submitted request waiting for its group's result."""

    body: Dict[str, Any]
    fingerprint: str
    deadline: float
    #: id minted at intake; echoed in the response, the structured log
    #: and the ``serve.*`` span attrs
    request_id: str = ""
    #: monotonic intake time — queue-wait/request-latency histograms
    submitted_at: float = 0.0
    done: threading.Event = dataclasses.field(
        default_factory=threading.Event)
    #: (http_status, response_doc) once done is set
    result: Optional[Tuple[int, Dict[str, Any]]] = None
    #: flipped by a waiter that stopped waiting; cancellation checks it
    abandoned: bool = False

    def finish(self, status: int, doc: Dict[str, Any]) -> None:
        self.result = (status, doc)
        self.done.set()


class ServeService:
    """The long-running request engine behind the HTTP front door."""

    def __init__(self, config: Optional[ServeConfig] = None,
                 cache: Optional[CompilationCache] = None):
        self.config = config or ServeConfig()
        if cache is None:
            from ..cache import get_default_cache
            cache = get_default_cache()
        self.cache = cache
        self.stats = ServeStats()
        self._queue: Deque[_Pending] = collections.deque()
        self._lock = threading.Lock()
        # two conditions on the one lock, so a notify can never be
        # consumed by the wrong kind of waiter: only the dispatcher
        # waits on _queue_wake (intake), only workers wait on
        # _work_wake (grouped work)
        self._queue_wake = threading.Condition(self._lock)
        self._work_wake = threading.Condition(self._lock)
        self._draining = False
        self._stopped = False
        self._inflight = 0
        self._idle = threading.Condition(self._lock)
        self._worker_local = threading.local()
        self._pools: List[BufferPool] = []
        self._workers: List[threading.Thread] = []
        self._work: Deque[List[_Pending]] = collections.deque()
        self._dispatcher: Optional[threading.Thread] = None
        self.started_at_unix = time.time()
        self._started_monotonic = time.monotonic()
        self._engine_fp: Optional[str] = None

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> "ServeService":
        self._dispatcher = threading.Thread(
            target=self._dispatch_loop, name="serve-dispatch",
            daemon=True)
        self._dispatcher.start()
        for i in range(max(1, self.config.workers)):
            t = threading.Thread(target=self._worker_loop,
                                 name=f"serve-worker-{i}", daemon=True)
            t.start()
            self._workers.append(t)
        # the scheduler runs with register_metrics=False under serve
        # (parallel requests would race to overwrite the global slots),
        # so the service installs the aggregate sources itself: the one
        # shared cache, and the per-worker arenas summed
        registry = get_registry()
        registry.register_source("serve", self.metrics)
        registry.register_source("cache", self.cache.stats.metrics)
        registry.register_source("pool", self._pool_metrics)
        # materialise the default histogram set so the "hist" source is
        # registered before the first snapshot, not after the first
        # request happens to record a latency
        get_histograms()
        log_event("serve.started", workers=self.config.workers,
                  engine=self.config.engine,
                  queue_limit=self.config.queue_limit)
        return self

    def drain(self, timeout: Optional[float] = None) -> bool:
        """Graceful shutdown: reject queued work as retriable, let
        in-flight groups finish.  Returns True when fully drained."""
        with self._lock:
            first = not self._draining
            if first:
                self._draining = True
                flushed = list(self._queue)
                self._queue.clear()
            else:
                flushed = []
        if first:
            log_event("serve.draining", flushed=len(flushed))
        for pending in flushed:
            self.stats.bump("drained")
            self._deliver(pending, 503, error_response(
                "draining", "server is draining; retry elsewhere",
                retriable=True,
                retry_after=self.config.retry_after_s),
                event="request.drained")
        deadline = (None if timeout is None
                    else time.monotonic() + timeout)
        with self._idle:
            while self._inflight or self._work or self._queue:
                remaining = (None if deadline is None
                             else deadline - time.monotonic())
                if remaining is not None and remaining <= 0:
                    return False
                self._idle.wait(timeout=remaining)
        with self._lock:
            self._stopped = True
            self._queue_wake.notify_all()
            self._work_wake.notify_all()
        return True

    @property
    def draining(self) -> bool:
        return self._draining

    # -- health --------------------------------------------------------------

    def engine_fingerprint(self) -> str:
        """Identity of what executes requests: the C compiler signature
        when the configured engine can compile natively, ``"sim"``
        otherwise.  Memoised — the compiler probe shells out once."""
        if self._engine_fp is None:
            fp = "sim"
            if self.config.engine in ("native", "auto"):
                from ..runtime.native import (compiler_signature,
                                              find_c_compiler)
                cc = find_c_compiler()
                fp = compiler_signature(cc) if cc else "sim (no C compiler)"
            self._engine_fp = fp
        return self._engine_fp

    def health(self) -> Dict[str, Any]:
        """The ``/healthz`` document (status key set by the caller)."""
        return {
            "status": "draining" if self._draining else "ok",
            "protocol": PROTOCOL_VERSION,
            "uptime_s": round(
                time.monotonic() - self._started_monotonic, 3),
            "started_at_unix": round(self.started_at_unix, 3),
            "engine": self.config.engine,
            "engine_fingerprint": self.engine_fingerprint(),
        }

    # -- metrics -------------------------------------------------------------

    def metrics(self) -> Dict[str, float]:
        """The canonical ``serve.*`` metrics namespace."""
        counters = self.stats.as_dict()
        with self._lock:
            depth = len(self._queue) + len(self._work)
        out = {f"serve.{k}": v for k, v in counters.items()}
        out["serve.queue_depth"] = depth
        return out

    def _pool_metrics(self) -> Dict[str, float]:
        """All worker arenas summed into one ``pool.*`` view."""
        with self._lock:
            pools = list(self._pools)
        total: Dict[str, float] = {}
        for pool in pools:
            for key, value in pool.stats.metrics().items():
                total[key] = total.get(key, 0) + value
        return total

    # -- intake --------------------------------------------------------------

    def submit(self, body: Dict[str, Any],
               request_id: Optional[str] = None) -> _Pending:
        """Fingerprint + enqueue *body*; raises :class:`ServeRejected`
        subclasses (shed/drain) or :class:`ProtocolError` (400).  The
        *request_id* (minted here when the caller did not) rides the
        raised documents too, so even a shed request is greppable."""
        if request_id is None:
            request_id = new_request_id()
        fingerprint, _ = request_fingerprint(
            body, default_engine=self.config.engine)
        timeout_ms = body.get("timeout_ms",
                              self.config.default_timeout_ms)
        if (not isinstance(timeout_ms, (int, float))
                or isinstance(timeout_ms, bool) or timeout_ms <= 0):
            raise ProtocolError(
                f"timeout_ms must be a positive number, got "
                f"{timeout_ms!r}")
        now = time.monotonic()
        pending = _Pending(body=body, fingerprint=fingerprint,
                           deadline=now + timeout_ms / 1e3,
                           request_id=request_id, submitted_at=now)
        try:
            with self._lock:
                if self._draining:
                    raise Draining(
                        "server is draining; retry elsewhere",
                        retriable=True,
                        retry_after=self.config.retry_after_s)
                # backpressure counts everything awaiting a worker, not
                # just the pre-dispatch queue: with a zero batching
                # window the dispatcher drains _queue into _work almost
                # instantly, and sheds must engage on the same depth
                # /metrics reports
                if (len(self._queue) + len(self._work)
                        >= self.config.queue_limit):
                    self.stats.bump("shed")
                    raise QueueFull(
                        f"queue is at its {self.config.queue_limit}"
                        f"-request limit",
                        retry_after=self.config.retry_after_s)
                self._queue.append(pending)
                self._queue_wake.notify()
        except ServeRejected as exc:
            exc.doc["request_id"] = request_id
            log_event("request.shed" if isinstance(exc, QueueFull)
                      else "request.rejected",
                      request_id=request_id,
                      fingerprint=fingerprint[:16], code=exc.code)
            raise
        self.stats.bump("requests")
        log_event("request.received", request_id=request_id,
                  fingerprint=fingerprint[:16])
        return pending

    def handle(self, body: Any) -> Tuple[int, Dict[str, Any]]:
        """Synchronous request-to-response: submit, wait, classify.

        This is the whole behaviour of ``POST /v1/execute`` minus HTTP
        framing, so tests can drive the service without sockets.
        """
        request_id = new_request_id()
        if not isinstance(body, dict):
            log_event("request.rejected", request_id=request_id,
                      code="bad_request")
            return 400, error_response(
                "bad_request", "request body must be an object",
                request_id=request_id)
        try:
            pending = self.submit(body, request_id=request_id)
        except ServeRejected as exc:
            return exc.http_status, exc.doc
        except ProtocolError as exc:
            log_event("request.rejected", request_id=request_id,
                      code="bad_request")
            return 400, error_response("bad_request", str(exc),
                                       request_id=request_id)
        remaining = pending.deadline - time.monotonic()
        if not pending.done.wait(timeout=max(0.0, remaining)):
            pending.abandoned = True
            self.stats.bump("timeouts")
            timeout_ms = body.get("timeout_ms",
                                  self.config.default_timeout_ms)
            log_event("request.timeout", request_id=request_id,
                      fingerprint=pending.fingerprint[:16],
                      timeout_ms=float(timeout_ms))
            return 504, error_response(
                "timeout",
                f"no result within {timeout_ms:.0f} ms", retriable=True,
                request_id=request_id)
        assert pending.result is not None
        return pending.result

    # -- dispatcher ----------------------------------------------------------

    def _dispatch_loop(self) -> None:
        while True:
            with self._lock:
                while not self._queue and not self._stopped:
                    self._queue_wake.wait()
                if self._stopped and not self._queue:
                    return
            # first request seen: hold the batching window open so
            # concurrent identical requests coalesce into one group
            window_s = self.config.batch_window_ms / 1e3
            if window_s > 0:
                time.sleep(window_s)
            # pop, group and publish under ONE lock hold: every pending
            # request is visible in _queue, _work or _inflight at all
            # times, so drain()'s idle predicate can never observe a
            # clean state while requests sit in a dispatcher local
            with self._lock:
                batch: List[_Pending] = []
                while self._queue and len(batch) < self.config.max_batch:
                    batch.append(self._queue.popleft())
                if not batch:
                    continue
                groups: Dict[str, List[_Pending]] = {}
                for pending in batch:
                    groups.setdefault(pending.fingerprint,
                                      []).append(pending)
                for group in groups.values():
                    if len(group) > 1:
                        self.stats.bump("batched", len(group))
                        self.stats.bump("dedup_hits", len(group) - 1)
                    self._inflight += 1
                    self._work.append(group)
                self._work_wake.notify_all()
                published = list(groups.values())
            # observe/log outside the lock: sinks take their own locks
            for group in published:
                observe("serve.hist.batch_size", len(group))
                log_event("request.grouped",
                          request_id=group[0].request_id,
                          fingerprint=group[0].fingerprint[:16],
                          group=len(group))

    def _worker_loop(self) -> None:
        while True:
            with self._lock:
                while not self._work and not self._stopped:
                    self._work_wake.wait()
                if self._stopped and not self._work:
                    return
                group = self._work.popleft()
            try:
                self._run_group(group)
            finally:
                with self._idle:
                    self._inflight -= 1
                    self._idle.notify_all()

    # -- execution -----------------------------------------------------------

    def _arena(self) -> BufferPool:
        pool = getattr(self._worker_local, "pool", None)
        if pool is None:
            pool = BufferPool()
            self._worker_local.pool = pool
            with self._lock:
                self._pools.append(pool)
        return pool

    def _deliver(self, pending: _Pending, status: int,
                 doc: Dict[str, Any],
                 event: str = "request.completed") -> None:
        """Personalise *doc* for one waiter (its ``request_id``), record
        the end-to-end latency and emit the lifecycle event."""
        doc = dict(doc)
        doc["request_id"] = pending.request_id
        meta = doc.get("meta")
        if isinstance(meta, dict):
            meta = dict(meta)
            meta["request_id"] = pending.request_id
            doc["meta"] = meta
        request_ms = (time.monotonic() - pending.submitted_at) * 1e3
        observe("serve.hist.request_ms", request_ms)
        log_event(event, request_id=pending.request_id,
                  fingerprint=pending.fingerprint[:16],
                  http_status=status, request_ms=round(request_ms, 3))
        pending.finish(status, doc)

    def _run_group(self, group: List[_Pending]) -> None:
        if all(p.abandoned for p in group):
            # every waiter gave up during the queue wait: executing
            # would burn a worker on an answer nobody reads
            self.stats.bump("cancelled", len(group))
            for pending in group:
                log_event("request.cancelled",
                          request_id=pending.request_id,
                          fingerprint=pending.fingerprint[:16])
            return
        lead = group[0]
        now = time.monotonic()
        for pending in group:
            observe("serve.hist.queue_wait_ms",
                    (now - pending.submitted_at) * 1e3)
            log_event("request.dispatched",
                      request_id=pending.request_id,
                      fingerprint=pending.fingerprint[:16],
                      group=len(group))
        try:
            status, doc = self._execute(lead.body, len(group),
                                        lead.request_id)
        except ProtocolError as exc:
            status, doc = 400, error_response("bad_request", str(exc))
            self.stats.bump("errors", len(group))
        except Exception as exc:    # noqa: BLE001 - one bad request
            # must never take down the worker thread
            status, doc = 500, error_response(
                "internal", f"{type(exc).__name__}: {exc}")
            self.stats.bump("errors", len(group))
        else:
            if status == 200:
                self.stats.bump("completed", len(group))
            else:
                self.stats.bump("errors", len(group))
        for pending in group:
            self._deliver(pending, status, doc)

    def _execute(self, body: Dict[str, Any], group_size: int,
                 lead_request_id: str = "") -> Tuple[int, Dict[str, Any]]:
        """Plan and run one request group on this worker's warm arena.

        ``serve.plan``/``serve.exec`` are deliberately *top-level*
        spans in the worker thread, correlated to ``serve.request`` by
        the ``fingerprint`` attr rather than stitched as children: a
        waiter may time out (closing its request span) while the shared
        execution continues, and a child outliving its parent would
        violate the trace validator's containment rule.
        """
        fingerprint, _ = request_fingerprint(
            body, default_engine=self.config.engine)
        with span("serve.plan", fingerprint=fingerprint[:16],
                  group=group_size, request_id=lead_request_id):
            data = decode_image(body.get("image"))
            plan = plan_request(body, data)
        engine = plan.engine if body.get("engine") else self.config.engine
        arena = self._arena()
        with span("serve.exec", fingerprint=fingerprint[:16],
                  engine=engine, group=group_size,
                  request_id=lead_request_id):
            self.stats.bump("executions")
            # reset in finally: a failed execute/encode must still zero
            # the per-run pool accounting, or the pool.* metrics drift
            # after every request error
            try:
                # lint=False: the HIP3xx pass is advisory and this
                # graph structure replays for every request of the
                # fingerprint — re-deriving identical diagnostics is
                # pure warm-path cost
                report = execute_graph(plan.graph, cache=self.cache,
                                       workers=self.config.graph_workers,
                                       pool=arena, engine=engine,
                                       register_metrics=False,
                                       lint=False)
                result = plan.output.get_data()
                encoded = encode_image(result)
            finally:
                arena.reset()
        meta = {
            "fingerprint": fingerprint,
            "engine": report.engine_used,
            "launches": report.launches,
            "cache_hits": report.cache_hits,
            "compile_wall_ms": round(report.compile_wall_ms, 3),
            "execute_wall_ms": round(report.execute_wall_ms, 3),
            "group_size": group_size,
            "protocol": PROTOCOL_VERSION,
        }
        return 200, {"status": "ok", "image": encoded, "meta": meta}
