"""The stdlib-only HTTP front door for :class:`~repro.serve.ServeService`.

Endpoints:

* ``POST /v1/execute`` — one JSON request (protocol.py), answered with
  the result image or a typed error; the handler thread carries a
  ``serve.request`` span;
* ``GET /healthz`` — liveness + readiness: ``{"status": "ok" |
  "draining", "protocol": N, "uptime_s": ..., "started_at_unix": ...,
  "engine": ..., "engine_fingerprint": ...}``; draining answers 503 so
  load balancers stop routing here during shutdown;
* ``GET /metrics`` — the process metrics registry snapshot as JSON
  (the same document the trace exporters embed), including the
  ``serve.*`` and flattened ``*.hist.*`` namespaces;
  ``GET /metrics?format=prometheus`` renders the same snapshot as
  Prometheus text exposition (:mod:`repro.obs.prom`) for scrapers.

Every ``POST /v1/execute`` response carries the ``request_id`` minted
at intake — in the JSON document (top level, and under ``meta`` on
success) and as the ``X-Request-Id`` header — joining the response to
its structured-log lines and its ``serve.*`` spans.

:func:`run_server` is the ``repro serve`` entry point: it installs
SIGTERM/SIGINT handlers that trigger a graceful drain (in-flight
requests complete, queued ones are rejected retriable) and returns 0
on a clean exit.  The bound port is printed as the first stdout line
(``listening on http://host:port``) so callers using ``--port 0`` can
discover the ephemeral port.
"""

from __future__ import annotations

import json
import signal
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, Optional, Tuple
from urllib.parse import parse_qs, urlsplit

from ..obs import get_registry, span
from ..obs.prom import CONTENT_TYPE as PROM_CONTENT_TYPE
from ..obs.prom import render_prometheus
from .protocol import PROTOCOL_VERSION, error_response
from .service import ServeConfig, ServeService

#: refuse request bodies above this size before reading them fully;
#: large enough for a MAX_PIXELS float64 image with base64 overhead
MAX_BODY_BYTES = 1024 * 1024 * 1024


class ServeHTTPServer(ThreadingHTTPServer):
    """ThreadingHTTPServer that owns the service it fronts."""

    daemon_threads = True
    #: SO_REUSEADDR so a drained server's port is immediately reusable
    allow_reuse_address = True

    def __init__(self, addr: Tuple[str, int], service: ServeService):
        super().__init__(addr, _Handler)
        self.service = service


class _Handler(BaseHTTPRequestHandler):
    #: quiet by default: per-request access logging is the span's job
    protocol_version = "HTTP/1.1"

    @property
    def service(self) -> ServeService:
        return self.server.service    # type: ignore[attr-defined]

    def log_message(self, fmt: str, *args: Any) -> None:
        pass

    # -- plumbing ------------------------------------------------------------

    def _send_json(self, status: int, doc: Dict[str, Any],
                   headers: Optional[Dict[str, str]] = None) -> None:
        payload = json.dumps(doc).encode()
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(payload)))
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        try:
            self.wfile.write(payload)
        except (BrokenPipeError, ConnectionResetError):
            pass                       # client went away; nothing to do

    def _retry_headers(self, doc: Dict[str, Any]) -> Dict[str, str]:
        retry_after = doc.get("retry_after")
        if retry_after is None:
            return {}
        return {"Retry-After": f"{float(retry_after):.0f}"}

    # -- endpoints -----------------------------------------------------------

    def do_GET(self) -> None:          # noqa: N802 - stdlib casing
        parts = urlsplit(self.path)
        if parts.path == "/healthz":
            doc = self.service.health()
            self._send_json(503 if doc["status"] == "draining" else 200,
                            doc)
        elif parts.path == "/metrics":
            fmt = parse_qs(parts.query).get("format", ["json"])[-1]
            if fmt == "prometheus":
                payload = render_prometheus().encode()
                self.send_response(200)
                self.send_header("Content-Type", PROM_CONTENT_TYPE)
                self.send_header("Content-Length", str(len(payload)))
                self.end_headers()
                try:
                    self.wfile.write(payload)
                except (BrokenPipeError, ConnectionResetError):
                    pass
            elif fmt == "json":
                self._send_json(200, get_registry().snapshot())
            else:
                self._send_json(400, error_response(
                    "bad_format",
                    f"unknown metrics format {fmt!r} "
                    f"(json | prometheus)"))
        else:
            self._send_json(404, error_response(
                "not_found", f"no such endpoint {self.path!r}"))

    def do_POST(self) -> None:         # noqa: N802 - stdlib casing
        if self.path != "/v1/execute":
            self._send_json(404, error_response(
                "not_found", f"no such endpoint {self.path!r}"))
            return
        try:
            length = int(self.headers.get("Content-Length", "0"))
        except ValueError:
            length = -1
        if length <= 0:
            self._send_json(411, error_response(
                "length_required", "Content-Length required"))
            return
        if length > MAX_BODY_BYTES:
            self._send_json(413, error_response(
                "too_large",
                f"body exceeds {MAX_BODY_BYTES} bytes"))
            return
        raw = self.rfile.read(length)
        try:
            body = json.loads(raw)
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            self._send_json(400, error_response(
                "bad_json", f"request body is not JSON: {exc}"))
            return
        with span("serve.request", path=self.path) as req_span:
            status, doc = self.service.handle(body)
            req_span.attrs["http_status"] = status
            if isinstance(doc.get("request_id"), str):
                req_span.attrs["request_id"] = doc["request_id"]
            meta = doc.get("meta")
            if isinstance(meta, dict) and "fingerprint" in meta:
                req_span.attrs["fingerprint"] = meta["fingerprint"][:16]
        headers = self._retry_headers(doc)
        if isinstance(doc.get("request_id"), str):
            headers["X-Request-Id"] = doc["request_id"]
        self._send_json(status, doc, headers=headers)


def create_server(host: str = "127.0.0.1", port: int = 0,
                  config: Optional[ServeConfig] = None,
                  cache=None) -> ServeHTTPServer:
    """Build the HTTP server and start its service threads.  ``port=0``
    binds an ephemeral port — read it from ``server.server_address``."""
    service = ServeService(config=config, cache=cache).start()
    return ServeHTTPServer((host, port), service)


def run_server(host: str = "127.0.0.1", port: int = 8077,
               config: Optional[ServeConfig] = None,
               cache=None,
               drain_timeout: Optional[float] = 30.0,
               install_signals: bool = True,
               ready_line: bool = True,
               trace_out: Optional[str] = None) -> int:
    """Serve until SIGTERM/SIGINT, then drain gracefully.  Returns the
    process exit code (0 = clean drain).

    With *trace_out*, the whole serving session runs under the
    :mod:`repro.obs` tracer and the Chrome-trace document (including
    the metrics snapshot) is written there after the drain — the CI
    serve job validates that export against the trace schema.
    """
    import contextlib

    stack = contextlib.ExitStack()
    tracer = None
    if trace_out is not None:
        from ..obs import tracing
        tracer = stack.enter_context(tracing())
    server = create_server(host, port, config=config, cache=cache)
    bound_host, bound_port = server.server_address[:2]
    if ready_line:
        print(f"listening on http://{bound_host}:{bound_port}",
              flush=True)

    stop = threading.Event()

    def _on_signal(signum, frame):     # noqa: ARG001 - signal API
        stop.set()

    if install_signals:
        signal.signal(signal.SIGTERM, _on_signal)
        signal.signal(signal.SIGINT, _on_signal)

    serve_thread = threading.Thread(target=server.serve_forever,
                                    name="serve-http", daemon=True)
    serve_thread.start()
    try:
        while not stop.wait(timeout=0.2):
            pass
    except KeyboardInterrupt:
        pass
    # drain first so /healthz flips to draining while in-flight work
    # completes, then stop accepting connections at the socket level
    drained = server.service.drain(timeout=drain_timeout)
    server.shutdown()
    server.server_close()
    serve_thread.join(timeout=5.0)
    if tracer is not None:
        from ..obs import write_chrome_trace
        stack.close()            # stop collecting before exporting
        write_chrome_trace(tracer, trace_out)
        print(f"trace ({len(tracer)} spans) written to {trace_out}",
              flush=True)
    if ready_line:
        print("drained" if drained else "drain timed out", flush=True)
    return 0 if drained else 1
