"""The serve wire format: JSON requests/responses with embedded images.

A request names the work either as a **named pipeline** (``"pipeline":
"edge"``) or an **inline kernel chain** (``"chain": [{"op": ...}, ...]``,
see :mod:`repro.serve.planner` for the op vocabulary), plus the image
payload and the compile target::

    {
      "pipeline": "edge",                  # or "chain": [...]
      "image": {"dtype": "float32", "shape": [h, w], "data_b64": "..."},
      "device": "Tesla C2050",             # optional
      "backend": "cuda",                   # optional
      "engine": "auto",                    # optional: sim | native | auto
      "timeout_ms": 30000                  # optional per-request deadline
    }

Image pixels travel as base64 of the raw C-order array bytes — no pickle
anywhere on the wire, so a malicious payload can at worst fail to
decode.  The response mirrors the encoding::

    {"status": "ok", "image": {...}, "meta": {"launches": 3, ...}}

:func:`request_fingerprint` is the dedup key: a sha256 over the
canonicalised request *including a digest of the pixel bytes*, so two
requests coalesce only when they would provably compute the same result
(same work, same target, same input pixels).  The ``timeout_ms`` field
is deliberately excluded — it affects scheduling, not the answer.
"""

from __future__ import annotations

import base64
import binascii
import hashlib
import json
from typing import Any, Dict, Tuple

import numpy as np

#: bumped when the wire format changes incompatibly; echoed in
#: ``/healthz`` so clients can refuse to talk to a foreign server
PROTOCOL_VERSION = 1

#: dtypes an image payload may declare — the closed set the DSL's pixel
#: types cover, so a request can never make the planner allocate an
#: arbitrary dtype
ALLOWED_DTYPES = ("float32", "float64", "uint8", "int16", "int32",
                  "uint16", "uint32")

#: refuse images above this many pixels (64 MP ~ a whole-slide tile):
#: the queue is bounded in *requests*, this bounds the bytes one
#: request can pin
MAX_PIXELS = 64 * 1024 * 1024


class ProtocolError(ValueError):
    """A request that cannot be decoded — always the client's fault
    (HTTP 400), never a server crash."""


def encode_image(array: np.ndarray) -> Dict[str, Any]:
    """Encode *array* (2-D) as the JSON image payload."""
    array = np.ascontiguousarray(array)
    if array.ndim != 2:
        raise ProtocolError(
            f"image must be 2-D, got shape {array.shape}")
    return {
        "dtype": str(array.dtype),
        "shape": [int(array.shape[0]), int(array.shape[1])],
        "data_b64": base64.b64encode(array.tobytes()).decode("ascii"),
    }


def decode_image(payload: Any) -> np.ndarray:
    """Decode an image payload; raises :class:`ProtocolError` on any
    malformed field (wrong dtype, byte count not matching the shape,
    undecodable base64, oversized image)."""
    if not isinstance(payload, dict):
        raise ProtocolError("image payload must be an object")
    dtype = payload.get("dtype")
    if dtype not in ALLOWED_DTYPES:
        raise ProtocolError(
            f"image dtype {dtype!r} not in {ALLOWED_DTYPES}")
    shape = payload.get("shape")
    if (not isinstance(shape, (list, tuple)) or len(shape) != 2
            or not all(isinstance(s, int) and s > 0 for s in shape)):
        raise ProtocolError(f"image shape {shape!r} must be [h, w] > 0")
    h, w = shape
    if h * w > MAX_PIXELS:
        raise ProtocolError(
            f"image {w}x{h} exceeds the {MAX_PIXELS}-pixel limit")
    encoded = payload.get("data_b64")
    if not isinstance(encoded, str):
        raise ProtocolError("image payload missing data_b64")
    try:
        raw = base64.b64decode(encoded.encode("ascii"), validate=True)
    except (binascii.Error, ValueError) as exc:
        raise ProtocolError(f"undecodable image data: {exc}") from None
    expected = h * w * np.dtype(dtype).itemsize
    if len(raw) != expected:
        raise ProtocolError(
            f"image data is {len(raw)} bytes, shape {w}x{h} {dtype} "
            f"needs {expected}")
    return np.frombuffer(raw, dtype=dtype).reshape(h, w).copy()


def _canonical_work(body: Dict[str, Any],
                    default_engine: str = "auto") -> Dict[str, Any]:
    """The request fields that determine the *answer* (not the
    scheduling), in canonical form."""
    work: Dict[str, Any] = {}
    pipeline = body.get("pipeline")
    chain = body.get("chain")
    if (pipeline is None) == (chain is None):
        raise ProtocolError(
            "request must carry exactly one of 'pipeline' or 'chain'")
    if pipeline is not None:
        if not isinstance(pipeline, str):
            raise ProtocolError("'pipeline' must be a string")
        work["pipeline"] = pipeline
    else:
        if not isinstance(chain, list) or not chain:
            raise ProtocolError("'chain' must be a non-empty list")
        work["chain"] = chain
    work["device"] = body.get("device", "Tesla C2050")
    work["backend"] = body.get("backend", "cuda")
    engine = body.get("engine")
    if engine is not None:
        if engine not in ("sim", "native", "auto"):
            raise ProtocolError(
                f"engine {engine!r} must be sim, native or auto")
    # always fingerprint a *resolved* engine, like device/backend: a
    # request that omits the field and one that names the server
    # default are interchangeable and must coalesce
    work["engine"] = engine if engine is not None else default_engine
    return work


def request_fingerprint(body: Dict[str, Any],
                        default_engine: str = "auto") -> Tuple[str, str]:
    """``(fingerprint, image_digest)`` for *body*.

    The fingerprint hashes the canonical work description plus the
    image digest; requests with equal fingerprints are interchangeable
    — one execution answers all of them.  *default_engine* is the
    engine an omitting request resolves to (the server's configured
    default), so omitted-vs-explicit-default requests share a key.
    """
    work = _canonical_work(body, default_engine)
    image = body.get("image")
    if not isinstance(image, dict):
        raise ProtocolError("request missing 'image' payload")
    hasher = hashlib.sha256()
    hasher.update(str(image.get("dtype")).encode())
    hasher.update(str(image.get("shape")).encode())
    hasher.update(str(image.get("data_b64", "")).encode())
    image_digest = hasher.hexdigest()
    doc = dict(work)
    doc["image_sha256"] = image_digest
    doc["protocol"] = PROTOCOL_VERSION
    blob = json.dumps(doc, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode()).hexdigest(), image_digest


def error_response(code: str, message: str, **extra: Any
                   ) -> Dict[str, Any]:
    doc: Dict[str, Any] = {"status": "error", "error": code,
                           "message": message}
    doc.update(extra)
    return doc
