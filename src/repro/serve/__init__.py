"""``repro serve`` — the persistent compile-and-execute service.

Per-call initialization (process startup, cache resolution, buffer
allocation) dominates the latency of one-shot CLI invocations — exactly
the overhead OpenCLIPER identifies as the bottleneck in medical-imaging
deployments.  This package keeps everything hot in one long-running
process:

* :mod:`repro.serve.protocol` — the JSON request/response wire format,
  image payload encoding and the request fingerprint used for dedup;
* :mod:`repro.serve.planner` — turns a request (named pipeline or
  inline kernel chain) into a :class:`~repro.graph.PipelineGraph`;
* :mod:`repro.serve.service` — the request queue: batching window,
  fingerprint dedup, bounded queue with load shedding, per-request
  timeouts, a worker pool sharing one process-wide
  :class:`~repro.cache.CompilationCache` and per-worker
  :class:`~repro.graph.pool.BufferPool` arenas reset between requests;
* :mod:`repro.serve.server` — the stdlib-only threading HTTP front door
  (``POST /v1/execute``, ``GET /metrics``, ``GET /healthz``) with
  graceful SIGTERM drain;
* :mod:`repro.serve.client` — the stdlib HTTP client used by the
  benchmark, the tests and downstream applications.

See docs/SERVING.md for the protocol and the operational semantics.
"""

from .client import (                            # noqa: F401
    RequestTimeout,
    ServeClient,
    ServeError,
    ServerBusy,
    ServerDraining,
)
from .planner import PIPELINES, PlanError, plan_request  # noqa: F401
from .protocol import (                          # noqa: F401
    PROTOCOL_VERSION,
    ProtocolError,
    decode_image,
    encode_image,
    request_fingerprint,
)
from .server import create_server, run_server    # noqa: F401
from .service import ServeConfig, ServeService, ServeStats  # noqa: F401
