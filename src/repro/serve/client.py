"""Stdlib HTTP client for a running ``repro serve`` instance.

Used by the benchmark, the e2e tests and downstream applications; the
only dependency beyond numpy is :mod:`http.client`.  Typed exceptions
mirror the server's load-management answers so callers can distinguish
"retry later" (:class:`ServerBusy`, :class:`ServerDraining`) from
"your request is wrong" (:class:`ServeError` with ``http_status``
400) and "give up on this one" (:class:`RequestTimeout`)::

    client = ServeClient("127.0.0.1", 8077)
    client.wait_ready()
    result = client.execute(pipeline="edge", image=array)
    result.image          # np.ndarray, byte-identical to a direct
                          # Scheduler execution of the same pipeline
    result.meta           # launches, engine, cache_hits, fingerprint
"""

from __future__ import annotations

import dataclasses
import http.client
import json
import threading
import time
from typing import Any, Dict, List, Optional

import numpy as np

from .protocol import decode_image, encode_image


class ServeError(RuntimeError):
    """The server answered with an error document."""

    def __init__(self, http_status: int, doc: Dict[str, Any]):
        message = doc.get("message", doc.get("error", "unknown error"))
        super().__init__(f"HTTP {http_status}: {message}")
        self.http_status = http_status
        self.doc = doc


class ServerBusy(ServeError):
    """Load shed (429); honour ``retry_after`` before retrying."""

    @property
    def retry_after(self) -> float:
        return float(self.doc.get("retry_after", 1.0))


class ServerDraining(ServeError):
    """The instance is shutting down (503, retriable elsewhere)."""

    @property
    def retry_after(self) -> float:
        return float(self.doc.get("retry_after", 1.0))


class RequestTimeout(ServeError):
    """The per-request deadline expired server-side (504)."""


@dataclasses.dataclass
class ExecuteResult:
    """A successful ``/v1/execute`` answer."""

    image: np.ndarray
    meta: Dict[str, Any]
    #: server-minted correlation id — grep the server's structured log
    #: or trace for it
    request_id: str = ""


_ERROR_TYPES = {429: ServerBusy, 503: ServerDraining,
                504: RequestTimeout}


class ServeClient:
    """Keep-alive client: one persistent HTTP/1.1 connection per
    calling thread (the handler answers with Content-Length, so the
    connection survives across requests); a dropped connection is
    re-dialled once, transparently."""

    def __init__(self, host: str = "127.0.0.1", port: int = 8077,
                 timeout: float = 60.0):
        self.host = host
        self.port = port
        self.timeout = timeout
        self._local = threading.local()

    # -- plumbing ------------------------------------------------------------

    def _conn(self) -> http.client.HTTPConnection:
        conn = getattr(self._local, "conn", None)
        if conn is None:
            conn = http.client.HTTPConnection(self.host, self.port,
                                              timeout=self.timeout)
            self._local.conn = conn
        return conn

    def close(self) -> None:
        """Drop this thread's persistent connection."""
        conn = getattr(self._local, "conn", None)
        if conn is not None:
            conn.close()
            self._local.conn = None

    def _roundtrip(self, conn: http.client.HTTPConnection, method: str,
                   path: str, payload: Optional[bytes],
                   headers: Dict[str, str]):
        conn.request(method, path, body=payload, headers=headers)
        response = conn.getresponse()
        return response, response.read()

    def _request(self, method: str, path: str,
                 body: Optional[Dict[str, Any]] = None
                 ) -> Dict[str, Any]:
        payload = None
        headers: Dict[str, str] = {}
        if body is not None:
            payload = json.dumps(body).encode()
            headers["Content-Type"] = "application/json"
        conn = self._conn()
        try:
            response, raw = self._roundtrip(conn, method, path,
                                            payload, headers)
        except (http.client.HTTPException, ConnectionError,
                BrokenPipeError):
            # stale keep-alive connection (server restarted, idle
            # timeout): re-dial once and retry
            self.close()
            conn = self._conn()
            response, raw = self._roundtrip(conn, method, path,
                                            payload, headers)
        doc = json.loads(raw)
        if response.status >= 400:
            raise _ERROR_TYPES.get(response.status, ServeError)(
                response.status, doc)
        return doc

    # -- endpoints -----------------------------------------------------------

    def execute(self, image: np.ndarray,
                pipeline: Optional[str] = None,
                chain: Optional[List[Dict[str, Any]]] = None,
                device: Optional[str] = None,
                backend: Optional[str] = None,
                engine: Optional[str] = None,
                timeout_ms: Optional[float] = None) -> ExecuteResult:
        """Run *image* through a named *pipeline* or inline *chain*."""
        body: Dict[str, Any] = {"image": encode_image(image)}
        if pipeline is not None:
            body["pipeline"] = pipeline
        if chain is not None:
            body["chain"] = chain
        for key, value in (("device", device), ("backend", backend),
                           ("engine", engine),
                           ("timeout_ms", timeout_ms)):
            if value is not None:
                body[key] = value
        doc = self._request("POST", "/v1/execute", body)
        return ExecuteResult(image=decode_image(doc["image"]),
                             meta=doc.get("meta", {}),
                             request_id=doc.get("request_id", ""))

    def execute_raw(self, body: Dict[str, Any]) -> Dict[str, Any]:
        """POST a prebuilt request body (tests exercising edge cases)."""
        return self._request("POST", "/v1/execute", body)

    def healthz(self) -> Dict[str, Any]:
        return self._request("GET", "/healthz")

    def metrics(self) -> Dict[str, Dict[str, Any]]:
        return self._request("GET", "/metrics")

    def wait_ready(self, timeout: float = 10.0,
                   interval: float = 0.05) -> None:
        """Poll ``/healthz`` until the server answers, raising
        :class:`TimeoutError` after *timeout* seconds."""
        deadline = time.monotonic() + timeout
        last: Optional[Exception] = None
        while time.monotonic() < deadline:
            try:
                self.healthz()
                return
            except (OSError, ServeError, ValueError) as exc:
                last = exc
                time.sleep(interval)
        raise TimeoutError(
            f"server at {self.host}:{self.port} not ready within "
            f"{timeout}s: {last}")
