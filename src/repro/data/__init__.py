"""Synthetic input data (the paper's angiography domain)."""

from .synthetic import (  # noqa: F401
    angiography_image,
    gradient_image,
    impulse_noise_image,
    vessel_tree,
)
