"""Synthetic X-ray-angiography-like test images.

The paper's framework targets Siemens angiography pipelines; real patient
data is obviously unavailable, so these generators produce images with the
relevant spatial statistics: a dark vessel tree over a bright, smoothly
varying background, quantum (Poisson-like) noise, and occasional impulse
noise — exactly what bilateral/median/multiresolution filtering is run on.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np


def vessel_tree(width: int, height: int, seed: int = 0,
                n_roots: int = 3, depth: int = 5) -> np.ndarray:
    """Binary-ish vessel-tree map in [0, 1]: recursive branching random
    walks with width tapering, blurred slightly for partial volume."""
    rng = np.random.default_rng(seed)
    canvas = np.zeros((height, width), dtype=np.float32)

    def draw_segment(x, y, angle, length, thickness, level):
        steps = max(2, int(length))
        for _ in range(steps):
            angle += rng.normal(0.0, 0.08)
            x += np.cos(angle)
            y += np.sin(angle)
            ix, iy = int(round(x)), int(round(y))
            r = max(1, int(round(thickness)))
            x0, x1 = max(0, ix - r), min(width, ix + r + 1)
            y0, y1 = max(0, iy - r), min(height, iy + r + 1)
            if x0 < x1 and y0 < y1:
                canvas[y0:y1, x0:x1] = 1.0
            if not (0 <= x < width and 0 <= y < height):
                return
        if level < depth:
            n_branches = rng.integers(1, 3)
            for _ in range(n_branches):
                branch_angle = angle + rng.normal(0.0, 0.6)
                draw_segment(x, y, branch_angle, length * 0.75,
                             thickness * 0.7, level + 1)

    for _ in range(n_roots):
        x0 = rng.uniform(0.2, 0.8) * width
        y0 = 0.0
        draw_segment(x0, y0, np.pi / 2 + rng.normal(0, 0.3),
                     height * 0.35, max(2.0, width / 200), 0)

    # cheap separable box blur for partial-volume softening
    k = 3
    blurred = canvas.copy()
    for axis in (0, 1):
        acc = np.zeros_like(blurred)
        for off in range(-k // 2, k // 2 + 1):
            acc += np.roll(blurred, off, axis=axis)
        blurred = acc / (k + 1)
    return np.clip(blurred, 0.0, 1.0)


def angiography_image(width: int, height: int, seed: int = 0,
                      noise_sigma: float = 0.02,
                      contrast: float = 0.55) -> np.ndarray:
    """Synthetic fluoroscopy frame in [0, 1]: bright vignetted background,
    dark contrast-agent vessels, quantum noise."""
    rng = np.random.default_rng(seed)
    yy, xx = np.mgrid[0:height, 0:width].astype(np.float32)
    cx, cy = width / 2.0, height / 2.0
    r2 = ((xx - cx) / (0.75 * width)) ** 2 + \
        ((yy - cy) / (0.75 * height)) ** 2
    background = 0.9 - 0.25 * r2
    background += 0.03 * np.sin(xx / width * 7.1) * \
        np.cos(yy / height * 5.3)
    vessels = vessel_tree(width, height, seed=seed)
    image = background - contrast * vessels
    # signal-dependent quantum noise (Poisson-like, Gaussian approximated)
    noise = rng.normal(0.0, 1.0, size=image.shape).astype(np.float32)
    image = image + noise_sigma * np.sqrt(np.clip(image, 0.01, 1.0)) * noise
    return np.clip(image, 0.0, 1.0).astype(np.float32)


def impulse_noise_image(width: int, height: int, seed: int = 0,
                        density: float = 0.02,
                        base: Optional[np.ndarray] = None) -> np.ndarray:
    """Image with salt-and-pepper impulses (median-filter workload)."""
    rng = np.random.default_rng(seed)
    if base is None:
        base = angiography_image(width, height, seed=seed)
    image = np.array(base, dtype=np.float32, copy=True)
    mask = rng.random(image.shape)
    image[mask < density / 2] = 0.0
    image[mask > 1.0 - density / 2] = 1.0
    return image


def gradient_image(width: int, height: int,
                   direction: Tuple[float, float] = (1.0, 0.5)
                   ) -> np.ndarray:
    """Deterministic ramp — handy for boundary-handling unit tests."""
    yy, xx = np.mgrid[0:height, 0:width].astype(np.float32)
    dx, dy = direction
    ramp = dx * xx / max(width - 1, 1) + dy * yy / max(height - 1, 1)
    return (ramp / max(ramp.max(), 1e-9)).astype(np.float32)
