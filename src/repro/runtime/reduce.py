"""Compilation and simulated execution of global reductions."""

from __future__ import annotations

import dataclasses
from typing import Union

import numpy as np

from ..backends.base import CodegenOptions, KernelSource
from ..backends.reduction import generate_reduction
from ..dsl.reduction import GlobalReduction
from ..errors import DslError
from ..frontend.reduction import LEFT, RIGHT, ReductionIR, parse_reduction
from ..hwmodel.database import get_device
from ..hwmodel.device import DeviceSpec
from ..sim.executor import ExecutionContext
from ..ir.nodes import KernelIR


@dataclasses.dataclass
class ReductionResult:
    value: float
    estimated_ms: float
    partials: int


@dataclasses.dataclass
class CompiledReduction:
    """Compiled global reduction: source plus simulator/timing handles."""

    ir: ReductionIR
    reduction: GlobalReduction
    source: KernelSource
    options: CodegenOptions
    device: DeviceSpec
    block_size: int = 256

    @property
    def device_code(self) -> str:
        return self.source.device_code

    def combine(self, a, b):
        """Evaluate the user combine over NumPy operands (vectorised)."""
        shell = KernelIR(name=self.ir.name,
                         pixel_type=self.ir.pixel_type,
                         body=self.ir.body,
                         accessors=[], masks=[], params=[])
        ctx = ExecutionContext(shell, {}, np.zeros(1, np.int64),
                               np.zeros(1, np.int64))
        env = {LEFT: a, RIGHT: b}
        for s in self.ir.body:
            ctx.run_stmt(s, env)
        return env["__output__"]

    def _tree_reduce(self, values: np.ndarray):
        """Pairwise tree reduction — the combine order of the generated
        scratchpad loops, so float results match device semantics."""
        values = np.asarray(values,
                            dtype=self.ir.pixel_type.np_dtype).ravel()
        while values.size > 1:
            half = values.size // 2
            left = values[:half]
            right = values[half:2 * half]
            merged = self.combine(left, right)
            merged = np.asarray(merged,
                                dtype=self.ir.pixel_type.np_dtype)
            if values.size % 2:
                merged = np.concatenate([merged, values[-1:]])
            values = merged
        return values[0]

    def execute(self) -> ReductionResult:
        space = self.reduction.iteration_space
        acc = self.reduction.accessor
        region = acc.image.pixels[
            space.offset_y:space.offset_y + space.height,
            space.offset_x:space.offset_x + space.width]
        value = self._tree_reduce(region)
        return ReductionResult(
            value=float(value),
            estimated_ms=self.estimate_time_ms(),
            partials=self._num_blocks(),
        )

    def _num_blocks(self) -> int:
        total = self.reduction.iteration_space.size
        return min(1024, (total + self.block_size - 1) // self.block_size)

    def estimate_time_ms(self) -> float:
        """Reductions are bandwidth-bound: one streaming pass over the
        image plus a negligible second stage and two launches."""
        dev = self.device
        total_bytes = self.reduction.iteration_space.size \
            * self.ir.pixel_type.size
        bw = dev.memory.bandwidth_gbps * 1e9 \
            * dev.backend_efficiency.get(self.options.backend, 1.0)
        t_stream = total_bytes / bw
        t_launch = 2 * dev.kernel_launch_overhead_us * 1e-6
        return (t_stream + t_launch) * 1e3


def compile_reduction(reduction: GlobalReduction,
                      backend: str = "cuda",
                      device: Union[None, str, DeviceSpec] = None,
                      block_size: int = 256) -> CompiledReduction:
    """Parse, type check and code-generate a global reduction."""
    if not isinstance(reduction, GlobalReduction):
        raise DslError("compile_reduction expects a GlobalReduction")
    dev = get_device(device) if isinstance(device, str) else device
    if dev is None:
        dev = get_device("Tesla C2050")
    if not dev.supports_backend(backend):
        raise DslError(
            f"{dev.name} does not support the {backend} backend")
    ir = parse_reduction(reduction)
    options = CodegenOptions(backend=backend, block=(block_size, 1))
    source = generate_reduction(ir, options, block_size=block_size)
    return CompiledReduction(
        ir=ir,
        reduction=reduction,
        source=source,
        options=options,
        device=dev,
        block_size=block_size,
    )
