"""Compilation driver and compiled-kernel runtime.

:func:`compile_kernel` runs the full HIPAcc pipeline — parse, type check,
IR optimization, resource estimation, Algorithm-2 configuration selection,
code generation — and returns a :class:`CompiledKernel` that can execute on
the simulated device and report modelled timing.
"""

from .compile import compile_ir, compile_kernel  # noqa: F401
from .program import CompiledKernel, ExecutionReport  # noqa: F401
