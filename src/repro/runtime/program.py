"""CompiledKernel: the artifact :func:`repro.runtime.compile_kernel`
produces — generated sources, selected configuration, resource usage, and
handles to execute on the simulator or query the timing model."""

from __future__ import annotations

import dataclasses
from typing import Dict, Optional, Tuple

import numpy as np

from ..backends.base import CodegenOptions, KernelSource
from ..dsl.accessor import Accessor
from ..dsl.boundary import Boundary
from ..dsl.iteration_space import IterationSpace
from ..hwmodel.device import DeviceSpec
from ..hwmodel.resources import ResourceUsage
from ..ir.nodes import KernelIR
from ..obs import span
from ..sim.launch import LaunchResult, simulate_launch
from ..sim.timing import LaunchSpec, TimingBreakdown, estimate_time


@dataclasses.dataclass
class ExecutionReport:
    """Result of one simulated execution."""

    launch: LaunchResult
    timing: TimingBreakdown
    output: np.ndarray

    @property
    def time_ms(self) -> float:
        return self.timing.total_ms


@dataclasses.dataclass
class CompiledKernel:
    """A kernel after the full compilation pipeline."""

    ir: KernelIR
    source: KernelSource
    options: CodegenOptions
    device: DeviceSpec
    resources: ResourceUsage
    accessors: Dict[str, Accessor]
    iteration_space: IterationSpace
    window: Tuple[int, int]
    selected_occupancy: float = 0.0
    #: content address of this compile in the compilation cache (None when
    #: compiled without a cache); see docs/CACHING.md for key composition
    cache_key: Optional[str] = None
    #: True when this artifact was served from the cache rather than
    #: produced by running the pipeline
    from_cache: bool = False
    #: wall-clock milliseconds per pipeline stage for this compile.  A
    #: view over the ``compile.*`` spans (:mod:`repro.obs`): always the
    #: full :data:`~repro.obs.schema.TIMING_KEYS` schema, with stages
    #: this path skipped present as ``0.0`` — the cache-hit and fresh
    #: paths emit the identical key set (see docs/OBSERVABILITY.md)
    stage_timings: Dict[str, float] = dataclasses.field(
        default_factory=dict)
    #: lint findings from the always-on compile-time verify
    #: (:mod:`repro.lint`); populated on fresh and cached compiles alike
    diagnostics: list = dataclasses.field(default_factory=list)

    @property
    def timings(self) -> Dict[str, float]:
        """Alias for :attr:`stage_timings` (the documented schema name)."""
        return self.stage_timings

    @property
    def compile_ms(self) -> float:
        """Total wall-clock time this compile took."""
        return self.stage_timings.get("total_ms", 0.0)

    # -- queries -------------------------------------------------------------

    @property
    def cuda_code(self) -> str:
        if self.source.backend != "cuda":
            raise ValueError("kernel was compiled for OpenCL")
        return self.source.device_code

    @property
    def opencl_code(self) -> str:
        if self.source.backend != "opencl":
            raise ValueError("kernel was compiled for CUDA")
        return self.source.device_code

    @property
    def device_code(self) -> str:
        return self.source.device_code

    @property
    def host_code(self) -> str:
        return self.source.host_code

    def dominant_boundary_mode(self) -> Boundary:
        for acc in self.ir.accessors:
            mode = Boundary(acc.boundary_mode)
            if mode != Boundary.UNDEFINED:
                return mode
        return Boundary.UNDEFINED

    def launch_spec(self, **overrides) -> LaunchSpec:
        spec = LaunchSpec.from_options(
            device=self.device,
            options=self.options,
            width=self.iteration_space.width,
            height=self.iteration_space.height,
            window=self.window,
            mix=self.resources.instruction_mix,
            boundary_mode=self.dominant_boundary_mode(),
            regs_per_thread=self.resources.registers_per_thread,
            smem_bytes_per_block=self.source.smem_bytes,
        )
        for key, value in overrides.items():
            setattr(spec, key, value)
        return spec

    # -- actions ---------------------------------------------------------------

    def estimate_time(self, **overrides) -> TimingBreakdown:
        """Modelled execution time on the target device."""
        return estimate_time(self.launch_spec(**overrides))

    def execute(self) -> ExecutionReport:
        """Run functionally on the simulated device and attach timing.

        The output lands in the iteration space's image (as the C++
        framework's ``execute()`` would leave it on the device).
        """
        with span("exec.launch", kernel=self.ir.name,
                  device=self.device.name):
            launch = simulate_launch(
                self.ir, self.accessors, self.iteration_space,
                self.options, self.device,
                regs_per_thread=self.resources.registers_per_thread,
                smem_per_block=self.source.smem_bytes,
            )
        with span("exec.timing", kernel=self.ir.name):
            timing = self.estimate_time()
        launch.estimated_ms = timing.total_ms
        return ExecutionReport(
            launch=launch,
            timing=timing,
            output=self.iteration_space.image.get_data(),
        )
