"""Native execution of CPU-backend kernels via the system C compiler.

The strongest validation this reproduction can offer: the CPU backend's
generated C is *actually compiled* (``cc -O2 -fopenmp``) into a shared
object and run through ``ctypes`` on real silicon, then compared against
the Python simulator.  Since the CPU backend shares the boundary helpers,
region decomposition and expression printer with the CUDA/OpenCL
backends, agreement here validates the whole lowering chain end to end —
the generated GPU code differs only in the index/launch scaffolding.
"""

from __future__ import annotations

import ctypes
import dataclasses
import hashlib
import os
import subprocess
import tempfile
from typing import Dict, Optional

import numpy as np

from ..backends.base import CodegenOptions, KernelSource, generate
from ..dsl.accessor import Accessor
from ..dsl.kernel import Kernel
from ..errors import CodegenError
from ..frontend.parser import accessor_objects, parse_kernel
from ..ir.nodes import KernelIR
from ..ir.typecheck import typecheck_kernel

_CC_CANDIDATES = ("cc", "gcc", "clang")

# Memoized probe results.  ``find_c_compiler()`` used to spawn up to
# three subprocesses on *every* call (the test suite calls it once per
# skip check); probing once per process is both faster and what makes
# monkeypatching ``subprocess.run`` in cache tests safe — the probe has
# already happened by then.
_PROBE_CACHE: Dict[str, Optional[str]] = {}


def find_c_compiler() -> Optional[str]:
    """First working C compiler on PATH, or None (cached per process)."""
    if "cc" in _PROBE_CACHE:
        return _PROBE_CACHE["cc"]
    found = None
    for cc in _CC_CANDIDATES:
        try:
            result = subprocess.run([cc, "--version"],
                                    capture_output=True, timeout=10)
        except (OSError, subprocess.TimeoutExpired):
            continue
        if result.returncode == 0:
            found = cc
            break
    _PROBE_CACHE["cc"] = found
    return found


def compiler_signature(cc: str) -> str:
    """First line of ``cc --version`` — identifies the toolchain for
    content-addressed native artifacts (cached per process)."""
    key = f"sig:{cc}"
    if key in _PROBE_CACHE:
        return _PROBE_CACHE[key]
    try:
        result = subprocess.run([cc, "--version"],
                                capture_output=True, text=True,
                                timeout=10)
        first = result.stdout.splitlines()[0].strip() \
            if result.returncode == 0 and result.stdout else cc
    except (OSError, subprocess.TimeoutExpired):
        first = cc
    _PROBE_CACHE[key] = first
    return first


def clear_compiler_cache() -> None:
    """Forget memoized compiler probes (tests that fake the toolchain)."""
    _PROBE_CACHE.clear()


def native_workdir(subdir: str = "hipacc_py_native") -> str:
    """Scratch directory for materialised native artifacts.

    ``$REPRO_NATIVE_DIR`` overrides the base (useful for hermetic
    tests); defaults to the system temp directory.
    """
    base = os.environ.get("REPRO_NATIVE_DIR") or tempfile.gettempdir()
    path = os.path.join(base, subdir)
    os.makedirs(path, exist_ok=True)
    return path


@dataclasses.dataclass
class NativeKernel:
    """A compiled-to-machine-code CPU kernel, callable on NumPy arrays."""

    ir: KernelIR
    source: KernelSource
    accessors: Dict[str, Accessor]
    library_path: str
    _lib: ctypes.CDLL

    def __call__(self, width: int, height: int,
                 offset_x: int = 0, offset_y: int = 0,
                 **params) -> np.ndarray:
        """Run the native kernel over a width x height iteration space,
        reading the bound accessor images; returns the output array."""
        fn = getattr(self._lib, self.source.entry)
        out = np.zeros((height + offset_y, width + offset_x),
                       dtype=self.ir.pixel_type.np_dtype)
        argv = [out.ctypes.data_as(ctypes.c_void_p),
                ctypes.c_int(out.shape[1])]
        keepalive = [out]
        for acc_info in self.ir.accessors:
            acc = self.accessors[acc_info.name]
            img = np.ascontiguousarray(
                acc.image.pixels.astype(acc.pixel_type.np_dtype))
            keepalive.append(img)
            argv += [img.ctypes.data_as(ctypes.c_void_p),
                     ctypes.c_int(acc.image.width),
                     ctypes.c_int(acc.image.height),
                     ctypes.c_int(img.shape[1])]
        argv += [ctypes.c_int(width), ctypes.c_int(height),
                 ctypes.c_int(offset_x), ctypes.c_int(offset_y)]
        for p in self.ir.params:
            if not p.baked:
                value = params.get(p.name, p.value)
                argv.append(ctypes.c_float(float(value))
                            if p.type.is_float
                            else ctypes.c_int(int(value)))
        fn(*argv)
        return out[offset_y:, offset_x:]


def compile_native(kernel: Kernel, width: Optional[int] = None,
                   height: Optional[int] = None,
                   cc: Optional[str] = None,
                   openmp: bool = True) -> NativeKernel:
    """Generate CPU C code for *kernel*, compile it with the system C
    compiler, and load it via ctypes.

    Raises :class:`CodegenError` when no compiler is available (callers
    — and the test suite — should skip in that case).
    """
    cc = cc or find_c_compiler()
    if cc is None:
        raise CodegenError("no C compiler found on PATH")
    ir = typecheck_kernel(parse_kernel(kernel))
    space = kernel.iteration_space
    geometry = (width or space.width, height or space.height)
    source = generate(ir, CodegenOptions(backend="cpu"),
                      launch_geometry=geometry)

    tag = hashlib.sha1(source.device_code.encode()).hexdigest()[:12]
    workdir = native_workdir()
    c_path = os.path.join(workdir, f"{source.entry}_{tag}.c")
    so_path = os.path.join(workdir, f"{source.entry}_{tag}.so")

    if not os.path.exists(so_path):
        with open(c_path, "w") as fh:
            fh.write(source.device_code)
        cmd = [cc, "-O2", "-shared", "-fPIC", "-std=c99", "-lm",
               c_path, "-o", so_path]
        if openmp:
            cmd.insert(1, "-fopenmp")
        result = subprocess.run(cmd, capture_output=True, text=True,
                                timeout=120)
        if result.returncode != 0:
            raise CodegenError(
                f"native compilation failed:\n{result.stderr}")

    lib = ctypes.CDLL(so_path)
    getattr(lib, source.entry).restype = None
    return NativeKernel(
        ir=ir,
        source=source,
        accessors=accessor_objects(kernel),
        library_path=so_path,
        _lib=lib,
    )
